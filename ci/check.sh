#!/usr/bin/env bash
# Repo gate: formatting, lints, bench compilation, and the tier-1 suite.
#
# Runs entirely offline — all third-party crates are vendored under
# vendor/ (see README.md, "Offline builds").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo check --benches"
cargo check --workspace --benches

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> serve smoke: 10 apps through the vetting service"
serve_out=$(./target/release/gdroid serve --apps 10 --workers 2 --devices 2 --json)
echo "$serve_out" | grep -q '"quarantined":0,' || {
  echo "serve smoke: quarantined jobs detected" >&2
  exit 1
}

echo "==> trace smoke: same-seed traces parse and are byte-identical"
trace_dir=$(mktemp -d)
store_dir=$(mktemp -d)
trap 'rm -rf "$trace_dir" "$store_dir"' EXIT
./target/release/gdroid vet 42 --trace "$trace_dir/a.json" >/dev/null
./target/release/gdroid vet 42 --trace "$trace_dir/b.json" >/dev/null
python3 -m json.tool "$trace_dir/a.json" >/dev/null || {
  echo "trace smoke: trace is not valid JSON" >&2
  exit 1
}
cmp -s "$trace_dir/a.json" "$trace_dir/b.json" || {
  echo "trace smoke: same-seed traces differ byte-for-byte" >&2
  exit 1
}

echo "==> sumstore smoke: 10 apps cold then warm against one store"
cold=$(./target/release/gdroid serve --apps 10 --workers 2 --devices 2 --sumstore "$store_dir" --digest)
warm_json=$(./target/release/gdroid serve --apps 10 --workers 2 --devices 2 --sumstore "$store_dir" --json)
warm=$(./target/release/gdroid serve --apps 10 --workers 2 --devices 2 --sumstore "$store_dir" --digest)
[ "$cold" = "$warm" ] || {
  echo "sumstore smoke: warm digests differ from cold" >&2
  exit 1
}
if echo "$warm_json" | grep -q '"sumstore":{"hits":0,'; then
  echo "sumstore smoke: warm run never hit the store" >&2
  exit 1
fi

echo "==> batch smoke: co-residency sweep is byte-deterministic and batches form"
repo_root=$PWD
batch_dir=$(mktemp -d)
trap 'rm -rf "$trace_dir" "$store_dir" "$batch_dir"' EXIT
(cd "$batch_dir" && "$repo_root/target/release/figures" batch --apps 8 >/dev/null && mv BENCH_batch.json a.json)
(cd "$batch_dir" && "$repo_root/target/release/figures" batch --apps 8 >/dev/null && mv BENCH_batch.json b.json)
cmp -s "$batch_dir/a.json" "$batch_dir/b.json" || {
  echo "batch smoke: BENCH_batch.json differs between identical runs" >&2
  exit 1
}
batch_out=$(./target/release/gdroid serve --apps 10 --workers 2 --devices 1 --coresident 4 --json)
echo "$batch_out" | grep -q '"quarantined":0,' || {
  echo "batch smoke: quarantined jobs under co-residency" >&2
  exit 1
}
echo "$batch_out" | grep -q '"coresidency":' || {
  echo "batch smoke: report missing coresidency" >&2
  exit 1
}

echo "==> targeted smoke: sliced sweep is byte-deterministic and verdicts agree"
(cd "$batch_dir" && "$repo_root/target/release/figures" targeted --apps 8 >/dev/null && mv BENCH_targeted.json ta.json)
(cd "$batch_dir" && "$repo_root/target/release/figures" targeted --apps 8 >/dev/null && mv BENCH_targeted.json tb.json)
cmp -s "$batch_dir/ta.json" "$batch_dir/tb.json" || {
  echo "targeted smoke: BENCH_targeted.json differs between identical runs" >&2
  exit 1
}
full_vet=$(./target/release/gdroid vet 42 --json)
targeted_vet=$(./target/release/gdroid vet 42 --targeted --json)
if ! python3 - "$full_vet" "$targeted_vet" <<'PY'
import json, sys
full, targeted = json.loads(sys.argv[1]), json.loads(sys.argv[2])
assert full["report"] == targeted["report"], "targeted verdict diverged from full"
assert "targeted" not in full, "full outcome must carry no provenance"
assert targeted["targeted"]["sliced_fraction"] <= 1.0
PY
then
  echo "targeted smoke: full vs targeted verdict mismatch" >&2
  exit 1
fi

echo "==> campaign smoke: kill/resume reproduces the fleet report byte-for-byte"
camp_dir=$(mktemp -d)
trap 'rm -rf "$trace_dir" "$store_dir" "$batch_dir" "$camp_dir"' EXIT
./target/release/gdroid campaign --apps 20 --shards 2 --journal-dir "$camp_dir/j2" \
  --out "$camp_dir/fleet-a.json" --verdicts "$camp_dir/verdicts-2.txt" >/dev/null
# Simulate a crash mid-append: cut the shard-0 journal inside a record,
# then resume over the same directory.
journal="$camp_dir/j2/shard-0.journal"
head -c $(( $(wc -c < "$journal") - 120 )) "$journal" > "$camp_dir/cut" && mv "$camp_dir/cut" "$journal"
./target/release/gdroid campaign --apps 20 --shards 2 --journal-dir "$camp_dir/j2" \
  --out "$camp_dir/fleet-b.json" >/dev/null
cmp -s "$camp_dir/fleet-a.json" "$camp_dir/fleet-b.json" || {
  echo "campaign smoke: resumed fleet report differs from the uninterrupted one" >&2
  exit 1
}

echo "==> campaign smoke: shard layout never changes a verdict"
./target/release/gdroid campaign --apps 20 --shards 1 --journal-dir "$camp_dir/j1" \
  --verdicts "$camp_dir/verdicts-1.txt" >/dev/null
cmp -s "$camp_dir/verdicts-2.txt" "$camp_dir/verdicts-1.txt" || {
  echo "campaign smoke: 2-shard verdicts differ from the 1-shard run" >&2
  exit 1
}

echo "==> corpus1000 smoke: the corpus-scale ladder is byte-deterministic"
(cd "$batch_dir" && "$repo_root/target/release/figures" corpus1000 --apps 16 --scale 0.1 >/dev/null && mv BENCH_corpus1000.json ca.json)
(cd "$batch_dir" && "$repo_root/target/release/figures" corpus1000 --apps 16 --scale 0.1 >/dev/null && mv BENCH_corpus1000.json cb.json)
cmp -s "$batch_dir/ca.json" "$batch_dir/cb.json" || {
  echo "corpus1000 smoke: BENCH_corpus1000.json differs between identical runs" >&2
  exit 1
}

echo "==> rel smoke: the engine sweep is byte-deterministic and engines agree"
(cd "$batch_dir" && "$repo_root/target/release/figures" rel --apps 12 >/dev/null && mv BENCH_rel.json ra.json)
(cd "$batch_dir" && "$repo_root/target/release/figures" rel --apps 12 >/dev/null && mv BENCH_rel.json rb.json)
cmp -s "$batch_dir/ra.json" "$batch_dir/rb.json" || {
  echo "rel smoke: BENCH_rel.json differs between identical runs" >&2
  exit 1
}
worklist_vet=$(./target/release/gdroid vet 42 --engine worklist --json)
rel_vet=$(./target/release/gdroid vet 42 --engine rel --json)
cpu_vet=$(./target/release/gdroid vet 42 --engine cpu --json)
if ! python3 - "$worklist_vet" "$rel_vet" "$cpu_vet" <<'PY'
import json, sys
# Timings and telemetry are engine-shaped; the report is the contract.
worklist, rel, cpu = (json.loads(a) for a in sys.argv[1:4])
assert rel["report"] == worklist["report"], "rel verdict diverged from worklist"
assert cpu["report"] == worklist["report"], "cpu verdict diverged from worklist"
PY
then
  echo "rel smoke: engine verdicts diverged" >&2
  exit 1
fi

echo "==> persist smoke: the exec-mode sweep is byte-deterministic and modes agree"
(cd "$batch_dir" && "$repo_root/target/release/figures" persist --apps 12 >/dev/null && mv BENCH_persist.json pa.json)
(cd "$batch_dir" && "$repo_root/target/release/figures" persist --apps 12 >/dev/null && mv BENCH_persist.json pb.json)
cmp -s "$batch_dir/pa.json" "$batch_dir/pb.json" || {
  echo "persist smoke: BENCH_persist.json differs between identical runs" >&2
  exit 1
}
multi_vet=$(./target/release/gdroid vet 42 --exec multi --json)
persist_vet=$(./target/release/gdroid vet 42 --exec persistent --json)
if ! python3 - "$multi_vet" "$persist_vet" <<'PY'
import json, sys
# Timings and launch counts are mode-shaped; the report is the contract.
multi, persist = (json.loads(a) for a in sys.argv[1:3])
assert persist["report"] == multi["report"], "persistent verdict diverged from multi-launch"
PY
then
  echo "persist smoke: exec-mode verdicts diverged" >&2
  exit 1
fi

echo "==> snapshot smoke: rotated kill/resume reproduces the fleet report byte-for-byte"
snap_dir=$(mktemp -d)
trap 'rm -rf "$trace_dir" "$store_dir" "$batch_dir" "$camp_dir" "$snap_dir"' EXIT
./target/release/gdroid campaign --apps 20 --shards 2 --rotate 3 --journal-dir "$snap_dir/jr" \
  --out "$snap_dir/fleet-a.json" >/dev/null
# Kill twice: first cut the newest shard-0 segment mid-record, resume; then
# cut the (new) unsealed tail again and resume once more. Both recoveries
# must converge on the uninterrupted report.
newest_segment() {
  for f in "$snap_dir/jr"/shard-0.journal.*; do echo "${f##*.} $f"; done | sort -n | tail -1 | cut -d' ' -f2-
}
newest=$(newest_segment)
head -c $(( $(wc -c < "$newest") - 40 )) "$newest" > "$snap_dir/cut" && mv "$snap_dir/cut" "$newest"
./target/release/gdroid campaign --apps 20 --shards 2 --rotate 3 --journal-dir "$snap_dir/jr" \
  --out "$snap_dir/fleet-b.json" >/dev/null
cmp -s "$snap_dir/fleet-a.json" "$snap_dir/fleet-b.json" || {
  echo "snapshot smoke: resume after a mid-segment cut diverged" >&2
  exit 1
}
newest=$(newest_segment)
head -c $(( $(wc -c < "$newest") / 2 )) "$newest" > "$snap_dir/cut" && mv "$snap_dir/cut" "$newest"
./target/release/gdroid campaign --apps 20 --shards 2 --rotate 3 --journal-dir "$snap_dir/jr" \
  --out "$snap_dir/fleet-c.json" >/dev/null
cmp -s "$snap_dir/fleet-a.json" "$snap_dir/fleet-c.json" || {
  echo "snapshot smoke: resume after an unsealed-tail cut diverged" >&2
  exit 1
}

echo "==> snapshot smoke: snapshot10k sweep is byte-deterministic at reduced N"
(cd "$batch_dir" && "$repo_root/target/release/figures" snapshot10k --apps 48 >/dev/null && mv BENCH_snapshot10k.json sa.json)
(cd "$batch_dir" && "$repo_root/target/release/figures" snapshot10k --apps 48 >/dev/null && mv BENCH_snapshot10k.json sb.json)
cmp -s "$batch_dir/sa.json" "$batch_dir/sb.json" || {
  echo "snapshot smoke: BENCH_snapshot10k.json differs between identical runs" >&2
  exit 1
}

echo "ci/check.sh: all green"
