#!/usr/bin/env bash
# Repo gate: formatting, lints, bench compilation, and the tier-1 suite.
#
# Runs entirely offline — all third-party crates are vendored under
# vendor/ (see README.md, "Offline builds").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo check --benches"
cargo check --workspace --benches

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> serve smoke: 10 apps through the vetting service"
serve_out=$(./target/release/gdroid serve --apps 10 --workers 2 --devices 2 --json)
echo "$serve_out" | grep -q '"quarantined":0,' || {
  echo "serve smoke: quarantined jobs detected" >&2
  exit 1
}

echo "ci/check.sh: all green"
