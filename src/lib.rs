#![warn(missing_docs)]

//! # gdroid — GPU-based static data-flow analysis for Android app vetting
//!
//! A full-system Rust reproduction of *"GPU-Based Static Data-Flow
//! Analysis for Fast and Scalable Android App Vetting"* (IPDPS 2020).
//! This umbrella crate re-exports the whole stack; see the individual
//! crates for depth:
//!
//! | crate | contents |
//! |---|---|
//! | [`ir`] | Android-like IR (9 statement kinds, 17 expression kinds), `.jil` text format |
//! | [`apk`] | synthetic app generator and the deterministic 1000-app corpus |
//! | [`icfg`] | CFGs, CHA call graph, environment methods, SBDA layering |
//! | [`analysis`] | points-to fact domain, set/matrix stores, transfer functions, CPU solvers |
//! | [`gpusim`] | warp-synchronous SIMT GPU simulator (TESLA P40 model) |
//! | [`core`] | the GDroid kernels: plain, MAT, MAT+GRP, full GDroid; the `AnalysisEngine` trait |
//! | [`rel`] | relational (semi-naive Datalog) GPU backend: delta relations, hash joins |
//! | [`vetting`] | taint analysis plugin, IDFG-reuse plugins, risk assessment, end-to-end pipeline |
//! | [`sumstore`] | cross-app shared-library summary store keyed by canonical method hashes |
//! | [`serve`] | in-process vetting service: priority queue, device scheduler, result cache |
//! | [`campaign`] | store-scale campaigns: sharded fleets, checkpoint journals, resume, merged fleet report |
//! | [`trace`] | modeled-time event tracing: Chrome `trace_event` export, zero-cost when disabled |
//!
//! Beyond the paper's core, the stack implements its stated future work:
//! multi-GPU analysis ([`core::multigpu`]), launch auto-tuning
//! ([`core::autotune`]), incremental re-analysis across app updates
//! ([`analysis::incremental`]), a concrete-execution soundness oracle
//! ([`analysis::concrete`]), the conventional full-sweep baseline
//! ([`analysis::sweep`]), and an app-store-style serving layer
//! ([`serve`]) that packs jobs onto a pool of long-lived simulated
//! devices with caching, fault retry, and per-stage observability.
//!
//! ## Quickstart
//!
//! ```
//! use gdroid::apk::{generate_app, GenConfig};
//! use gdroid::core::OptConfig;
//! use gdroid::vetting::{vet_app, Engine};
//!
//! // Generate a synthetic app and vet it on the simulated GPU with all
//! // three GDroid optimizations.
//! let app = generate_app(0, 42, &GenConfig::tiny());
//! let outcome = vet_app(app, Engine::Gpu(OptConfig::gdroid()));
//! println!("{}", outcome.report.render());
//! println!("IDFG construction: {:.2} ms", outcome.timing.idfg_ns / 1e6);
//! ```

pub use gdroid_analysis as analysis;
pub use gdroid_apk as apk;
pub use gdroid_campaign as campaign;
pub use gdroid_core as core;
pub use gdroid_gpusim as gpusim;
pub use gdroid_icfg as icfg;
pub use gdroid_ir as ir;
pub use gdroid_rel as rel;
pub use gdroid_serve as serve;
pub use gdroid_sumstore as sumstore;
pub use gdroid_trace as trace;
pub use gdroid_vetting as vetting;

/// Crate version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
