//! `gdroid` — command-line front end for the analysis stack.
//!
//! ```text
//! gdroid gen   <seed> [out.jil]       generate a synthetic app (.jil to stdout or file)
//! gdroid vet   <app.jil|seed> [--engine <name>] [--targeted]
//! gdroid engines                      list the analysis engines and their capabilities
//! gdroid lint  <app.jil|seed>         static lints over the IR (exit 1 on errors)
//! gdroid stats <app.jil|seed>         structural statistics (Table I row)
//! gdroid corpus <n>                   dataset statistics over the first n corpus apps
//! gdroid dot   <app.jil|seed> [out]   Graphviz call graph (reachable part)
//! gdroid export <n> <dir>             write the first n corpus apps as bundles
//! gdroid assess <app.jil|seed>        composite risk assessment (all plugins)
//! gdroid serve --apps N [--workers K] [--devices D] [--coresident C] [--faults P:B] [--json]
//!                                     run N corpus apps through the vetting service
//! gdroid batch <bundle-dir> [--workers K] [--devices D] [--coresident C] [--json]
//!                                     vet every bundle under a directory via the service
//! gdroid sumstore stats <dir>         inspect a persisted summary store
//! gdroid sumstore clear <dir>         reset a persisted summary store
//! gdroid campaign --apps N [--shards S] ...
//!                                     run a streamed store-scale campaign (see below)
//! ```
//!
//! `serve` and `batch` accept `--coresident C`: each executor tops its
//! device up with up to `C - 1` further ready jobs whose combined block
//! demand fits the device's block slots and runs the group as one
//! co-resident batched analysis. Per-app results are bit-identical to
//! solo runs; the drained report shows `batched_jobs` and the mean
//! `coresidency`.
//!
//! `vet`, `serve`, and `batch` accept `--sumstore <dir>`: the cross-app
//! summary store is loaded from `<dir>` before the run and saved back
//! after, so shared-library methods analyzed once are pre-solved in every
//! later run. `serve` and `batch` also accept `--digest`, which prints
//! one sorted `package report-hash` line per completed job — a
//! timing-independent fingerprint for comparing cold and warm runs.
//!
//! `vet` and `assess` accept `--json` for machine-readable output that is
//! byte-comparable with what the service caches and returns.
//!
//! `vet --targeted` runs demand-driven: a backward slice from the sink
//! call sites restricts the GPU worklist to the methods that can
//! influence a sink verdict. The verdict is byte-identical to a full run;
//! the outcome JSON gains a `"targeted"` provenance block (slice size,
//! methods skipped, sliced fraction). `serve --targeted-lane` submits
//! every other corpus job through the fast lane: targeted jobs run at
//! `expedited` priority, bypass the result cache, and never join a
//! co-resident batch; the drained report shows `targeted_jobs` and
//! `mean_sliced_fraction`. `lint` includes the `sink-reachability` pass:
//! sink call sites whose backward slice holds no source call site are
//! flagged as dead sinks.
//!
//! `vet` accepts `--trace <out.json>`: the run is traced in modeled time
//! and written as Chrome `trace_event` JSON (open in `about:tracing` or
//! Perfetto), with a top-span summary on stderr. Traces are
//! byte-deterministic: two runs of the same seed write identical files.
//! `serve` and `batch` accept `--trace-dir <dir>`, writing one modeled-
//! time trace per job after the drain.
//!
//! `campaign` streams an N-app corpus (generate → vet → journal →
//! discard, memory bounded by each service's in-flight window) across
//! `--shards S` independent serve fleets — one per simulated multi-GPU
//! node. Every terminal outcome is checkpointed to an append-only,
//! checksummed journal under `--journal-dir` (default
//! `campaign.journal/`), so a killed campaign rerun with the same
//! arguments resumes exactly where it stopped and still produces the
//! byte-identical fleet report. `--out` writes the canonical fleet
//! report JSON (byte-deterministic across reruns and kill/resume);
//! `--verdicts` writes one sorted `index package verdict report-hash`
//! line per app (byte-comparable across *any* shard count); `--fresh`
//! discards existing journals first. `--targeted` vets through the
//! demand-driven fast lane; `--sumstore` attaches a per-shard in-memory
//! summary store; `--scale F` scales the generator profile (default is
//! the `small` profile, 0.25).
//!
//! `--engine` selects how the IDFG fixpoint is computed. `vet` accepts
//! the worklist ladder rungs (`plain|mat|matgrp|gdroid`), the CPU
//! baselines (`mtcpu|amandroid`), and the `AnalysisEngine` kinds
//! behind the engine trait: `worklist` (the full-GDroid rung), `rel`
//! (the relational semi-naive GPU backend), and `cpu` (the sequential
//! reference solver). `serve`, `batch`, and `campaign` accept
//! `--engine worklist|rel|cpu`; non-worklist engines bypass the result
//! cache and co-resident batching (see `gdroid engines`). Facts and
//! verdicts are byte-identical across engines — only modeled timing
//! differs.
//!
//! `--exec persistent` switches the worklist engine to the
//! persistent-kernel mode: each app's whole fixpoint runs as one
//! resident mega-kernel launch owning a device-side worklist — one
//! launch overhead per app instead of one per round, with a modeled
//! grid-wide sync between rounds and host↔device traffic collapsed to
//! the initial upload plus the final download. Facts and verdicts are
//! byte-identical to multi-launch; only the cost profile changes, so
//! persistent service jobs bypass the result cache and incremental warm
//! starts and never join a co-resident batch (`vet`, `serve`, `batch`,
//! and `campaign` all accept the flag; only the worklist engine supports
//! it — see `gdroid engines`).
//!
//! Apps can come from a `.jil` file (the textual IR) or be generated on
//! the fly from a numeric seed.

use gdroid::analysis::{analyze_app, StoreKind};
use gdroid::apk::{
    generate_app, App, AppStats, Category, Corpus, CorpusStats, GenConfig, Manifest,
};
use gdroid::core::{EngineKind, ExecMode, OptConfig};
use gdroid::icfg::prepare_app;
use gdroid::ir::text::{parse_program, print_program};
use gdroid::ir::MethodId;
use gdroid::serve::{
    fnv1a, CacheDisposition, JobResult, JobSource, JobStatus, Priority, ServiceConfig,
    VettingService,
};
use gdroid::sumstore::SumStore;
use gdroid::trace::Tracer;
use gdroid::vetting::{
    execute_vetting, execute_vetting_engine_on_device_mode,
    execute_vetting_engine_on_device_with_store_mode,
    execute_vetting_engine_targeted_on_device_mode,
    execute_vetting_engine_targeted_on_device_with_store_mode, execute_vetting_full_with_store,
    execute_vetting_gpu_traced, execute_vetting_gpu_traced_with_store, execute_vetting_targeted,
    execute_vetting_targeted_on_device_with_store, execute_vetting_targeted_traced,
    prepare_vetting, sink_reachability_findings, trace_stage_spans, vet_app, Engine,
};
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  gdroid gen <seed> [out.jil]\n  gdroid vet <app.jil|seed> \
         [--engine plain|mat|matgrp|gdroid|worklist|rel|cpu|mtcpu|amandroid] \
         [--exec multi|persistent] [--targeted] \
         [--sumstore <dir>] [--trace <out.json>] [--json]\n  \
         gdroid engines\n  \
         gdroid lint <app.jil|seed>\n  \
         gdroid stats <app.jil|seed>\n  \
         gdroid corpus <n>\n  gdroid dot <app.jil|seed> [out.dot]\n  gdroid export <n> <dir>\n  \
         gdroid assess <app.jil|seed> [--json]\n  \
         gdroid serve --apps N [--workers K] [--devices D] [--coresident C] [--faults P:B] \
         [--engine worklist|rel|cpu] [--exec multi|persistent] [--targeted-lane] \
         [--sumstore <dir>] [--trace-dir <dir>] [--digest] [--json]\n  \
         gdroid batch <bundle-dir> [--workers K] [--devices D] [--coresident C] \
         [--engine worklist|rel|cpu] [--exec multi|persistent] [--sumstore <dir>] \
         [--trace-dir <dir>] [--digest] [--json]\n  \
         gdroid sumstore stats|clear <dir>\n  \
         gdroid campaign --apps N [--shards S] [--seed X] [--workers K] [--devices D] \
         [--coresident C] [--engine worklist|rel|cpu] [--exec multi|persistent] [--targeted] \
         [--sumstore] [--scale F] \
         [--snapshot] [--rotate N] [--shared-store] [--delta DIR] [--updates PPM[:SALT]] \
         [--journal-dir DIR] [--out FILE] [--verdicts FILE] [--trace-dir DIR] [--fresh] [--json]"
    );
    exit(2)
}

/// Parses `--flag N` style numeric options.
fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)?.parse().ok())
}

/// Parses `--flag value` style string options.
fn flag_str<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Parses `--engine worklist|rel|cpu` for the service-backed verbs
/// (serve, batch, campaign). Defaults to the worklist engine.
fn service_engine(args: &[String]) -> EngineKind {
    match flag_str(args, "--engine") {
        None => EngineKind::Worklist,
        Some(s) => EngineKind::parse(s).unwrap_or_else(|| usage()),
    }
}

/// Parses `--exec multi|persistent` for the verbs that run worklist
/// kernels. Defaults to classic per-round multi-launch execution.
fn service_exec(args: &[String]) -> ExecMode {
    match flag_str(args, "--exec") {
        None => ExecMode::MultiLaunch,
        Some(s) => ExecMode::parse(s).unwrap_or_else(|| usage()),
    }
}

/// Opens (or starts empty) the summary store persisted under `dir`.
fn open_sumstore(dir: &str) -> SumStore {
    SumStore::open(std::path::Path::new(dir)).unwrap_or_else(|e| {
        eprintln!("cannot open summary store {dir}: {e}");
        exit(1)
    })
}

/// Saves the summary store back to `dir`.
fn save_sumstore(store: &SumStore, dir: &str) {
    if let Err(e) = store.save(std::path::Path::new(dir)) {
        eprintln!("cannot save summary store {dir}: {e}");
        exit(1);
    }
}

/// Drains a service, prints results (`--json` for the machine-readable
/// report), and returns the process exit code: nonzero when any job was
/// quarantined, failed, or never produced a result.
fn finish_service(svc: VettingService, args: &[String], expected: usize) -> i32 {
    let (report, results) = svc.drain();
    if let Some(dir) = flag_str(args, "--trace-dir") {
        match gdroid::serve::write_job_traces(&results, std::path::Path::new(dir)) {
            Ok(paths) => eprintln!("wrote {} modeled-time trace(s) under {dir}", paths.len()),
            Err(e) => {
                eprintln!("cannot write traces under {dir}: {e}");
                return 1;
            }
        }
    }
    let json = args.iter().any(|a| a == "--json");
    // Timing-independent stdout: one sorted `package report-hash` line per
    // completed job. Byte-comparable across cold and warm store runs.
    let digest = args.iter().any(|a| a == "--digest");
    let mut bad = 0usize;
    if json {
        let jobs: Vec<String> = results.iter().map(JobResult::to_json).collect();
        println!("{{\"report\":{},\"jobs\":[{}]}}", report.to_json(), jobs.join(","));
    }
    if digest {
        let mut lines: Vec<String> = results
            .iter()
            .filter_map(|r| {
                let outcome = r.outcome.as_ref()?;
                Some(format!("{} {:016x}", r.package, fnv1a(outcome.report.to_json().as_bytes())))
            })
            .collect();
        lines.sort();
        for line in lines {
            println!("{line}");
        }
    }
    for r in &results {
        match &r.status {
            JobStatus::Completed => {
                if !json && !digest {
                    let verdict = r
                        .outcome
                        .as_ref()
                        .map_or("?".to_owned(), |o| format!("{:?}", o.report.verdict));
                    let cache = match r.cache {
                        CacheDisposition::Miss => String::new(),
                        CacheDisposition::Hit => " [cache hit]".into(),
                        CacheDisposition::Incremental { resolved, reused } => {
                            format!(" [incremental: {resolved} re-solved, {reused} reused]")
                        }
                    };
                    let targeted = if r.outcome.as_ref().is_some_and(|o| o.targeted.is_some()) {
                        " [targeted]"
                    } else {
                        ""
                    };
                    println!(
                        "job {:>3} {:<22} {:<10} {}{}{}",
                        r.id,
                        r.package,
                        r.priority.as_str(),
                        verdict,
                        cache,
                        targeted
                    );
                }
            }
            JobStatus::Quarantined => {
                bad += 1;
                eprintln!("job {} {} QUARANTINED after {} attempts", r.id, r.package, r.attempts);
            }
            JobStatus::Failed(reason) => {
                bad += 1;
                eprintln!("job {} FAILED: {reason}", r.id);
            }
        }
    }
    if !json {
        eprintln!(
            "{} job(s): {} completed ({} cache hits, {} incremental), {} quarantined | \
             {} faults, {} retries | {:.2} apps/s",
            results.len(),
            report.counters.completed - report.counters.quarantined,
            report.cache.hits,
            report.counters.cache_incremental,
            report.counters.quarantined,
            report.counters.faults,
            report.counters.retries,
            report.apps_per_sec,
        );
        if report.counters.targeted_jobs > 0 {
            eprintln!(
                "targeted lane: {} job(s), mean sliced fraction {:.3}",
                report.counters.targeted_jobs, report.mean_sliced_fraction,
            );
        }
        if report.sumstore.hits + report.sumstore.insertions > 0 {
            eprintln!(
                "sumstore: {} hit(s), {} miss(es), {} inserted, {} reloc failure(s)",
                report.sumstore.hits,
                report.sumstore.misses,
                report.sumstore.insertions,
                report.sumstore.reloc_failures,
            );
        }
    }
    if results.len() != expected {
        eprintln!("expected {} results, got {}", expected, results.len());
        return 1;
    }
    i32::from(bad > 0)
}

/// Loads an app from a `.jil` path or generates one from a numeric seed.
fn load_app(arg: &str) -> App {
    if let Ok(seed) = arg.parse::<u64>() {
        return generate_app(0, seed, &GenConfig::small());
    }
    let text = std::fs::read_to_string(arg).unwrap_or_else(|e| {
        eprintln!("cannot read {arg}: {e}");
        exit(1)
    });
    let program = parse_program(&text).unwrap_or_else(|e| {
        eprintln!("parse error in {arg}: {e}");
        exit(1)
    });
    let errors = gdroid::ir::validate_program(&program);
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("{arg}: {e}");
        }
        eprintln!("{arg}: {} validation error(s)", errors.len());
        exit(1);
    }
    // A .jil file carries no manifest; every class that extends a
    // component base is treated as an exported component.
    let mut manifest = Manifest { package: arg.to_owned(), ..Default::default() };
    for kind in gdroid::apk::ComponentKind::ALL {
        let Some(base_sym) = program.interner.get(kind.base_class()) else { continue };
        let Some(base) = program.class_by_name(base_sym) else { continue };
        for class in program.subtree_of(base) {
            if class != base {
                manifest.components.push(gdroid::apk::Component {
                    class: program.classes[class].name,
                    kind,
                    exported: true,
                    intent_filters: vec![],
                });
            }
        }
    }
    App { name: arg.to_owned(), category: Category::Tools, seed: 0, program, manifest }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "gen" => {
            let Some(seed) = args.get(1).and_then(|s| s.parse::<u64>().ok()) else { usage() };
            let app = generate_app(0, seed, &GenConfig::small());
            let text = print_program(&app.program);
            match args.get(2) {
                Some(path) => {
                    std::fs::write(path, &text).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1)
                    });
                    eprintln!(
                        "wrote {} ({} methods, {} statements)",
                        path,
                        app.program.methods.len(),
                        app.program.total_statements()
                    );
                }
                None => print!("{text}"),
            }
        }
        "vet" => {
            let Some(target) = args.get(1) else { usage() };
            // The ladder rungs and CPU baselines keep their legacy
            // dispatch; the trait-backed kinds go through the engine
            // layer. `cpu` is the sequential reference engine; the old
            // multithreaded baseline is spelled `mtcpu`.
            enum VetEngine {
                Legacy(Engine),
                Kind(EngineKind),
            }
            let vet_engine = match args.iter().position(|a| a == "--engine") {
                Some(i) => match args.get(i + 1).map(String::as_str) {
                    Some("plain") => VetEngine::Legacy(Engine::Gpu(OptConfig::plain())),
                    Some("mat") => VetEngine::Legacy(Engine::Gpu(OptConfig::mat())),
                    Some("matgrp") => VetEngine::Legacy(Engine::Gpu(OptConfig::mat_grp())),
                    Some("gdroid") => VetEngine::Legacy(Engine::Gpu(OptConfig::gdroid())),
                    Some("mtcpu") => VetEngine::Legacy(Engine::MultithreadedCpu),
                    Some("amandroid") => VetEngine::Legacy(Engine::AmandroidCpu),
                    Some(s) => match EngineKind::parse(s) {
                        Some(kind) => VetEngine::Kind(kind),
                        None => usage(),
                    },
                    None => usage(),
                },
                None => VetEngine::Legacy(Engine::Gpu(OptConfig::gdroid())),
            };
            let exec = service_exec(&args);
            let vet_engine = match (exec, vet_engine) {
                (ExecMode::MultiLaunch, e) => e,
                (ExecMode::Persistent, VetEngine::Kind(kind)) => {
                    if !kind.caps().persistent {
                        eprintln!(
                            "engine {kind} does not support --exec persistent \
                             (see `gdroid engines`)"
                        );
                        exit(2);
                    }
                    VetEngine::Kind(kind)
                }
                (ExecMode::Persistent, VetEngine::Legacy(_)) => {
                    if args.iter().any(|a| a == "--engine") {
                        eprintln!(
                            "--exec persistent requires the worklist engine (see `gdroid engines`)"
                        );
                        exit(2);
                    }
                    // Default engine: route through the worklist engine
                    // kind, whose dispatch owns the exec-mode plumbing.
                    VetEngine::Kind(EngineKind::Worklist)
                }
            };
            let app = load_app(target);
            let trace_path = flag_str(&args, "--trace");
            let tracer =
                if trace_path.is_some() { Tracer::enabled_new() } else { Tracer::disabled() };
            let outcome = if let VetEngine::Kind(kind) = &vet_engine {
                let kind = *kind;
                let targeted = args.iter().any(|a| a == "--targeted");
                if targeted && !kind.caps().targeted {
                    eprintln!("engine {kind} does not support --targeted (see `gdroid engines`)");
                    exit(2);
                }
                let store_dir = flag_str(&args, "--sumstore");
                if store_dir.is_some() && !kind.caps().sumstore {
                    eprintln!("engine {kind} does not support --sumstore (see `gdroid engines`)");
                    exit(2);
                }
                let prep = prepare_vetting(app);
                let mut device =
                    gdroid::gpusim::Device::new(gdroid::gpusim::DeviceConfig::tesla_p40());
                if tracer.enabled() {
                    // Nest device events inside the idfg stage span, as
                    // the traced pipeline paths do.
                    device.set_tracer(tracer.clone());
                    let prep_ns = prep.prep_timing.envgen_ns + prep.prep_timing.callgraph_ns;
                    device.advance_clock(prep_ns.round() as u64);
                }
                let run = match store_dir {
                    Some(dir) => {
                        let store = open_sumstore(dir);
                        let (run, used) = if targeted {
                            execute_vetting_engine_targeted_on_device_with_store_mode(
                                &prep,
                                &mut device,
                                kind,
                                &store,
                                exec,
                            )
                        } else {
                            execute_vetting_engine_on_device_with_store_mode(
                                &prep,
                                &mut device,
                                kind,
                                &store,
                                exec,
                            )
                        }
                        .expect("a fresh device has no fault plan");
                        save_sumstore(&store, dir);
                        eprintln!("sumstore: {} hit(s), {} miss(es)", used.hits, used.misses);
                        run
                    }
                    None if targeted => execute_vetting_engine_targeted_on_device_mode(
                        &prep,
                        &mut device,
                        kind,
                        exec,
                    )
                    .expect("a fresh device has no fault plan"),
                    None => execute_vetting_engine_on_device_mode(&prep, &mut device, kind, exec)
                        .expect("a fresh device has no fault plan"),
                };
                if tracer.enabled() {
                    trace_stage_spans(&tracer, &run.outcome.timing, 0, 0);
                }
                run.outcome
            } else if args.iter().any(|a| a == "--targeted") {
                let VetEngine::Legacy(engine) = vet_engine else { unreachable!() };
                let Engine::Gpu(opts) = engine else {
                    eprintln!("--targeted requires a GPU engine (the sliced worklist)");
                    exit(2);
                };
                let prep = prepare_vetting(app);
                match flag_str(&args, "--sumstore") {
                    Some(dir) => {
                        let store = open_sumstore(dir);
                        let mut device =
                            gdroid::gpusim::Device::new(gdroid::gpusim::DeviceConfig::tesla_p40());
                        let (run, used) = execute_vetting_targeted_on_device_with_store(
                            &prep,
                            &mut device,
                            opts,
                            &store,
                        )
                        .expect("a fresh device has no fault plan");
                        save_sumstore(&store, dir);
                        eprintln!("sumstore: {} hit(s), {} miss(es)", used.hits, used.misses);
                        if tracer.enabled() {
                            trace_stage_spans(&tracer, &run.outcome.timing, 0, 0);
                        }
                        run.outcome
                    }
                    None if tracer.enabled() => {
                        execute_vetting_targeted_traced(&prep, opts, &tracer).outcome
                    }
                    None => execute_vetting_targeted(&prep, opts).outcome,
                }
            } else {
                let VetEngine::Legacy(engine) = vet_engine else { unreachable!() };
                match flag_str(&args, "--sumstore") {
                    Some(dir) => {
                        let store = open_sumstore(dir);
                        let prep = prepare_vetting(app);
                        let (run, used) = match engine {
                            Engine::Gpu(opts) if tracer.enabled() => {
                                execute_vetting_gpu_traced_with_store(&prep, opts, &store, &tracer)
                            }
                            engine => {
                                let (run, used) =
                                    execute_vetting_full_with_store(&prep, engine, &store);
                                if tracer.enabled() {
                                    // CPU engines trace stage spans only.
                                    trace_stage_spans(&tracer, &run.outcome.timing, 0, 0);
                                }
                                (run, used)
                            }
                        };
                        save_sumstore(&store, dir);
                        eprintln!("sumstore: {} hit(s), {} miss(es)", used.hits, used.misses);
                        run.outcome
                    }
                    None if tracer.enabled() => {
                        let prep = prepare_vetting(app);
                        match engine {
                            Engine::Gpu(opts) => {
                                execute_vetting_gpu_traced(&prep, opts, &tracer).outcome
                            }
                            engine => {
                                let outcome = execute_vetting(&prep, engine);
                                trace_stage_spans(&tracer, &outcome.timing, 0, 0);
                                outcome
                            }
                        }
                    }
                    None => vet_app(app, engine),
                }
            };
            if let Some(path) = trace_path {
                std::fs::write(path, tracer.to_chrome_json()).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    exit(1)
                });
                eprint!("{}", tracer.summary(10));
                eprintln!("wrote {path}");
            }
            if args.iter().any(|a| a == "--json") {
                println!("{}", outcome.to_json());
            } else {
                print!("{}", outcome.report.render());
                println!(
                    "IDFG {:.3} ms | total {:.3} ms | {} node processings",
                    outcome.timing.idfg_ns / 1e6,
                    outcome.timing.total_ns() / 1e6,
                    outcome.telemetry.nodes_processed
                );
                if let Some(t) = &outcome.targeted {
                    println!(
                        "targeted: {} of {} reachable methods analyzed ({:.1}% sliced, \
                         {} sink methods, {} partial roots)",
                        t.slice_methods,
                        t.total_reachable,
                        100.0 * t.sliced_fraction,
                        t.sink_methods,
                        t.partial_roots,
                    );
                }
            }
        }
        "engines" => {
            println!(
                "{:<10} {:<9} {:<9} {:<9} {:<11} note",
                "engine", "sumstore", "targeted", "batching", "persistent"
            );
            let mark = |b: bool| if b { "yes" } else { "no" };
            for kind in EngineKind::ALL {
                let caps = kind.caps();
                println!(
                    "{:<10} {:<9} {:<9} {:<9} {:<11} {}",
                    kind.as_str(),
                    mark(caps.sumstore),
                    mark(caps.targeted),
                    mark(caps.batching),
                    mark(caps.persistent),
                    caps.note,
                );
            }
        }
        "lint" => {
            let Some(target) = args.get(1) else { usage() };
            let app = load_app(target);
            // The sink-reachability pass needs the call graph and the
            // backward slicer, which live above gdroid-ir: compute the
            // findings here and hand them to the pass framework.
            let findings = sink_reachability_findings(&app.program);
            let diags = gdroid::ir::LintRunner::default_passes()
                .with_pass(gdroid::ir::SinkReachability::new(findings))
                .run(&app.program);
            for d in &diags {
                println!("{d}");
            }
            let errors = diags.iter().filter(|d| d.severity == gdroid::ir::Severity::Error).count();
            let warnings = diags.len() - errors;
            println!(
                "{}: {} error(s), {} warning(s) over {} method(s)",
                app.name,
                errors,
                warnings,
                app.program.methods.len()
            );
            if errors > 0 {
                exit(1);
            }
        }
        "stats" => {
            let Some(target) = args.get(1) else { usage() };
            let mut app = load_app(target);
            let stats = AppStats::of(&app);
            println!("app:              {}", app.name);
            println!("classes:          {}", stats.app_classes);
            println!("methods:          {}", stats.methods);
            println!("statements:       {}", stats.cfg_nodes);
            println!("variables:        {} ({} reference)", stats.variables, stats.ref_variables);
            println!("allocation sites: {}", stats.allocation_sites);
            println!("call sites:       {}", stats.call_sites);
            println!("branches:         {} ({} back edges)", stats.branches, stats.back_edges);
            let (envs, cg) = prepare_app(&mut app);
            let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
            let analysis = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);
            println!("reachable:        {} methods", analysis.spaces.len());
            println!("facts at fixpoint: {}", analysis.total_facts());
            println!("max worklist:     {}", analysis.telemetry.max_worklist);
        }
        "dot" => {
            let Some(target) = args.get(1) else { usage() };
            let mut app = load_app(target);
            let (envs, cg) = prepare_app(&mut app);
            let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
            let dot = gdroid::icfg::callgraph_to_dot(&app.program, &cg, &roots);
            match args.get(2) {
                Some(path) => {
                    std::fs::write(path, &dot).unwrap_or_else(|e| {
                        eprintln!("cannot write {path}: {e}");
                        exit(1)
                    });
                    eprintln!("wrote {path}");
                }
                None => print!("{dot}"),
            }
        }
        "assess" => {
            let Some(target) = args.get(1) else { usage() };
            let app = load_app(target);
            let assessment = gdroid::vetting::assess_app(app);
            if args.iter().any(|a| a == "--json") {
                println!("{}", assessment.to_json());
            } else {
                print!("{}", assessment.render());
            }
        }
        "serve" => {
            let Some(apps) = flag_value(&args, "--apps") else { usage() };
            let workers = flag_value(&args, "--workers").unwrap_or(2);
            let devices = flag_value(&args, "--devices").unwrap_or(2);
            let fault_plan = args.iter().position(|a| a == "--faults").map(|i| {
                let spec = args.get(i + 1).unwrap_or_else(|| usage());
                let (p, b) = spec.split_once(':').unwrap_or_else(|| usage());
                gdroid::gpusim::FaultPlan {
                    period: p.parse().unwrap_or_else(|_| usage()),
                    budget: b.parse().unwrap_or_else(|_| usage()),
                }
            });
            let store_dir = flag_str(&args, "--sumstore");
            let sumstore = store_dir.map(|dir| Arc::new(open_sumstore(dir)));
            let svc = VettingService::start(ServiceConfig {
                prep_workers: workers,
                devices,
                fault_plan,
                sumstore: sumstore.clone(),
                coresident: flag_value(&args, "--coresident").unwrap_or(1),
                engine: service_engine(&args),
                exec: service_exec(&args),
                ..ServiceConfig::default()
            });
            let targeted_lane = args.iter().any(|a| a == "--targeted-lane");
            for i in 0..apps {
                let source = JobSource::Seed {
                    index: i,
                    seed: gdroid::apk::PAPER_MASTER_SEED ^ (i as u64),
                    config: Box::new(GenConfig::small()),
                };
                // Corpus-style submissions with a spread of priorities;
                // with --targeted-lane, every other job takes the
                // demand-driven fast lane instead.
                let result = if targeted_lane && i % 2 == 1 {
                    svc.submit_targeted(source)
                } else {
                    svc.submit(Priority::ALL[i % Priority::ALL.len()], source)
                };
                result.unwrap_or_else(|e| {
                    eprintln!("submit failed: {e}");
                    exit(1)
                });
            }
            let code = finish_service(svc, &args, apps);
            if let (Some(dir), Some(store)) = (store_dir, &sumstore) {
                save_sumstore(store, dir);
            }
            exit(code);
        }
        "batch" => {
            let Some(dir) = args.get(1) else { usage() };
            let workers = flag_value(&args, "--workers").unwrap_or(2);
            let devices = flag_value(&args, "--devices").unwrap_or(2);
            let mut bundles: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
                .unwrap_or_else(|e| {
                    eprintln!("cannot read {dir}: {e}");
                    exit(1)
                })
                .filter_map(|entry| {
                    let path = entry.ok()?.path();
                    path.join("app.jil").exists().then_some(path)
                })
                .collect();
            bundles.sort();
            if bundles.is_empty() {
                eprintln!("no bundles (dirs containing app.jil) under {dir}");
                exit(1);
            }
            let n = bundles.len();
            let store_dir = flag_str(&args, "--sumstore");
            let sumstore = store_dir.map(|dir| Arc::new(open_sumstore(dir)));
            let svc = VettingService::start(ServiceConfig {
                prep_workers: workers,
                devices,
                sumstore: sumstore.clone(),
                coresident: flag_value(&args, "--coresident").unwrap_or(1),
                engine: service_engine(&args),
                exec: service_exec(&args),
                ..ServiceConfig::default()
            });
            for path in bundles {
                svc.submit(Priority::Standard, JobSource::Bundle(path)).unwrap_or_else(|e| {
                    eprintln!("submit failed: {e}");
                    exit(1)
                });
            }
            let code = finish_service(svc, &args, n);
            if let (Some(dir), Some(store)) = (store_dir, &sumstore) {
                save_sumstore(store, dir);
            }
            exit(code);
        }
        "export" => {
            let (Some(n), Some(dir)) =
                (args.get(1).and_then(|s| s.parse::<usize>().ok()), args.get(2))
            else {
                usage()
            };
            let corpus = Corpus::paper_sized(n);
            match gdroid::apk::export_corpus(&corpus, n, std::path::Path::new(dir)) {
                Ok(dirs) => eprintln!("wrote {} bundle(s) under {dir}", dirs.len()),
                Err(e) => {
                    eprintln!("export failed: {e}");
                    exit(1);
                }
            }
        }
        "sumstore" => {
            let (Some(action), Some(dir)) = (args.get(1), args.get(2)) else { usage() };
            match action.as_str() {
                "stats" => {
                    let store = open_sumstore(dir);
                    let file =
                        std::path::Path::new(dir).join(gdroid::sumstore::persist::STORE_FILE);
                    let bytes = std::fs::metadata(&file).map(|m| m.len()).unwrap_or(0);
                    println!("store:   {}", file.display());
                    println!("entries: {}", store.len());
                    println!("bytes:   {bytes}");
                }
                "clear" => {
                    save_sumstore(&SumStore::new(), dir);
                    eprintln!("cleared summary store under {dir}");
                }
                _ => usage(),
            }
        }
        "campaign" => {
            let Some(apps) = flag_value(&args, "--apps") else { usage() };
            let shards = flag_value(&args, "--shards").unwrap_or(1);
            let journal_dir = flag_str(&args, "--journal-dir").unwrap_or("campaign.journal");
            if args.iter().any(|a| a == "--fresh") {
                std::fs::remove_dir_all(journal_dir).ok();
            }
            let mut gen = GenConfig::small();
            if let Some(scale) = flag_str(&args, "--scale") {
                gen.scale = scale.parse().unwrap_or_else(|_| usage());
            }
            let master_seed = match flag_str(&args, "--seed") {
                Some(s) => s
                    .strip_prefix("0x")
                    .map_or_else(|| s.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
                    .unwrap_or_else(|| usage()),
                None => gdroid::apk::PAPER_MASTER_SEED,
            };
            // Snapshot mode: `--snapshot` turns on journal rotation at the
            // default segment size; `--rotate N` picks the size (and
            // implies snapshot mode).
            let rotate_records = match flag_value(&args, "--rotate") {
                Some(n) => Some(n.max(1)),
                None => args.iter().any(|a| a == "--snapshot").then_some(256),
            };
            let (update_ppm, update_salt) = match flag_str(&args, "--updates") {
                None => (0, 0),
                Some(spec) => {
                    let (ppm, salt) = match spec.split_once(':') {
                        Some((p, s)) => (p.parse().ok(), s.parse().ok()),
                        None => (spec.parse().ok(), Some(0)),
                    };
                    match (ppm, salt) {
                        (Some(p), Some(s)) => (p, s),
                        _ => usage(),
                    }
                }
            };
            let config = gdroid::campaign::CampaignConfig {
                apps,
                shards,
                master_seed,
                gen,
                journal_dir: journal_dir.into(),
                prep_workers: flag_value(&args, "--workers").unwrap_or(2),
                devices: flag_value(&args, "--devices").unwrap_or(2),
                coresident: flag_value(&args, "--coresident").unwrap_or(1),
                targeted: args.iter().any(|a| a == "--targeted"),
                sumstore: args.iter().any(|a| a == "--sumstore"),
                engine: service_engine(&args),
                exec: service_exec(&args),
                trace_dir: flag_str(&args, "--trace-dir").map(Into::into),
                rotate_records,
                shared_stores: args.iter().any(|a| a == "--shared-store"),
                delta_base: flag_str(&args, "--delta").map(Into::into),
                update_ppm,
                update_salt,
            };
            let started = std::time::Instant::now();
            let outcome = gdroid::campaign::run_campaign(&config).unwrap_or_else(|e| {
                eprintln!("campaign failed: {e}");
                exit(1)
            });
            let fleet = &outcome.fleet;
            if let Some(path) = flag_str(&args, "--out") {
                std::fs::write(path, fleet.to_json() + "\n").unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    exit(1)
                });
                eprintln!("wrote fleet report to {path}");
            }
            if let Some(path) = flag_str(&args, "--verdicts") {
                // Rotated journals fold incrementally, so the in-memory
                // report only holds the unsealed tails; per-app verdict
                // lines need the one monolithic re-read.
                let lines = if config.rotate_records.is_some() {
                    let mut shard_records = Vec::with_capacity(config.shards);
                    for shard in 0..config.shards {
                        let (_, records) = gdroid::campaign::read_shard_records(
                            std::path::Path::new(journal_dir),
                            shard,
                        )
                        .unwrap_or_else(|e| {
                            eprintln!("cannot re-read journals: {e}");
                            exit(1)
                        });
                        shard_records.push(records);
                    }
                    gdroid::campaign::FleetReport::from_records(
                        config.master_seed,
                        config.apps,
                        gdroid::campaign::config_digest(&config),
                        shard_records,
                    )
                    .verdict_lines()
                } else {
                    fleet.verdict_lines()
                };
                std::fs::write(path, lines).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    exit(1)
                });
                eprintln!("wrote verdict lines to {path}");
            }
            if args.iter().any(|a| a == "--json") {
                // One JSON document: a delta campaign splices its delta
                // report into the fleet object rather than printing a
                // second line.
                match &outcome.delta {
                    Some(delta) => {
                        let fleet_json = fleet.to_json();
                        let body = fleet_json.strip_suffix('}').unwrap_or(&fleet_json);
                        println!("{body},\"delta\":{}}}", delta.to_json());
                    }
                    None => println!("{}", fleet.to_json()),
                }
            } else {
                print!("{}", fleet.render());
            }
            // Live (wall-clock) side — informational only, never part of
            // the canonical report: it varies with resume and scheduling.
            let wall = started.elapsed().as_secs_f64();
            eprintln!(
                "this run: {} executed, {} resumed from journal, {} copied from delta base | \
                 wall {:.2} s ({:.1} apps/s live) | {} cache hits, {} sumstore hits, \
                 {} device faults",
                outcome.executed,
                outcome.resumed,
                outcome.copied,
                wall,
                if wall > 0.0 { outcome.executed as f64 / wall } else { 0.0 },
                outcome.service.cache.hits,
                outcome.service.sumstore.hits,
                outcome.service.device_faults,
            );
            if let Some(delta) = &outcome.delta {
                eprintln!(
                    "delta vs base: {} copied, {} re-vetted, {} added, {} verdict flip(s)",
                    delta.copied, delta.revetted, delta.added, delta.verdict_flips
                );
            }
            if fleet.quarantined + fleet.failed > 0 {
                eprintln!(
                    "{} quarantined, {} failed app(s) — see journals under {journal_dir}",
                    fleet.quarantined, fleet.failed
                );
                exit(1);
            }
            if fleet.tallied_apps() != apps {
                eprintln!("expected {} apps, journals tally {}", apps, fleet.tallied_apps());
                exit(1);
            }
        }
        "corpus" => {
            let Some(n) = args.get(1).and_then(|s| s.parse::<usize>().ok()) else { usage() };
            let corpus = Corpus::paper_sized(n);
            let stats: Vec<AppStats> = corpus.iter().map(|a| AppStats::of(&a)).collect();
            let agg = CorpusStats::aggregate(&stats);
            println!("apps:            {}", agg.apps);
            println!("mean CFG nodes:  {:.0}", agg.mean_cfg_nodes);
            println!("mean methods:    {:.0}", agg.mean_methods);
            println!("max CFG nodes:   {}", agg.max_cfg_nodes);
            println!("mean alloc sites: {:.0}", agg.mean_alloc_sites);
            println!("mean call sites: {:.0}", agg.mean_call_sites);
            println!("mean back edges: {:.0}", agg.mean_back_edges);
        }
        _ => usage(),
    }
}
