//! Incremental re-analysis across an app update — the "apps update weekly
//! or even daily" scenario from the paper's introduction.
//!
//! Simulates a version bump that edits a handful of methods, then compares
//! a from-scratch analysis against the summary-driven incremental one.
//!
//! ```text
//! cargo run --release --example incremental_update [seed]
//! ```

use gdroid::analysis::{analyze_app, analyze_app_incremental, StoreKind};
use gdroid::apk::{generate_app, GenConfig};
use gdroid::icfg::{prepare_app, CallGraph};
use gdroid::ir::{Expr, Lhs, MethodId, Stmt, StmtIdx};
use std::time::Instant;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(31);
    let mut app = generate_app(0, seed, &GenConfig::default());
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();

    let t0 = Instant::now();
    let v1 = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);
    let full_v1 = t0.elapsed();
    println!(
        "v1: {} methods analyzed in {:.1} ms (host wall-clock)",
        v1.facts.len(),
        full_v1.as_secs_f64() * 1e3
    );

    // --- simulate the update: edit 3 methods ---------------------------
    let mut updated = app.program.clone();
    let victims: Vec<MethodId> = v1.schedule.iter().flatten().copied().take(3).collect();
    for &mid in &victims {
        let method = &mut updated.methods[mid];
        if let Some((ref_var, decl)) =
            method.vars.iter_enumerated().find(|(_, d)| d.ty.is_reference())
        {
            let ty = decl.ty;
            let last = StmtIdx::new(method.body.len() - 1);
            let ret = method.body[last].clone();
            method.body[last] = Stmt::Assign { lhs: Lhs::Var(ref_var), rhs: Expr::New { ty } };
            method.body.push(ret);
        }
    }
    updated.rebuild_lookups();
    let cg2 = CallGraph::build(&updated);

    // --- full vs incremental re-analysis --------------------------------
    let t0 = Instant::now();
    let v2_full = analyze_app(&updated, &cg2, &roots, StoreKind::Matrix);
    let full_v2 = t0.elapsed();

    let t0 = Instant::now();
    let (v2_incr, stats) = analyze_app_incremental(&updated, &cg2, &roots, &v1, &victims);
    let incr_v2 = t0.elapsed();

    assert_eq!(v2_full.summaries, v2_incr.summaries, "incremental must match full");
    println!(
        "v2 update touching {} methods:\n  full re-analysis : {:8.1} ms, {} methods solved\n  \
         incremental      : {:8.1} ms, {} solved + {} reused",
        victims.len(),
        full_v2.as_secs_f64() * 1e3,
        v2_full.facts.len(),
        incr_v2.as_secs_f64() * 1e3,
        stats.resolved,
        stats.reused,
    );
    println!(
        "  work avoided     : {:.1}% of methods reused, results bit-identical",
        100.0 * stats.reused as f64 / (stats.reused + stats.resolved).max(1) as f64
    );
}
