//! Multi-GPU scaling — the paper's future-work extension (§VIII).
//!
//! Runs one app's IDFG construction on 1, 2, 4, and 8 simulated TESLA
//! P40s (NVLink interconnect) and prints the scaling curve, the summary
//! all-gather overhead, and the per-layer load balance.
//!
//! ```text
//! cargo run --release --example multi_gpu_scaling [seed]
//! ```

use gdroid::apk::{generate_app, GenConfig};
use gdroid::core::{gpu_analyze_app_multi, MultiGpuConfig, OptConfig};
use gdroid::icfg::prepare_app;
use gdroid::ir::MethodId;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(19);
    let mut app = generate_app(0, seed, &GenConfig::default());
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
    println!(
        "app {}: {} statements, {} components\n",
        app.name,
        app.program.total_statements(),
        envs.len()
    );

    let mut baseline = None;
    println!("GPUs   total(ms)  kernel(ms)  exchange(ms)  balance  speedup");
    for n in [1usize, 2, 4, 8] {
        let run = gpu_analyze_app_multi(
            &app.program,
            &cg,
            &roots,
            MultiGpuConfig::nvlink(n),
            OptConfig::gdroid(),
        )
        .expect("valid multi-GPU config");
        let total = run.stats.total_ns / 1e6;
        let speedup = match baseline {
            None => {
                baseline = Some(run.stats.total_ns);
                1.0
            }
            Some(b) => b / run.stats.total_ns,
        };
        println!(
            "{n:4}   {total:9.3}  {:10.3}  {:12.3}  {:7.2}  {speedup:6.2}x",
            run.stats.kernel_ns / 1e6,
            run.stats.exchange_ns / 1e6,
            run.stats.balance,
        );
    }
    println!(
        "\nNote: per-app scaling saturates when layers have fewer methods than\n\
         the fleet has block slots — the paper's intended deployment is\n\
         corpus-level parallelism (different apps on different GPUs), which\n\
         scales linearly by construction."
    );
}
