//! Optimization ablation: one app through the whole GDroid ladder —
//! plain (Alg. 2), MAT, MAT+GRP, full GDroid (Alg. 3) — plus both CPU
//! baselines, printing a side-by-side comparison of time and the four
//! bottleneck metrics the paper identifies.
//!
//! ```text
//! cargo run --release --example optimization_ablation [seed]
//! ```

use gdroid::analysis::{analyze_app, CpuCostModel, StoreKind};
use gdroid::apk::{generate_app, GenConfig};
use gdroid::core::{gpu_analyze_app, OptConfig};
use gdroid::gpusim::DeviceConfig;
use gdroid::icfg::prepare_app;
use gdroid::ir::MethodId;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let mut app = generate_app(0, seed, &GenConfig::default());
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();

    println!(
        "app {}: {} statements, {} reachable methods\n",
        app.name,
        app.program.total_statements(),
        cg.reachable_from(&roots).len()
    );

    // CPU baselines.
    let cpu = analyze_app(&app.program, &cg, &roots, StoreKind::Set);
    let scala_ms = CpuCostModel::amandroid().sequential_ns(&cpu) / 1e6;
    let mt_ms = CpuCostModel::multithreaded_c().parallel_ns(&cpu) / 1e6;
    println!("{:<22} {:>12.3} ms", "Amandroid (Scala, 1T)", scala_ms);
    println!("{:<22} {:>12.3} ms", "CPU multithreaded C", mt_ms);

    // GPU ladder.
    let mut plain_ns = None;
    for opts in OptConfig::ladder() {
        let run = gpu_analyze_app(&app.program, &cg, &roots, DeviceConfig::tesla_p40(), opts);
        let ms = run.stats.total_ns / 1e6;
        let speedup = match plain_ns {
            None => {
                plain_ns = Some(run.stats.total_ns);
                String::from("(baseline)")
            }
            Some(p) => format!("{:6.1}x vs plain", p / run.stats.total_ns),
        };
        println!(
            "GPU {:<18} {:>12.3} ms  {}\n    divergence {:.2} passes/warp | coalescing {:.0}% | \
             device mallocs {} | slot util {:.0}%",
            opts.to_string(),
            ms,
            speedup,
            run.stats.divergence_factor,
            run.stats.coalescing * 100.0,
            run.stats.device_allocations,
            run.stats.utilization * 100.0,
        );
        // The IDFG is identical regardless of configuration.
        assert_eq!(run.summaries, cpu.summaries, "configs must agree on the IDFG");
    }
    println!("\nall configurations produced identical IDFGs (checked).");
}
