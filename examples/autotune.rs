//! Launch-parameter auto-tuning — the paper's "future work" knob (§V says
//! 4–5 blocks/SM were found empirically by manual tuning).
//!
//! ```text
//! cargo run --release --example autotune [seed]
//! ```

use gdroid::apk::{generate_app, GenConfig};
use gdroid::core::{tune_blocks_per_sm, OptConfig};
use gdroid::gpusim::DeviceConfig;
use gdroid::icfg::prepare_app;
use gdroid::ir::MethodId;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(23);
    let mut app = generate_app(0, seed, &GenConfig::default());
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();

    for opts in [OptConfig::plain(), OptConfig::gdroid()] {
        let result =
            tune_blocks_per_sm(&app.program, &cg, &roots, DeviceConfig::tesla_p40(), opts, 8);
        println!("== {opts} ==");
        for (i, ns) in result.candidate_ns.iter().enumerate() {
            let marker = if i + 1 == result.blocks_per_sm { "  <- best" } else { "" };
            println!("  {} blocks/SM: {:9.3} ms{marker}", i + 1, ns / 1e6);
        }
        println!(
            "  tuned: {} blocks/SM (paper's manual pick: 4-5); worst/best spread {:.2}x\n",
            result.blocks_per_sm, result.spread
        );
    }
}
