//! Quickstart: generate one synthetic Android app, vet it on the simulated
//! GPU with all three GDroid optimizations, and print the verdict.
//!
//! ```text
//! cargo run --release --example quickstart [seed]
//! ```

use gdroid::apk::{generate_app, AppStats, GenConfig};
use gdroid::core::OptConfig;
use gdroid::vetting::{vet_app, Engine};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);

    // 1. Generate an app (a real pipeline would decode an APK here; see
    //    DESIGN.md for the substitution rationale).
    let app = generate_app(0, seed, &GenConfig::small());
    let stats = AppStats::of(&app);
    println!("app {} ({:?})", app.name, app.category);
    println!(
        "  {} classes, {} methods, {} statements, {} components",
        stats.app_classes,
        stats.methods,
        stats.cfg_nodes,
        app.manifest.components.len()
    );

    // 2. Vet it end to end: environment synthesis → call graph → IDFG
    //    construction on the simulated TESLA P40 → taint plugin.
    let outcome = vet_app(app, Engine::Gpu(OptConfig::gdroid()));

    // 3. Report.
    println!("\n{}", outcome.report.render());
    println!("timing (modeled):");
    println!("  environment gen : {:9.3} ms", outcome.timing.envgen_ns / 1e6);
    println!("  frontend + CG   : {:9.3} ms", outcome.timing.callgraph_ns / 1e6);
    println!("  IDFG (GPU)      : {:9.3} ms", outcome.timing.idfg_ns / 1e6);
    println!("  taint plugin    : {:9.3} ms", outcome.timing.taint_ns / 1e6);
    println!("  total           : {:9.3} ms", outcome.timing.total_ns() / 1e6);
    println!(
        "\nworklist: {} node processings over {} rounds (max width {})",
        outcome.telemetry.nodes_processed, outcome.telemetry.rounds, outcome.telemetry.max_worklist
    );
}
