//! Corpus sweep: vet a slice of the evaluation corpus end to end and print
//! a vetting summary — the "app-store screening" scenario from the paper's
//! introduction (scalable vetting of incoming apps).
//!
//! ```text
//! cargo run --release --example corpus_sweep [n_apps]
//! ```

use gdroid::apk::Corpus;
use gdroid::core::OptConfig;
use gdroid::vetting::{vet_app, Engine, Verdict};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let corpus = Corpus::paper_sized(n);

    let mut suspicious = 0usize;
    let mut total_leaks = 0usize;
    let mut gpu_ms_total = 0.0f64;

    println!("screening {n} apps from the evaluation corpus…\n");
    for i in 0..n {
        let app = corpus.generate(i);
        let name = app.name.clone();
        let outcome = vet_app(app, Engine::Gpu(OptConfig::gdroid()));
        let verdict = outcome.report.verdict;
        gpu_ms_total += outcome.timing.idfg_ns / 1e6;
        if verdict == Verdict::Suspicious {
            suspicious += 1;
            total_leaks += outcome.report.leaks.len();
            println!("  [!] {name}: {} leak(s)", outcome.report.leaks.len());
            for leak in outcome.report.leaks.iter().take(3) {
                let sources: Vec<&str> = leak
                    .sources
                    .iter()
                    .map(|s| outcome.report.source_names[usize::from(s.0)].as_str())
                    .collect();
                println!("      {} <- {}", leak.sink, sources.join(", "));
            }
        } else {
            println!("  [ok] {name}");
        }
    }

    println!(
        "\n{suspicious}/{n} apps flagged, {total_leaks} flows total; \
         GPU IDFG time {gpu_ms_total:.1} ms simulated ({:.1} ms/app)",
        gpu_ms_total / n as f64
    );
}
