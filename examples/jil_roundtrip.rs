//! IR tooling demo: print a generated app in the `.jil` textual format,
//! parse it back, validate it, and analyze the re-parsed program —
//! demonstrating that the on-disk format is a faithful interchange format.
//!
//! ```text
//! cargo run --release --example jil_roundtrip [seed]
//! ```

use gdroid::analysis::{analyze_app, StoreKind};
use gdroid::apk::{generate_app, GenConfig};
use gdroid::icfg::prepare_app;
use gdroid::ir::text::{parse_program, print_program};
use gdroid::ir::{validate_program, MethodId};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let mut app = generate_app(0, seed, &GenConfig::tiny());
    let (envs, cg) = prepare_app(&mut app);

    // Serialize to .jil text.
    let text = print_program(&app.program);
    let lines = text.lines().count();
    println!(
        "printed {} classes / {} methods as {lines} lines of .jil",
        app.program.classes.len(),
        app.program.methods.len()
    );

    // A taste of the format.
    println!("--- first 24 lines ---");
    for line in text.lines().take(24) {
        println!("{line}");
    }
    println!("----------------------\n");

    // Parse back and validate.
    let reparsed = parse_program(&text).expect("reparse");
    let errors = validate_program(&reparsed);
    assert!(errors.is_empty(), "reparsed program invalid: {errors:?}");
    assert_eq!(reparsed.methods.len(), app.program.methods.len());
    // Symbol numbering differs after reparse; the canonical printed form
    // must be a fixed point.
    assert_eq!(print_program(&reparsed), text, "printed form is not a fixed point");
    println!("reparsed program is structurally identical ({} methods)", reparsed.methods.len());

    // The reparsed program analyzes to the same fixed point.
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
    let original = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);
    let cg2 = gdroid::icfg::CallGraph::build(&reparsed);
    let reparsed_run = analyze_app(&reparsed, &cg2, &roots, StoreKind::Matrix);
    assert_eq!(original.total_facts(), reparsed_run.total_facts());
    println!(
        "analysis of the reparsed program matches: {} facts at fixed point",
        original.total_facts()
    );
}
