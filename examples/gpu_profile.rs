//! GPU profile: a deep dive into where one app's simulated kernel time
//! goes — transfer pipeline, per-launch utilization, divergence — the view
//! a CUDA profiler would give on the real GDroid.
//!
//! ```text
//! cargo run --release --example gpu_profile [seed]
//! ```

use gdroid::apk::{generate_app, GenConfig};
use gdroid::core::{gpu_analyze_app, plan_layout, run_method_block, OptConfig};
use gdroid::gpusim::{Device, DeviceConfig};
use gdroid::icfg::prepare_app;
use gdroid::ir::MethodId;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(11);
    let mut app = generate_app(0, seed, &GenConfig::default());
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();

    let device = DeviceConfig::tesla_p40();
    println!(
        "device: {} SMs x {} cores @ {:.2} GHz, {} GiB, warp {}, {} blocks/SM\n",
        device.sm_count,
        device.cores_per_sm,
        device.clock_ghz,
        device.global_mem_bytes >> 30,
        device.warp_size,
        device.blocks_per_sm
    );

    for opts in [OptConfig::plain(), OptConfig::gdroid()] {
        let run = gpu_analyze_app(&app.program, &cg, &roots, device, opts);
        let s = &run.stats;
        println!("== {} ==", opts);
        println!("  end-to-end        {:10.3} ms", s.total_ns / 1e6);
        println!("  kernel engine     {:10.3} ms", s.kernel_ns / 1e6);
        println!(
            "  copy engine       {:10.3} ms ({:.3} ms exposed after dual-buffering)",
            s.copy_ns / 1e6,
            s.exposed_copy_ns / 1e6
        );
        println!("  launches          {:10}", s.launches);
        println!("  blocks            {:10}", s.blocks);
        println!("  slot utilization  {:9.1}%", s.utilization * 100.0);
        println!("  divergence        {:10.2} passes/warp", s.divergence_factor);
        println!("  coalescing        {:9.1}%", s.coalescing * 100.0);
        println!("  device mallocs    {:10}", s.device_allocations);
        println!(
            "  worklist rounds   {:10}   sizes <=32/33-64/>64: {:.1}%/{:.1}%/{:.1}%",
            s.profile.total_rounds,
            s.profile.le_32 * 100.0,
            s.profile.le_64 * 100.0,
            s.profile.gt_64 * 100.0
        );
        println!();
    }

    // One concrete launch's occupancy timeline: the biggest SBDA layer,
    // one block per method, GDroid configuration.
    use gdroid::analysis::{
        merge_site_summaries, FactStore, Geometry, MatrixStore, MethodSpace, SummaryMap,
    };
    use gdroid::icfg::{CallLayers, Cfg};
    use std::collections::HashMap;
    let layers = CallLayers::compute(&cg, &roots);
    let widest: Vec<MethodId> =
        layers.layers.iter().max_by_key(|l| l.len()).cloned().unwrap_or_default();
    let spaces: HashMap<MethodId, MethodSpace> =
        widest.iter().map(|&m| (m, MethodSpace::build(&app.program, m))).collect();
    let cfgs: HashMap<MethodId, Cfg> =
        widest.iter().map(|&m| (m, Cfg::build(&app.program.methods[m]))).collect();
    let mut sim = Device::new(device);
    let program = &app.program;
    let layout = plan_layout(program, &mut sim, &spaces, &cfgs, &widest, OptConfig::gdroid());
    let summaries = SummaryMap::new();
    let sites: Vec<_> =
        widest.iter().map(|&m| (m, merge_site_summaries(program, m, &summaries, &cg))).collect();
    let blocks: Vec<gdroid::gpusim::BlockFn<'_>> = sites
        .iter()
        .map(|(m, site)| {
            let m = *m;
            let space = &spaces[&m];
            let cfg = &cfgs[&m];
            let ml = &layout.methods[&m];
            Box::new(move |ctx: &mut gdroid::gpusim::BlockCtx<'_>| {
                let mut store = MatrixStore::new(Geometry::of(space), cfg.len());
                store.seed(cfg.entry() as usize, &space.entry_facts(&program.methods[m]));
                run_method_block(
                    ctx,
                    &program.methods[m],
                    space,
                    cfg,
                    ml,
                    site,
                    OptConfig::gdroid(),
                    &mut store,
                );
            }) as _
        })
        .collect();
    let stats = sim.launch(blocks);
    println!(
        "== occupancy timeline: widest layer ({} blocks, util {:.0}%) ==",
        stats.blocks,
        stats.utilization * 100.0
    );
    let chart = stats.occupancy_chart(64);
    for line in chart.lines().take(16) {
        println!("  {line}");
    }
    if chart.lines().count() > 16 {
        println!("  … ({} more slots)", chart.lines().count() - 16);
    }
}
