//! Generator parameters.
//!
//! The defaults are calibrated so that a 1000-app corpus reproduces the
//! paper's Table I dataset characteristics (≈6217 CFG nodes, ≈268 methods
//! per app on average) and the worklist-dynamics profile of Table II.
//! `corpus_stats` tests in this crate pin the calibration.

use serde::{Deserialize, Serialize};

/// Parameters of the synthetic app generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GenConfig {
    /// Global size multiplier applied to class counts. `1.0` reproduces
    /// Table I; smaller values give fast test corpora.
    pub scale: f64,
    /// Median number of app classes (log-normal).
    pub classes_median: f64,
    /// Log-normal shape for the class count.
    pub classes_sigma: f64,
    /// Uniform range of methods per class.
    pub methods_per_class: (usize, usize),
    /// Median statements per method body (log-normal).
    pub stmts_median: f64,
    /// Log-normal shape for statements per method.
    pub stmts_sigma: f64,
    /// Uniform range of reference-typed locals per method.
    pub ref_locals: (usize, usize),
    /// Uniform range of primitive locals per method.
    pub prim_locals: (usize, usize),
    /// Maximum parameters per generated method.
    pub max_params: usize,
    /// Relative weight of `if` diamonds among structured constructs.
    pub branch_weight: u32,
    /// Relative weight of loops (back edges → fixed-point revisits).
    pub loop_weight: u32,
    /// Relative weight of switches (wide fan-out → worklist width).
    pub switch_weight: u32,
    /// Relative weight of straight-line statements.
    pub simple_weight: u32,
    /// Fraction of simple statements that are call statements.
    pub call_fraction: f64,
    /// Of call statements, the fraction that target the framework API
    /// rather than app methods.
    pub api_call_fraction: f64,
    /// Probability that a call targets the *same* call-graph layer,
    /// creating recursion (SCCs the SBDA layering must handle).
    pub recursion_prob: f64,
    /// Number of call-graph layers below the lifecycle roots.
    pub layers: usize,
    /// Uniform range of manifest components.
    pub components: (usize, usize),
    /// Uniform range of fields per class.
    pub fields_per_class: (usize, usize),
    /// Fraction of fields that are reference-typed.
    pub ref_field_fraction: f64,
    /// Probability that an app contains a deliberate source→sink data-flow
    /// (a "leak" the vetting layer should flag).
    pub leak_prob: f64,
    /// Shared-library packages drawn per app from the common pool.
    /// `0` (the default) disables library generation entirely.
    pub lib_packages_per_app: usize,
    /// Size of the common library-package pool the corpus draws from.
    /// The expected cross-app duplication factor is
    /// `apps × lib_packages_per_app / lib_pool_size`.
    pub lib_pool_size: usize,
    /// Seed of the shared pool. Library package `k` is generated from
    /// `Rng::new(lib_pool_seed).derive(k)` regardless of which app
    /// materializes it, so the same package is byte-identical in every
    /// app of a corpus (the summary store's premise).
    pub lib_pool_seed: u64,
    /// Uniform range of classes per library package.
    pub lib_classes_per_package: (usize, usize),
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            classes_median: 55.0,
            classes_sigma: 0.55,
            methods_per_class: (4, 12),
            stmts_median: 20.0,
            stmts_sigma: 0.8,
            ref_locals: (5, 12),
            prim_locals: (2, 6),
            max_params: 4,
            branch_weight: 20,
            loop_weight: 11,
            switch_weight: 21,
            simple_weight: 48,
            call_fraction: 0.26,
            api_call_fraction: 0.38,
            recursion_prob: 0.04,
            layers: 5,
            components: (2, 6),
            fields_per_class: (4, 10),
            ref_field_fraction: 0.7,
            leak_prob: 0.35,
            lib_packages_per_app: 0,
            lib_pool_size: 0,
            lib_pool_seed: 0x5d_1b00,
            lib_classes_per_package: (3, 6),
        }
    }
}

impl GenConfig {
    /// A small configuration for unit tests: apps with a handful of classes
    /// that still exercise every statement shape.
    pub fn tiny() -> Self {
        Self { scale: 0.08, classes_median: 8.0, ..Self::default() }
    }

    /// A mid-size configuration for integration tests.
    pub fn small() -> Self {
        Self { scale: 0.25, ..Self::default() }
    }

    /// Enables the shared-library pool: each app draws `per_app` packages
    /// from a pool of `pool` packages generated from this config's
    /// `lib_pool_seed`.
    pub fn with_libraries(self, per_app: usize, pool: usize) -> Self {
        Self { lib_packages_per_app: per_app, lib_pool_size: pool, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_scale() {
        let c = GenConfig::default();
        assert!((c.scale - 1.0).abs() < f64::EPSILON);
        assert!(c.methods_per_class.0 <= c.methods_per_class.1);
        assert!(c.components.0 >= 1);
    }

    #[test]
    fn tiny_is_smaller() {
        assert!(GenConfig::tiny().scale < GenConfig::small().scale);
        assert!(GenConfig::small().scale < GenConfig::default().scale);
    }
}
