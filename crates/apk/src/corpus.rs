//! Deterministic app corpora.
//!
//! The paper evaluates on 1000 randomly selected Google Play apps. Our
//! corpus is the synthetic equivalent: `Corpus::paper()` yields 1000 apps
//! derived from a fixed master seed, so every figure is reproducible
//! bit-for-bit. Apps are generated on demand (generation is cheap relative
//! to analysis) and can be generated in any order.

use crate::app::App;
use crate::config::GenConfig;
use crate::generator::generate_app;
use crate::rng::Rng;
use serde::{Deserialize, Serialize};

/// The master seed behind the evaluation corpus. Changing this invalidates
/// EXPERIMENTS.md.
pub const PAPER_MASTER_SEED: u64 = 0xD401D;

/// Number of apps in the paper-scale corpus.
pub const PAPER_CORPUS_SIZE: usize = 1000;

/// A corpus description: master seed + size + generator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Corpus {
    /// Master seed; per-app seeds derive from it.
    pub master_seed: u64,
    /// Number of apps.
    pub size: usize,
    /// Generator configuration.
    pub config: GenConfig,
}

impl Corpus {
    /// The full paper-scale corpus (1000 apps, Table I calibration).
    pub fn paper() -> Self {
        Self {
            master_seed: PAPER_MASTER_SEED,
            size: PAPER_CORPUS_SIZE,
            config: GenConfig::default(),
        }
    }

    /// A corpus with the paper's generator profile but a custom size —
    /// `figures --apps N` uses this for quick runs.
    pub fn paper_sized(size: usize) -> Self {
        Self { size, ..Self::paper() }
    }

    /// A small corpus for tests.
    pub fn test_corpus(size: usize) -> Self {
        Self { master_seed: 0xBEEF, size, config: GenConfig::tiny() }
    }

    /// The seed for app `index`.
    pub fn seed_for(&self, index: usize) -> u64 {
        // One PRNG draw per app keeps seeds independent of corpus size.
        let root = Rng::new(self.master_seed);
        let mut child = root.derive(index as u64);
        child.next_u64()
    }

    /// Generates app `index`.
    pub fn generate(&self, index: usize) -> App {
        assert!(index < self.size, "app index {index} out of corpus range {}", self.size);
        generate_app(index, self.seed_for(index), &self.config)
    }

    /// Iterates over all apps (generated lazily).
    pub fn iter(&self) -> impl Iterator<Item = App> + '_ {
        (0..self.size).map(move |i| self.generate(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let c = Corpus::test_corpus(16);
        let seeds: Vec<u64> = (0..16).map(|i| c.seed_for(i)).collect();
        let seeds2: Vec<u64> = (0..16).map(|i| c.seed_for(i)).collect();
        assert_eq!(seeds, seeds2);
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "seed collision");
    }

    #[test]
    fn seeds_independent_of_corpus_size() {
        let small = Corpus::test_corpus(4);
        let large = Corpus::test_corpus(64);
        for i in 0..4 {
            assert_eq!(small.seed_for(i), large.seed_for(i));
        }
    }

    #[test]
    fn generate_out_of_range_panics() {
        let c = Corpus::test_corpus(2);
        let result = std::panic::catch_unwind(|| c.generate(5));
        assert!(result.is_err());
    }

    #[test]
    fn paper_corpus_shape() {
        let c = Corpus::paper();
        assert_eq!(c.size, 1000);
        assert_eq!(c.master_seed, PAPER_MASTER_SEED);
        let sized = Corpus::paper_sized(10);
        assert_eq!(sized.size, 10);
        assert_eq!(sized.master_seed, PAPER_MASTER_SEED);
        // Same seeds as the full corpus → same apps, just fewer.
        assert_eq!(sized.seed_for(3), c.seed_for(3));
    }

    #[test]
    fn iter_yields_all() {
        let c = Corpus::test_corpus(3);
        let apps: Vec<_> = c.iter().collect();
        assert_eq!(apps.len(), 3);
        assert_eq!(apps[0].name, "com.gen.app0000");
        assert_eq!(apps[2].name, "com.gen.app0002");
    }
}
