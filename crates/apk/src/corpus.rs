//! Deterministic app corpora.
//!
//! The paper evaluates on 1000 randomly selected Google Play apps. Our
//! corpus is the synthetic equivalent: `Corpus::paper()` yields 1000 apps
//! derived from a fixed master seed, so every figure is reproducible
//! bit-for-bit. Apps are generated on demand (generation is cheap relative
//! to analysis) and can be generated in any order.

use crate::app::App;
use crate::config::GenConfig;
use crate::generator::generate_app;
use crate::rng::Rng;
use serde::{Deserialize, Serialize};

/// The master seed behind the evaluation corpus. Changing this invalidates
/// EXPERIMENTS.md.
pub const PAPER_MASTER_SEED: u64 = 0xD401D;

/// Number of apps in the paper-scale corpus.
pub const PAPER_CORPUS_SIZE: usize = 1000;

/// A corpus description: master seed + size + generator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Corpus {
    /// Master seed; per-app seeds derive from it.
    pub master_seed: u64,
    /// Number of apps.
    pub size: usize,
    /// Generator configuration.
    pub config: GenConfig,
}

impl Corpus {
    /// The full paper-scale corpus (1000 apps, Table I calibration).
    pub fn paper() -> Self {
        Self {
            master_seed: PAPER_MASTER_SEED,
            size: PAPER_CORPUS_SIZE,
            config: GenConfig::default(),
        }
    }

    /// A corpus with the paper's generator profile but a custom size —
    /// `figures --apps N` uses this for quick runs.
    pub fn paper_sized(size: usize) -> Self {
        Self { size, ..Self::paper() }
    }

    /// A small corpus for tests.
    pub fn test_corpus(size: usize) -> Self {
        Self { master_seed: 0xBEEF, size, config: GenConfig::tiny() }
    }

    /// The seed for app `index`.
    pub fn seed_for(&self, index: usize) -> u64 {
        // One PRNG draw per app keeps seeds independent of corpus size.
        let root = Rng::new(self.master_seed);
        let mut child = root.derive(index as u64);
        child.next_u64()
    }

    /// Generates app `index`.
    pub fn generate(&self, index: usize) -> App {
        assert!(index < self.size, "app index {index} out of corpus range {}", self.size);
        generate_app(index, self.seed_for(index), &self.config)
    }

    /// Iterates over all apps (generated lazily).
    pub fn iter(&self) -> impl Iterator<Item = App> + '_ {
        (0..self.size).map(move |i| self.generate(i))
    }

    /// An owned streaming iterator over an `n`-app paper-profile corpus
    /// seeded with `seed`: apps are generated one at a time on demand
    /// (generate → use → discard; nothing resident beyond the current
    /// app), each from its own per-index seed ([`Corpus::seed_for`]).
    /// Because the seed depends only on `(seed, index)`, shard `i`'s app
    /// `j` is byte-identical regardless of how many shards the corpus is
    /// split across.
    pub fn stream(seed: u64, n: usize) -> CorpusStream {
        Corpus { master_seed: seed, size: n, config: GenConfig::default() }.stream_all()
    }

    /// Streams every app of this corpus in index order.
    pub fn stream_all(&self) -> CorpusStream {
        self.stream_shard(0, 1)
    }

    /// Streams shard `shard` of a `shards`-way strided split: the apps at
    /// indices `shard, shard + shards, shard + 2·shards, …`. The strided
    /// assignment interleaves heavy and light apps across shards (block
    /// splits would hand one shard a run of same-profile neighbors), and
    /// the union over `0..shards` is exactly the 1-shard stream.
    pub fn stream_shard(&self, shard: usize, shards: usize) -> CorpusStream {
        assert!(shards > 0, "stream_shard: zero shards");
        assert!(shard < shards, "stream_shard: shard {shard} out of range {shards}");
        CorpusStream { corpus: self.clone(), next: shard, step: shards }
    }

    /// The index set of shard `shard` in a `shards`-way strided split.
    pub fn shard_indices(n: usize, shard: usize, shards: usize) -> impl Iterator<Item = usize> {
        assert!(shards > 0 && shard < shards, "shard {shard} out of range {shards}");
        (shard..n).step_by(shards)
    }
}

/// Owned lazy corpus iterator: yields `(index, app)` pairs, generating
/// each app only when the consumer asks for it. See [`Corpus::stream`].
pub struct CorpusStream {
    corpus: Corpus,
    next: usize,
    step: usize,
}

impl CorpusStream {
    /// The corpus being streamed.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Apps remaining in this stream.
    pub fn remaining(&self) -> usize {
        if self.next >= self.corpus.size {
            0
        } else {
            (self.corpus.size - self.next).div_ceil(self.step)
        }
    }
}

impl Iterator for CorpusStream {
    type Item = (usize, App);

    fn next(&mut self) -> Option<(usize, App)> {
        if self.next >= self.corpus.size {
            return None;
        }
        let index = self.next;
        self.next += self.step;
        Some((index, self.corpus.generate(index)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let c = Corpus::test_corpus(16);
        let seeds: Vec<u64> = (0..16).map(|i| c.seed_for(i)).collect();
        let seeds2: Vec<u64> = (0..16).map(|i| c.seed_for(i)).collect();
        assert_eq!(seeds, seeds2);
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "seed collision");
    }

    #[test]
    fn seeds_independent_of_corpus_size() {
        let small = Corpus::test_corpus(4);
        let large = Corpus::test_corpus(64);
        for i in 0..4 {
            assert_eq!(small.seed_for(i), large.seed_for(i));
        }
    }

    #[test]
    fn generate_out_of_range_panics() {
        let c = Corpus::test_corpus(2);
        let result = std::panic::catch_unwind(|| c.generate(5));
        assert!(result.is_err());
    }

    #[test]
    fn paper_corpus_shape() {
        let c = Corpus::paper();
        assert_eq!(c.size, 1000);
        assert_eq!(c.master_seed, PAPER_MASTER_SEED);
        let sized = Corpus::paper_sized(10);
        assert_eq!(sized.size, 10);
        assert_eq!(sized.master_seed, PAPER_MASTER_SEED);
        // Same seeds as the full corpus → same apps, just fewer.
        assert_eq!(sized.seed_for(3), c.seed_for(3));
    }

    #[test]
    fn iter_yields_all() {
        let c = Corpus::test_corpus(3);
        let apps: Vec<_> = c.iter().collect();
        assert_eq!(apps.len(), 3);
        assert_eq!(apps[0].name, "com.gen.app0000");
        assert_eq!(apps[2].name, "com.gen.app0002");
    }

    #[test]
    fn stream_yields_indexed_apps_lazily() {
        let c = Corpus::test_corpus(5);
        let mut s = c.stream_all();
        assert_eq!(s.remaining(), 5);
        let (i0, a0) = s.next().unwrap();
        assert_eq!((i0, a0.name.as_str()), (0, "com.gen.app0000"));
        assert_eq!(s.remaining(), 4);
        assert_eq!(s.map(|(i, _)| i).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        // The associated constructor streams a paper-profile corpus.
        let s = Corpus::stream(0xD401D, 3);
        assert_eq!(s.corpus().size, 3);
        assert!((s.corpus().config.scale - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn shard_streams_partition_the_corpus() {
        let c = Corpus::test_corpus(11);
        for shards in 1..=4 {
            let mut seen: Vec<usize> = Vec::new();
            for shard in 0..shards {
                let indices: Vec<usize> = c.stream_shard(shard, shards).map(|(i, _)| i).collect();
                assert_eq!(indices, Corpus::shard_indices(11, shard, shards).collect::<Vec<_>>());
                seen.extend(indices);
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..11).collect::<Vec<_>>(), "{shards}-way split must partition");
        }
    }

    #[test]
    fn sharded_app_is_byte_identical_to_unsharded() {
        // Shard 2-of-3 owns index 5 of an 8-app corpus; the app it
        // generates must equal the 1-shard stream's app 5 byte for byte.
        let c = Corpus::test_corpus(8);
        let solo = c.stream_all().nth(5).unwrap();
        let sharded = c.stream_shard(2, 3).find(|(i, _)| *i == 5).unwrap();
        assert_eq!(solo.0, sharded.0);
        assert_eq!(
            gdroid_ir::text::print_program(&solo.1.program),
            gdroid_ir::text::print_program(&sharded.1.program)
        );
        assert_eq!(solo.1.manifest.package, sharded.1.manifest.package);
    }
}

#[cfg(test)]
mod shard_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Per-index seeds are a pure function of (master seed, index):
        /// any shard layout assigns every index the same seed the
        /// 1-shard stream uses, and the layouts partition the corpus.
        #[test]
        fn seeds_stable_across_shard_layouts(
            master in 0u64..1_000_000,
            n in 1usize..64,
            shards in 1usize..8,
        ) {
            let corpus = Corpus { master_seed: master, size: n, config: GenConfig::tiny() };
            let solo: Vec<u64> = (0..n).map(|i| corpus.seed_for(i)).collect();
            let mut covered = vec![false; n];
            for shard in 0..shards {
                for i in Corpus::shard_indices(n, shard, shards) {
                    prop_assert!(!covered[i], "index {i} assigned to two shards");
                    covered[i] = true;
                    prop_assert_eq!(corpus.seed_for(i), solo[i]);
                }
            }
            prop_assert!(covered.iter().all(|&c| c), "layout must cover every index");
        }
    }
}
