//! The app model: an IR program plus its manifest and metadata.

use crate::manifest::Manifest;
use gdroid_ir::Program;
use serde::{Deserialize, Serialize};

/// A Google Play-style app category. Categories drive the generator's size
/// profile (games are bigger, personalization apps smaller), producing the
/// heavy-tailed corpus spread visible in the paper's Fig. 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Category {
    Game,
    Social,
    Communication,
    Productivity,
    Tools,
    Finance,
    Shopping,
    Media,
    Personalization,
}

impl Category {
    /// All categories.
    pub const ALL: [Category; 9] = [
        Category::Game,
        Category::Social,
        Category::Communication,
        Category::Productivity,
        Category::Tools,
        Category::Finance,
        Category::Shopping,
        Category::Media,
        Category::Personalization,
    ];

    /// Relative popularity weights used when sampling a category.
    pub fn weights() -> [u32; 9] {
        [22, 14, 10, 12, 14, 6, 8, 9, 5]
    }

    /// Code-size multiplier relative to the corpus median.
    pub fn size_factor(self) -> f64 {
        match self {
            Category::Game => 1.9,
            Category::Social => 1.4,
            Category::Communication => 1.2,
            Category::Productivity => 1.0,
            Category::Tools => 0.6,
            Category::Finance => 1.1,
            Category::Shopping => 1.0,
            Category::Media => 1.3,
            Category::Personalization => 0.45,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Category::Game => "Game",
            Category::Social => "Social",
            Category::Communication => "Communication",
            Category::Productivity => "Productivity",
            Category::Tools => "Tools",
            Category::Finance => "Finance",
            Category::Shopping => "Shopping",
            Category::Media => "Media",
            Category::Personalization => "Personalization",
        }
    }
}

/// A complete Android app in IR form — the unit every analysis consumes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct App {
    /// Synthetic package-style name (`com.gen.app0042`).
    pub name: String,
    /// Category.
    pub category: Category,
    /// The seed this app was generated from (reproducibility handle).
    pub seed: u64,
    /// The code.
    pub program: Program,
    /// The manifest.
    pub manifest: Manifest,
}

impl App {
    /// Rebuilds lookup tables after deserialization.
    pub fn rebuild_lookups(&mut self) {
        self.program.rebuild_lookups();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_tables_consistent() {
        assert_eq!(Category::ALL.len(), Category::weights().len());
        for c in Category::ALL {
            assert!(c.size_factor() > 0.0);
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn games_are_bigger_than_personalization() {
        assert!(Category::Game.size_factor() > Category::Personalization.size_factor());
    }
}
