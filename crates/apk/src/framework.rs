//! A miniature model of the Android framework API surface.
//!
//! Generated apps link against these classes the way real APKs link against
//! `android.jar`: the classes exist in the hierarchy (components extend
//! them, casts mention them) but have no analyzable bodies — the analysis
//! applies default summaries at their call sites. The registry also labels
//! which API methods are taint *sources* and *sinks*; `gdroid-vetting`
//! builds its leak detection on exactly this labeling.

use gdroid_ir::{ClassId, JType, ProgramBuilder, Signature, Symbol};
use serde::{Deserialize, Serialize};

/// Security-relevant labeling of a framework method.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApiRole {
    /// Returns sensitive data (device id, location, contacts, SMS…).
    Source,
    /// Exfiltrates or persists its arguments (network, SMS send, log…).
    Sink,
    /// Neither.
    Neutral,
}

/// One framework API method the generator may call.
#[derive(Clone, Debug)]
pub struct ApiMethod {
    /// Full signature.
    pub sig: Signature,
    /// Whether it is an instance method (needs a receiver argument).
    pub is_instance: bool,
    /// Taint role.
    pub role: ApiRole,
}

/// The framework registry: classes added to a program plus the callable
/// API surface.
#[derive(Clone, Debug)]
pub struct Framework {
    /// `java/lang/Object`.
    pub object: ClassId,
    /// `java/lang/String`.
    pub string: ClassId,
    /// Base classes for the four component kinds, in
    /// [`crate::manifest::ComponentKind::ALL`] order.
    pub component_bases: [ClassId; 4],
    /// `android/content/Intent`.
    pub intent: ClassId,
    /// `android/content/Context`.
    pub context: ClassId,
    /// Callable API methods.
    pub api: Vec<ApiMethod>,
    /// Interned `java/lang/Object` symbol, for convenience.
    pub object_sym: Symbol,
    /// Interned `java/lang/String` symbol.
    pub string_sym: Symbol,
}

/// Table of `(class, method, param-count, returns-ref, instance, role)`
/// describing the modeled API surface. Parameter and return types are
/// filled in as `Object`/`String` refs; the analysis only needs reference-
/// ness and the taint role.
const API_TABLE: &[(&str, &str, usize, bool, bool, ApiRole)] = &[
    // Sources — identifiers, location, user data.
    ("android/telephony/TelephonyManager", "getDeviceId", 0, true, true, ApiRole::Source),
    ("android/telephony/TelephonyManager", "getSubscriberId", 0, true, true, ApiRole::Source),
    ("android/telephony/TelephonyManager", "getSimSerialNumber", 0, true, true, ApiRole::Source),
    ("android/location/LocationManager", "getLastKnownLocation", 1, true, true, ApiRole::Source),
    ("android/content/ContentResolver", "query", 2, true, true, ApiRole::Source),
    ("android/accounts/AccountManager", "getAccounts", 0, true, true, ApiRole::Source),
    ("android/telephony/SmsMessage", "getMessageBody", 0, true, true, ApiRole::Source),
    ("android/media/AudioRecord", "read", 1, true, true, ApiRole::Source),
    // Sinks — exfiltration and persistence channels.
    ("android/telephony/SmsManager", "sendTextMessage", 3, false, true, ApiRole::Sink),
    ("java/net/HttpURLConnection", "getOutputStream", 0, true, true, ApiRole::Sink),
    ("java/io/OutputStream", "write", 1, false, true, ApiRole::Sink),
    ("android/util/Log", "d", 2, false, false, ApiRole::Sink),
    ("android/util/Log", "e", 2, false, false, ApiRole::Sink),
    ("java/io/FileWriter", "append", 1, true, true, ApiRole::Sink),
    ("org/apache/http/client/HttpClient", "execute", 1, true, true, ApiRole::Sink),
    // Neutral plumbing — the bulk of real API calls.
    ("java/lang/StringBuilder", "append", 1, true, true, ApiRole::Neutral),
    ("java/lang/StringBuilder", "toString", 0, true, true, ApiRole::Neutral),
    ("java/lang/String", "concat", 1, true, true, ApiRole::Neutral),
    ("java/lang/String", "substring", 1, true, true, ApiRole::Neutral),
    ("java/lang/Object", "hashCode", 0, false, true, ApiRole::Neutral),
    ("java/util/ArrayList", "add", 1, false, true, ApiRole::Neutral),
    ("java/util/ArrayList", "get", 1, true, true, ApiRole::Neutral),
    ("java/util/HashMap", "put", 2, true, true, ApiRole::Neutral),
    ("java/util/HashMap", "get", 1, true, true, ApiRole::Neutral),
    ("android/content/Intent", "getStringExtra", 1, true, true, ApiRole::Neutral),
    ("android/content/Intent", "putExtra", 2, true, true, ApiRole::Neutral),
    ("android/content/Context", "getSystemService", 1, true, true, ApiRole::Neutral),
    ("android/view/View", "findViewById", 1, true, true, ApiRole::Neutral),
    ("android/widget/TextView", "setText", 1, false, true, ApiRole::Neutral),
    ("android/os/Bundle", "getString", 1, true, true, ApiRole::Neutral),
];

/// The `(class, method, role)` triples of the modeled API surface — the
/// ground truth the vetting layer matches call sites against.
pub fn builtin_api_roles() -> impl Iterator<Item = (&'static str, &'static str, ApiRole)> {
    API_TABLE.iter().map(|&(cls, name, _, _, _, role)| (cls, name, role))
}

impl Framework {
    /// Installs the framework classes into a program under construction and
    /// returns the registry.
    pub fn install(pb: &mut ProgramBuilder) -> Framework {
        let object = pb.class("java/lang/Object").build();
        let string = pb.class("java/lang/String").extends(object).build();
        let context = pb.class("android/content/Context").extends(object).build();

        let mut bases = Vec::with_capacity(4);
        for kind in crate::manifest::ComponentKind::ALL {
            // Components transitively extend Context, like the real SDK.
            let c = pb.class(kind.base_class()).extends(context).build();
            bases.push(c);
        }
        let intent = pb.class("android/content/Intent").extends(object).build();

        // Every distinct class mentioned in the API table exists in the
        // hierarchy so casts/instanceof resolve.
        let mut api = Vec::with_capacity(API_TABLE.len());
        for &(cls, name, nparams, returns_ref, is_instance, role) in API_TABLE {
            let cls_sym = pb.intern(cls);
            if pb.find_class(cls_sym).is_none() {
                pb.class(cls).extends(object).build();
            }
            let name_sym = pb.intern(name);
            let obj_sym = pb.intern("java/lang/Object");
            let params = vec![JType::Object(obj_sym); nparams];
            let ret = if returns_ref { JType::Object(obj_sym) } else { JType::Void };
            api.push(ApiMethod {
                sig: Signature::new(cls_sym, name_sym, params, ret),
                is_instance,
                role,
            });
        }

        let object_sym = pb.intern("java/lang/Object");
        let string_sym = pb.intern("java/lang/String");
        Framework {
            object,
            string,
            component_bases: [bases[0], bases[1], bases[2], bases[3]],
            intent,
            context,
            api,
            object_sym,
            string_sym,
        }
    }

    /// API methods with a given role.
    pub fn api_with_role(&self, role: ApiRole) -> impl Iterator<Item = &ApiMethod> {
        self.api.iter().filter(move |m| m.role == role)
    }

    /// Number of modeled sources.
    pub fn source_count(&self) -> usize {
        self.api_with_role(ApiRole::Source).count()
    }

    /// Number of modeled sinks.
    pub fn sink_count(&self) -> usize {
        self.api_with_role(ApiRole::Sink).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_creates_hierarchy() {
        let mut pb = ProgramBuilder::new();
        let fw = Framework::install(&mut pb);
        let p = pb.finish();
        // Component bases extend Context which extends Object.
        for base in fw.component_bases {
            let sup = p.classes[base].superclass.unwrap();
            assert_eq!(sup, fw.context);
        }
        assert_eq!(p.classes[fw.context].superclass, Some(fw.object));
        assert_eq!(p.classes[fw.string].superclass, Some(fw.object));
    }

    #[test]
    fn api_surface_has_sources_and_sinks() {
        let mut pb = ProgramBuilder::new();
        let fw = Framework::install(&mut pb);
        assert!(fw.source_count() >= 5, "{}", fw.source_count());
        assert!(fw.sink_count() >= 5, "{}", fw.sink_count());
        assert!(fw.api.len() > fw.source_count() + fw.sink_count());
    }

    #[test]
    fn api_classes_exist_in_program() {
        let mut pb = ProgramBuilder::new();
        let fw = Framework::install(&mut pb);
        let api_classes: Vec<Symbol> = fw.api.iter().map(|m| m.sig.class).collect();
        let p = pb.finish();
        for cls in api_classes {
            assert!(p.class_by_name(cls).is_some(), "missing {}", p.interner.resolve(cls));
        }
    }

    #[test]
    fn install_is_idempotent_per_builder() {
        // Two installs into different builders give structurally equal
        // registries (determinism).
        let mut pb1 = ProgramBuilder::new();
        let fw1 = Framework::install(&mut pb1);
        let mut pb2 = ProgramBuilder::new();
        let fw2 = Framework::install(&mut pb2);
        assert_eq!(fw1.api.len(), fw2.api.len());
        assert_eq!(fw1.object, fw2.object);
    }
}
