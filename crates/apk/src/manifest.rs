//! Android manifest model: components, intent filters, permissions.
//!
//! The manifest determines the ICFG entry points: every exported component
//! gets a synthesized *environment method* (the paper's `EC` in equation
//! (1)) that drives its lifecycle callbacks.

use gdroid_ir::Symbol;
use serde::{Deserialize, Serialize};

/// The four Android component kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// `<activity>` — UI screen with the full lifecycle.
    Activity,
    /// `<service>` — background work.
    Service,
    /// `<receiver>` — broadcast receiver.
    BroadcastReceiver,
    /// `<provider>` — content provider.
    ContentProvider,
}

impl ComponentKind {
    /// The lifecycle callback names the environment method drives, in the
    /// order the Android framework invokes them along the main happy path.
    pub fn lifecycle_callbacks(self) -> &'static [&'static str] {
        match self {
            ComponentKind::Activity => {
                &["onCreate", "onStart", "onResume", "onPause", "onStop", "onDestroy"]
            }
            ComponentKind::Service => &["onCreate", "onStartCommand", "onBind", "onDestroy"],
            ComponentKind::BroadcastReceiver => &["onReceive"],
            ComponentKind::ContentProvider => &["onCreate", "query", "insert", "update"],
        }
    }

    /// The framework base class of this component kind.
    pub fn base_class(self) -> &'static str {
        match self {
            ComponentKind::Activity => "android/app/Activity",
            ComponentKind::Service => "android/app/Service",
            ComponentKind::BroadcastReceiver => "android/content/BroadcastReceiver",
            ComponentKind::ContentProvider => "android/content/ContentProvider",
        }
    }

    /// All four kinds.
    pub const ALL: [ComponentKind; 4] = [
        ComponentKind::Activity,
        ComponentKind::Service,
        ComponentKind::BroadcastReceiver,
        ComponentKind::ContentProvider,
    ];
}

/// An intent filter action (simplified: the action string).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntentFilter {
    /// The action, e.g. `android.intent.action.MAIN`.
    pub action: String,
}

/// A declared component.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Component {
    /// The implementing class (interned in the app's program).
    pub class: Symbol,
    /// Kind.
    pub kind: ComponentKind,
    /// Whether the component is exported (reachable from outside the app).
    pub exported: bool,
    /// Declared intent filters.
    pub intent_filters: Vec<IntentFilter>,
}

/// Android permissions the vetting layer cares about (a representative
/// subset of dangerous permissions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Permission {
    Internet,
    ReadContacts,
    AccessFineLocation,
    ReadSms,
    SendSms,
    Camera,
    RecordAudio,
    ReadPhoneState,
    WriteExternalStorage,
    ReadCallLog,
}

impl Permission {
    /// All modeled permissions.
    pub const ALL: [Permission; 10] = [
        Permission::Internet,
        Permission::ReadContacts,
        Permission::AccessFineLocation,
        Permission::ReadSms,
        Permission::SendSms,
        Permission::Camera,
        Permission::RecordAudio,
        Permission::ReadPhoneState,
        Permission::WriteExternalStorage,
        Permission::ReadCallLog,
    ];

    /// The manifest string of the permission.
    pub fn manifest_name(self) -> &'static str {
        match self {
            Permission::Internet => "android.permission.INTERNET",
            Permission::ReadContacts => "android.permission.READ_CONTACTS",
            Permission::AccessFineLocation => "android.permission.ACCESS_FINE_LOCATION",
            Permission::ReadSms => "android.permission.READ_SMS",
            Permission::SendSms => "android.permission.SEND_SMS",
            Permission::Camera => "android.permission.CAMERA",
            Permission::RecordAudio => "android.permission.RECORD_AUDIO",
            Permission::ReadPhoneState => "android.permission.READ_PHONE_STATE",
            Permission::WriteExternalStorage => "android.permission.WRITE_EXTERNAL_STORAGE",
            Permission::ReadCallLog => "android.permission.READ_CALL_LOG",
        }
    }
}

/// A parsed (well, generated) AndroidManifest.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Application package name.
    pub package: String,
    /// Declared components.
    pub components: Vec<Component>,
    /// Requested permissions.
    pub permissions: Vec<Permission>,
}

impl Manifest {
    /// Components of a given kind.
    pub fn components_of(&self, kind: ComponentKind) -> impl Iterator<Item = &Component> {
        self.components.iter().filter(move |c| c.kind == kind)
    }

    /// The launcher activity (first exported activity with a MAIN filter),
    /// if any.
    pub fn launcher(&self) -> Option<&Component> {
        self.components.iter().find(|c| {
            c.kind == ComponentKind::Activity
                && c.exported
                && c.intent_filters.iter().any(|f| f.action.ends_with("MAIN"))
        })
    }

    /// Whether a permission is requested.
    pub fn has_permission(&self, p: Permission) -> bool {
        self.permissions.contains(&p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_callback_tables() {
        assert_eq!(ComponentKind::Activity.lifecycle_callbacks().len(), 6);
        assert_eq!(ComponentKind::BroadcastReceiver.lifecycle_callbacks(), &["onReceive"]);
        for k in ComponentKind::ALL {
            assert!(!k.lifecycle_callbacks().is_empty());
            assert!(k.base_class().starts_with("android/"));
        }
    }

    #[test]
    fn launcher_detection() {
        let mut m = Manifest { package: "com.example".into(), ..Default::default() };
        assert!(m.launcher().is_none());
        m.components.push(Component {
            class: Symbol(1),
            kind: ComponentKind::Activity,
            exported: true,
            intent_filters: vec![IntentFilter { action: "android.intent.action.MAIN".into() }],
        });
        assert_eq!(m.launcher().unwrap().class, Symbol(1));
    }

    #[test]
    fn permission_lookup() {
        let m = Manifest {
            package: "p".into(),
            components: vec![],
            permissions: vec![Permission::Internet, Permission::ReadSms],
        };
        assert!(m.has_permission(Permission::Internet));
        assert!(!m.has_permission(Permission::Camera));
        assert_eq!(Permission::ALL.len(), 10);
    }
}
