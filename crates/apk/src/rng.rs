//! Deterministic, portable pseudo-random numbers for corpus generation.
//!
//! The corpus must be bit-reproducible across platforms and library
//! versions (every figure in EXPERIMENTS.md depends on it), so we implement
//! a small, well-known generator in-crate instead of depending on `rand`'s
//! unspecified `StdRng` algorithm: `SplitMix64` for seeding and
//! `Xoshiro256**` for the stream, plus the handful of distributions the
//! generator needs (uniform, log-normal, zipf, weighted choice).

/// SplitMix64 — used to expand a single `u64` seed into generator state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256** — the workhorse generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Derives an independent child generator. Used to give every app its
    /// own stream so corpus generation order doesn't matter.
    pub fn derive(&self, stream: u64) -> Rng {
        // Mix the stream id through SplitMix64 with the parent's state as
        // additional entropy.
        let mut sm = SplitMix64::new(self.s[0] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
        Rng::new(sm.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`. Uses Lemire's multiply-shift rejection method.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        // 128-bit multiply rejection sampling, bias-free.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= lo.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box–Muller (one value per call; simple and
    /// deterministic).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal with the given *median* and shape `sigma`.
    ///
    /// `median = exp(mu)`; mean = `median * exp(sigma²/2)`. Size
    /// distributions of real app corpora are famously heavy-tailed; the
    /// paper's Fig. 1 spread (seconds → 38 minutes) matches log-normal run
    /// times.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        (median.ln() + sigma * self.normal()).exp()
    }

    /// Log-normal clamped and rounded to an integer range.
    pub fn log_normal_int(&mut self, median: f64, sigma: f64, lo: usize, hi: usize) -> usize {
        (self.log_normal(median, sigma).round() as usize).clamp(lo, hi)
    }

    /// Zipf-distributed index in `[0, n)` with exponent `s` — used for
    /// popularity-skewed choices (callee selection, field reuse).
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        debug_assert!(n > 0);
        // Inverse-CDF on the harmonic partial sums, computed incrementally.
        // n is small (≤ a few hundred) in all our uses, so O(n) is fine.
        let target = self.f64();
        let mut norm = 0.0;
        for k in 1..=n {
            norm += 1.0 / (k as f64).powf(s);
        }
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s) / norm;
            if target < acc {
                return k - 1;
            }
        }
        n - 1
    }

    /// Picks an index according to integer weights.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        debug_assert!(total > 0, "all-zero weights");
        let mut x = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Picks a random element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derive_is_deterministic_and_independent() {
        let parent = Rng::new(7);
        let mut c1 = parent.derive(3);
        let mut c1b = parent.derive(3);
        let mut c2 = parent.derive(4);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut r = Rng::new(10);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = r.range(3, 7);
            assert!((3..=7).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 7;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_var() {
        let mut r = Rng::new(12);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn log_normal_median_is_roughly_right() {
        let mut r = Rng::new(13);
        let n = 10_001;
        let mut samples: Vec<f64> = (0..n).map(|_| r.log_normal(100.0, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((80.0..125.0).contains(&median), "median {median}");
    }

    #[test]
    fn zipf_is_skewed_toward_low_indices() {
        let mut r = Rng::new(14);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.zipf(10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[4], "{counts:?}");
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = Rng::new(15);
        for _ in 0..500 {
            let i = r.weighted(&[0, 5, 0, 1]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut r = Rng::new(16);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should permute");
    }
}
