//! Corpus statistics — the data behind the paper's Table I.

use crate::app::App;
use gdroid_ir::Stmt;
use serde::{Deserialize, Serialize};

/// Per-app structural statistics.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct AppStats {
    /// Number of statements = intra-procedural CFG nodes (entry/exit nodes
    /// added by the ICFG layer are excluded here, as in the paper's
    /// Table I which reports CFG nodes).
    pub cfg_nodes: usize,
    /// Number of methods (incl. lifecycle callbacks; environment methods
    /// are synthesized later).
    pub methods: usize,
    /// Number of classes (app classes only; framework stubs excluded).
    pub app_classes: usize,
    /// Total declared variables.
    pub variables: usize,
    /// Reference-typed variables (points-to slot candidates).
    pub ref_variables: usize,
    /// Allocation sites (`new` + string literals).
    pub allocation_sites: usize,
    /// Call statements.
    pub call_sites: usize,
    /// Branch statements (if/switch) — divergence drivers.
    pub branches: usize,
    /// Back-edge candidates (gotos with target before the statement) —
    /// fixed-point revisit drivers.
    pub back_edges: usize,
}

impl AppStats {
    /// Computes statistics for one app.
    pub fn of(app: &App) -> Self {
        let p = &app.program;
        let mut s = AppStats {
            cfg_nodes: p.total_statements(),
            methods: p.methods.len(),
            variables: p.total_vars(),
            ..Default::default()
        };
        s.app_classes = p
            .classes
            .iter()
            .filter(|c| {
                let name = p.interner.resolve(c.name);
                !name.starts_with("android/")
                    && !name.starts_with("java/")
                    && !name.starts_with("org/")
            })
            .count();
        for m in p.methods.iter() {
            s.ref_variables += m.reference_var_count();
            s.allocation_sites += m.allocation_site_count();
            for (idx, stmt) in m.body.iter_enumerated() {
                match stmt {
                    Stmt::Call { .. } => s.call_sites += 1,
                    Stmt::If { target, .. } => {
                        s.branches += 1;
                        if target.index() <= idx.index() {
                            s.back_edges += 1;
                        }
                    }
                    Stmt::Switch { .. } => s.branches += 1,
                    Stmt::Goto { target } if target.index() <= idx.index() => {
                        s.back_edges += 1;
                    }
                    _ => {}
                }
            }
        }
        s
    }
}

/// Aggregate statistics over a corpus — Table I's rows.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Number of apps aggregated.
    pub apps: usize,
    /// Mean CFG nodes per app (paper: 6217).
    pub mean_cfg_nodes: f64,
    /// Mean methods per app (paper: 268).
    pub mean_methods: f64,
    /// Mean reference variables per method — the slot-pool proxy
    /// (paper's "no. of Variable": 116; see EXPERIMENTS.md for the
    /// interpretation).
    pub mean_ref_vars_per_app_hundreds: f64,
    /// Largest single-app CFG node count.
    pub max_cfg_nodes: usize,
    /// Mean allocation sites per app.
    pub mean_alloc_sites: f64,
    /// Mean call sites per app.
    pub mean_call_sites: f64,
    /// Mean back edges per app.
    pub mean_back_edges: f64,
}

impl CorpusStats {
    /// Aggregates a set of per-app statistics.
    pub fn aggregate(stats: &[AppStats]) -> Self {
        let n = stats.len().max(1) as f64;
        CorpusStats {
            apps: stats.len(),
            mean_cfg_nodes: stats.iter().map(|s| s.cfg_nodes as f64).sum::<f64>() / n,
            mean_methods: stats.iter().map(|s| s.methods as f64).sum::<f64>() / n,
            mean_ref_vars_per_app_hundreds: stats
                .iter()
                .map(|s| s.ref_variables as f64 / (s.methods.max(1)) as f64)
                .sum::<f64>()
                / n,
            max_cfg_nodes: stats.iter().map(|s| s.cfg_nodes).max().unwrap_or(0),
            mean_alloc_sites: stats.iter().map(|s| s.allocation_sites as f64).sum::<f64>() / n,
            mean_call_sites: stats.iter().map(|s| s.call_sites as f64).sum::<f64>() / n,
            mean_back_edges: stats.iter().map(|s| s.back_edges as f64).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenConfig;
    use crate::corpus::Corpus;
    use crate::generator::generate_app;

    #[test]
    fn stats_count_basic_features() {
        let app = generate_app(0, 777, &GenConfig::tiny());
        let s = AppStats::of(&app);
        assert!(s.cfg_nodes > 0);
        assert!(s.methods > 0);
        assert!(s.variables >= s.ref_variables);
        assert!(s.app_classes >= 2);
        assert!(s.allocation_sites > 0, "every method seeds an allocation");
    }

    #[test]
    fn loops_produce_back_edges() {
        // Over a few apps there should be at least one loop.
        let total: usize = (0..5)
            .map(|i| {
                let app = generate_app(i, 100 + i as u64, &GenConfig::small());
                AppStats::of(&app).back_edges
            })
            .sum();
        assert!(total > 0, "no back edges in 5 apps");
    }

    #[test]
    fn aggregate_means() {
        let c = Corpus::test_corpus(4);
        let stats: Vec<AppStats> = c.iter().map(|a| AppStats::of(&a)).collect();
        let agg = CorpusStats::aggregate(&stats);
        assert_eq!(agg.apps, 4);
        assert!(agg.mean_cfg_nodes > 0.0);
        assert!(agg.max_cfg_nodes as f64 >= agg.mean_cfg_nodes);
    }

    #[test]
    fn aggregate_of_empty_is_zeroed() {
        let agg = CorpusStats::aggregate(&[]);
        assert_eq!(agg.apps, 0);
        assert_eq!(agg.mean_cfg_nodes, 0.0);
    }
}
