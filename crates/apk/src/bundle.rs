//! On-disk app bundles.
//!
//! A bundle is the repository's stand-in for an `.apk` file: a directory
//! holding the program as `.jil` text plus a line-oriented
//! `manifest.txt`. Corpora can be exported once and re-analyzed without
//! the generator, shared between machines, or inspected by hand.
//!
//! ```text
//! com.gen.app0001/
//!   app.jil        # the IR (see gdroid-ir::text)
//!   manifest.txt   # package/category/seed/components/permissions
//! ```

use crate::app::{App, Category};
use crate::manifest::{Component, ComponentKind, IntentFilter, Manifest, Permission};
use gdroid_ir::text::{parse_program, print_program};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Serializes a manifest to the `manifest.txt` format.
pub fn manifest_to_text(app: &App) -> String {
    let mut out = String::new();
    writeln!(out, "package {}", app.manifest.package).unwrap();
    writeln!(out, "category {}", app.category.name()).unwrap();
    writeln!(out, "seed {}", app.seed).unwrap();
    for c in &app.manifest.components {
        let class = app.program.interner.resolve(c.class);
        let main =
            if c.intent_filters.iter().any(|f| f.action.ends_with("MAIN")) { " MAIN" } else { "" };
        writeln!(
            out,
            "component {class} {:?} {}{main}",
            c.kind,
            if c.exported { "exported" } else { "internal" }
        )
        .unwrap();
    }
    for p in &app.manifest.permissions {
        writeln!(out, "permission {}", p.manifest_name()).unwrap();
    }
    out
}

/// Errors from bundle IO/parsing.
#[derive(Debug)]
pub enum BundleError {
    /// Filesystem failure.
    Io(io::Error),
    /// `.jil` parse failure.
    Jil(gdroid_ir::text::ParseError),
    /// Malformed manifest line.
    Manifest(String),
    /// Parsed, but structurally invalid IR (see [`gdroid_ir::validate`]).
    Invalid(String),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::Io(e) => write!(f, "bundle io error: {e}"),
            BundleError::Jil(e) => write!(f, "bundle jil error: {e}"),
            BundleError::Manifest(m) => write!(f, "bundle manifest error: {m}"),
            BundleError::Invalid(m) => write!(f, "bundle holds invalid IR: {m}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<io::Error> for BundleError {
    fn from(e: io::Error) -> Self {
        BundleError::Io(e)
    }
}

/// Writes an app as a bundle directory (created if needed).
pub fn save_bundle(app: &App, dir: &Path) -> Result<(), BundleError> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("app.jil"), print_program(&app.program))?;
    std::fs::write(dir.join("manifest.txt"), manifest_to_text(app))?;
    Ok(())
}

/// Reads a bundle directory back into an [`App`].
pub fn load_bundle(dir: &Path) -> Result<App, BundleError> {
    let jil = std::fs::read_to_string(dir.join("app.jil"))?;
    let program = parse_program(&jil).map_err(BundleError::Jil)?;
    // Bundles are external input: unlike generator output, they get the
    // full structural validation before any analysis may index them.
    let errors = gdroid_ir::validate_program(&program);
    if let Some(first) = errors.first() {
        return Err(BundleError::Invalid(format!("{first} (+{} more)", errors.len() - 1)));
    }
    let manifest_text = std::fs::read_to_string(dir.join("manifest.txt"))?;

    let mut package = String::new();
    let mut category = Category::Tools;
    let mut seed = 0u64;
    let mut components = Vec::new();
    let mut permissions = Vec::new();
    for (lineno, line) in manifest_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let key = parts.next().unwrap_or_default();
        let err = |m: &str| BundleError::Manifest(format!("line {}: {m}", lineno + 1));
        match key {
            "package" => package = parts.next().ok_or_else(|| err("missing package"))?.into(),
            "category" => {
                let name = parts.next().ok_or_else(|| err("missing category"))?;
                category = Category::ALL
                    .into_iter()
                    .find(|c| c.name() == name)
                    .ok_or_else(|| err("unknown category"))?;
            }
            "seed" => {
                seed = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| err("bad seed"))?;
            }
            "component" => {
                let class = parts.next().ok_or_else(|| err("missing class"))?;
                let kind_s = parts.next().ok_or_else(|| err("missing kind"))?;
                let kind = ComponentKind::ALL
                    .into_iter()
                    .find(|k| format!("{k:?}") == kind_s)
                    .ok_or_else(|| err("unknown component kind"))?;
                let exported = parts.next() == Some("exported");
                let main = parts.next() == Some("MAIN");
                let class_sym = program
                    .interner
                    .get(class)
                    .ok_or_else(|| err("component class not in program"))?;
                components.push(Component {
                    class: class_sym,
                    kind,
                    exported,
                    intent_filters: if main {
                        vec![IntentFilter { action: "android.intent.action.MAIN".into() }]
                    } else {
                        vec![]
                    },
                });
            }
            "permission" => {
                let name = parts.next().ok_or_else(|| err("missing permission"))?;
                let p = Permission::ALL
                    .into_iter()
                    .find(|p| p.manifest_name() == name)
                    .ok_or_else(|| err("unknown permission"))?;
                permissions.push(p);
            }
            other => return Err(err(&format!("unknown key `{other}`"))),
        }
    }

    Ok(App {
        name: package.clone(),
        category,
        seed,
        program,
        manifest: Manifest { package, components, permissions },
    })
}

/// Exports the first `count` apps of a corpus under `root/<package>/`.
/// Returns the bundle directories written.
pub fn export_corpus(
    corpus: &crate::corpus::Corpus,
    count: usize,
    root: &Path,
) -> Result<Vec<std::path::PathBuf>, BundleError> {
    let mut dirs = Vec::new();
    for i in 0..count.min(corpus.size) {
        let app = corpus.generate(i);
        let dir = root.join(&app.name);
        save_bundle(&app, &dir)?;
        dirs.push(dir);
    }
    Ok(dirs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenConfig;
    use crate::corpus::Corpus;
    use crate::generator::generate_app;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gdroid-bundle-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn bundle_roundtrip_preserves_app() {
        let app = generate_app(0, 6501, &GenConfig::tiny());
        let dir = tmpdir("roundtrip");
        save_bundle(&app, &dir).unwrap();
        let loaded = load_bundle(&dir).unwrap();
        assert_eq!(loaded.name, app.name);
        assert_eq!(loaded.category, app.category);
        assert_eq!(loaded.seed, app.seed);
        assert_eq!(loaded.program.methods.len(), app.program.methods.len());
        assert_eq!(loaded.program.total_statements(), app.program.total_statements());
        assert_eq!(loaded.manifest.components.len(), app.manifest.components.len());
        assert_eq!(loaded.manifest.permissions, app.manifest.permissions);
        // Component classes resolve against the re-parsed interner.
        for c in &loaded.manifest.components {
            assert!(loaded.program.class_by_name(c.class).is_some());
        }
        // Launcher survives.
        assert_eq!(loaded.manifest.launcher().is_some(), app.manifest.launcher().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loaded_bundle_analyzes_identically() {
        use gdroid_ir::validate_program;
        let app = generate_app(0, 6502, &GenConfig::tiny());
        let dir = tmpdir("analyze");
        save_bundle(&app, &dir).unwrap();
        let loaded = load_bundle(&dir).unwrap();
        assert!(validate_program(&loaded.program).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_corpus_writes_bundles() {
        let corpus = Corpus::test_corpus(3);
        let dir = tmpdir("corpus");
        let dirs = export_corpus(&corpus, 3, &dir).unwrap();
        assert_eq!(dirs.len(), 3);
        for d in &dirs {
            assert!(d.join("app.jil").exists());
            assert!(d.join("manifest.txt").exists());
            load_bundle(d).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_manifest_is_rejected() {
        let app = generate_app(0, 6503, &GenConfig::tiny());
        let dir = tmpdir("bad");
        save_bundle(&app, &dir).unwrap();
        std::fs::write(dir.join("manifest.txt"), "nonsense line\n").unwrap();
        let err = load_bundle(&dir).unwrap_err();
        assert!(matches!(err, BundleError::Manifest(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
