#![warn(missing_docs)]

//! # gdroid-apk — synthetic Android app substrate
//!
//! The GDroid paper evaluates on 1000 real Google Play APKs. Real APKs (and
//! the Dalvik toolchain to decode them) are unavailable here, so this crate
//! provides the substitute substrate: a deterministic synthetic app
//! generator whose output corpus matches the structural characteristics the
//! paper reports (Table I) and exercises the same analysis code paths
//! (field aliasing, layered call graphs with occasional recursion, loops
//! that force fixed-point revisits, components with lifecycle callbacks,
//! and taint source→sink flows for the vetting layer).
//!
//! Entry points:
//!
//! * [`Corpus::paper`] — the 1000-app evaluation corpus behind every figure;
//! * [`generate_app`] — one app from a seed;
//! * [`AppStats`] / [`CorpusStats`] — Table I statistics;
//! * [`Framework`] — the modeled Android API surface with taint roles;
//! * [`bundle`] — on-disk app bundles (`app.jil` + `manifest.txt`), the
//!   repository's `.apk` stand-in.

pub mod app;
pub mod bundle;
pub mod config;
pub mod corpus;
pub mod framework;
pub mod generator;
pub mod manifest;
pub mod rng;
pub mod stats;

pub use app::{App, Category};
pub use bundle::{export_corpus, load_bundle, save_bundle, BundleError};
pub use config::GenConfig;
pub use corpus::{Corpus, PAPER_CORPUS_SIZE, PAPER_MASTER_SEED};
pub use framework::{builtin_api_roles, ApiMethod, ApiRole, Framework};
pub use generator::generate_app;
pub use manifest::{Component, ComponentKind, IntentFilter, Manifest, Permission};
pub use rng::Rng;
pub use stats::{AppStats, CorpusStats};
