//! The synthetic app generator.
//!
//! Given a seed and a [`GenConfig`], deterministically produces an [`App`]:
//! a class hierarchy over the modeled framework, a layered call graph (with
//! occasional recursion), method bodies mixing all nine statement kinds and
//! all seventeen expression kinds, components with lifecycle callbacks, and
//! a manifest. Optionally plants a source→sink data-flow ("leak") for the
//! vetting layer to find.
//!
//! Generation is two-phase:
//!
//! 1. **Planning** — class names, fields, and method *signatures* with
//!    call-graph layers are decided first, so that any body can call any
//!    planned method.
//! 2. **Body generation** — a budgeted shape grammar emits straight-line
//!    statements, `if` diamonds, loops (back edges drive the worklist's
//!    fixed-point revisits), and switches (fan-out drives worklist width).

use crate::app::{App, Category};
use crate::config::GenConfig;
use crate::framework::{ApiMethod, ApiRole, Framework};
use crate::manifest::{Component, ComponentKind, IntentFilter, Manifest, Permission};
use crate::rng::Rng;
use gdroid_ir::{
    BinOp, CallKind, ClassId, CmpKind, Expr, FieldId, JType, Lhs, Literal, MethodBuilder,
    MethodKind, MonitorOp, ProgramBuilder, Signature, Stmt, Symbol, UnOp, VarId, Visibility,
};

/// A planned (not yet generated) method.
#[derive(Clone, Debug)]
struct PlannedMethod {
    class: ClassId,
    name: String,
    /// Reference-typed parameter count (besides `this`).
    ref_params: usize,
    /// Primitive parameter count.
    prim_params: usize,
    returns_ref: bool,
    is_static: bool,
    /// Call-graph layer; bodies call strictly lower layers (except
    /// recursion), lifecycle callbacks sit above all layers.
    layer: usize,
    lifecycle: bool,
}

/// Generates one app from a seed.
pub fn generate_app(index: usize, seed: u64, config: &GenConfig) -> App {
    let mut rng = Rng::new(seed);
    let category = Category::ALL[rng.weighted(&Category::weights())];
    let mut pb = ProgramBuilder::new();
    let fw = Framework::install(&mut pb);

    let gen = AppGen { rng, config, category, index };
    gen.run(pb, fw, seed)
}

struct AppGen<'a> {
    rng: Rng,
    config: &'a GenConfig,
    category: Category,
    index: usize,
}

impl<'a> AppGen<'a> {
    fn run(mut self, mut pb: ProgramBuilder, fw: Framework, seed: u64) -> App {
        let cfg = self.config;
        let n_classes = self
            .rng
            .log_normal_int(
                cfg.classes_median * self.category.size_factor() * cfg.scale,
                cfg.classes_sigma,
                2,
                4000,
            )
            .max(2);

        // --- plan classes ------------------------------------------------
        let n_components = self.rng.range(cfg.components.0, cfg.components.1).min(n_classes);
        let mut classes: Vec<ClassId> = Vec::with_capacity(n_classes);
        let mut component_info: Vec<(ClassId, ComponentKind)> = Vec::new();
        for ci in 0..n_classes {
            let name = format!("com/gen/app{}/C{ci}", self.index);
            let class = if ci < n_components {
                // Component classes extend a framework base; the first is
                // always the launcher activity.
                let kind = if ci == 0 {
                    ComponentKind::Activity
                } else {
                    *self.rng.pick(&ComponentKind::ALL)
                };
                let base = fw.component_bases
                    [ComponentKind::ALL.iter().position(|&k| k == kind).expect("kind in ALL")];
                let c = pb.class(&name).extends(base).build();
                component_info.push((c, kind));
                c
            } else if !classes.is_empty() && self.rng.chance(0.15) {
                // In-app inheritance.
                let sup = *self.rng.pick(&classes);
                pb.class(&name).extends(sup).build()
            } else {
                pb.class(&name).extends(fw.object).build()
            };
            classes.push(class);
        }

        // --- plan fields --------------------------------------------------
        let mut ref_fields: Vec<FieldId> = Vec::new();
        let mut prim_fields: Vec<FieldId> = Vec::new();
        let mut static_ref_fields: Vec<FieldId> = Vec::new();
        for (ci, &class) in classes.iter().enumerate() {
            let n_fields = self.rng.range(cfg.fields_per_class.0, cfg.fields_per_class.1);
            for fi in 0..n_fields {
                let is_ref = self.rng.chance(cfg.ref_field_fraction);
                let is_static = self.rng.chance(0.12);
                let ty = if is_ref {
                    // Field types point at other app classes or Object.
                    if self.rng.chance(0.6) && !classes.is_empty() {
                        let target = classes[self.rng.zipf(classes.len(), 1.1)];
                        JType::Object(pb.program().classes[target].name)
                    } else {
                        JType::Object(fw.object_sym)
                    }
                } else {
                    JType::Int
                };
                let fid = pb.field(class, &format!("f{ci}_{fi}"), ty, is_static);
                match (is_ref, is_static) {
                    (true, true) => static_ref_fields.push(fid),
                    (true, false) => ref_fields.push(fid),
                    (false, _) => prim_fields.push(fid),
                }
            }
        }

        // --- plan methods -------------------------------------------------
        let mut plan: Vec<PlannedMethod> = Vec::new();
        for (ci, &class) in classes.iter().enumerate() {
            let n_methods = self.rng.range(cfg.methods_per_class.0, cfg.methods_per_class.1);
            for mi in 0..n_methods {
                let ref_params = self.rng.range(0, cfg.max_params.min(2));
                let prim_params = self.rng.range(0, cfg.max_params - ref_params);
                plan.push(PlannedMethod {
                    class,
                    name: format!("m{ci}_{mi}"),
                    ref_params,
                    prim_params,
                    returns_ref: self.rng.chance(0.4),
                    is_static: self.rng.chance(0.25),
                    layer: self.rng.range(0, cfg.layers - 1),
                    lifecycle: false,
                });
            }
        }
        // Lifecycle callbacks for component classes.
        for &(class, kind) in &component_info {
            for cb in kind.lifecycle_callbacks() {
                plan.push(PlannedMethod {
                    class,
                    name: (*cb).to_owned(),
                    ref_params: 1, // Intent/Bundle-style argument
                    prim_params: 0,
                    returns_ref: false,
                    is_static: false,
                    layer: cfg.layers, // above all plain layers
                    lifecycle: true,
                });
            }
        }

        // --- shared-library packages --------------------------------------
        // Each app draws K distinct packages from the corpus-wide pool.
        // Package bodies are generated from the *pool* seed (not the app
        // seed), so a package is byte-identical — up to symbol/field
        // numbering — in every app that bundles it. Library plan entries
        // are appended after the app's so app bodies can call into them
        // via the layer lanes; library bodies are emitted inside
        // `gen_lib_package` against package-local state only.
        let app_plan_len = plan.len();
        if cfg.lib_packages_per_app > 0 && cfg.lib_pool_size > 0 {
            let k = cfg.lib_packages_per_app.min(cfg.lib_pool_size);
            let mut picks: Vec<usize> = Vec::with_capacity(k);
            while picks.len() < k {
                let c = self.rng.below(cfg.lib_pool_size as u64) as usize;
                if !picks.contains(&c) {
                    picks.push(c);
                }
            }
            picks.sort_unstable();
            for pkg in picks {
                let pkg_plan = self.gen_lib_package(&mut pb, &fw, pkg);
                plan.extend(pkg_plan);
            }
        }

        // Pre-compute signatures for call generation.
        let obj_ty = JType::Object(fw.object_sym);
        let sigs: Vec<Signature> = plan
            .iter()
            .map(|pm| {
                let mut params = vec![obj_ty; pm.ref_params];
                params.extend(std::iter::repeat_n(JType::Int, pm.prim_params));
                Signature::new(
                    pb.program().classes[pm.class].name,
                    pb.intern(&pm.name),
                    params,
                    if pm.returns_ref { obj_ty } else { JType::Void },
                )
            })
            .collect();
        // Callee candidates by layer.
        let mut by_layer: Vec<Vec<usize>> = vec![Vec::new(); cfg.layers + 1];
        for (i, pm) in plan.iter().enumerate() {
            by_layer[pm.layer].push(i);
        }

        // Decide whether this app leaks, and through which component.
        let leaky = self.rng.chance(cfg.leak_prob);

        // --- generate bodies ----------------------------------------------
        // App bodies allocate over every class in the program (framework,
        // app, and bundled libraries); the pool is fixed once planning is
        // complete, so hoisting it out of the per-body loop preserves the
        // historical draw sequence exactly.
        let app_pool: Vec<Symbol> = pb.program().classes.iter().map(|c| c.name).collect();
        let mut uses_source_api = false;
        for (i, pm) in plan.iter().enumerate().take(app_plan_len) {
            let budget = self.rng.log_normal_int(cfg.stmts_median, cfg.stmts_sigma, 3, 320);
            // The first lifecycle callback of a leaky app gets the planted
            // source→sink flow.
            let plant_leak = leaky && pm.lifecycle && {
                // Only plant once: the first lifecycle method in plan order.
                plan.iter().position(|p| p.lifecycle) == Some(i)
            };
            let used_source = self.gen_body(
                &mut pb,
                pm,
                &sigs[i],
                &plan,
                &sigs,
                &by_layer,
                &fw,
                &ref_fields,
                &prim_fields,
                &static_ref_fields,
                budget,
                plant_leak,
                &app_pool,
            );
            uses_source_api |= used_source;
        }

        // --- manifest -------------------------------------------------------
        let mut permissions = vec![Permission::Internet];
        if uses_source_api {
            permissions.push(Permission::ReadPhoneState);
        }
        let extra = self.rng.range(0, 3);
        for _ in 0..extra {
            let p = *self.rng.pick(&Permission::ALL);
            if !permissions.contains(&p) {
                permissions.push(p);
            }
        }
        let components = component_info
            .iter()
            .enumerate()
            .map(|(i, &(class, kind))| Component {
                class: pb.program().classes[class].name,
                kind,
                exported: i == 0 || self.rng.chance(0.3),
                intent_filters: if i == 0 {
                    vec![IntentFilter { action: "android.intent.action.MAIN".into() }]
                } else {
                    Vec::new()
                },
            })
            .collect();

        let name = format!("com.gen.app{:04}", self.index);
        let program = pb.finish();
        // Unconditional (not debug_assert): corpus runs are release builds,
        // and an invalid program must never reach the kernels. Validation
        // is linear and cheap next to the analysis itself.
        let errors = gdroid_ir::validate_program(&program);
        assert!(
            errors.is_empty(),
            "generator produced invalid IR (seed {seed}): {:?}",
            errors.first()
        );
        App {
            name: name.clone(),
            category: self.category,
            seed,
            program,
            manifest: Manifest { package: name, components, permissions },
        }
    }

    /// Plans and generates one shared-library package from the pool seed.
    ///
    /// Everything inside runs on `Rng::new(lib_pool_seed).derive(pkg)` —
    /// independent of the app's rng state — and references only
    /// package-local classes, fields, and methods (plus the framework),
    /// so package `pkg` has the same structural content in every app of a
    /// corpus. Library classes all extend `Object` directly: no app class
    /// can alter CHA dispatch over them, which keeps the canonical method
    /// hash stable across apps. Returns the package's plan entries for the
    /// caller to append (app bodies call them via the layer lanes).
    fn gen_lib_package(
        &mut self,
        pb: &mut ProgramBuilder,
        fw: &Framework,
        pkg: usize,
    ) -> Vec<PlannedMethod> {
        let cfg = self.config;
        let pool_rng = Rng::new(cfg.lib_pool_seed).derive(pkg as u64);
        let saved_rng = std::mem::replace(&mut self.rng, pool_rng);

        // Classes.
        let n_classes =
            self.rng.range(cfg.lib_classes_per_package.0, cfg.lib_classes_per_package.1).max(1);
        let mut classes: Vec<ClassId> = Vec::with_capacity(n_classes);
        for ci in 0..n_classes {
            let name = format!("com/lib/p{pkg}/C{ci}");
            classes.push(pb.class(&name).extends(fw.object).build());
        }

        // Fields (package-local pools).
        let mut ref_fields: Vec<FieldId> = Vec::new();
        let mut prim_fields: Vec<FieldId> = Vec::new();
        let mut static_ref_fields: Vec<FieldId> = Vec::new();
        for (ci, &class) in classes.iter().enumerate() {
            let n_fields = self.rng.range(cfg.fields_per_class.0, cfg.fields_per_class.1);
            for fi in 0..n_fields {
                let is_ref = self.rng.chance(cfg.ref_field_fraction);
                let is_static = self.rng.chance(0.12);
                let ty = if is_ref {
                    if self.rng.chance(0.6) {
                        let target = classes[self.rng.zipf(classes.len(), 1.1)];
                        JType::Object(pb.program().classes[target].name)
                    } else {
                        JType::Object(fw.object_sym)
                    }
                } else {
                    JType::Int
                };
                let fid = pb.field(class, &format!("f{ci}_{fi}"), ty, is_static);
                match (is_ref, is_static) {
                    (true, true) => static_ref_fields.push(fid),
                    (true, false) => ref_fields.push(fid),
                    (false, _) => prim_fields.push(fid),
                }
            }
        }

        // Method plan.
        let mut pkg_plan: Vec<PlannedMethod> = Vec::new();
        for (ci, &class) in classes.iter().enumerate() {
            let n_methods = self.rng.range(cfg.methods_per_class.0, cfg.methods_per_class.1);
            for mi in 0..n_methods {
                let ref_params = self.rng.range(0, cfg.max_params.min(2));
                let prim_params = self.rng.range(0, cfg.max_params - ref_params);
                pkg_plan.push(PlannedMethod {
                    class,
                    name: format!("m{ci}_{mi}"),
                    ref_params,
                    prim_params,
                    returns_ref: self.rng.chance(0.4),
                    is_static: self.rng.chance(0.25),
                    layer: self.rng.range(0, cfg.layers - 1),
                    lifecycle: false,
                });
            }
        }

        // Package-local signatures and layer lanes: library bodies only
        // call within the package (and the framework).
        let obj_ty = JType::Object(fw.object_sym);
        let pkg_sigs: Vec<Signature> = pkg_plan
            .iter()
            .map(|pm| {
                let mut params = vec![obj_ty; pm.ref_params];
                params.extend(std::iter::repeat_n(JType::Int, pm.prim_params));
                Signature::new(
                    pb.program().classes[pm.class].name,
                    pb.intern(&pm.name),
                    params,
                    if pm.returns_ref { obj_ty } else { JType::Void },
                )
            })
            .collect();
        let mut pkg_by_layer: Vec<Vec<usize>> = vec![Vec::new(); cfg.layers + 1];
        for (i, pm) in pkg_plan.iter().enumerate() {
            pkg_by_layer[pm.layer].push(i);
        }
        let mut pkg_pool: Vec<Symbol> = vec![fw.object_sym];
        pkg_pool.extend(classes.iter().map(|&c| pb.program().classes[c].name));

        // Bodies.
        for (i, pm) in pkg_plan.iter().enumerate() {
            let budget = self.rng.log_normal_int(cfg.stmts_median, cfg.stmts_sigma, 3, 320);
            self.gen_body(
                pb,
                pm,
                &pkg_sigs[i],
                &pkg_plan,
                &pkg_sigs,
                &pkg_by_layer,
                fw,
                &ref_fields,
                &prim_fields,
                &static_ref_fields,
                budget,
                false,
                &pkg_pool,
            );
        }

        self.rng = saved_rng;
        pkg_plan
    }

    // One method body. Returns whether a taint-source API was called.
    #[allow(clippy::too_many_arguments)]
    fn gen_body(
        &mut self,
        pb: &mut ProgramBuilder,
        pm: &PlannedMethod,
        _sig: &Signature,
        plan: &[PlannedMethod],
        sigs: &[Signature],
        by_layer: &[Vec<usize>],
        fw: &Framework,
        ref_fields: &[FieldId],
        prim_fields: &[FieldId],
        static_ref_fields: &[FieldId],
        budget: usize,
        plant_leak: bool,
        class_pool: &[Symbol],
    ) -> bool {
        let cfg = self.config;
        let kind = if pm.lifecycle {
            MethodKind::LifecycleCallback
        } else if pm.is_static {
            MethodKind::Static
        } else {
            MethodKind::Instance
        };
        let mut mb = pb.method_from_plan(pm.class, &pm.name, kind);
        let obj_ty = JType::Object(fw.object_sym);

        // Parameters.
        let mut refs: Vec<VarId> = Vec::new();
        let mut prims: Vec<VarId> = Vec::new();
        if !pm.is_static && !matches!(kind, MethodKind::Static) {
            refs.push(mb.this());
        }
        for i in 0..pm.ref_params {
            refs.push(mb.param(&format!("rp{i}"), obj_ty));
        }
        for i in 0..pm.prim_params {
            prims.push(mb.param(&format!("pp{i}"), JType::Int));
        }
        mb.set_returns(if pm.returns_ref { obj_ty } else { JType::Void });

        // Locals.
        let n_ref = self.rng.range(cfg.ref_locals.0, cfg.ref_locals.1);
        for i in 0..n_ref {
            refs.push(mb.local(&format!("r{i}"), obj_ty));
        }
        let n_prim = self.rng.range(cfg.prim_locals.0, cfg.prim_locals.1);
        for i in 0..n_prim {
            prims.push(mb.local(&format!("p{i}"), JType::Int));
        }
        let arr = mb.local("arr", JType::object_array(fw.object_sym));

        // Initialize a couple of locals so reads are meaningful.
        let seed_ref = refs[self.rng.below(refs.len() as u64) as usize];
        let cls = class_pool[self.rng.zipf(class_pool.len(), 1.0)];
        mb.stmt(Stmt::Assign {
            lhs: Lhs::Var(seed_ref),
            rhs: Expr::New { ty: JType::Object(cls) },
        });
        let seed_prim = prims[self.rng.below(prims.len() as u64) as usize];
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(seed_prim), rhs: Expr::Lit(Literal::Int(0)) });
        mb.stmt(Stmt::Assign {
            lhs: Lhs::Var(arr),
            rhs: Expr::New { ty: JType::object_array(fw.object_sym) },
        });

        // Real methods touch a handful of distinct fields; pre-picking a
        // small per-method field set keeps the analysis' heap-slot pool at
        // Table I scale (≈116 slots) without type bookkeeping.
        let n_method_fields = self.rng.range(2, 6).min(ref_fields.len().max(1));
        let mut method_fields: Vec<FieldId> = Vec::with_capacity(n_method_fields);
        while method_fields.len() < n_method_fields && !ref_fields.is_empty() {
            let f = ref_fields[self.rng.zipf(ref_fields.len(), 0.8)];
            if !method_fields.contains(&f) {
                method_fields.push(f);
            }
        }

        let mut ctx = BodyCtx {
            refs,
            prims,
            arr,
            used_source: false,
            layer: pm.layer,
            lifecycle: pm.lifecycle,
            class_pool,
        };

        // Planted leak: t = <source>(); Log.d(tag, t) — routed through a
        // field store/load so the flow needs real points-to reasoning.
        if plant_leak {
            self.emit_leak(&mut mb, &mut ctx, fw, &method_fields);
        }

        self.gen_block(
            &mut mb,
            &mut ctx,
            plan,
            sigs,
            by_layer,
            fw,
            &method_fields,
            prim_fields,
            static_ref_fields,
            0,
            budget,
        );

        // Final return.
        if pm.returns_ref {
            let v = *self.rng.pick(&ctx.refs);
            mb.stmt(Stmt::Return { var: Some(v) });
        } else {
            mb.stmt(Stmt::Return { var: None });
        }
        mb.build();
        ctx.used_source
    }

    fn emit_leak(
        &mut self,
        mb: &mut MethodBuilder<'_>,
        ctx: &mut BodyCtx<'_>,
        fw: &Framework,
        ref_fields: &[FieldId],
    ) {
        let source: Vec<&ApiMethod> = fw.api_with_role(ApiRole::Source).collect();
        let sink: Vec<&ApiMethod> = fw.api_with_role(ApiRole::Sink).collect();
        let src = source[self.rng.below(source.len() as u64) as usize].clone();
        let snk = sink[self.rng.below(sink.len() as u64) as usize].clone();
        let tainted = ctx.refs[0];
        let recv = *self.rng.pick(&ctx.refs);
        let mut args = vec![recv];
        args.extend(std::iter::repeat_n(recv, src.sig.params.len()));
        mb.stmt(Stmt::Call {
            ret: Some(tainted),
            kind: CallKind::Virtual,
            sig: src.sig.clone(),
            args,
        });
        // Route through a field when one exists: this.f = tainted; t2 = this.f.
        let via = if !ref_fields.is_empty() && ctx.refs.len() >= 2 {
            let f = ref_fields[self.rng.below(ref_fields.len() as u64) as usize];
            let holder = ctx.refs[1];
            mb.stmt(Stmt::Assign {
                lhs: Lhs::Field { base: holder, field: f },
                rhs: Expr::Var(tainted),
            });
            let out = *self.rng.pick(&ctx.refs);
            mb.stmt(Stmt::Assign {
                lhs: Lhs::Var(out),
                rhs: Expr::Access { base: holder, field: f },
            });
            out
        } else {
            tainted
        };
        // The tainted value goes in the first parameter slot; for
        // zero-parameter instance sinks it becomes the receiver.
        let mut sink_args = Vec::new();
        if snk.is_instance {
            if snk.sig.params.is_empty() {
                sink_args.push(via);
            } else {
                sink_args.push(*self.rng.pick(&ctx.refs));
            }
        }
        if !snk.sig.params.is_empty() {
            sink_args.push(via);
        }
        while sink_args.len() < snk.sig.params.len() + usize::from(snk.is_instance) {
            sink_args.push(*self.rng.pick(&ctx.refs));
        }
        mb.stmt(Stmt::Call {
            ret: None,
            kind: if snk.is_instance { CallKind::Virtual } else { CallKind::Static },
            sig: snk.sig.clone(),
            args: sink_args,
        });
        ctx.used_source = true;
    }

    /// Emits a block of roughly `budget` statements at nesting `depth`.
    #[allow(clippy::too_many_arguments)]
    fn gen_block(
        &mut self,
        mb: &mut MethodBuilder<'_>,
        ctx: &mut BodyCtx<'_>,
        plan: &[PlannedMethod],
        sigs: &[Signature],
        by_layer: &[Vec<usize>],
        fw: &Framework,
        ref_fields: &[FieldId],
        prim_fields: &[FieldId],
        static_ref_fields: &[FieldId],
        depth: usize,
        budget: usize,
    ) {
        let cfg = self.config;
        let mut remaining = budget;
        while remaining > 0 {
            let can_nest = depth < 3 && remaining >= 5;
            let weights = if can_nest {
                [cfg.simple_weight, cfg.branch_weight, cfg.loop_weight, cfg.switch_weight]
            } else {
                [1, 0, 0, 0]
            };
            match self.rng.weighted(&weights) {
                // ---- straight-line statement -----------------------------
                0 => {
                    self.emit_simple(
                        mb,
                        ctx,
                        plan,
                        sigs,
                        by_layer,
                        fw,
                        ref_fields,
                        prim_fields,
                        static_ref_fields,
                    );
                    remaining -= 1;
                }
                // ---- if diamond -------------------------------------------
                1 => {
                    let inner = (remaining - 2).min(remaining / 2).max(1);
                    let cond = *self.rng.pick(&ctx.prims);
                    let if_at = mb.stmt(Stmt::If { cond, target: gdroid_ir::StmtIdx(0) });
                    // then-branch
                    let then_budget = inner / 2 + 1;
                    self.gen_block(
                        mb,
                        ctx,
                        plan,
                        sigs,
                        by_layer,
                        fw,
                        ref_fields,
                        prim_fields,
                        static_ref_fields,
                        depth + 1,
                        then_budget,
                    );
                    let goto_at = mb.stmt(Stmt::Goto { target: gdroid_ir::StmtIdx(0) });
                    let else_start = mb.next_idx();
                    mb.patch_target(if_at, else_start).expect("if_at is an If");
                    let else_budget = inner - then_budget.min(inner);
                    if else_budget > 0 {
                        self.gen_block(
                            mb,
                            ctx,
                            plan,
                            sigs,
                            by_layer,
                            fw,
                            ref_fields,
                            prim_fields,
                            static_ref_fields,
                            depth + 1,
                            else_budget,
                        );
                    } else {
                        mb.stmt(Stmt::Empty);
                    }
                    let end = mb.next_idx();
                    mb.patch_target(goto_at, end).expect("goto_at is a Goto");
                    remaining = remaining.saturating_sub(inner + 2);
                }
                // ---- loop ---------------------------------------------------
                2 => {
                    let inner = (remaining - 3).min(remaining / 2).max(1);
                    let i_var = *self.rng.pick(&ctx.prims);
                    let cond = *self.rng.pick(&ctx.prims);
                    mb.stmt(Stmt::Assign { lhs: Lhs::Var(i_var), rhs: Expr::Lit(Literal::Int(0)) });
                    let head = mb.next_idx();
                    let exit_at = mb.stmt(Stmt::If { cond, target: gdroid_ir::StmtIdx(0) });
                    self.gen_block(
                        mb,
                        ctx,
                        plan,
                        sigs,
                        by_layer,
                        fw,
                        ref_fields,
                        prim_fields,
                        static_ref_fields,
                        depth + 1,
                        inner,
                    );
                    mb.stmt(Stmt::Assign {
                        lhs: Lhs::Var(i_var),
                        rhs: Expr::Binary { op: BinOp::Add, lhs: i_var, rhs: cond },
                    });
                    mb.stmt(Stmt::Goto { target: head });
                    let end = mb.next_idx();
                    mb.patch_target(exit_at, end).expect("exit_at is an If");
                    remaining = remaining.saturating_sub(inner + 4);
                }
                // ---- switch -------------------------------------------------
                _ => {
                    let n_cases = self.rng.range(3, 8);
                    let inner = (remaining - 2).min(remaining / 2).max(n_cases);
                    let scrut = *self.rng.pick(&ctx.prims);
                    let sw_at = mb.stmt(Stmt::Switch {
                        var: scrut,
                        targets: Vec::new(),
                        default: gdroid_ir::StmtIdx(0),
                    });
                    let mut case_starts = Vec::with_capacity(n_cases);
                    let mut gotos = Vec::with_capacity(n_cases);
                    // Equal arm lengths: the arms' frontiers reach the
                    // reconvergence node in the same worklist round, so the
                    // join is inserted once per arm — the repetition the
                    // paper's Fig. 7 (node N33) shows MER's merge removing.
                    let per_case = (inner / n_cases).max(1);
                    for _ in 0..n_cases {
                        case_starts.push(mb.next_idx());
                        self.gen_block(
                            mb,
                            ctx,
                            plan,
                            sigs,
                            by_layer,
                            fw,
                            ref_fields,
                            prim_fields,
                            static_ref_fields,
                            depth + 1,
                            per_case,
                        );
                        gotos.push(mb.stmt(Stmt::Goto { target: gdroid_ir::StmtIdx(0) }));
                    }
                    let end = mb.next_idx();
                    for g in gotos {
                        mb.patch_target(g, end).expect("g is a Goto");
                    }
                    // Default falls to end; patch the switch statement.
                    let default = end;
                    let targets = case_starts;
                    mb.replace_switch(sw_at, scrut, targets, default).expect("sw_at is a Switch");
                    remaining = remaining.saturating_sub(inner + 2 + n_cases);
                }
            }
        }
    }

    /// Emits one straight-line statement, sampled to cover all expression
    /// kinds with realistic Android frequencies.
    #[allow(clippy::too_many_arguments)]
    fn emit_simple(
        &mut self,
        mb: &mut MethodBuilder<'_>,
        ctx: &mut BodyCtx<'_>,
        plan: &[PlannedMethod],
        sigs: &[Signature],
        by_layer: &[Vec<usize>],
        fw: &Framework,
        ref_fields: &[FieldId],
        prim_fields: &[FieldId],
        static_ref_fields: &[FieldId],
    ) {
        if self.rng.chance(self.config.call_fraction) {
            self.emit_call(mb, ctx, plan, sigs, by_layer, fw);
            return;
        }
        let r = |s: &mut Self, c: &BodyCtx| *s.rng.pick(&c.refs);
        let p = |s: &mut Self, c: &BodyCtx| *s.rng.pick(&c.prims);
        let obj_ty = JType::Object(fw.object_sym);
        // Weighted mix of expression kinds: copies and field traffic
        // dominate real Dalvik code; the exotic kinds appear with low
        // weight so every partition is populated.
        let choice = self.rng.weighted(&[
            14, // 0: ref copy
            10, // 1: field read
            10, // 2: field write
            8,  // 3: new
            8,  // 4: prim literal
            6,  // 5: binary
            5,  // 6: string literal
            4,  // 7: static read
            3,  // 8: static write
            4,  // 9: array read
            4,  // 10: array write
            3,  // 11: cast
            2,  // 12: null
            2,  // 13: instanceof
            2,  // 14: length
            2,  // 15: unary
            2,  // 16: cmp
            1,  // 17: constclass
            1,  // 18: tuple
            1,  // 19: monitor pair
            2,  // 20: guarded throw + handler
            2,  // 21: primitive field traffic
            1,  // 22: nop
        ]);
        match choice {
            0 => {
                let (a, b) = (r(self, ctx), r(self, ctx));
                mb.stmt(Stmt::Assign { lhs: Lhs::Var(a), rhs: Expr::Var(b) });
            }
            1 if !ref_fields.is_empty() => {
                let f = ref_fields[self.rng.below(ref_fields.len() as u64) as usize];
                let (dst, base) = (r(self, ctx), r(self, ctx));
                mb.stmt(Stmt::Assign { lhs: Lhs::Var(dst), rhs: Expr::Access { base, field: f } });
            }
            2 if !ref_fields.is_empty() => {
                let f = ref_fields[self.rng.below(ref_fields.len() as u64) as usize];
                let (base, src) = (r(self, ctx), r(self, ctx));
                mb.stmt(Stmt::Assign { lhs: Lhs::Field { base, field: f }, rhs: Expr::Var(src) });
            }
            3 => {
                let dst = r(self, ctx);
                let cls = ctx.class_pool[self.rng.zipf(ctx.class_pool.len(), 1.0)];
                mb.stmt(Stmt::Assign {
                    lhs: Lhs::Var(dst),
                    rhs: Expr::New { ty: JType::Object(cls) },
                });
            }
            4 => {
                let dst = p(self, ctx);
                let v = self.rng.below(1000) as i64;
                mb.stmt(Stmt::Assign { lhs: Lhs::Var(dst), rhs: Expr::Lit(Literal::Int(v)) });
            }
            5 => {
                let (d, a, b) = (p(self, ctx), p(self, ctx), p(self, ctx));
                let op = *self.rng.pick(&[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                ]);
                mb.stmt(Stmt::Assign {
                    lhs: Lhs::Var(d),
                    rhs: Expr::Binary { op, lhs: a, rhs: b },
                });
            }
            6 => {
                let dst = r(self, ctx);
                let s = mb.intern(&format!("str{}", self.rng.below(64)));
                mb.stmt(Stmt::Assign { lhs: Lhs::Var(dst), rhs: Expr::Lit(Literal::Str(s)) });
            }
            7 if !static_ref_fields.is_empty() => {
                let f = static_ref_fields[self.rng.below(static_ref_fields.len() as u64) as usize];
                let dst = r(self, ctx);
                mb.stmt(Stmt::Assign { lhs: Lhs::Var(dst), rhs: Expr::StaticField { field: f } });
            }
            8 if !static_ref_fields.is_empty() => {
                let f = static_ref_fields[self.rng.below(static_ref_fields.len() as u64) as usize];
                let src = r(self, ctx);
                mb.stmt(Stmt::Assign { lhs: Lhs::StaticField { field: f }, rhs: Expr::Var(src) });
            }
            9 => {
                let (dst, i) = (r(self, ctx), p(self, ctx));
                let arr = ctx.arr;
                mb.stmt(Stmt::Assign {
                    lhs: Lhs::Var(dst),
                    rhs: Expr::Indexing { base: arr, index: i },
                });
            }
            10 => {
                let (src, i) = (r(self, ctx), p(self, ctx));
                let arr = ctx.arr;
                mb.stmt(Stmt::Assign {
                    lhs: Lhs::ArrayElem { base: arr, index: i },
                    rhs: Expr::Var(src),
                });
            }
            11 => {
                let (d, s) = (r(self, ctx), r(self, ctx));
                mb.stmt(Stmt::Assign {
                    lhs: Lhs::Var(d),
                    rhs: Expr::Cast { ty: obj_ty, operand: s },
                });
            }
            12 => {
                let d = r(self, ctx);
                mb.stmt(Stmt::Assign { lhs: Lhs::Var(d), rhs: Expr::Null });
            }
            13 => {
                let (d, s) = (p(self, ctx), r(self, ctx));
                mb.stmt(Stmt::Assign {
                    lhs: Lhs::Var(d),
                    rhs: Expr::InstanceOf { operand: s, ty: obj_ty },
                });
            }
            14 => {
                let d = p(self, ctx);
                let arr = ctx.arr;
                mb.stmt(Stmt::Assign { lhs: Lhs::Var(d), rhs: Expr::Length { base: arr } });
            }
            15 => {
                let (d, s) = (p(self, ctx), p(self, ctx));
                let op = if self.rng.chance(0.5) { UnOp::Neg } else { UnOp::Not };
                mb.stmt(Stmt::Assign { lhs: Lhs::Var(d), rhs: Expr::Unary { op, operand: s } });
            }
            16 => {
                let (d, a, b) = (p(self, ctx), p(self, ctx), p(self, ctx));
                let kind = *self.rng.pick(&[CmpKind::Cmp, CmpKind::Cmpl, CmpKind::Cmpg]);
                mb.stmt(Stmt::Assign { lhs: Lhs::Var(d), rhs: Expr::Cmp { kind, lhs: a, rhs: b } });
            }
            17 => {
                let d = r(self, ctx);
                mb.stmt(Stmt::Assign { lhs: Lhs::Var(d), rhs: Expr::ConstClass { ty: obj_ty } });
            }
            18 => {
                let d = r(self, ctx);
                let n = self.rng.range(2, 3.min(ctx.refs.len()));
                let elems = (0..n).map(|_| r(self, ctx)).collect();
                mb.stmt(Stmt::Assign { lhs: Lhs::Var(d), rhs: Expr::Tuple { elems } });
            }
            19 => {
                let v = r(self, ctx);
                mb.stmt(Stmt::Monitor { op: MonitorOp::Enter, var: v });
                mb.stmt(Stmt::Monitor { op: MonitorOp::Exit, var: v });
            }
            20 => {
                // Guarded throw with a handler head — the Dalvik-style
                // lowering of a try/catch. The ICFG layer routes the throw
                // to the nearest following `exception` statement.
                let cond = p(self, ctx);
                let exc = r(self, ctx);
                let handler_var = r(self, ctx);
                let guard = mb.stmt(Stmt::If { cond, target: gdroid_ir::StmtIdx(0) });
                mb.stmt(Stmt::Throw { var: exc });
                let handler = mb.next_idx();
                mb.patch_target(guard, handler).expect("guard is an If");
                mb.stmt(Stmt::Assign { lhs: Lhs::Var(handler_var), rhs: Expr::Exception });
            }
            21 if !prim_fields.is_empty() => {
                // Primitive field traffic: identity for points-to, but a
                // real heap access for the GPU memory model.
                let f = prim_fields[self.rng.below(prim_fields.len() as u64) as usize];
                let (base, v) = (r(self, ctx), p(self, ctx));
                if self.rng.chance(0.5) {
                    mb.stmt(Stmt::Assign {
                        lhs: Lhs::Var(v),
                        rhs: Expr::Access { base, field: f },
                    });
                } else {
                    mb.stmt(Stmt::Assign { lhs: Lhs::Field { base, field: f }, rhs: Expr::Var(v) });
                }
            }
            _ => {
                mb.stmt(Stmt::Empty);
            }
        }
    }

    fn emit_call(
        &mut self,
        mb: &mut MethodBuilder<'_>,
        ctx: &mut BodyCtx<'_>,
        plan: &[PlannedMethod],
        sigs: &[Signature],
        by_layer: &[Vec<usize>],
        fw: &Framework,
    ) {
        let use_api = self.rng.chance(self.config.api_call_fraction);
        if use_api {
            // Neutral API calls dominate; sources appear occasionally
            // (lifecycle methods of permission-holding apps call them).
            let neutral: Vec<&ApiMethod> = fw.api_with_role(ApiRole::Neutral).collect();
            let api = if ctx.lifecycle && self.rng.chance(0.1) {
                let sources: Vec<&ApiMethod> = fw.api_with_role(ApiRole::Source).collect();
                ctx.used_source = true;
                sources[self.rng.below(sources.len() as u64) as usize].clone()
            } else {
                neutral[self.rng.below(neutral.len() as u64) as usize].clone()
            };
            let mut args = Vec::new();
            if api.is_instance {
                args.push(*self.rng.pick(&ctx.refs));
            }
            for _ in 0..api.sig.params.len() {
                args.push(*self.rng.pick(&ctx.refs));
            }
            let ret = if api.sig.ret.is_reference() && self.rng.chance(0.8) {
                Some(*self.rng.pick(&ctx.refs))
            } else {
                None
            };
            mb.stmt(Stmt::Call {
                ret,
                kind: if api.is_instance { CallKind::Virtual } else { CallKind::Static },
                sig: api.sig,
                args,
            });
            return;
        }
        // App-method call: target a lower layer, or (rarely) the same layer
        // to create recursion.
        let target_layer = if ctx.layer > 0 && !self.rng.chance(self.config.recursion_prob) {
            self.rng.below(ctx.layer as u64) as usize
        } else {
            ctx.layer.min(self.config.layers - 1)
        };
        let candidates = &by_layer[target_layer];
        if candidates.is_empty() {
            mb.stmt(Stmt::Empty);
            return;
        }
        let idx = candidates[self.rng.zipf(candidates.len(), 0.75)];
        let callee = &plan[idx];
        let sig = sigs[idx].clone();
        let mut args = Vec::new();
        if !callee.is_static {
            args.push(*self.rng.pick(&ctx.refs));
        }
        for _ in 0..callee.ref_params {
            args.push(*self.rng.pick(&ctx.refs));
        }
        for _ in 0..callee.prim_params {
            args.push(*self.rng.pick(&ctx.prims));
        }
        let ret = if callee.returns_ref { Some(*self.rng.pick(&ctx.refs)) } else { None };
        mb.stmt(Stmt::Call {
            ret,
            kind: if callee.is_static { CallKind::Static } else { CallKind::Virtual },
            sig,
            args,
        });
    }
}

struct BodyCtx<'p> {
    refs: Vec<VarId>,
    prims: Vec<VarId>,
    arr: VarId,
    used_source: bool,
    layer: usize,
    lifecycle: bool,
    /// Classes `new` expressions draw from: the whole program for app
    /// bodies, the package (plus `Object`) for library bodies.
    class_pool: &'p [Symbol],
}

/// Extension helpers the generator needs on [`MethodBuilder`] /
/// [`ProgramBuilder`].
trait BuilderExt<'a> {
    fn method_from_plan(
        &mut self,
        class: ClassId,
        name: &str,
        kind: MethodKind,
    ) -> MethodBuilder<'_>;
}

impl BuilderExt<'_> for ProgramBuilder {
    fn method_from_plan(
        &mut self,
        class: ClassId,
        name: &str,
        kind: MethodKind,
    ) -> MethodBuilder<'_> {
        self.method(class, name).kind(kind).visibility(Visibility::Public)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_ir::validate_program;

    #[test]
    fn generated_app_is_valid() {
        let app = generate_app(0, 12345, &GenConfig::tiny());
        let errors = validate_program(&app.program);
        assert!(errors.is_empty(), "validation errors: {:?}", &errors[..errors.len().min(5)]);
        assert!(app.program.methods.len() >= 4);
        assert!(!app.manifest.components.is_empty());
        assert!(app.manifest.launcher().is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_app(3, 999, &GenConfig::tiny());
        let b = generate_app(3, 999, &GenConfig::tiny());
        assert_eq!(a.program.methods.len(), b.program.methods.len());
        assert_eq!(a.program.total_statements(), b.program.total_statements());
        for (m1, m2) in a.program.methods.iter().zip(b.program.methods.iter()) {
            assert_eq!(m1.body.as_slice(), m2.body.as_slice());
        }
        assert_eq!(a.manifest, b.manifest);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_app(0, 1, &GenConfig::tiny());
        let b = generate_app(0, 2, &GenConfig::tiny());
        // Extremely unlikely to coincide.
        assert!(
            a.program.total_statements() != b.program.total_statements()
                || a.program.methods.len() != b.program.methods.len()
        );
    }

    #[test]
    fn covers_statement_kinds() {
        // Across a few apps, every statement kind should appear.
        use gdroid_ir::StmtKind;
        let mut seen = std::collections::HashSet::new();
        for seed in 0..6 {
            let app = generate_app(seed as usize, 7000 + seed, &GenConfig::small());
            for m in app.program.methods.iter() {
                for s in m.body.iter() {
                    seen.insert(s.kind());
                }
            }
        }
        for kind in StmtKind::ALL {
            assert!(seen.contains(&kind), "missing statement kind {kind:?}");
        }
    }

    #[test]
    fn covers_most_expression_kinds() {
        use gdroid_ir::ExprKind;
        let mut seen = std::collections::HashSet::new();
        for seed in 0..6 {
            let app = generate_app(seed as usize, 9000 + seed, &GenConfig::small());
            for m in app.program.methods.iter() {
                for s in m.body.iter() {
                    if let Stmt::Assign { rhs, .. } = s {
                        seen.insert(rhs.kind());
                    }
                }
            }
        }
        // CallRhs is only produced by the environment synthesis
        // (gdroid-icfg), so 16 of 17 here.
        let expected: Vec<ExprKind> =
            ExprKind::ALL.iter().copied().filter(|k| !matches!(k, ExprKind::CallRhs)).collect();
        for kind in expected {
            assert!(seen.contains(&kind), "missing expression kind {kind:?}");
        }
    }

    #[test]
    fn some_apps_leak() {
        let cfg = GenConfig::tiny();
        let leaky = (0..20)
            .filter(|&i| {
                let app = generate_app(i, 500 + i as u64, &cfg);
                app.manifest.has_permission(Permission::ReadPhoneState)
            })
            .count();
        assert!(leaky > 0, "no app used a source API in 20 draws");
        assert!(leaky < 20, "every app leaked");
    }

    #[test]
    fn library_pool_generates_valid_shared_packages() {
        let cfg = GenConfig::tiny().with_libraries(2, 3);
        let a = generate_app(0, 111, &cfg);
        let b = generate_app(1, 222, &cfg);
        let lib_classes = |app: &App| -> std::collections::HashSet<String> {
            app.program
                .classes
                .iter()
                .map(|c| app.program.interner.resolve(c.name).to_owned())
                .filter(|n| n.starts_with("com/lib/"))
                .collect()
        };
        for app in [&a, &b] {
            assert!(validate_program(&app.program).is_empty());
            assert!(!lib_classes(app).is_empty(), "no library classes generated");
        }
        // Two draws of 2 from a pool of 3 always overlap in ≥1 package.
        let (la, lb) = (lib_classes(&a), lib_classes(&b));
        assert!(la.intersection(&lb).next().is_some(), "apps share no library classes");
    }

    #[test]
    fn library_generation_is_deterministic() {
        let cfg = GenConfig::tiny().with_libraries(2, 4);
        let a = generate_app(5, 777, &cfg);
        let b = generate_app(5, 777, &cfg);
        assert_eq!(a.program.methods.len(), b.program.methods.len());
        for (m1, m2) in a.program.methods.iter().zip(b.program.methods.iter()) {
            assert_eq!(m1.body.as_slice(), m2.body.as_slice());
        }
    }

    #[test]
    fn call_graph_is_mostly_layered() {
        let app = generate_app(0, 424242, &GenConfig::small());
        // Sanity: there are calls to app methods (resolvable signatures).
        let mut app_calls = 0;
        for m in app.program.methods.iter() {
            for s in m.body.iter() {
                if let Stmt::Call { sig, .. } = s {
                    if app.program.method_by_sig(sig).is_some() {
                        app_calls += 1;
                    }
                }
            }
        }
        assert!(app_calls > 0, "no intra-app calls generated");
    }
}
