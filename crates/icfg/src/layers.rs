//! Call-graph SCC condensation and bottom-up layering for SBDA.
//!
//! Summary-based Bottom-up Data-flow Analysis (SBDA, Dillig et al.)
//! computes one heap summary per method, visiting methods bottom-up over
//! the call graph so a caller's analysis only needs its callees'
//! *finished* summaries. Methods in the same layer are then mutually
//! independent — exactly the property the GDroid paper uses to map one
//! method to one GPU thread-block ("two-level parallelization", §III-A2).
//!
//! Recursion makes the call graph cyclic, so layering happens on the
//! Tarjan SCC condensation; an SCC's members share a layer and their
//! summaries are iterated to a joint fixed point by the analysis.

use crate::callgraph::CallGraph;
use gdroid_ir::MethodId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a strongly connected component.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SccId(pub u32);

/// The SBDA schedule: SCCs, their members, and bottom-up layers.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CallLayers {
    /// SCC membership per method.
    pub scc_of: HashMap<MethodId, SccId>,
    /// Members of each SCC (index = `SccId`).
    pub scc_members: Vec<Vec<MethodId>>,
    /// Layer of each SCC: leaves are layer 0; `layer(s) =
    /// 1 + max(layer(callee SCCs))`.
    pub scc_layer: Vec<u32>,
    /// Methods grouped by layer, bottom-up: `layers[0]` are leaves.
    pub layers: Vec<Vec<MethodId>>,
}

impl CallLayers {
    /// Computes the schedule for the methods reachable from `roots`.
    pub fn compute(cg: &CallGraph, roots: &[MethodId]) -> CallLayers {
        let methods = cg.reachable_from(roots);
        Self::condense(&methods, &|m| cg.callees_of(m))
    }

    /// Like [`CallLayers::compute`], but treats every method in `leaves`
    /// as pre-summarized: its call edges are not traversed, so it sits at
    /// layer 0 and methods reachable only *through* it are not scheduled
    /// at all. This is the summary-store schedule — store-hit methods
    /// become leaves whose blocks never enter the GPU worklist, and the
    /// layers above them compress accordingly.
    pub fn compute_with_leaves(
        cg: &CallGraph,
        roots: &[MethodId],
        leaves: &std::collections::HashSet<MethodId>,
    ) -> CallLayers {
        let empty: &[MethodId] = &[];
        let callees = |m: MethodId| if leaves.contains(&m) { empty } else { cg.callees_of(m) };
        // Reachability honoring leaves (same traversal as
        // `CallGraph::reachable_from`, with leaf edges cut).
        let mut seen = std::collections::HashSet::new();
        let mut methods = Vec::new();
        let mut stack: Vec<MethodId> = roots.to_vec();
        for &r in roots {
            seen.insert(r);
        }
        while let Some(m) = stack.pop() {
            methods.push(m);
            for &c in callees(m) {
                if seen.insert(c) {
                    stack.push(c);
                }
            }
        }
        Self::condense(&methods, &callees)
    }

    /// Computes the schedule restricted to a slice: only methods in
    /// `allowed` are traversed, and call edges leaving the slice are cut.
    /// The targeted-vetting driver uses this so the GPU worklist seeds and
    /// launches only slice members while keeping the bottom-up SCC layer
    /// structure of the full schedule.
    pub fn compute_within(
        cg: &CallGraph,
        roots: &[MethodId],
        allowed: &std::collections::HashSet<MethodId>,
    ) -> CallLayers {
        Self::compute_within_with_leaves(cg, roots, allowed, &Default::default())
    }

    /// [`CallLayers::compute_within`] with the summary-store leaf cut of
    /// [`CallLayers::compute_with_leaves`] applied on top: methods in
    /// `leaves` keep their slice membership but contribute no call edges.
    pub fn compute_within_with_leaves(
        cg: &CallGraph,
        roots: &[MethodId],
        allowed: &std::collections::HashSet<MethodId>,
        leaves: &std::collections::HashSet<MethodId>,
    ) -> CallLayers {
        // Filtered adjacency: callees ∩ allowed, empty for leaves. Built
        // up-front so the condensation closure can hand out slices.
        let mut filtered: HashMap<MethodId, Vec<MethodId>> = HashMap::new();
        let mut seen = std::collections::HashSet::new();
        let mut methods = Vec::new();
        let mut stack: Vec<MethodId> = Vec::new();
        for &r in roots {
            if allowed.contains(&r) && seen.insert(r) {
                stack.push(r);
            }
        }
        while let Some(m) = stack.pop() {
            methods.push(m);
            let kept: Vec<MethodId> = if leaves.contains(&m) {
                Vec::new()
            } else {
                cg.callees_of(m).iter().copied().filter(|c| allowed.contains(c)).collect()
            };
            for &c in &kept {
                if seen.insert(c) {
                    stack.push(c);
                }
            }
            filtered.insert(m, kept);
        }
        let empty: &[MethodId] = &[];
        let callees = |m: MethodId| filtered.get(&m).map_or(empty, Vec::as_slice);
        Self::condense(&methods, &callees)
    }

    /// Shared condensation + layering over a callee view of the graph.
    fn condense<'f>(
        methods: &[MethodId],
        callees: &impl Fn(MethodId) -> &'f [MethodId],
    ) -> CallLayers {
        let tarjan = Tarjan::run(methods, callees);

        // Condensation edges and per-SCC layer (bottom-up: Tarjan emits
        // SCCs in reverse topological order, i.e. callees before callers).
        let scc_count = tarjan.members.len();
        let mut scc_layer = vec![0u32; scc_count];
        for (scc_idx, members) in tarjan.members.iter().enumerate() {
            let mut layer = 0;
            for &m in members {
                for &callee in callees(m) {
                    let Some(&callee_scc) = tarjan.scc_of.get(&callee) else { continue };
                    if callee_scc.0 as usize != scc_idx {
                        layer = layer.max(scc_layer[callee_scc.0 as usize] + 1);
                    }
                }
            }
            scc_layer[scc_idx] = layer;
        }

        let max_layer = scc_layer.iter().copied().max().unwrap_or(0);
        let mut layers: Vec<Vec<MethodId>> = vec![Vec::new(); max_layer as usize + 1];
        for (scc_idx, members) in tarjan.members.iter().enumerate() {
            let l = scc_layer[scc_idx] as usize;
            layers[l].extend(members.iter().copied());
        }
        // Deterministic order inside each layer.
        for l in &mut layers {
            l.sort_unstable();
        }

        CallLayers { scc_of: tarjan.scc_of, scc_members: tarjan.members, scc_layer, layers }
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The layer of a method.
    pub fn layer_of(&self, m: MethodId) -> Option<u32> {
        self.scc_of.get(&m).map(|s| self.scc_layer[s.0 as usize])
    }

    /// Whether a method participates in recursion (its SCC has >1 member,
    /// or it calls itself).
    pub fn is_recursive(&self, m: MethodId, cg: &CallGraph) -> bool {
        match self.scc_of.get(&m) {
            Some(&scc) => {
                self.scc_members[scc.0 as usize].len() > 1 || cg.callees_of(m).contains(&m)
            }
            None => false,
        }
    }

    /// Total scheduled methods.
    pub fn method_count(&self) -> usize {
        self.scc_of.len()
    }
}

/// Iterative Tarjan SCC (explicit stack; app call graphs can be deep).
struct Tarjan {
    scc_of: HashMap<MethodId, SccId>,
    members: Vec<Vec<MethodId>>,
}

impl Tarjan {
    fn run<'f>(methods: &[MethodId], callees_of: &impl Fn(MethodId) -> &'f [MethodId]) -> Tarjan {
        #[derive(Clone, Copy)]
        struct NodeState {
            index: u32,
            lowlink: u32,
            on_stack: bool,
        }
        let mut state: HashMap<MethodId, NodeState> = HashMap::with_capacity(methods.len());
        let in_scope: std::collections::HashSet<MethodId> = methods.iter().copied().collect();
        let mut stack: Vec<MethodId> = Vec::new();
        let mut next_index = 0u32;
        let mut scc_of = HashMap::with_capacity(methods.len());
        let mut members: Vec<Vec<MethodId>> = Vec::new();

        // Explicit DFS frame: (node, next-callee-cursor).
        for &root in methods {
            if state.contains_key(&root) {
                continue;
            }
            let mut frames: Vec<(MethodId, usize)> = vec![(root, 0)];
            state
                .insert(root, NodeState { index: next_index, lowlink: next_index, on_stack: true });
            next_index += 1;
            stack.push(root);

            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                let callees = callees_of(v);
                if *cursor < callees.len() {
                    let w = callees[*cursor];
                    *cursor += 1;
                    if !in_scope.contains(&w) {
                        continue;
                    }
                    match state.get(&w) {
                        None => {
                            state.insert(
                                w,
                                NodeState {
                                    index: next_index,
                                    lowlink: next_index,
                                    on_stack: true,
                                },
                            );
                            next_index += 1;
                            stack.push(w);
                            frames.push((w, 0));
                        }
                        Some(ws) if ws.on_stack => {
                            let w_index = ws.index;
                            let vs = state.get_mut(&v).unwrap();
                            vs.lowlink = vs.lowlink.min(w_index);
                        }
                        Some(_) => {}
                    }
                } else {
                    // Post-order: pop the frame, fold lowlink into parent,
                    // emit an SCC if v is a root.
                    frames.pop();
                    let v_state = state[&v];
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        let pl = state.get_mut(&parent).unwrap();
                        pl.lowlink = pl.lowlink.min(v_state.lowlink);
                    }
                    if v_state.lowlink == v_state.index {
                        let scc = SccId(members.len() as u32);
                        let mut group = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            state.get_mut(&w).unwrap().on_stack = false;
                            scc_of.insert(w, scc);
                            group.push(w);
                            if w == v {
                                break;
                            }
                        }
                        group.sort_unstable();
                        members.push(group);
                    }
                }
            }
        }
        Tarjan { scc_of, members }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_ir::{CallKind, MethodKind, ProgramBuilder, Signature, Stmt};

    /// Builds a program with the given call edges `caller -> callee` (by
    /// method index) and returns (program, methods).
    fn call_chain(n: usize, edges: &[(usize, usize)]) -> (gdroid_ir::Program, Vec<MethodId>) {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        // First create all methods with empty bodies, collect signatures.
        let mut sigs: Vec<Signature> = Vec::new();
        let mut mids: Vec<MethodId> = Vec::new();
        for i in 0..n {
            let mut mb = pb.method(cls, &format!("m{i}")).kind(MethodKind::Static);
            mb.stmt(Stmt::Return { var: None });
            let mid = mb.build();
            sigs.push(pb.program().methods[mid].sig.clone());
            mids.push(mid);
        }
        // Rebuild bodies with the calls. Simpler: add caller wrapper methods
        // would change ids, so instead we regenerate: build a fresh program
        // where each body contains its calls then return.
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let mut mids2: Vec<MethodId> = Vec::new();
        for i in 0..n {
            let mut mb = pb.method(cls, &format!("m{i}")).kind(MethodKind::Static);
            for &(from, to) in edges {
                if from == i {
                    mb.stmt(Stmt::Call {
                        ret: None,
                        kind: CallKind::Static,
                        sig: sigs[to].clone(),
                        args: vec![],
                    });
                }
            }
            mb.stmt(Stmt::Return { var: None });
            mids2.push(mb.build());
        }
        (pb.finish(), mids2)
    }

    #[test]
    fn linear_chain_layers() {
        // m0 -> m1 -> m2: m2 is a leaf (layer 0), m0 top (layer 2).
        let (p, m) = call_chain(3, &[(0, 1), (1, 2)]);
        let cg = CallGraph::build(&p);
        let layers = CallLayers::compute(&cg, &[m[0]]);
        assert_eq!(layers.layer_of(m[2]), Some(0));
        assert_eq!(layers.layer_of(m[1]), Some(1));
        assert_eq!(layers.layer_of(m[0]), Some(2));
        assert_eq!(layers.layer_count(), 3);
        assert!(!layers.is_recursive(m[0], &cg));
    }

    #[test]
    fn mutual_recursion_shares_scc_and_layer() {
        // m0 -> m1 <-> m2 -> m3.
        let (p, m) = call_chain(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let cg = CallGraph::build(&p);
        let layers = CallLayers::compute(&cg, &[m[0]]);
        assert_eq!(layers.scc_of[&m[1]], layers.scc_of[&m[2]]);
        assert_eq!(layers.layer_of(m[1]), layers.layer_of(m[2]));
        assert_eq!(layers.layer_of(m[3]), Some(0));
        assert_eq!(layers.layer_of(m[1]), Some(1));
        assert_eq!(layers.layer_of(m[0]), Some(2));
        assert!(layers.is_recursive(m[1], &cg));
        assert!(layers.is_recursive(m[2], &cg));
        assert!(!layers.is_recursive(m[3], &cg));
    }

    #[test]
    fn self_recursion_detected() {
        let (p, m) = call_chain(2, &[(0, 0), (0, 1)]);
        let cg = CallGraph::build(&p);
        let layers = CallLayers::compute(&cg, &[m[0]]);
        assert!(layers.is_recursive(m[0], &cg));
        assert!(!layers.is_recursive(m[1], &cg));
    }

    #[test]
    fn only_reachable_methods_scheduled() {
        let (p, m) = call_chain(3, &[(0, 1)]);
        let cg = CallGraph::build(&p);
        let layers = CallLayers::compute(&cg, &[m[0]]);
        assert_eq!(layers.method_count(), 2);
        assert_eq!(layers.layer_of(m[2]), None);
    }

    #[test]
    fn layers_respect_callee_before_caller() {
        // Diamond: m0 -> m1, m0 -> m2, m1 -> m3, m2 -> m3.
        let (p, m) = call_chain(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let cg = CallGraph::build(&p);
        let layers = CallLayers::compute(&cg, &[m[0]]);
        for (i, layer) in layers.layers.iter().enumerate() {
            for &method in layer {
                for &callee in cg.callees_of(method) {
                    let cl = layers.layer_of(callee).unwrap() as usize;
                    assert!(
                        cl < i || layers.scc_of[&callee] == layers.scc_of[&method],
                        "callee {callee:?} (layer {cl}) not below caller {method:?} (layer {i})"
                    );
                }
            }
        }
    }

    #[test]
    fn leaves_compress_layers_and_cut_subtrees() {
        // m0 -> m1 -> m2 -> m3; with m1 pre-summarized, m2/m3 never enter
        // the schedule and m0 drops from layer 3 to layer 1.
        let (p, m) = call_chain(4, &[(0, 1), (1, 2), (2, 3)]);
        let cg = CallGraph::build(&p);
        let leaves: std::collections::HashSet<MethodId> = [m[1]].into_iter().collect();
        let layers = CallLayers::compute_with_leaves(&cg, &[m[0]], &leaves);
        assert_eq!(layers.layer_of(m[1]), Some(0));
        assert_eq!(layers.layer_of(m[0]), Some(1));
        assert_eq!(layers.layer_of(m[2]), None);
        assert_eq!(layers.layer_of(m[3]), None);
        assert_eq!(layers.layer_count(), 2);
        // An empty leaf set reproduces the plain schedule.
        let plain = CallLayers::compute(&cg, &[m[0]]);
        let none = CallLayers::compute_with_leaves(&cg, &[m[0]], &Default::default());
        assert_eq!(plain.layers, none.layers);
    }

    #[test]
    fn compute_within_cuts_edges_leaving_the_slice() {
        // m0 -> m1 -> m2, m0 -> m3; slicing to {m0, m1} drops m2/m3 and
        // compresses m0 to layer 1.
        let (p, m) = call_chain(4, &[(0, 1), (1, 2), (0, 3)]);
        let cg = CallGraph::build(&p);
        let allowed: std::collections::HashSet<MethodId> = [m[0], m[1]].into_iter().collect();
        let layers = CallLayers::compute_within(&cg, &[m[0]], &allowed);
        assert_eq!(layers.method_count(), 2);
        assert_eq!(layers.layer_of(m[1]), Some(0));
        assert_eq!(layers.layer_of(m[0]), Some(1));
        assert_eq!(layers.layer_of(m[2]), None);
        assert_eq!(layers.layer_of(m[3]), None);
        // Allowing everything reproduces the plain schedule.
        let all: std::collections::HashSet<MethodId> = m.iter().copied().collect();
        let full = CallLayers::compute_within(&cg, &[m[0]], &all);
        let plain = CallLayers::compute(&cg, &[m[0]]);
        assert_eq!(full.layers, plain.layers);
    }

    #[test]
    fn compute_within_keeps_sccs_whole() {
        // m0 -> m1 <-> m2; the recursive pair stays one SCC in the slice.
        let (p, m) = call_chain(3, &[(0, 1), (1, 2), (2, 1)]);
        let cg = CallGraph::build(&p);
        let allowed: std::collections::HashSet<MethodId> = m.iter().copied().collect();
        let layers = CallLayers::compute_within(&cg, &[m[0]], &allowed);
        assert_eq!(layers.scc_of[&m[1]], layers.scc_of[&m[2]]);
        assert!(layers.is_recursive(m[1], &cg));
    }

    #[test]
    fn corpus_app_schedules_cleanly() {
        let mut app = gdroid_apk::generate_app(0, 5150, &gdroid_apk::GenConfig::tiny());
        let (envs, cg) = crate::env::prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        let layers = CallLayers::compute(&cg, &roots);
        assert!(layers.method_count() >= roots.len());
        // The environment methods sit at or above their callbacks' layers.
        for env in &envs {
            let el = layers.layer_of(env.method).unwrap();
            for &callee in cg.callees_of(env.method) {
                assert!(layers.layer_of(callee).unwrap() <= el);
            }
        }
    }
}
