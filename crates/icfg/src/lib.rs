#![warn(missing_docs)]

//! # gdroid-icfg — control-flow substrate
//!
//! Everything between the raw IR and the data-flow analysis:
//!
//! * [`mod@cfg`] — intra-procedural control-flow graphs (entry/exit nodes,
//!   fall-through and jump edges, throw-to-handler routing);
//! * [`callgraph`] — class-hierarchy-analysis call graph with virtual
//!   dispatch over the app hierarchy and explicit external (framework)
//!   edges;
//! * [`mod@env`] — per-component *environment method* synthesis: the `EC` entry
//!   points of the paper's IDFG definition (equation (1)), modeling the
//!   Android lifecycle state machine including the pause/resume loop;
//! * [`icfg`] — the assembled inter-procedural CFG for one component;
//! * [`layers`] — Tarjan SCC condensation and bottom-up layering of the
//!   call graph, the prerequisite for Summary-based Bottom-up Data-flow
//!   Analysis (SBDA) that makes one-method-per-thread-block parallelism
//!   sound;
//! * [`export`] — Graphviz (DOT) rendering of CFGs, call graphs, and
//!   component ICFGs for inspection and documentation.

pub mod callgraph;
pub mod cfg;
pub mod env;
pub mod export;
pub mod icfg;
pub mod layers;

pub use callgraph::{CallGraph, CallTarget};
pub use cfg::{Cfg, CfgNode, NodeId};
pub use env::{prepare_app, synthesize_environments, EnvironmentInfo};
pub use export::{callgraph_to_dot, callsites_report, cfg_to_dot, icfg_to_dot};
pub use icfg::{ComponentIcfg, IcfgNodeRef};
pub use layers::{CallLayers, SccId};
