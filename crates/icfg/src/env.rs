//! Environment-method synthesis.
//!
//! Amandroid (and the GDroid paper, equation (1)) analyze each component
//! `C` starting from a synthesized *environment method* `EC` that models
//! everything the Android framework does to the component: instantiate it,
//! deliver an `Intent`, and drive the lifecycle callbacks — including the
//! pause/resume cycle, which contributes a loop (and therefore fixed-point
//! revisits) at the very root of the ICFG.
//!
//! The synthesized body deliberately uses the two expression kinds app code
//! cannot produce — [`Expr::CallRhs`] (framework-returned values) and
//! `Tuple` — so all 17 expression kinds of the paper's branch-partition
//! table are live in a full app analysis.

use crate::callgraph::CallGraph;
use gdroid_apk::{App, Component};
use gdroid_ir::{
    CallKind, Expr, JType, Lhs, Literal, MethodId, MethodKind, ProgramBuilder, Signature, Stmt,
    StmtIdx,
};
use serde::{Deserialize, Serialize};

/// A synthesized environment: the ICFG root for one component.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EnvironmentInfo {
    /// The component this environment drives.
    pub component: Component,
    /// The synthesized environment method.
    pub method: MethodId,
}

/// Synthesizes one environment method per manifest component, mutating the
/// app's program in place. Returns the environments in manifest order.
///
/// Idempotency: calling this twice would add duplicate methods; the app
/// pipeline calls it exactly once (enforced by the `env$` naming check).
pub fn synthesize_environments(app: &mut App) -> Vec<EnvironmentInfo> {
    let program = std::mem::take(&mut app.program);
    assert!(
        !program.methods.iter().any(|m| m.kind == MethodKind::Environment),
        "environments already synthesized"
    );
    let mut pb = ProgramBuilder::from_program(program);
    let mut envs = Vec::with_capacity(app.manifest.components.len());

    for component in &app.manifest.components {
        let Some(class) = pb.program().class_by_name(component.class) else {
            continue;
        };
        let class_name = component.class;
        let intent_sym = pb.intern("android/content/Intent");

        // Collect the component's own lifecycle callbacks (declared methods
        // with kind LifecycleCallback).
        let callbacks: Vec<Signature> = pb.program().classes[class]
            .methods
            .iter()
            .filter_map(|&mid| {
                let m = &pb.program().methods[mid];
                (m.kind == MethodKind::LifecycleCallback).then(|| m.sig.clone())
            })
            .collect();

        let env_name = format!("env${}", component.kind_tag());
        let mut mb = pb.method(class, &env_name).kind(MethodKind::Environment);
        let comp = mb.local("comp", JType::Object(class_name));
        let intent = mb.local("intent", JType::Object(intent_sym));
        let bundle = mb.local("bundle", JType::Object(intent_sym));
        let cond = mb.local("cond", JType::Int);

        // comp = new C; intent = new Intent; bundle = callrhs intent —
        // modeling the framework handing back saved state.
        mb.stmt(Stmt::Assign {
            lhs: Lhs::Var(comp),
            rhs: Expr::New { ty: JType::Object(class_name) },
        });
        mb.stmt(Stmt::Assign {
            lhs: Lhs::Var(intent),
            rhs: Expr::New { ty: JType::Object(intent_sym) },
        });
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(bundle), rhs: Expr::CallRhs { ret: intent } });
        mb.stmt(Stmt::Assign {
            lhs: Lhs::Var(bundle),
            rhs: Expr::Tuple { elems: vec![comp, intent] },
        });
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(cond), rhs: Expr::Lit(Literal::Int(0)) });

        // The creation-phase callbacks run once, in order; the "active"
        // pair (the middle callbacks, e.g. onResume/onPause) run inside a
        // loop to model repeated foreground/background transitions.
        let n = callbacks.len();
        let (once_head, looped, once_tail): (&[Signature], &[Signature], &[Signature]) = if n >= 4 {
            (&callbacks[..2], &callbacks[2..n - 1], &callbacks[n - 1..])
        } else {
            (&callbacks[..], &[], &[])
        };

        let emit_call = |mb: &mut gdroid_ir::MethodBuilder<'_>, sig: &Signature| {
            let mut args = vec![comp];
            args.extend(std::iter::repeat_n(intent, sig.params.len()));
            mb.stmt(Stmt::Call { ret: None, kind: CallKind::Virtual, sig: sig.clone(), args });
        };

        for sig in once_head {
            emit_call(&mut mb, sig);
        }
        if !looped.is_empty() {
            let head = mb.next_idx();
            let exit_if = mb.stmt(Stmt::If { cond, target: StmtIdx(0) });
            for sig in looped {
                emit_call(&mut mb, sig);
            }
            mb.stmt(Stmt::Goto { target: head });
            let end = mb.next_idx();
            mb.patch_target(exit_if, end).expect("exit_if is an If");
        }
        for sig in once_tail {
            emit_call(&mut mb, sig);
        }
        mb.stmt(Stmt::Return { var: None });
        let method = mb.build();
        envs.push(EnvironmentInfo { component: component.clone(), method });
    }

    app.program = pb.finish();
    app.program.rebuild_lookups();
    envs
}

/// Extension: a short tag for environment naming.
trait KindTag {
    fn kind_tag(&self) -> String;
}

impl KindTag for Component {
    fn kind_tag(&self) -> String {
        format!("{:?}_{}", self.kind, self.class.index())
    }
}

/// Convenience: synthesizes environments and returns the roots plus the
/// call graph of the finished program.
pub fn prepare_app(app: &mut App) -> (Vec<EnvironmentInfo>, CallGraph) {
    let envs = synthesize_environments(app);
    let cg = CallGraph::build(&app.program);
    (envs, cg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_ir::ExprKind;

    fn prepared_app(seed: u64) -> (App, Vec<EnvironmentInfo>) {
        let mut app = generate_app(0, seed, &GenConfig::tiny());
        let envs = synthesize_environments(&mut app);
        (app, envs)
    }

    #[test]
    fn one_environment_per_component() {
        let (app, envs) = prepared_app(42);
        assert_eq!(envs.len(), app.manifest.components.len());
        for env in &envs {
            let m = &app.program.methods[env.method];
            assert_eq!(m.kind, MethodKind::Environment);
            assert!(m.this_var.is_none(), "environments are static");
        }
    }

    #[test]
    fn environment_calls_lifecycle_callbacks() {
        let (app, envs) = prepared_app(43);
        let env = &envs[0];
        let m = &app.program.methods[env.method];
        let calls: Vec<_> = m
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Call { sig, .. } => Some(app.program.interner.resolve(sig.name).to_owned()),
                _ => None,
            })
            .collect();
        assert!(calls.iter().any(|n| n.starts_with("on")), "no lifecycle calls: {calls:?}");
    }

    #[test]
    fn environment_has_lifecycle_loop_for_activities() {
        let (app, envs) = prepared_app(44);
        // The launcher (first component) is always an Activity with 6
        // callbacks, so its environment must contain a back edge.
        let m = &app.program.methods[envs[0].method];
        let cfg = crate::cfg::Cfg::build(m);
        assert!(cfg.back_edge_count() >= 1, "no lifecycle loop");
    }

    #[test]
    fn environment_uses_callrhs_and_tuple() {
        let (app, envs) = prepared_app(45);
        let m = &app.program.methods[envs[0].method];
        let kinds: Vec<ExprKind> = m
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Assign { rhs, .. } => Some(rhs.kind()),
                _ => None,
            })
            .collect();
        assert!(kinds.contains(&ExprKind::CallRhs));
        assert!(kinds.contains(&ExprKind::Tuple));
        assert!(kinds.contains(&ExprKind::New));
    }

    #[test]
    fn environment_is_valid_ir() {
        let (app, _) = prepared_app(46);
        let errors = gdroid_ir::validate_program(&app.program);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn double_synthesis_panics() {
        let (mut app, _) = prepared_app(47);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            synthesize_environments(&mut app)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn prepare_app_returns_connected_roots() {
        let mut app = generate_app(1, 48, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        // Every environment reaches at least one app method (its own
        // lifecycle callbacks).
        for env in &envs {
            let reach = cg.reachable_from(&[env.method]);
            assert!(reach.len() >= 2, "environment {:?} reaches nothing", env.method);
        }
    }
}
