//! Intra-procedural control-flow graphs.
//!
//! One CFG per method. Nodes are the method's statements plus a virtual
//! entry and exit node (matching the ICFG node-count convention of the
//! paper's Table I, which counts statement nodes).
//!
//! Edge rules:
//!
//! * entry → statement 0;
//! * fall-through `i → i+1` unless the statement is `goto`/`return`/`throw`;
//! * explicit jump targets for `goto`/`if`/`switch`;
//! * `return` → exit;
//! * `throw` → the nearest *following* exception-handler head (a statement
//!   assigning [`gdroid_ir::Expr::Exception`]), or exit when none exists —
//!   the flat-CFG equivalent of Dalvik try/catch ranges.

use gdroid_ir::idx::IndexVec;
use gdroid_ir::{Expr, Method, Stmt, StmtIdx};
use serde::{Deserialize, Serialize};

/// Dense CFG node index (0 = entry, 1.. = statements, last = exit).
pub type NodeId = u32;

/// What a CFG node represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CfgNode {
    /// Virtual entry node.
    Entry,
    /// A statement node.
    Stmt(StmtIdx),
    /// Virtual exit node.
    Exit,
}

/// An intra-procedural CFG.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cfg {
    /// Node payloads; index = [`NodeId`].
    pub nodes: Vec<CfgNode>,
    /// Successor adjacency (parallel to `nodes`).
    pub succs: Vec<Vec<NodeId>>,
    /// Predecessor adjacency (parallel to `nodes`).
    pub preds: Vec<Vec<NodeId>>,
}

impl Cfg {
    /// Builds the CFG of a method body.
    pub fn build(method: &Method) -> Cfg {
        let n = method.body.len();
        assert!(n > 0, "CFG of empty body");
        // Layout: node 0 = entry, nodes 1..=n = statements, node n+1 = exit.
        let node_count = n + 2;
        let mut succs: Vec<Vec<NodeId>> = vec![Vec::new(); node_count];

        // Pre-scan exception handler heads for throw routing.
        let handler_heads: Vec<usize> = method
            .body
            .iter_enumerated()
            .filter_map(|(idx, s)| match s {
                Stmt::Assign { rhs: Expr::Exception, .. } => Some(idx.index()),
                _ => None,
            })
            .collect();

        let entry: NodeId = 0;
        let exit: NodeId = (n + 1) as NodeId;
        let stmt_node = |i: usize| (i + 1) as NodeId;

        succs[entry as usize].push(stmt_node(0));
        let mut targets = Vec::new();
        for (idx, stmt) in method.body.iter_enumerated() {
            let i = idx.index();
            let me = stmt_node(i) as usize;
            match stmt {
                Stmt::Return { .. } => succs[me].push(exit),
                Stmt::Throw { .. } => {
                    // Nearest handler strictly after the throw.
                    match handler_heads.iter().find(|&&h| h > i) {
                        Some(&h) => succs[me].push(stmt_node(h)),
                        None => succs[me].push(exit),
                    }
                }
                Stmt::Goto { target } => succs[me].push(stmt_node(target.index())),
                _ => {
                    // Fall-through…
                    if i + 1 < n {
                        succs[me].push(stmt_node(i + 1));
                    } else {
                        // A validated body cannot end with a falling-through
                        // statement, but stay total anyway.
                        succs[me].push(exit);
                    }
                    // …plus explicit jump targets.
                    targets.clear();
                    stmt.jump_targets(&mut targets);
                    for t in &targets {
                        let tn = stmt_node(t.index());
                        if !succs[me].contains(&tn) {
                            succs[me].push(tn);
                        }
                    }
                }
            }
        }

        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); node_count];
        for (from, ss) in succs.iter().enumerate() {
            for &to in ss {
                preds[to as usize].push(from as NodeId);
            }
        }

        let mut nodes = Vec::with_capacity(node_count);
        nodes.push(CfgNode::Entry);
        for i in 0..n {
            nodes.push(CfgNode::Stmt(StmtIdx::new(i)));
        }
        nodes.push(CfgNode::Exit);

        Cfg { nodes, succs, preds }
    }

    /// The entry node id (always 0).
    #[inline]
    pub fn entry(&self) -> NodeId {
        0
    }

    /// The exit node id (always `len - 1`).
    #[inline]
    pub fn exit(&self) -> NodeId {
        (self.nodes.len() - 1) as NodeId
    }

    /// Number of nodes including entry/exit.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the CFG is empty (never true for built CFGs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of statement nodes.
    #[inline]
    pub fn stmt_count(&self) -> usize {
        self.nodes.len() - 2
    }

    /// The statement index of a node, if it is a statement node.
    #[inline]
    pub fn stmt_of(&self, node: NodeId) -> Option<StmtIdx> {
        match self.nodes[node as usize] {
            CfgNode::Stmt(s) => Some(s),
            _ => None,
        }
    }

    /// The node id of a statement index.
    #[inline]
    pub fn node_of(&self, stmt: StmtIdx) -> NodeId {
        (stmt.index() + 1) as NodeId
    }

    /// Successors of a node.
    #[inline]
    pub fn succ(&self, node: NodeId) -> &[NodeId] {
        &self.succs[node as usize]
    }

    /// Predecessors of a node.
    #[inline]
    pub fn pred(&self, node: NodeId) -> &[NodeId] {
        &self.preds[node as usize]
    }

    /// All nodes reachable from entry (sanity metric; unreachable code is
    /// possible after `goto` lowering).
    pub fn reachable_count(&self) -> usize {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![self.entry()];
        seen[0] = true;
        let mut count = 0;
        while let Some(n) = stack.pop() {
            count += 1;
            for &s in self.succ(n) {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(s);
                }
            }
        }
        count
    }

    /// All nodes that can reach one of `targets` by forward edges, i.e.
    /// backward reachability over [`Cfg::pred`]. Returned as a dense
    /// node-indexed mask (targets themselves included). The slicer uses
    /// this to restrict a method to the statements that matter for a sink.
    pub fn backward_reachable(&self, targets: &[NodeId]) -> Vec<bool> {
        let mut mask = vec![false; self.len()];
        let mut stack: Vec<NodeId> = Vec::new();
        for &t in targets {
            if !mask[t as usize] {
                mask[t as usize] = true;
                stack.push(t);
            }
        }
        while let Some(n) = stack.pop() {
            for &p in self.pred(n) {
                if !mask[p as usize] {
                    mask[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        mask
    }

    /// Back edges (target dominates source approximated as target ≤ source
    /// in statement order) — the revisit drivers for the worklist analysis.
    pub fn back_edge_count(&self) -> usize {
        let mut count = 0;
        for (from, ss) in self.succs.iter().enumerate() {
            for &to in ss {
                if (to as usize) <= from && to != 0 {
                    count += 1;
                }
            }
        }
        count
    }
}

/// Builds CFGs for every method of a program.
pub fn build_all(program: &gdroid_ir::Program) -> IndexVec<gdroid_ir::MethodId, Cfg> {
    program.methods.iter().map(Cfg::build).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_ir::{Expr, JType, Lhs, Literal, MethodKind, ProgramBuilder, Stmt, StmtIdx, VarId};

    fn build_method(stmts: Vec<Stmt>) -> Cfg {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("T").build();
        let mut mb = pb.method(cls, "m").kind(MethodKind::Static);
        let _a = mb.local("a", JType::Int);
        let _r = mb.local("r", JType::Object(gdroid_ir::Symbol(0)));
        for s in stmts {
            mb.stmt(s);
        }
        let mid = mb.build();
        let p = pb.finish();
        Cfg::build(&p.methods[mid])
    }

    #[test]
    fn straight_line_chain() {
        let cfg = build_method(vec![
            Stmt::Assign { lhs: Lhs::Var(VarId(0)), rhs: Expr::Lit(Literal::Int(1)) },
            Stmt::Empty,
            Stmt::Return { var: None },
        ]);
        assert_eq!(cfg.len(), 5);
        assert_eq!(cfg.succ(0), &[1]);
        assert_eq!(cfg.succ(1), &[2]);
        assert_eq!(cfg.succ(2), &[3]);
        assert_eq!(cfg.succ(3), &[cfg.exit()]);
        assert_eq!(cfg.pred(cfg.exit()), &[3]);
        assert_eq!(cfg.reachable_count(), 5);
    }

    #[test]
    fn if_has_two_successors() {
        let cfg = build_method(vec![
            Stmt::If { cond: VarId(0), target: StmtIdx(2) },
            Stmt::Empty,
            Stmt::Return { var: None },
        ]);
        // Node 1 = the if: fall-through to node 2 and jump to node 3.
        assert_eq!(cfg.succ(1), &[2, 3]);
    }

    #[test]
    fn goto_has_single_successor_no_fallthrough() {
        let cfg = build_method(vec![
            Stmt::Goto { target: StmtIdx(2) },
            Stmt::Empty, // unreachable
            Stmt::Return { var: None },
        ]);
        assert_eq!(cfg.succ(1), &[3]);
        assert_eq!(cfg.reachable_count(), 4); // entry, goto, return, exit
    }

    #[test]
    fn loop_creates_back_edge() {
        let cfg = build_method(vec![
            Stmt::If { cond: VarId(0), target: StmtIdx(3) }, // exit test
            Stmt::Empty,
            Stmt::Goto { target: StmtIdx(0) }, // back edge
            Stmt::Return { var: None },
        ]);
        assert!(cfg.back_edge_count() >= 1);
        // goto node (3) → if node (1).
        assert_eq!(cfg.succ(3), &[1]);
    }

    #[test]
    fn throw_routes_to_following_handler() {
        let cfg = build_method(vec![
            Stmt::If { cond: VarId(0), target: StmtIdx(2) },
            Stmt::Throw { var: VarId(1) },
            Stmt::Assign { lhs: Lhs::Var(VarId(1)), rhs: Expr::Exception },
            Stmt::Return { var: None },
        ]);
        // throw at node 2 routes to the handler at node 3, not exit.
        assert_eq!(cfg.succ(2), &[3]);
    }

    #[test]
    fn throw_without_handler_routes_to_exit() {
        let cfg = build_method(vec![
            Stmt::If { cond: VarId(0), target: StmtIdx(2) },
            Stmt::Throw { var: VarId(1) },
            Stmt::Return { var: None },
        ]);
        assert_eq!(cfg.succ(2), &[cfg.exit()]);
    }

    #[test]
    fn switch_fans_out() {
        let cfg = build_method(vec![
            Stmt::Switch {
                var: VarId(0),
                targets: vec![StmtIdx(1), StmtIdx(2)],
                default: StmtIdx(3),
            },
            Stmt::Empty,
            Stmt::Empty,
            Stmt::Return { var: None },
        ]);
        // switch node (1): fall-through 2 + targets 2,3,4 (dedup keeps 2 once).
        let s = cfg.succ(1);
        assert!(s.contains(&2) && s.contains(&3) && s.contains(&4));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn preds_mirror_succs() {
        let cfg = build_method(vec![
            Stmt::If { cond: VarId(0), target: StmtIdx(2) },
            Stmt::Empty,
            Stmt::Return { var: None },
        ]);
        for from in 0..cfg.len() as NodeId {
            for &to in cfg.succ(from) {
                assert!(cfg.pred(to).contains(&from));
            }
        }
    }

    #[test]
    fn backward_reachable_follows_preds_only() {
        let cfg = build_method(vec![
            Stmt::If { cond: VarId(0), target: StmtIdx(3) },
            Stmt::Empty,
            Stmt::Return { var: None },
            Stmt::Return { var: None },
        ]);
        // Target = node 2 (stmt 1): reaches entry, the if, itself — not the
        // jump-only branch (stmt 3) or anything downstream.
        let mask = cfg.backward_reachable(&[2]);
        assert!(mask[0] && mask[1] && mask[2]);
        assert!(!mask[3] && !mask[4] && !mask[cfg.exit() as usize]);
        // Empty target set reaches nothing.
        assert!(cfg.backward_reachable(&[]).iter().all(|&b| !b));
    }

    #[test]
    fn node_stmt_mapping_roundtrips() {
        let cfg = build_method(vec![Stmt::Empty, Stmt::Return { var: None }]);
        for i in 0..2 {
            let node = cfg.node_of(StmtIdx::new(i));
            assert_eq!(cfg.stmt_of(node), Some(StmtIdx::new(i)));
        }
        assert_eq!(cfg.stmt_of(cfg.entry()), None);
        assert_eq!(cfg.stmt_of(cfg.exit()), None);
    }
}
