//! The inter-procedural CFG of one component.
//!
//! `IDFG(EC) ≡ ((N, E), {fact(n) | n ∈ N})` — equation (1) of the paper.
//! This module materializes `(N, E)`: the union of the intra-procedural
//! CFGs of all methods reachable from the component's environment method,
//! plus call edges (call node → callee entry) and return edges (callee
//! exit → call node's intra-procedural successors).

use crate::callgraph::{CallGraph, CallTarget};
use crate::cfg::{Cfg, NodeId};
use crate::env::EnvironmentInfo;
use crate::layers::CallLayers;
use gdroid_ir::{MethodId, Program, StmtIdx};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A node reference in a component ICFG: method + intra-procedural node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IcfgNodeRef {
    /// Owning method.
    pub method: MethodId,
    /// Node inside that method's CFG.
    pub node: NodeId,
}

/// The assembled ICFG for one component.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ComponentIcfg {
    /// The environment method this ICFG is rooted at.
    pub root: MethodId,
    /// Reachable methods, in discovery order.
    pub methods: Vec<MethodId>,
    /// Intra-procedural CFGs, keyed by method.
    pub cfgs: HashMap<MethodId, Cfg>,
    /// Call edges: call node → callee entries.
    pub call_edges: HashMap<IcfgNodeRef, Vec<IcfgNodeRef>>,
    /// Return edges: callee exit → return-site nodes.
    pub return_edges: HashMap<IcfgNodeRef, Vec<IcfgNodeRef>>,
    /// The SBDA schedule for the reachable methods.
    pub layers: CallLayers,
}

impl ComponentIcfg {
    /// Builds the ICFG rooted at one environment.
    pub fn build(program: &Program, cg: &CallGraph, env: &EnvironmentInfo) -> ComponentIcfg {
        let methods = cg.reachable_from(&[env.method]);
        let mut cfgs = HashMap::with_capacity(methods.len());
        for &m in &methods {
            cfgs.insert(m, Cfg::build(&program.methods[m]));
        }

        let mut call_edges: HashMap<IcfgNodeRef, Vec<IcfgNodeRef>> = HashMap::new();
        let mut return_edges: HashMap<IcfgNodeRef, Vec<IcfgNodeRef>> = HashMap::new();
        for &m in &methods {
            let cfg = &cfgs[&m];
            for (idx, stmt) in program.methods[m].body.iter_enumerated() {
                if !stmt.is_call() {
                    continue;
                }
                let Some(CallTarget::Internal(targets)) = cg.site(m, idx) else { continue };
                let call_node = IcfgNodeRef { method: m, node: cfg.node_of(idx) };
                for &callee in targets {
                    let callee_cfg = &cfgs[&callee];
                    call_edges
                        .entry(call_node)
                        .or_default()
                        .push(IcfgNodeRef { method: callee, node: callee_cfg.entry() });
                    let exit = IcfgNodeRef { method: callee, node: callee_cfg.exit() };
                    // Return flows to the call's intra-procedural successors.
                    for &succ in cfg.succ(call_node.node) {
                        return_edges
                            .entry(exit)
                            .or_default()
                            .push(IcfgNodeRef { method: m, node: succ });
                    }
                }
            }
        }

        let layers = CallLayers::compute(cg, &[env.method]);
        ComponentIcfg { root: env.method, methods, cfgs, call_edges, return_edges, layers }
    }

    /// Total node count (statement + entry/exit nodes of every method).
    pub fn node_count(&self) -> usize {
        self.cfgs.values().map(Cfg::len).sum()
    }

    /// Statement-node count — the paper's "CFG nodes" metric.
    pub fn stmt_node_count(&self) -> usize {
        self.cfgs.values().map(Cfg::stmt_count).sum()
    }

    /// Intra-procedural edge count plus call/return edges.
    pub fn edge_count(&self) -> usize {
        let intra: usize =
            self.cfgs.values().map(|c| c.succs.iter().map(Vec::len).sum::<usize>()).sum();
        let call: usize = self.call_edges.values().map(Vec::len).sum();
        let ret: usize = self.return_edges.values().map(Vec::len).sum();
        intra + call + ret
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// The statement of an ICFG node, if it is a statement node.
    pub fn stmt_of(&self, node: IcfgNodeRef) -> Option<StmtIdx> {
        self.cfgs[&node.method].stmt_of(node.node)
    }
}

/// Builds the ICFGs of every component of a prepared app.
pub fn build_all(
    program: &Program,
    cg: &CallGraph,
    envs: &[EnvironmentInfo],
) -> Vec<ComponentIcfg> {
    envs.iter().map(|e| ComponentIcfg::build(program, cg, e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::prepare_app;
    use gdroid_apk::{generate_app, GenConfig};

    fn build_first(seed: u64) -> (gdroid_apk::App, ComponentIcfg) {
        let mut app = generate_app(0, seed, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let icfg = ComponentIcfg::build(&app.program, &cg, &envs[0]);
        (app, icfg)
    }

    #[test]
    fn icfg_includes_root_and_callbacks() {
        let (_, icfg) = build_first(100);
        assert!(icfg.methods.contains(&icfg.root));
        assert!(icfg.method_count() >= 2);
        assert!(icfg.node_count() > icfg.stmt_node_count());
        assert_eq!(
            icfg.node_count() - icfg.stmt_node_count(),
            2 * icfg.method_count(),
            "every method contributes exactly one entry and one exit"
        );
    }

    #[test]
    fn call_edges_target_entries_and_returns_target_successors() {
        let (_, icfg) = build_first(101);
        assert!(!icfg.call_edges.is_empty(), "environment must call callbacks");
        for (call, entries) in &icfg.call_edges {
            let cfg = &icfg.cfgs[&call.method];
            assert!(cfg.stmt_of(call.node).is_some(), "call edge from non-stmt node");
            for e in entries {
                assert_eq!(e.node, icfg.cfgs[&e.method].entry());
            }
        }
        for (exit, sites) in &icfg.return_edges {
            assert_eq!(exit.node, icfg.cfgs[&exit.method].exit());
            assert!(!sites.is_empty());
        }
    }

    #[test]
    fn every_call_edge_has_matching_return_edge() {
        let (_, icfg) = build_first(102);
        for (call, entries) in &icfg.call_edges {
            for e in entries {
                let exit = IcfgNodeRef { method: e.method, node: icfg.cfgs[&e.method].exit() };
                let rets = icfg.return_edges.get(&exit).expect("missing return edge");
                assert!(rets.iter().any(|r| r.method == call.method));
            }
        }
    }

    #[test]
    fn edge_count_is_positive_and_bounded() {
        let (_, icfg) = build_first(103);
        let e = icfg.edge_count();
        assert!(e > icfg.stmt_node_count(), "fewer edges than statements");
        // CFGs are sparse: max out-degree is bounded by switch fan-out.
        assert!(e < icfg.node_count() * 8);
    }

    #[test]
    fn build_all_gives_one_icfg_per_component() {
        let mut app = generate_app(1, 104, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let icfgs = build_all(&app.program, &cg, &envs);
        assert_eq!(icfgs.len(), envs.len());
        for (icfg, env) in icfgs.iter().zip(&envs) {
            assert_eq!(icfg.root, env.method);
        }
    }
}
