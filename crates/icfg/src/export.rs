//! Graphviz (DOT) export of CFGs, call graphs, and component ICFGs —
//! inspection tooling for debugging analyses and documenting examples.

use crate::callgraph::{CallGraph, CallTarget};
use crate::cfg::{Cfg, CfgNode};
use crate::icfg::ComponentIcfg;
use gdroid_ir::{MethodId, Program, Stmt};
use std::fmt::Write;

/// Escapes a DOT label.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Short human-readable label for a statement.
fn stmt_label(program: &Program, stmt: &Stmt) -> String {
    match stmt {
        Stmt::Assign { lhs, rhs } => format!("{lhs:?} = {}", expr_tag(rhs)),
        Stmt::Call { sig, .. } => {
            format!("call {}", program.interner.resolve(sig.name))
        }
        Stmt::If { cond, .. } => format!("if {cond}"),
        Stmt::Switch { targets, .. } => format!("switch ({} cases)", targets.len()),
        Stmt::Goto { .. } => "goto".into(),
        Stmt::Return { .. } => "return".into(),
        Stmt::Throw { .. } => "throw".into(),
        Stmt::Monitor { .. } => "monitor".into(),
        Stmt::Empty => "nop".into(),
    }
}

fn expr_tag(e: &gdroid_ir::Expr) -> &'static str {
    use gdroid_ir::ExprKind::*;
    match e.kind() {
        Access => "x.f",
        Binary => "a⊕b",
        CallRhs => "callrhs",
        Cast => "cast",
        Cmp => "cmp",
        ConstClass => "T.class",
        Exception => "exception",
        Indexing => "a[i]",
        InstanceOf => "instanceof",
        Length => "length",
        Literal => "lit",
        VariableName => "copy",
        StaticFieldAccess => "C.f",
        New => "new",
        Null => "null",
        Tuple => "tuple",
        Unary => "⊖a",
    }
}

/// Renders one method's CFG as DOT, coloring nodes by their GRP
/// memory-access group (the §IV-B classification).
pub fn cfg_to_dot(program: &Program, mid: MethodId, cfg: &Cfg) -> String {
    let method = &program.methods[mid];
    let mut out = String::new();
    writeln!(out, "digraph cfg_{} {{", mid.index()).unwrap();
    writeln!(out, "  rankdir=TB; node [shape=box, fontname=monospace];").unwrap();
    for (i, node) in cfg.nodes.iter().enumerate() {
        let (label, color) = match node {
            CfgNode::Entry => ("entry".to_owned(), "gray80"),
            CfgNode::Exit => ("exit".to_owned(), "gray80"),
            CfgNode::Stmt(s) => {
                let stmt = &method.body[*s];
                let color = match stmt.access_pattern() {
                    gdroid_ir::expr::AccessPattern::OneTimeGen => "palegreen",
                    gdroid_ir::expr::AccessPattern::SingleLayer => "lightyellow",
                    gdroid_ir::expr::AccessPattern::DoubleLayer => "lightcoral",
                };
                (format!("{s}: {}", stmt_label(program, stmt)), color)
            }
        };
        writeln!(out, "  n{i} [label=\"{}\", style=filled, fillcolor={color}];", esc(&label))
            .unwrap();
    }
    for from in 0..cfg.len() as u32 {
        for &to in cfg.succ(from) {
            writeln!(out, "  n{from} -> n{to};").unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Renders the internal call graph (reachable from `roots`) as DOT.
pub fn callgraph_to_dot(program: &Program, cg: &CallGraph, roots: &[MethodId]) -> String {
    let reach = cg.reachable_from(roots);
    let mut out = String::new();
    writeln!(out, "digraph callgraph {{").unwrap();
    writeln!(out, "  rankdir=LR; node [shape=ellipse, fontname=monospace];").unwrap();
    for &m in &reach {
        let name = program.interner.resolve(program.methods[m].sig.name);
        let shape = if roots.contains(&m) { ", style=filled, fillcolor=lightblue" } else { "" };
        writeln!(out, "  m{} [label=\"{}\"{shape}];", m.index(), esc(name)).unwrap();
    }
    for &m in &reach {
        for &c in cg.callees_of(m) {
            writeln!(out, "  m{} -> m{};", m.index(), c.index()).unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Renders a component ICFG as DOT with one cluster per method and
/// dashed call/return edges.
pub fn icfg_to_dot(program: &Program, icfg: &ComponentIcfg) -> String {
    let mut out = String::new();
    writeln!(out, "digraph icfg {{").unwrap();
    writeln!(out, "  compound=true; node [shape=box, fontsize=9, fontname=monospace];").unwrap();
    for &mid in &icfg.methods {
        let cfg = &icfg.cfgs[&mid];
        let name = program.interner.resolve(program.methods[mid].sig.name);
        writeln!(out, "  subgraph cluster_{} {{ label=\"{}\";", mid.index(), esc(name)).unwrap();
        for i in 0..cfg.len() {
            let label = match cfg.nodes[i] {
                CfgNode::Entry => "in".to_owned(),
                CfgNode::Exit => "out".to_owned(),
                CfgNode::Stmt(s) => format!("{s}"),
            };
            writeln!(out, "    m{}n{i} [label=\"{}\"];", mid.index(), esc(&label)).unwrap();
        }
        for from in 0..cfg.len() as u32 {
            for &to in cfg.succ(from) {
                writeln!(out, "    m{}n{from} -> m{}n{to};", mid.index(), mid.index()).unwrap();
            }
        }
        writeln!(out, "  }}").unwrap();
    }
    for (call, entries) in &icfg.call_edges {
        for e in entries {
            writeln!(
                out,
                "  m{}n{} -> m{}n{} [style=dashed, color=blue];",
                call.method.index(),
                call.node,
                e.method.index(),
                e.node
            )
            .unwrap();
        }
    }
    for (exit, sites) in &icfg.return_edges {
        for r in sites {
            writeln!(
                out,
                "  m{}n{} -> m{}n{} [style=dashed, color=red];",
                exit.method.index(),
                exit.node,
                r.method.index(),
                r.node
            )
            .unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Resolution summary of every call site (for text dumps).
pub fn callsites_report(program: &Program, cg: &CallGraph) -> String {
    let mut out = String::new();
    let mut sites: Vec<_> = cg.sites.iter().collect();
    sites.sort_by_key(|((m, s), _)| (*m, *s));
    for ((m, s), target) in sites {
        let name = program.interner.resolve(program.methods[*m].sig.name);
        match target {
            CallTarget::Internal(ts) => {
                writeln!(out, "{name}:{s} -> {} internal target(s)", ts.len()).unwrap()
            }
            CallTarget::External(sig) => {
                writeln!(out, "{name}:{s} -> external {}", program.interner.resolve(sig.name))
                    .unwrap()
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::prepare_app;
    use crate::icfg::ComponentIcfg;
    use gdroid_apk::{generate_app, GenConfig};

    fn setup() -> (gdroid_apk::App, CallGraph, Vec<crate::env::EnvironmentInfo>) {
        let mut app = generate_app(0, 321, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        (app, cg, envs)
    }

    #[test]
    fn cfg_dot_is_wellformed() {
        let (app, _, envs) = setup();
        let mid = envs[0].method;
        let cfg = Cfg::build(&app.program.methods[mid]);
        let dot = cfg_to_dot(&app.program, mid, &cfg);
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("entry"));
        assert!(dot.contains("exit"));
        // One node line per CFG node.
        assert_eq!(dot.matches("style=filled").count(), cfg.len());
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn callgraph_dot_contains_roots_and_edges() {
        let (app, cg, envs) = setup();
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        let dot = callgraph_to_dot(&app.program, &cg, &roots);
        assert!(dot.contains("lightblue"), "roots must be highlighted");
        assert!(dot.contains("->"), "no call edges rendered");
    }

    #[test]
    fn icfg_dot_has_clusters_and_interproc_edges() {
        let (app, cg, envs) = setup();
        let icfg = ComponentIcfg::build(&app.program, &cg, &envs[0]);
        let dot = icfg_to_dot(&app.program, &icfg);
        assert_eq!(dot.matches("subgraph cluster_").count(), icfg.methods.len());
        assert!(dot.contains("style=dashed, color=blue"), "no call edges");
        assert!(dot.contains("style=dashed, color=red"), "no return edges");
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn callsites_report_lists_every_site() {
        let (app, cg, _) = setup();
        let report = callsites_report(&app.program, &cg);
        assert_eq!(report.lines().count(), cg.site_count());
        assert!(report.contains("external"));
    }
}
