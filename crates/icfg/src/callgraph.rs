//! Class-hierarchy-analysis (CHA) call graph.
//!
//! Call sites resolve to:
//!
//! * `Static`/`Direct` — exact signature lookup with superclass walk;
//! * `Virtual`/`Interface` — every override in the subtree rooted at the
//!   receiver's nominal class (CHA; Amandroid sharpens this with points-to,
//!   we keep CHA since the synthetic corpus has little override depth);
//! * unresolvable signatures — *external* targets (framework API), which
//!   the analysis covers with default summaries and the vetting layer
//!   matches against its source/sink lists.

use gdroid_ir::{CallKind, MethodId, Program, Signature, Stmt, StmtIdx};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Resolution result of one call site.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallTarget {
    /// Calls into app code (possibly several targets under CHA).
    Internal(Vec<MethodId>),
    /// Calls a framework/library method with no body.
    External(Signature),
}

impl CallTarget {
    /// The internal targets (empty slice for external calls).
    pub fn internal(&self) -> &[MethodId] {
        match self {
            CallTarget::Internal(v) => v,
            CallTarget::External(_) => &[],
        }
    }

    /// Whether the call leaves the app.
    pub fn is_external(&self) -> bool {
        matches!(self, CallTarget::External(_))
    }
}

/// The program-wide call graph.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CallGraph {
    /// Per-call-site resolution, keyed by `(caller, stmt)`.
    pub sites: HashMap<(MethodId, StmtIdx), CallTarget>,
    /// Forward edges: caller → callees (deduplicated).
    pub callees: HashMap<MethodId, Vec<MethodId>>,
    /// Reverse edges: callee → callers (deduplicated).
    pub callers: HashMap<MethodId, Vec<MethodId>>,
}

impl CallGraph {
    /// Builds the call graph of a program.
    pub fn build(program: &Program) -> CallGraph {
        let mut cg = CallGraph::default();
        for (caller, method) in program.methods.iter_enumerated() {
            for (idx, stmt) in method.body.iter_enumerated() {
                let Stmt::Call { kind, sig, .. } = stmt else { continue };
                let target = resolve(program, *kind, sig);
                if let CallTarget::Internal(ref ts) = target {
                    for &t in ts {
                        let list = cg.callees.entry(caller).or_default();
                        if !list.contains(&t) {
                            list.push(t);
                        }
                        let rlist = cg.callers.entry(t).or_default();
                        if !rlist.contains(&caller) {
                            rlist.push(caller);
                        }
                    }
                }
                cg.sites.insert((caller, idx), target);
            }
        }
        cg
    }

    /// Resolution of one call site (must be a call statement).
    pub fn site(&self, caller: MethodId, stmt: StmtIdx) -> Option<&CallTarget> {
        self.sites.get(&(caller, stmt))
    }

    /// Callees of a method (internal only).
    pub fn callees_of(&self, m: MethodId) -> &[MethodId] {
        self.callees.get(&m).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Callers of a method (internal only).
    pub fn callers_of(&self, m: MethodId) -> &[MethodId] {
        self.callers.get(&m).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Methods reachable from `roots` through internal edges (including the
    /// roots themselves).
    pub fn reachable_from(&self, roots: &[MethodId]) -> Vec<MethodId> {
        let mut seen = std::collections::HashSet::new();
        let mut order = Vec::new();
        let mut stack: Vec<MethodId> = roots.to_vec();
        for &r in roots {
            seen.insert(r);
        }
        while let Some(m) = stack.pop() {
            order.push(m);
            for &c in self.callees_of(m) {
                if seen.insert(c) {
                    stack.push(c);
                }
            }
        }
        order
    }

    /// Total number of call sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Number of external call sites.
    pub fn external_site_count(&self) -> usize {
        self.sites.values().filter(|t| t.is_external()).count()
    }
}

/// Resolves one signature per the dispatch kind.
fn resolve(program: &Program, kind: CallKind, sig: &Signature) -> CallTarget {
    let Some(nominal) = program.class_by_name(sig.class) else {
        return CallTarget::External(sig.clone());
    };
    match kind {
        CallKind::Static | CallKind::Direct => match program.resolve_method(nominal, sig) {
            Some(m) => CallTarget::Internal(vec![m]),
            None => CallTarget::External(sig.clone()),
        },
        CallKind::Virtual | CallKind::Interface => {
            // CHA: the statically resolved method plus every override in
            // the subtree.
            let mut targets = Vec::new();
            if let Some(m) = program.resolve_method(nominal, sig) {
                targets.push(m);
            }
            for sub in program.subtree_of(nominal) {
                if sub == nominal {
                    continue;
                }
                let sub_name = program.classes[sub].name;
                let candidate = Signature { class: sub_name, ..sig.clone() };
                if let Some(m) = program.method_by_sig(&candidate) {
                    if !targets.contains(&m) {
                        targets.push(m);
                    }
                }
            }
            if targets.is_empty() {
                CallTarget::External(sig.clone())
            } else {
                CallTarget::Internal(targets)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_ir::{JType, MethodKind, ProgramBuilder, Stmt};

    /// Base/Derived with an override; caller virtual-calls through Base.
    fn fixture() -> (Program, MethodId, MethodId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let base = pb.class("Base").build();
        let derived = pb.class("Derived").extends(base).build();

        let mut mb = pb.method(base, "go");
        let _ = mb.this();
        mb.stmt(Stmt::Return { var: None });
        let base_go = mb.build();

        let mut mb = pb.method(derived, "go");
        let _ = mb.this();
        mb.stmt(Stmt::Return { var: None });
        let derived_go = mb.build();

        let sig = pb.program().methods[base_go].sig.clone();
        let mut mb = pb.method(base, "caller");
        let this = mb.this();
        mb.stmt(Stmt::Call { ret: None, kind: CallKind::Virtual, sig, args: vec![this] });
        mb.stmt(Stmt::Return { var: None });
        let caller = mb.build();

        (pb.finish(), base_go, derived_go, caller)
    }

    #[test]
    fn virtual_call_resolves_to_all_overrides() {
        let (p, base_go, derived_go, caller) = fixture();
        let cg = CallGraph::build(&p);
        let target = cg.site(caller, StmtIdx(0)).unwrap();
        let internal = target.internal();
        assert!(internal.contains(&base_go));
        assert!(internal.contains(&derived_go));
        assert_eq!(internal.len(), 2);
    }

    #[test]
    fn static_call_resolves_exactly() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let mut mb = pb.method(cls, "helper").kind(MethodKind::Static);
        mb.stmt(Stmt::Return { var: None });
        let helper = mb.build();
        let sig = pb.program().methods[helper].sig.clone();
        let mut mb = pb.method(cls, "main").kind(MethodKind::Static);
        mb.stmt(Stmt::Call { ret: None, kind: CallKind::Static, sig, args: vec![] });
        mb.stmt(Stmt::Return { var: None });
        let main = mb.build();
        let p = pb.finish();
        let cg = CallGraph::build(&p);
        assert_eq!(cg.site(main, StmtIdx(0)).unwrap().internal(), &[helper]);
        assert_eq!(cg.callees_of(main), &[helper]);
        assert_eq!(cg.callers_of(helper), &[main]);
    }

    #[test]
    fn unknown_class_is_external() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let ext_cls = pb.intern("android/util/Log");
        let name = pb.intern("d");
        let obj = pb.intern("java/lang/Object");
        let sig = Signature::new(
            ext_cls,
            name,
            vec![JType::Object(obj), JType::Object(obj)],
            JType::Void,
        );
        let mut mb = pb.method(cls, "m").kind(MethodKind::Static);
        let a = mb.local("a", JType::Object(obj));
        mb.stmt(Stmt::Call { ret: None, kind: CallKind::Static, sig, args: vec![a, a] });
        mb.stmt(Stmt::Return { var: None });
        let m = mb.build();
        let p = pb.finish();
        let cg = CallGraph::build(&p);
        assert!(cg.site(m, StmtIdx(0)).unwrap().is_external());
        assert_eq!(cg.external_site_count(), 1);
    }

    #[test]
    fn reachability_includes_transitive_callees() {
        let (p, base_go, derived_go, caller) = fixture();
        let cg = CallGraph::build(&p);
        let reach = cg.reachable_from(&[caller]);
        assert!(reach.contains(&caller));
        assert!(reach.contains(&base_go));
        assert!(reach.contains(&derived_go));
    }

    #[test]
    fn corpus_apps_have_resolvable_sites() {
        let app = gdroid_apk::generate_app(0, 31337, &gdroid_apk::GenConfig::tiny());
        let cg = CallGraph::build(&app.program);
        assert!(cg.site_count() > 0);
        // Both internal and external calls appear.
        assert!(cg.external_site_count() > 0);
        assert!(cg.site_count() > cg.external_site_count());
    }
}
