//! Gen/kill transfer functions — the `ProcessNode` analyzer of Alg. 1.
//!
//! `transfer` maps a node's IN bitmap to its OUT bitmap. The formulation is
//! monotone: kills apply only to the flow-through copy, node fact sets grow
//! monotonically under propagation (the property the paper's MER
//! optimization relies on for soundness).
//!
//! The same function backs every solver in the repository — sequential
//! CPU, multithreaded CPU, and all four GPU kernels — so functional
//! equivalence between them is by construction, and the GPU simulator
//! charges costs for the *accesses this function actually performs*
//! (reported in [`TransferEffort`]).

use crate::fact::{Fact, Instance, MethodSpace, Slot};
use crate::store::NodeFacts;
use crate::summary::{MethodSummary, Token};
use gdroid_ir::{Expr, Lhs, Literal, Method, Stmt, StmtIdx, VarId};

/// Abstract operation counts of one node evaluation — consumed by the CPU
/// and GPU cost models.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferEffort {
    /// Slot rows read from the fact store.
    pub rows_read: usize,
    /// Facts written (set bits, pre-dedup).
    pub facts_written: usize,
    /// Dependent de-reference layers (0 = generation only, 1 = single,
    /// 2 = double) — mirrors the GRP classification.
    pub deref_layers: usize,
}

/// Resolution of the call at a given statement, supplied by the solver.
pub enum CallResolution<'a> {
    /// Internal call with the (merged) callee summary.
    Summary(&'a MethodSummary),
    /// External framework call (default summary).
    External,
}

/// Everything `transfer` needs besides the IN facts.
pub struct TransferCtx<'a> {
    /// The method being analyzed.
    pub method: &'a Method,
    /// Its pre-computed pools.
    pub space: &'a MethodSpace,
    /// Call-site resolution: statement → callee summary.
    pub resolve_call: &'a dyn Fn(StmtIdx) -> CallResolution<'a>,
}

impl<'a> TransferCtx<'a> {
    #[inline]
    fn local(&self, v: VarId) -> Option<u16> {
        self.space.slot(Slot::Local(v))
    }

    /// Applies the transfer function of statement `stmt` to `input`,
    /// returning the OUT bitmap and the effort expended.
    pub fn transfer(&self, stmt_idx: StmtIdx, input: &NodeFacts) -> (NodeFacts, TransferEffort) {
        let mut out = input.clone();
        let mut effort = TransferEffort::default();
        let stmt = &self.method.body[stmt_idx];

        match stmt {
            Stmt::Assign { lhs, rhs } => {
                self.transfer_assign(stmt_idx, lhs, rhs, input, &mut out, &mut effort)
            }
            Stmt::Call { ret, args, .. } => {
                let summary_storage;
                let summary: &MethodSummary = match (self.resolve_call)(stmt_idx) {
                    CallResolution::Summary(s) => s,
                    CallResolution::External => {
                        summary_storage = MethodSummary::external();
                        &summary_storage
                    }
                };
                self.apply_summary(stmt_idx, summary, *ret, args, input, &mut out, &mut effort);
            }
            // Control and no-op statements: identity transfer.
            Stmt::Empty
            | Stmt::Monitor { .. }
            | Stmt::Goto { .. }
            | Stmt::If { .. }
            | Stmt::Return { .. }
            | Stmt::Switch { .. }
            | Stmt::Throw { .. } => {}
        }
        (out, effort)
    }

    fn transfer_assign(
        &self,
        stmt_idx: StmtIdx,
        lhs: &Lhs,
        rhs: &Expr,
        input: &NodeFacts,
        out: &mut NodeFacts,
        effort: &mut TransferEffort,
    ) {
        // Evaluate the RHS to a set of instances (for reference-producing
        // expressions) while tracking effort.
        let rhs_instances: Option<Vec<u16>> = match rhs {
            Expr::New { .. }
            | Expr::Lit(Literal::Str(_))
            | Expr::ConstClass { .. }
            | Expr::Exception => {
                effort.facts_written += 1;
                self.space.instance(Instance::Alloc(stmt_idx)).map(|i| vec![i])
            }
            Expr::Null => Some(Vec::new()),
            Expr::Var(v) | Expr::Cast { operand: v, .. } | Expr::CallRhs { ret: v } => {
                effort.rows_read += 1;
                effort.deref_layers = effort.deref_layers.max(1);
                self.local(*v).map(|s| input.row(s))
            }
            Expr::Tuple { elems } => {
                effort.deref_layers = effort.deref_layers.max(1);
                let mut insts = Vec::new();
                for v in elems {
                    if let Some(s) = self.local(*v) {
                        effort.rows_read += 1;
                        insts.extend(input.row(s));
                    }
                }
                insts.sort_unstable();
                insts.dedup();
                Some(insts)
            }
            Expr::StaticField { field } => {
                effort.rows_read += 1;
                effort.deref_layers = effort.deref_layers.max(1);
                self.space.slot(Slot::Static(*field)).map(|s| input.row(s))
            }
            Expr::Access { base, field } => {
                // Double de-reference: base's instances, then their heap
                // slots.
                effort.deref_layers = 2;
                self.local(*base).map(|bs| {
                    effort.rows_read += 1;
                    let mut insts = Vec::new();
                    for o in input.row(bs) {
                        if let Some(hs) = self.space.slot(Slot::Heap(o, *field)) {
                            effort.rows_read += 1;
                            insts.extend(input.row(hs));
                        }
                    }
                    insts.sort_unstable();
                    insts.dedup();
                    insts
                })
            }
            Expr::Indexing { base, .. } => {
                effort.deref_layers = 2;
                self.local(*base).map(|bs| {
                    effort.rows_read += 1;
                    let mut insts = Vec::new();
                    for o in input.row(bs) {
                        if let Some(es) = self.space.slot(Slot::ArrayElem(o)) {
                            effort.rows_read += 1;
                            insts.extend(input.row(es));
                        }
                    }
                    insts.sort_unstable();
                    insts.dedup();
                    insts
                })
            }
            // Primitive-valued expressions: no reference flow.
            Expr::Binary { .. }
            | Expr::Cmp { .. }
            | Expr::InstanceOf { .. }
            | Expr::Length { .. }
            | Expr::Unary { .. }
            | Expr::Lit(_) => None,
        };

        let Some(instances) = rhs_instances else { return };

        match lhs {
            Lhs::Var(v) => {
                // Strong update on locals: kill, then gen.
                if let Some(slot) = self.local(*v) {
                    out.clear_row(slot);
                    for &i in &instances {
                        out.set(Fact { slot, instance: i });
                    }
                    effort.facts_written += instances.len();
                }
            }
            Lhs::StaticField { field } => {
                // Strong update on statics (single abstract location).
                if let Some(slot) = self.space.slot(Slot::Static(*field)) {
                    out.clear_row(slot);
                    for &i in &instances {
                        out.set(Fact { slot, instance: i });
                    }
                    effort.facts_written += instances.len();
                }
            }
            Lhs::Field { base, field } => {
                // Weak update: the base may alias, so no kill.
                effort.deref_layers = 2;
                if let Some(bs) = self.local(*base) {
                    effort.rows_read += 1;
                    for o in input.row(bs) {
                        if let Some(hs) = self.space.slot(Slot::Heap(o, *field)) {
                            for &i in &instances {
                                out.set(Fact { slot: hs, instance: i });
                            }
                            effort.facts_written += instances.len();
                        }
                    }
                }
            }
            Lhs::ArrayElem { base, .. } => {
                effort.deref_layers = 2;
                if let Some(bs) = self.local(*base) {
                    effort.rows_read += 1;
                    for o in input.row(bs) {
                        if let Some(es) = self.space.slot(Slot::ArrayElem(o)) {
                            for &i in &instances {
                                out.set(Fact { slot: es, instance: i });
                            }
                            effort.facts_written += instances.len();
                        }
                    }
                }
            }
        }
    }

    /// Resolves a summary token to caller instances at this node.
    fn resolve_token(
        &self,
        token: Token,
        stmt_idx: StmtIdx,
        args: &[VarId],
        input: &NodeFacts,
        effort: &mut TransferEffort,
    ) -> Vec<u16> {
        match token {
            Token::Formal(k) => match args.get(usize::from(k)) {
                Some(&v) => match self.local(v) {
                    Some(s) => {
                        effort.rows_read += 1;
                        input.row(s)
                    }
                    None => Vec::new(), // primitive argument
                },
                None => Vec::new(),
            },
            Token::Fresh => self
                .space
                .instance(Instance::CallRet(stmt_idx))
                .map(|i| vec![i])
                .unwrap_or_default(),
            Token::StaticIn(f) => match self.space.slot(Slot::Static(f)) {
                Some(s) => {
                    effort.rows_read += 1;
                    input.row(s)
                }
                None => Vec::new(),
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_summary(
        &self,
        stmt_idx: StmtIdx,
        summary: &MethodSummary,
        ret: Option<VarId>,
        args: &[VarId],
        input: &NodeFacts,
        out: &mut NodeFacts,
        effort: &mut TransferEffort,
    ) {
        effort.deref_layers = effort.deref_layers.max(1);
        // Return value.
        if let Some(r) = ret {
            if let Some(slot) = self.local(r) {
                out.clear_row(slot);
                for &tok in &summary.returns {
                    for i in self.resolve_token(tok, stmt_idx, args, input, effort) {
                        out.set(Fact { slot, instance: i });
                        effort.facts_written += 1;
                    }
                }
            }
        }
        // Escaping field writes.
        for &(recv_tok, field, src_tok) in &summary.field_writes {
            let recvs = self.resolve_token(recv_tok, stmt_idx, args, input, effort);
            if recvs.is_empty() {
                continue;
            }
            let srcs = self.resolve_token(src_tok, stmt_idx, args, input, effort);
            for &o in &recvs {
                if let Some(hs) = self.space.slot(Slot::Heap(o, field)) {
                    for &i in &srcs {
                        out.set(Fact { slot: hs, instance: i });
                        effort.facts_written += 1;
                    }
                }
            }
        }
        // Static writes (weak at call sites).
        for &(field, src_tok) in &summary.static_writes {
            if let Some(slot) = self.space.slot(Slot::Static(field)) {
                for i in self.resolve_token(src_tok, stmt_idx, args, input, effort) {
                    out.set(Fact { slot, instance: i });
                    effort.facts_written += 1;
                }
            }
        }
        // Array writes.
        for &(recv_tok, src_tok) in &summary.array_writes {
            let recvs = self.resolve_token(recv_tok, stmt_idx, args, input, effort);
            if recvs.is_empty() {
                continue;
            }
            let srcs = self.resolve_token(src_tok, stmt_idx, args, input, effort);
            for &o in &recvs {
                if let Some(es) = self.space.slot(Slot::ArrayElem(o)) {
                    for &i in &srcs {
                        out.set(Fact { slot: es, instance: i });
                        effort.facts_written += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::MethodSpace;
    use crate::store::Geometry;
    use gdroid_ir::{CallKind, JType, MethodId, ProgramBuilder, Signature};

    /// Builds: m(this, p) {
    ///   L0: r = new Object
    ///   L1: this.f = r
    ///   L2: q = this.f
    ///   L3: q = null
    ///   L4: s = call ext() ret s
    ///   L5: return
    /// }
    struct Fixture {
        program: gdroid_ir::Program,
        mid: MethodId,
        f: gdroid_ir::FieldId,
        this: VarId,
        r: VarId,
        q: VarId,
        s: VarId,
    }

    fn fixture() -> Fixture {
        let mut pb = ProgramBuilder::new();
        let obj = pb.class("java/lang/Object").build();
        let obj_sym = pb.program().classes[obj].name;
        let cls = pb.class("A").extends(obj).build();
        let f = pb.field(cls, "f", JType::Object(obj_sym), false);
        let ext =
            Signature::new(pb.intern("Ext"), pb.intern("get"), vec![], JType::Object(obj_sym));
        let mut mb = pb.method(cls, "m");
        let this = mb.this();
        let _p = mb.param("p", JType::Object(obj_sym));
        let r = mb.local("r", JType::Object(obj_sym));
        let q = mb.local("q", JType::Object(obj_sym));
        let s = mb.local("s", JType::Object(obj_sym));
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(r), rhs: Expr::New { ty: JType::Object(obj_sym) } });
        mb.stmt(Stmt::Assign { lhs: Lhs::Field { base: this, field: f }, rhs: Expr::Var(r) });
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(q), rhs: Expr::Access { base: this, field: f } });
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(q), rhs: Expr::Null });
        mb.stmt(Stmt::Call { ret: Some(s), kind: CallKind::Static, sig: ext, args: vec![] });
        mb.stmt(Stmt::Return { var: None });
        let mid = mb.build();
        Fixture { program: pb.finish(), mid, f, this, r, q, s }
    }

    fn ctx_and_entry(fx: &Fixture) -> (MethodSpace, NodeFacts) {
        let space = MethodSpace::build(&fx.program, fx.mid);
        let geometry = Geometry::of(&space);
        let mut entry = NodeFacts::empty(geometry);
        for fact in space.entry_facts(&fx.program.methods[fx.mid]) {
            entry.set(fact);
        }
        (space, entry)
    }

    #[test]
    fn new_generates_alloc_fact() {
        let fx = fixture();
        let (space, entry) = ctx_and_entry(&fx);
        let resolve = |_: StmtIdx| CallResolution::External;
        let ctx = TransferCtx {
            method: &fx.program.methods[fx.mid],
            space: &space,
            resolve_call: &resolve,
        };
        let (out, effort) = ctx.transfer(StmtIdx(0), &entry);
        let slot = space.slot(Slot::Local(fx.r)).unwrap();
        let alloc = space.instance(Instance::Alloc(StmtIdx(0))).unwrap();
        assert!(out.get(Fact { slot, instance: alloc }));
        assert_eq!(effort.deref_layers, 0, "one-time generation pattern");
    }

    #[test]
    fn field_store_then_load_roundtrips() {
        let fx = fixture();
        let (space, entry) = ctx_and_entry(&fx);
        let resolve = |_: StmtIdx| CallResolution::External;
        let ctx = TransferCtx {
            method: &fx.program.methods[fx.mid],
            space: &space,
            resolve_call: &resolve,
        };
        // L0 then L1 then L2.
        let (f0, _) = ctx.transfer(StmtIdx(0), &entry);
        let (f1, e1) = ctx.transfer(StmtIdx(1), &f0);
        assert_eq!(e1.deref_layers, 2, "heap store is double-layer");
        let (f2, e2) = ctx.transfer(StmtIdx(2), &f1);
        assert_eq!(e2.deref_layers, 2, "field load is double-layer");
        let q_slot = space.slot(Slot::Local(fx.q)).unwrap();
        let alloc = space.instance(Instance::Alloc(StmtIdx(0))).unwrap();
        assert!(f2.get(Fact { slot: q_slot, instance: alloc }), "q must see the stored object");
        // The heap slot itself holds the alloc, keyed by this's formal.
        let formal0 = space.instance(Instance::Formal(0)).unwrap();
        let heap = space.slot(Slot::Heap(formal0, fx.f)).unwrap();
        assert!(f2.get(Fact { slot: heap, instance: alloc }));
    }

    #[test]
    fn null_assign_kills_strongly() {
        let fx = fixture();
        let (space, entry) = ctx_and_entry(&fx);
        let resolve = |_: StmtIdx| CallResolution::External;
        let ctx = TransferCtx {
            method: &fx.program.methods[fx.mid],
            space: &space,
            resolve_call: &resolve,
        };
        let (f0, _) = ctx.transfer(StmtIdx(0), &entry);
        let (f1, _) = ctx.transfer(StmtIdx(1), &f0);
        let (f2, _) = ctx.transfer(StmtIdx(2), &f1);
        let (f3, _) = ctx.transfer(StmtIdx(3), &f2);
        let q_slot = space.slot(Slot::Local(fx.q)).unwrap();
        assert!(f3.row(q_slot).is_empty(), "null kills q's points-to");
    }

    #[test]
    fn external_call_returns_fresh_instance() {
        let fx = fixture();
        let (space, entry) = ctx_and_entry(&fx);
        let resolve = |_: StmtIdx| CallResolution::External;
        let ctx = TransferCtx {
            method: &fx.program.methods[fx.mid],
            space: &space,
            resolve_call: &resolve,
        };
        let (out, _) = ctx.transfer(StmtIdx(4), &entry);
        let s_slot = space.slot(Slot::Local(fx.s)).unwrap();
        let ret = space.instance(Instance::CallRet(StmtIdx(4))).unwrap();
        assert_eq!(out.row(s_slot), vec![ret]);
    }

    #[test]
    fn internal_summary_flows_args_to_return() {
        // Callee summary: returns Formal(1) (echoes its argument).
        let fx = fixture();
        let (space, mut entry) = ctx_and_entry(&fx);
        let mut summary = MethodSummary::default();
        summary.returns.insert(Token::Formal(1));
        // Pretend L4's call has args [this, r] and a summary.
        // Build a custom method for this: reuse fixture's call site but
        // resolve with our summary and args including r.
        // For simplicity, seed r with the alloc and use Formal(1) = args[1].
        let alloc = space.instance(Instance::Alloc(StmtIdx(0))).unwrap();
        let r_slot = space.slot(Slot::Local(fx.r)).unwrap();
        entry.set(Fact { slot: r_slot, instance: alloc });

        let method = &fx.program.methods[fx.mid];
        let resolve = |_: StmtIdx| CallResolution::Summary(&summary);
        let ctx = TransferCtx { method, space: &space, resolve_call: &resolve };
        // Apply the summary manually with explicit args.
        let mut out = entry.clone();
        let mut effort = TransferEffort::default();
        ctx.apply_summary(
            StmtIdx(4),
            &summary,
            Some(fx.s),
            &[fx.this, fx.r],
            &entry,
            &mut out,
            &mut effort,
        );
        let s_slot = space.slot(Slot::Local(fx.s)).unwrap();
        assert_eq!(out.row(s_slot), vec![alloc], "arg r's points-to flows to the return");
    }

    #[test]
    fn summary_field_write_lands_in_caller_heap() {
        // Summary: arg0.f = Fresh.
        let fx = fixture();
        let (space, entry) = ctx_and_entry(&fx);
        let mut summary = MethodSummary::default();
        summary.field_writes.insert((Token::Formal(0), fx.f, Token::Fresh));
        let method = &fx.program.methods[fx.mid];
        let resolve = |_: StmtIdx| CallResolution::Summary(&summary);
        let ctx = TransferCtx { method, space: &space, resolve_call: &resolve };
        let mut out = entry.clone();
        let mut effort = TransferEffort::default();
        ctx.apply_summary(StmtIdx(4), &summary, None, &[fx.this], &entry, &mut out, &mut effort);
        let formal0 = space.instance(Instance::Formal(0)).unwrap();
        let fresh = space.instance(Instance::CallRet(StmtIdx(4))).unwrap();
        let heap = space.slot(Slot::Heap(formal0, fx.f)).unwrap();
        assert!(out.get(Fact { slot: heap, instance: fresh }));
    }

    #[test]
    fn control_statements_are_identity() {
        let fx = fixture();
        let (space, entry) = ctx_and_entry(&fx);
        let resolve = |_: StmtIdx| CallResolution::External;
        let ctx = TransferCtx {
            method: &fx.program.methods[fx.mid],
            space: &space,
            resolve_call: &resolve,
        };
        let (out, effort) = ctx.transfer(StmtIdx(5), &entry); // return
        assert_eq!(out, entry);
        assert_eq!(effort, TransferEffort::default());
    }

    #[test]
    fn monotone_on_larger_inputs() {
        // transfer(in1 ∪ extra) ⊇ transfer(in1) — the MER soundness property.
        let fx = fixture();
        let (space, entry) = ctx_and_entry(&fx);
        let resolve = |_: StmtIdx| CallResolution::External;
        let ctx = TransferCtx {
            method: &fx.program.methods[fx.mid],
            space: &space,
            resolve_call: &resolve,
        };
        let (small_out, _) = ctx.transfer(StmtIdx(2), &entry);
        let mut bigger = entry.clone();
        // Add heap facts the load at L2 will pick up.
        let formal0 = space.instance(Instance::Formal(0)).unwrap();
        let heap = space.slot(Slot::Heap(formal0, fx.f)).unwrap();
        let ret = space.instance(Instance::CallRet(StmtIdx(4))).unwrap();
        bigger.set(Fact { slot: heap, instance: ret });
        let (big_out, _) = ctx.transfer(StmtIdx(2), &bigger);
        for fact in small_out.iter() {
            assert!(big_out.get(fact), "lost fact {fact:?} on larger input");
        }
    }
}
