//! A concrete interpreter for the IR — the dynamic-analysis counterpart
//! the paper's introduction contrasts static analysis against.
//!
//! Its role in this repository is *validation*: every points-to
//! relationship observed during a concrete execution must be predicted by
//! the static IDFG (soundness). The interpreter executes real heap
//! operations (allocation, field stores/loads, array elements, calls with
//! dynamic dispatch) under a deterministic branch oracle and bounded fuel,
//! records `(method, statement, variable) ↦ object` observations, and
//! [`check_soundness`] replays them against a finished [`AppAnalysis`].

use crate::fact::{Instance, Slot};
use crate::solver::AppAnalysis;
use gdroid_icfg::{CallGraph, CallTarget};
use gdroid_ir::{Expr, FieldId, Literal, MethodId, Program, Stmt, StmtIdx, VarId};
use std::collections::HashMap;

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// Primitive (all integral/float kinds folded to i64 semantics).
    Prim(i64),
    /// Reference to a heap object.
    Ref(ObjId),
    /// Null reference.
    Null,
}

/// Heap object identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// Where an object was born.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Birth {
    /// Allocated by `new`/literal at a statement of a method.
    Site(MethodId, StmtIdx),
    /// Returned by an external (framework) call at a statement.
    External(MethodId, StmtIdx),
    /// Conjured as an argument for the entry frame.
    EntryArg,
}

/// A heap object.
#[derive(Clone, Debug)]
pub struct Object {
    /// Provenance.
    pub birth: Birth,
    /// Instance fields.
    pub fields: HashMap<FieldId, Value>,
    /// Array element (merged, matching the analysis' array-insensitivity).
    pub elem: Option<Box<Value>>,
}

/// One points-to observation: at the *entry* of `stmt` in `method`,
/// variable `var` referenced `object`.
#[derive(Clone, Copy, Debug)]
pub struct Observation {
    /// Observing method.
    pub method: MethodId,
    /// Statement about to execute.
    pub stmt: StmtIdx,
    /// The variable.
    pub var: VarId,
    /// The referenced object.
    pub object: ObjId,
}

/// Interpreter limits and determinism knobs.
#[derive(Clone, Copy, Debug)]
pub struct InterpConfig {
    /// Total statements to execute before stopping.
    pub fuel: usize,
    /// Maximum call depth.
    pub max_depth: usize,
    /// Seed of the branch oracle (if/switch outcomes).
    pub seed: u64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig { fuel: 200_000, max_depth: 24, seed: 1 }
    }
}

/// Execution result.
#[derive(Debug, Default)]
pub struct Trace {
    /// All points-to observations, in execution order.
    pub observations: Vec<Observation>,
    /// Statements executed.
    pub steps: usize,
    /// Objects allocated.
    pub allocations: usize,
    /// Methods entered.
    pub calls: usize,
}

/// The interpreter.
pub struct Interpreter<'a> {
    program: &'a Program,
    cg: &'a CallGraph,
    config: InterpConfig,
    heap: Vec<Object>,
    statics: HashMap<FieldId, Value>,
    rng_state: u64,
    trace: Trace,
    fuel: usize,
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter.
    pub fn new(program: &'a Program, cg: &'a CallGraph, config: InterpConfig) -> Self {
        Interpreter {
            program,
            cg,
            config,
            heap: Vec::new(),
            statics: HashMap::new(),
            rng_state: config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            trace: Trace::default(),
            fuel: config.fuel,
        }
    }

    fn flip(&mut self) -> bool {
        // xorshift64* — deterministic branch oracle.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63) & 1 == 1
    }

    fn alloc(&mut self, birth: Birth) -> ObjId {
        let id = ObjId(self.heap.len() as u32);
        self.heap.push(Object { birth, fields: HashMap::new(), elem: None });
        self.trace.allocations += 1;
        id
    }

    /// Runs `entry` with conjured arguments; returns the trace.
    pub fn run(mut self, entry: MethodId) -> Trace {
        let method = &self.program.methods[entry];
        let mut args = Vec::new();
        if method.this_var.is_some() {
            let o = self.alloc(Birth::EntryArg);
            args.push(Value::Ref(o));
        }
        for p in &method.params {
            if p.ty.is_reference() {
                let o = self.alloc(Birth::EntryArg);
                args.push(Value::Ref(o));
            } else {
                args.push(Value::Prim(1));
            }
        }
        self.call(entry, &args, 0);
        self.trace
    }

    /// Executes one method body; returns its return value.
    fn call(&mut self, mid: MethodId, args: &[Value], depth: usize) -> Value {
        if depth >= self.config.max_depth || self.fuel == 0 {
            return Value::Null;
        }
        self.trace.calls += 1;
        let method = &self.program.methods[mid];
        let mut locals = vec![Value::Null; method.vars.len()];
        // Bind `this` + params (declaration order, like the analysis).
        let mut cursor = 0usize;
        if let Some(this) = method.this_var {
            if let Some(v) = args.get(cursor) {
                locals[this.index()] = *v;
            }
            cursor += 1;
        }
        for p in &method.params {
            if let Some(v) = args.get(cursor) {
                locals[p.var.index()] = *v;
            }
            cursor += 1;
        }

        let mut pc = 0usize;
        while pc < method.body.len() {
            if self.fuel == 0 {
                return Value::Null;
            }
            self.fuel -= 1;
            self.trace.steps += 1;
            let stmt_idx = StmtIdx::new(pc);

            // Record observations for every reference variable the
            // statement reads.
            let mut used = Vec::new();
            method.body[stmt_idx].uses(&mut used);
            for &v in &used {
                if let Value::Ref(obj) = locals[v.index()] {
                    self.trace.observations.push(Observation {
                        method: mid,
                        stmt: stmt_idx,
                        var: v,
                        object: obj,
                    });
                }
            }

            match &method.body[stmt_idx] {
                Stmt::Assign { lhs, rhs } => {
                    let value = self.eval(mid, stmt_idx, rhs, &locals);
                    self.store(lhs, value, &mut locals);
                    pc += 1;
                }
                Stmt::Call { ret, args: call_args, .. } => {
                    let argv: Vec<Value> = call_args.iter().map(|a| locals[a.index()]).collect();
                    let result = match self.cg.site(mid, stmt_idx) {
                        Some(CallTarget::Internal(targets)) if !targets.is_empty() => {
                            // Dynamic dispatch: use the receiver's birth
                            // class when resolvable; otherwise first CHA
                            // target. (CHA targets all share the
                            // signature, so any is type-correct.)
                            let target = targets[0];
                            self.call(target, &argv, depth + 1)
                        }
                        _ => {
                            // External: conjure a fresh object, like the
                            // analysis' default summary.
                            if ret.is_some() {
                                let o = self.alloc(Birth::External(mid, stmt_idx));
                                Value::Ref(o)
                            } else {
                                Value::Null
                            }
                        }
                    };
                    if let Some(r) = ret {
                        locals[r.index()] = result;
                    }
                    pc += 1;
                }
                Stmt::If { target, .. } => {
                    pc = if self.flip() { target.index() } else { pc + 1 };
                }
                Stmt::Switch { targets, default, .. } => {
                    let n = targets.len() + 1;
                    let pick = (self.rng_next() as usize) % n;
                    pc = if pick < targets.len() { targets[pick].index() } else { default.index() };
                }
                Stmt::Goto { target } => pc = target.index(),
                Stmt::Return { var } => {
                    return var.map(|v| locals[v.index()]).unwrap_or(Value::Null);
                }
                Stmt::Throw { .. } => {
                    // Route to the nearest following handler, like the CFG.
                    let handler = (pc + 1..method.body.len()).find(|&i| {
                        matches!(
                            method.body[StmtIdx::new(i)],
                            Stmt::Assign { rhs: Expr::Exception, .. }
                        )
                    });
                    match handler {
                        Some(h) => pc = h,
                        None => return Value::Null,
                    }
                }
                Stmt::Empty | Stmt::Monitor { .. } => pc += 1,
            }
        }
        Value::Null
    }

    fn rng_next(&mut self) -> u64 {
        self.flip();
        self.rng_state
    }

    fn eval(&mut self, mid: MethodId, at: StmtIdx, expr: &Expr, locals: &[Value]) -> Value {
        match expr {
            Expr::New { .. }
            | Expr::ConstClass { .. }
            | Expr::Exception
            | Expr::Lit(Literal::Str(_)) => Value::Ref(self.alloc(Birth::Site(mid, at))),
            Expr::Null => Value::Null,
            Expr::Lit(Literal::Int(v)) => Value::Prim(*v),
            Expr::Lit(Literal::Float(v)) => Value::Prim(*v as i64),
            Expr::Lit(Literal::Bool(b)) => Value::Prim(i64::from(*b)),
            Expr::Var(v) | Expr::Cast { operand: v, .. } | Expr::CallRhs { ret: v } => {
                locals[v.index()]
            }
            Expr::Access { base, field } => match locals[base.index()] {
                Value::Ref(o) => {
                    self.heap[o.0 as usize].fields.get(field).copied().unwrap_or(Value::Null)
                }
                _ => Value::Null,
            },
            Expr::StaticField { field } => self.statics.get(field).copied().unwrap_or(Value::Null),
            Expr::Indexing { base, .. } => match locals[base.index()] {
                Value::Ref(o) => {
                    self.heap[o.0 as usize].elem.as_deref().copied().unwrap_or(Value::Null)
                }
                _ => Value::Null,
            },
            Expr::Tuple { elems } => elems
                .iter()
                .map(|v| locals[v.index()])
                .find(|v| matches!(v, Value::Ref(_)))
                .unwrap_or(Value::Null),
            Expr::Binary { lhs, rhs, .. } => {
                let a = as_prim(locals[lhs.index()]);
                let b = as_prim(locals[rhs.index()]);
                Value::Prim(a.wrapping_add(b) & 0xFFFF)
            }
            Expr::Cmp { lhs, rhs, .. } => {
                Value::Prim(i64::from(as_prim(locals[lhs.index()]) < as_prim(locals[rhs.index()])))
            }
            Expr::InstanceOf { operand, .. } => {
                Value::Prim(i64::from(matches!(locals[operand.index()], Value::Ref(_))))
            }
            Expr::Length { .. } => Value::Prim(1),
            Expr::Unary { operand, .. } => Value::Prim(!as_prim(locals[operand.index()])),
        }
    }

    fn store(&mut self, lhs: &gdroid_ir::Lhs, value: Value, locals: &mut [Value]) {
        match lhs {
            gdroid_ir::Lhs::Var(v) => locals[v.index()] = value,
            gdroid_ir::Lhs::Field { base, field } => {
                if let Value::Ref(o) = locals[base.index()] {
                    self.heap[o.0 as usize].fields.insert(*field, value);
                }
            }
            gdroid_ir::Lhs::StaticField { field } => {
                self.statics.insert(*field, value);
            }
            gdroid_ir::Lhs::ArrayElem { base, .. } => {
                if let Value::Ref(o) = locals[base.index()] {
                    self.heap[o.0 as usize].elem = Some(Box::new(value));
                }
            }
        }
    }
}

fn as_prim(v: Value) -> i64 {
    match v {
        Value::Prim(p) => p,
        _ => 0,
    }
}

/// A soundness violation: the interpreter observed a points-to the static
/// analysis did not predict.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The unpredicted observation.
    pub observation: Observation,
    /// The object's birth, for diagnosis.
    pub birth: Birth,
}

/// Replays a trace against a finished analysis and returns the violations
/// (empty = the analysis is sound for this execution).
///
/// An observation `(m, s, v) ↦ o` is *predicted* when the static facts at
/// the node of `s` contain, in `Local(v)`'s row:
///
/// * `Alloc(site)` — if `o` was born at `site` inside `m`;
/// * *any* symbolic instance (`Formal`/`CallRet`/`StaticIn`) — if `o`
///   crossed a method boundary (the analysis tracks such objects
///   symbolically, so identity is intentionally abstracted).
pub fn check_soundness(
    analysis: &AppAnalysis,
    trace: &Trace,
    heap_births: &dyn Fn(ObjId) -> Birth,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for &obs in &trace.observations {
        let Some(space) = analysis.spaces.get(&obs.method) else { continue };
        let Some(cfg) = analysis.cfgs.get(&obs.method) else { continue };
        let Some(slot) = space.slot(Slot::Local(obs.var)) else {
            violations.push(Violation { observation: obs, birth: heap_births(obs.object) });
            continue;
        };
        let node = cfg.node_of(obs.stmt);
        let facts = analysis.node_facts(obs.method, node);
        let row = facts.row(slot);
        let birth = heap_births(obs.object);
        let predicted = match birth {
            Birth::Site(m, s) if m == obs.method => {
                row.iter().any(|&i| space.instances[usize::from(i)] == Instance::Alloc(s))
            }
            Birth::External(m, s) if m == obs.method => {
                row.iter().any(|&i| space.instances[usize::from(i)] == Instance::CallRet(s))
            }
            // Cross-method object: any symbolic instance covers it.
            _ => row.iter().any(|&i| {
                matches!(
                    space.instances[usize::from(i)],
                    Instance::Formal(_) | Instance::CallRet(_) | Instance::StaticIn(_)
                )
            }),
        };
        if !predicted {
            violations.push(Violation { observation: obs, birth });
        }
    }
    violations
}

/// Convenience: run the interpreter from every environment root and check
/// soundness in one step. Returns `(trace_stats, violations)`.
pub fn validate_app(
    program: &Program,
    cg: &CallGraph,
    roots: &[MethodId],
    analysis: &AppAnalysis,
    config: InterpConfig,
) -> (Trace, Vec<Violation>) {
    let mut merged = Trace::default();
    let mut all_violations = Vec::new();
    for &root in roots {
        let mut interp = Interpreter::new(program, cg, config);
        let trace = interp.run_collect(root);
        let births: Vec<Birth> = interp.heap.iter().map(|o| o.birth).collect();
        let heap_births = |o: ObjId| births[o.0 as usize];
        all_violations.extend(check_soundness(analysis, &trace, &heap_births));
        merged.steps += trace.steps;
        merged.allocations += trace.allocations;
        merged.calls += trace.calls;
        merged.observations.extend(trace.observations);
    }
    (merged, all_violations)
}

impl<'a> Interpreter<'a> {
    /// Like [`Interpreter::run`] but keeps `self` alive so the heap can be
    /// inspected afterwards.
    fn run_collect(&mut self, entry: MethodId) -> Trace {
        let method = &self.program.methods[entry];
        let mut args = Vec::new();
        if method.this_var.is_some() {
            let o = self.alloc(Birth::EntryArg);
            args.push(Value::Ref(o));
        }
        for p in &method.params {
            if p.ty.is_reference() {
                let o = self.alloc(Birth::EntryArg);
                args.push(Value::Ref(o));
            } else {
                args.push(Value::Prim(1));
            }
        }
        self.call(entry, &args, 0);
        std::mem::take(&mut self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{analyze_app, StoreKind};
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_icfg::prepare_app;

    fn setup(seed: u64) -> (gdroid_apk::App, CallGraph, Vec<MethodId>, AppAnalysis) {
        let mut app = generate_app(0, seed, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        let analysis = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);
        (app, cg, roots, analysis)
    }

    #[test]
    fn interpreter_executes_and_allocates() {
        let (app, cg, roots, _) = setup(501);
        let interp = Interpreter::new(&app.program, &cg, InterpConfig::default());
        let trace = interp.run(roots[0]);
        assert!(trace.steps > 0, "no statements executed");
        assert!(trace.allocations > 0, "no objects allocated");
        assert!(trace.calls >= 1);
        assert!(!trace.observations.is_empty(), "no points-to observed");
    }

    #[test]
    fn interpreter_is_deterministic() {
        let (app, cg, roots, _) = setup(502);
        let t1 = Interpreter::new(&app.program, &cg, InterpConfig::default()).run(roots[0]);
        let t2 = Interpreter::new(&app.program, &cg, InterpConfig::default()).run(roots[0]);
        assert_eq!(t1.steps, t2.steps);
        assert_eq!(t1.allocations, t2.allocations);
        assert_eq!(t1.observations.len(), t2.observations.len());
    }

    #[test]
    fn different_seeds_take_different_paths() {
        let (app, cg, roots, _) = setup(503);
        let a = Interpreter::new(&app.program, &cg, InterpConfig { seed: 1, ..Default::default() })
            .run(roots[0]);
        let b =
            Interpreter::new(&app.program, &cg, InterpConfig { seed: 99, ..Default::default() })
                .run(roots[0]);
        // Branch oracles differ → traces almost surely differ.
        assert!(a.steps != b.steps || a.observations.len() != b.observations.len());
    }

    #[test]
    fn static_analysis_is_sound_for_concrete_runs() {
        // The headline validation: across several apps and several branch
        // oracles, no concrete points-to escapes the static IDFG.
        for seed in [601u64, 602, 603] {
            let (app, cg, roots, analysis) = setup(seed);
            for oracle in [1u64, 7, 42] {
                let config = InterpConfig { seed: oracle, fuel: 60_000, ..Default::default() };
                let (trace, violations) =
                    validate_app(&app.program, &cg, &roots, &analysis, config);
                assert!(
                    violations.is_empty(),
                    "app seed {seed} oracle {oracle}: {} violations of {} observations; first: {:?}",
                    violations.len(),
                    trace.observations.len(),
                    violations.first()
                );
            }
        }
    }

    #[test]
    fn fuel_bounds_execution() {
        let (app, cg, roots, _) = setup(504);
        let config = InterpConfig { fuel: 100, ..Default::default() };
        let trace = Interpreter::new(&app.program, &cg, config).run(roots[0]);
        assert!(trace.steps <= 100);
    }
}
