//! The multithreaded CPU baseline — the paper's "multithreading C"
//! re-implementation of Amandroid's worklist core (§III-B1).
//!
//! Parallelism follows the same SBDA structure the GPU uses: within one
//! call-graph layer, SCCs are mutually independent and solved on a rayon
//! work-stealing pool; layers synchronize bottom-up. This is the fair CPU
//! counterpart of the GPU's one-method-per-thread-block mapping.

use crate::fact::MethodSpace;
use crate::solver::{solve_method, AppAnalysis, StoreKind, WorklistTelemetry};
use crate::store::{FactStore, Geometry, MatrixStore, SetStore};
use crate::summary::{derive_summary, SummaryMap};
use gdroid_icfg::{CallGraph, CallLayers, Cfg};
use gdroid_ir::{MethodId, Program};
use rayon::prelude::*;
use std::collections::HashMap;

/// Per-method output of one parallel solve.
struct MethodOutcome {
    mid: MethodId,
    telemetry: WorklistTelemetry,
    store: MatrixStore,
    bytes: usize,
    summary: crate::summary::MethodSummary,
}

/// Analyzes an app with layer-parallel method solving.
///
/// Functionally identical to [`crate::solver::analyze_app`] (tested); the
/// fixed thread count is reported alongside so cost models can scale.
pub fn analyze_app_parallel(
    program: &Program,
    cg: &CallGraph,
    roots: &[MethodId],
    store_kind: StoreKind,
) -> AppAnalysis {
    let layers = CallLayers::compute(cg, roots);
    let mut spaces: HashMap<MethodId, MethodSpace> = HashMap::new();
    let mut cfgs: HashMap<MethodId, Cfg> = HashMap::new();
    for mid in layers.scc_of.keys() {
        spaces.insert(*mid, MethodSpace::build(program, *mid));
        cfgs.insert(*mid, Cfg::build(&program.methods[*mid]));
    }

    let mut summaries: SummaryMap = HashMap::new();
    let mut facts: HashMap<MethodId, MatrixStore> = HashMap::new();
    let mut telemetry = WorklistTelemetry::default();
    let mut per_method: HashMap<MethodId, WorklistTelemetry> = HashMap::new();
    let mut bytes_per_method: HashMap<MethodId, usize> = HashMap::new();

    for layer_idx in 0..layers.layer_count() {
        let sccs: Vec<&Vec<MethodId>> = layers
            .scc_members
            .iter()
            .enumerate()
            .filter(|(i, _)| layers.scc_layer[*i] as usize == layer_idx)
            .map(|(_, m)| m)
            .collect();

        // Solve all SCCs of this layer in parallel; each SCC iterates its
        // own summary fixed point internally.
        let outcomes: Vec<Vec<MethodOutcome>> = sccs
            .par_iter()
            .map(|scc| {
                let mut local_summaries: SummaryMap = summaries.clone();
                let mut results: HashMap<MethodId, MethodOutcome> = HashMap::new();
                loop {
                    let mut changed = false;
                    for &mid in scc.iter() {
                        let space = &spaces[&mid];
                        let cfg = &cfgs[&mid];
                        let geometry = Geometry::of(space);
                        let (tele, store, bytes) = match store_kind {
                            StoreKind::Matrix => {
                                let mut s = MatrixStore::new(geometry, cfg.len());
                                let t = solve_method(
                                    program,
                                    mid,
                                    space,
                                    cfg,
                                    &mut s,
                                    &local_summaries,
                                    cg,
                                );
                                let b = s.memory_bytes();
                                (t, s, b)
                            }
                            StoreKind::Set => {
                                let mut s = SetStore::new(geometry, cfg.len());
                                let t = solve_method(
                                    program,
                                    mid,
                                    space,
                                    cfg,
                                    &mut s,
                                    &local_summaries,
                                    cg,
                                );
                                let b = s.memory_bytes();
                                let mut mat = MatrixStore::new(geometry, cfg.len());
                                for node in 0..cfg.len() {
                                    let snap = s.snapshot(node);
                                    mat.union_into(node, &snap);
                                }
                                (t, mat, b)
                            }
                        };
                        let exit = cfg.exit() as usize;
                        let store_ref = &store;
                        let node_facts = |n: usize| store_ref.snapshot(n);
                        let summary =
                            derive_summary(&program.methods[mid], space, &node_facts, exit);
                        if local_summaries.get(&mid) != Some(&summary) {
                            changed = true;
                        }
                        local_summaries.insert(mid, summary.clone());
                        results.insert(
                            mid,
                            MethodOutcome { mid, telemetry: tele, store, bytes, summary },
                        );
                    }
                    let single_plain = scc.len() == 1 && !layers.is_recursive(scc[0], cg);
                    if !changed || single_plain {
                        break;
                    }
                }
                let mut v: Vec<MethodOutcome> = results.into_values().collect();
                v.sort_by_key(|o| o.mid);
                v
            })
            .collect();

        // Layer barrier: publish summaries and facts.
        for outcome in outcomes.into_iter().flatten() {
            telemetry.absorb(&outcome.telemetry);
            per_method.entry(outcome.mid).or_default().absorb(&outcome.telemetry);
            bytes_per_method.insert(outcome.mid, outcome.bytes);
            summaries.insert(outcome.mid, outcome.summary);
            facts.insert(outcome.mid, outcome.store);
        }
    }

    AppAnalysis {
        spaces,
        cfgs,
        facts,
        summaries,
        telemetry,
        per_method,
        store_bytes: bytes_per_method.values().sum(),
        store_kind,
        schedule: layers.layers.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::analyze_app;
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_icfg::prepare_app;

    #[test]
    fn parallel_matches_sequential() {
        let mut app = generate_app(0, 7777, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        let seq = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);
        let par = analyze_app_parallel(&app.program, &cg, &roots, StoreKind::Matrix);

        assert_eq!(seq.facts.len(), par.facts.len());
        assert_eq!(seq.summaries, par.summaries);
        for (mid, s1) in &seq.facts {
            let s2 = &par.facts[mid];
            for node in 0..s1.node_count() {
                assert_eq!(
                    s1.snapshot(node).words(),
                    s2.snapshot(node).words(),
                    "facts differ at {mid:?} node {node}"
                );
            }
        }
    }

    #[test]
    fn parallel_is_deterministic() {
        let mut app = generate_app(1, 7778, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        let a = analyze_app_parallel(&app.program, &cg, &roots, StoreKind::Matrix);
        let b = analyze_app_parallel(&app.program, &cg, &roots, StoreKind::Matrix);
        assert_eq!(a.total_facts(), b.total_facts());
        assert_eq!(a.summaries, b.summaries);
    }

    #[test]
    fn parallel_set_store_matches_matrix() {
        let mut app = generate_app(2, 7779, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        let m = analyze_app_parallel(&app.program, &cg, &roots, StoreKind::Matrix);
        let s = analyze_app_parallel(&app.program, &cg, &roots, StoreKind::Set);
        assert_eq!(m.total_facts(), s.total_facts());
        assert_eq!(m.summaries, s.summaries);
        assert!(s.store_bytes > m.store_bytes);
    }
}
