//! Fact stores: the set-based structure of the original algorithm and the
//! MAT bitmask matrix that replaces it.
//!
//! Both stores hold, for every ICFG node of a method, the node's data-fact
//! set over the method's pre-determined pools. They are functionally
//! interchangeable (verified by tests and by the GPU/CPU cross-check); they
//! differ in representation:
//!
//! * [`SetStore`] — one hash set of packed facts per node, growing
//!   dynamically. This is the paper's baseline: every growth step is a
//!   (re)allocation, which is cheap on the CPU and catastrophic on the GPU.
//! * [`MatrixStore`] — one fixed-size bitmap per node over the
//!   `slots × instances` matrix. Equivalent to the paper's per-cell
//!   statement bitmasks (bit `(s,i)` of node `n` ⇔ cell `(s,i)` has bit `n`
//!   set); all updates are word-wise OR, no allocation ever.
//!
//! [`Geometry`] fixes the matrix dimensions; both stores report the memory
//! accounting behind the paper's Fig. 10.

use crate::fact::{Fact, InstanceIdx, MethodSpace, SlotIdx};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Matrix geometry of one method: rows × columns and derived word counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Geometry {
    /// Slot count (rows).
    pub slots: usize,
    /// Instance count (columns).
    pub insts: usize,
}

impl Geometry {
    /// Geometry of a method space.
    pub fn of(space: &MethodSpace) -> Geometry {
        Geometry { slots: space.slot_count(), insts: space.instance_count() }
    }

    /// Bits per node bitmap.
    #[inline]
    pub fn bits(&self) -> usize {
        self.slots * self.insts
    }

    /// `u64` words per node bitmap.
    #[inline]
    pub fn words(&self) -> usize {
        self.bits().div_ceil(64)
    }

    /// Flat bit position of a fact.
    #[inline]
    pub fn bit_of(&self, fact: Fact) -> usize {
        usize::from(fact.slot) * self.insts + usize::from(fact.instance)
    }
}

/// One node's facts as a fixed-size bitmap — the unit the transfer
/// functions operate on.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeFacts {
    geometry: Geometry,
    words: Vec<u64>,
}

impl NodeFacts {
    /// An empty bitmap for the geometry.
    pub fn empty(geometry: Geometry) -> NodeFacts {
        NodeFacts { geometry, words: vec![0; geometry.words()] }
    }

    /// Rebuilds a bitmap from raw words previously obtained via
    /// [`NodeFacts::words`]. `None` when the word count does not match
    /// the geometry (the summary-store integrity check).
    pub fn from_words(geometry: Geometry, words: Vec<u64>) -> Option<NodeFacts> {
        if words.len() != geometry.words() {
            return None;
        }
        Some(NodeFacts { geometry, words })
    }

    /// The geometry.
    #[inline]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Raw words (for GPU buffer transfer).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Sets a fact; returns whether it was newly set.
    #[inline]
    pub fn set(&mut self, fact: Fact) -> bool {
        let bit = self.geometry.bit_of(fact);
        let w = &mut self.words[bit / 64];
        let mask = 1u64 << (bit % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Tests a fact.
    #[inline]
    pub fn get(&self, fact: Fact) -> bool {
        let bit = self.geometry.bit_of(fact);
        self.words[bit / 64] & (1 << (bit % 64)) != 0
    }

    /// Clears an entire slot row (strong update / kill).
    pub fn clear_row(&mut self, slot: SlotIdx) {
        let insts = self.geometry.insts;
        let start = usize::from(slot) * insts;
        for bit in start..start + insts {
            self.words[bit / 64] &= !(1 << (bit % 64));
        }
    }

    /// Iterates the instances present in a slot row.
    pub fn row(&self, slot: SlotIdx) -> Vec<InstanceIdx> {
        let insts = self.geometry.insts;
        let start = usize::from(slot) * insts;
        let mut out = Vec::new();
        for i in 0..insts {
            let bit = start + i;
            if self.words[bit / 64] & (1 << (bit % 64)) != 0 {
                out.push(i as InstanceIdx);
            }
        }
        out
    }

    /// Copies a source row's bits into a destination row (the core
    /// propagation primitive `x = y`).
    pub fn copy_row_from(&mut self, dst: SlotIdx, src: &NodeFacts, src_slot: SlotIdx) {
        for inst in src.row(src_slot) {
            self.set(Fact { slot: dst, instance: inst });
        }
    }

    /// Unions another bitmap in; returns whether anything changed.
    pub fn union(&mut self, other: &NodeFacts) -> bool {
        debug_assert_eq!(self.geometry, other.geometry);
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let merged = *w | o;
            changed |= merged != *w;
            *w = merged;
        }
        changed
    }

    /// Number of facts set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates all facts set.
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        let insts = self.geometry.insts;
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let bit = wi * 64 + tz;
                Some(Fact {
                    slot: (bit / insts) as SlotIdx,
                    instance: (bit % insts) as InstanceIdx,
                })
            })
        })
    }
}

/// Outcome of merging an out-set into a node's stored facts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnionOutcome {
    /// Whether the node's set grew.
    pub changed: bool,
    /// How many facts were newly inserted (set store: actual inserts;
    /// matrix store: popcount delta).
    pub inserted: usize,
    /// How many capacity growth events (reallocations) occurred — the
    /// dynamic-allocation driver of the paper's first bottleneck. Always 0
    /// for the matrix store.
    pub reallocations: usize,
}

/// Common interface of the two stores.
pub trait FactStore {
    /// Number of nodes.
    fn node_count(&self) -> usize;
    /// Matrix geometry.
    fn geometry(&self) -> Geometry;
    /// Materializes a node's facts as a bitmap (the transfer input).
    fn snapshot(&self, node: usize) -> NodeFacts;
    /// Unions a bitmap into a node's facts.
    fn union_into(&mut self, node: usize, facts: &NodeFacts) -> UnionOutcome;
    /// Inserts facts directly (seeding entry facts).
    fn seed(&mut self, node: usize, facts: &[Fact]);
    /// Facts currently stored at a node.
    fn fact_count(&self, node: usize) -> usize;
    /// Bytes of memory currently held — Fig. 10's metric.
    fn memory_bytes(&self) -> usize;
}

/// The original dynamically-growing set-based store.
#[derive(Clone, Debug, Default)]
pub struct SetStore {
    geometry: Geometry,
    sets: Vec<HashSet<u32>>,
    /// Cumulative reallocation events across the store's lifetime.
    pub total_reallocations: usize,
}

impl SetStore {
    /// Creates a store for `nodes` nodes.
    pub fn new(geometry: Geometry, nodes: usize) -> SetStore {
        SetStore { geometry, sets: vec![HashSet::new(); nodes], total_reallocations: 0 }
    }
}

impl FactStore for SetStore {
    fn node_count(&self) -> usize {
        self.sets.len()
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn snapshot(&self, node: usize) -> NodeFacts {
        let mut bm = NodeFacts::empty(self.geometry);
        for &raw in &self.sets[node] {
            bm.set(Fact::unpack(raw));
        }
        bm
    }

    fn union_into(&mut self, node: usize, facts: &NodeFacts) -> UnionOutcome {
        let set = &mut self.sets[node];
        let mut outcome = UnionOutcome::default();
        for fact in facts.iter() {
            let cap_before = set.capacity();
            if set.insert(fact.pack()) {
                outcome.inserted += 1;
                outcome.changed = true;
                if set.capacity() != cap_before {
                    outcome.reallocations += 1;
                }
            }
        }
        self.total_reallocations += outcome.reallocations;
        outcome
    }

    fn seed(&mut self, node: usize, facts: &[Fact]) {
        for &f in facts {
            self.sets[node].insert(f.pack());
        }
    }

    fn fact_count(&self, node: usize) -> usize {
        self.sets[node].len()
    }

    fn memory_bytes(&self) -> usize {
        // We charge the Amandroid-equivalent footprint: the Scala original
        // stores boxed `(slot, instance)` tuples in a `HashSet` — object
        // header (16 B) + tuple (24 B) + hash-table entry (~8 B) per
        // element of *capacity* (power-of-two growth leaves slack), plus
        // per-set table overhead.
        self.sets.iter().map(|s| 640 + s.capacity().max(s.len()) * 64).sum()
    }
}

/// The MAT bitmask-matrix store.
#[derive(Clone, Debug)]
pub struct MatrixStore {
    geometry: Geometry,
    nodes: Vec<NodeFacts>,
}

impl MatrixStore {
    /// Creates a store for `nodes` nodes — one fixed allocation, up front.
    pub fn new(geometry: Geometry, nodes: usize) -> MatrixStore {
        MatrixStore { geometry, nodes: vec![NodeFacts::empty(geometry); nodes] }
    }

    /// Direct read access to a node's bitmap (no copy).
    pub fn node(&self, node: usize) -> &NodeFacts {
        &self.nodes[node]
    }

    /// Flattens every node bitmap into one row-major word vector — the
    /// relocatable form the summary store persists (bit positions are
    /// purely positional, so no translation is needed across programs
    /// with structurally identical bodies).
    pub fn flat_words(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.nodes.len() * self.geometry.words());
        for n in &self.nodes {
            out.extend_from_slice(n.words());
        }
        out
    }

    /// Inverse of [`MatrixStore::flat_words`]: rebuilds a store from
    /// flattened words. `None` when the word count does not match
    /// `nodes × geometry.words()`.
    pub fn from_flat_words(geometry: Geometry, nodes: usize, words: &[u64]) -> Option<MatrixStore> {
        let per = geometry.words();
        if words.len() != nodes * per {
            return None;
        }
        let nodes = if per == 0 {
            vec![NodeFacts::empty(geometry); nodes]
        } else {
            words.chunks(per).map(|chunk| NodeFacts { geometry, words: chunk.to_vec() }).collect()
        };
        MatrixStore { geometry, nodes }.into()
    }
}

impl FactStore for MatrixStore {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn geometry(&self) -> Geometry {
        self.geometry
    }

    fn snapshot(&self, node: usize) -> NodeFacts {
        self.nodes[node].clone()
    }

    fn union_into(&mut self, node: usize, facts: &NodeFacts) -> UnionOutcome {
        let before = self.nodes[node].count();
        let changed = self.nodes[node].union(facts);
        UnionOutcome { changed, inserted: self.nodes[node].count() - before, reallocations: 0 }
    }

    fn seed(&mut self, node: usize, facts: &[Fact]) {
        for &f in facts {
            self.nodes[node].set(f);
        }
    }

    fn fact_count(&self, node: usize) -> usize {
        self.nodes[node].count()
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.len() * self.geometry.words() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry { slots: 10, insts: 7 }
    }

    #[test]
    fn geometry_word_math() {
        let g = geo();
        assert_eq!(g.bits(), 70);
        assert_eq!(g.words(), 2);
        assert_eq!(g.bit_of(Fact { slot: 0, instance: 0 }), 0);
        assert_eq!(g.bit_of(Fact { slot: 1, instance: 0 }), 7);
        assert_eq!(g.bit_of(Fact { slot: 9, instance: 6 }), 69);
    }

    #[test]
    fn bitmap_set_get_clear() {
        let mut bm = NodeFacts::empty(geo());
        let f = Fact { slot: 3, instance: 2 };
        assert!(!bm.get(f));
        assert!(bm.set(f));
        assert!(!bm.set(f), "second set is not fresh");
        assert!(bm.get(f));
        assert_eq!(bm.count(), 1);
        bm.clear_row(3);
        assert!(!bm.get(f));
        assert_eq!(bm.count(), 0);
    }

    #[test]
    fn bitmap_row_iteration() {
        let mut bm = NodeFacts::empty(geo());
        bm.set(Fact { slot: 2, instance: 1 });
        bm.set(Fact { slot: 2, instance: 5 });
        bm.set(Fact { slot: 3, instance: 0 });
        assert_eq!(bm.row(2), vec![1, 5]);
        assert_eq!(bm.row(3), vec![0]);
        assert_eq!(bm.row(4), Vec::<InstanceIdx>::new());
    }

    #[test]
    fn bitmap_iter_matches_sets() {
        let mut bm = NodeFacts::empty(geo());
        let facts = [
            Fact { slot: 0, instance: 0 },
            Fact { slot: 6, instance: 6 },
            Fact { slot: 9, instance: 1 },
        ];
        for f in facts {
            bm.set(f);
        }
        let mut collected: Vec<Fact> = bm.iter().collect();
        collected.sort();
        let mut expected = facts.to_vec();
        expected.sort();
        assert_eq!(collected, expected);
    }

    #[test]
    fn union_detects_change() {
        let mut a = NodeFacts::empty(geo());
        let mut b = NodeFacts::empty(geo());
        b.set(Fact { slot: 1, instance: 1 });
        assert!(a.union(&b));
        assert!(!a.union(&b), "second union is a no-op");
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn copy_row_from_propagates() {
        let mut src = NodeFacts::empty(geo());
        src.set(Fact { slot: 5, instance: 2 });
        src.set(Fact { slot: 5, instance: 4 });
        let mut dst = NodeFacts::empty(geo());
        dst.copy_row_from(1, &src, 5);
        assert_eq!(dst.row(1), vec![2, 4]);
    }

    fn store_contract(mut store: impl FactStore) {
        let g = store.geometry();
        let seedf = [Fact { slot: 0, instance: 0 }];
        store.seed(0, &seedf);
        assert_eq!(store.fact_count(0), 1);

        let mut incoming = NodeFacts::empty(g);
        incoming.set(Fact { slot: 1, instance: 2 });
        incoming.set(Fact { slot: 0, instance: 0 }); // already there
        let out = store.union_into(0, &incoming);
        assert!(out.changed);
        assert_eq!(out.inserted, 1);
        assert_eq!(store.fact_count(0), 2);

        let out2 = store.union_into(0, &incoming);
        assert!(!out2.changed);
        assert_eq!(out2.inserted, 0);

        // Snapshot reflects everything.
        let snap = store.snapshot(0);
        assert!(snap.get(Fact { slot: 0, instance: 0 }));
        assert!(snap.get(Fact { slot: 1, instance: 2 }));
        assert_eq!(snap.count(), 2);

        assert!(store.memory_bytes() > 0);
    }

    #[test]
    fn set_store_contract() {
        store_contract(SetStore::new(geo(), 4));
    }

    #[test]
    fn matrix_store_contract() {
        store_contract(MatrixStore::new(geo(), 4));
    }

    #[test]
    fn stores_agree_after_identical_operations() {
        let g = geo();
        let mut set = SetStore::new(g, 3);
        let mut mat = MatrixStore::new(g, 3);
        let seeds = [Fact { slot: 2, instance: 2 }];
        set.seed(1, &seeds);
        mat.seed(1, &seeds);
        let mut inc = NodeFacts::empty(g);
        inc.set(Fact { slot: 7, instance: 3 });
        inc.set(Fact { slot: 2, instance: 2 });
        let o1 = set.union_into(1, &inc);
        let o2 = mat.union_into(1, &inc);
        assert_eq!(o1.changed, o2.changed);
        assert_eq!(o1.inserted, o2.inserted);
        let s1: Vec<Fact> = {
            let mut v: Vec<Fact> = set.snapshot(1).iter().collect();
            v.sort();
            v
        };
        let s2: Vec<Fact> = {
            let mut v: Vec<Fact> = mat.snapshot(1).iter().collect();
            v.sort();
            v
        };
        assert_eq!(s1, s2);
    }

    #[test]
    fn matrix_memory_is_fixed_set_memory_grows() {
        let g = Geometry { slots: 50, insts: 20 };
        let mut set = SetStore::new(g, 10);
        let mat = MatrixStore::new(g, 10);
        let mat_bytes = mat.memory_bytes();
        let set_bytes_empty = set.memory_bytes();
        // Fill one node's set heavily.
        let mut inc = NodeFacts::empty(g);
        for s in 0..50u16 {
            for i in 0..20u16 {
                inc.set(Fact { slot: s, instance: i });
            }
        }
        set.union_into(0, &inc);
        assert!(set.memory_bytes() > set_bytes_empty);
        assert!(set.total_reallocations > 0, "hash set growth should reallocate");
        // Matrix memory does not change with content.
        assert_eq!(mat.memory_bytes(), mat_bytes);
    }
}
