//! The data-fact domain: slots, instances, and per-method pools.
//!
//! A data-fact is a `(slot, instance)` pair — "this storage location may
//! point to this object". The paper's MAT optimization rests on the
//! observation that *the pools of slots and instances can be pre-determined
//! before the worklist algorithm runs* (§IV-A); [`MethodSpace::build`] is
//! that pre-determination pass. Downstream, slots index matrix rows and
//! instances index matrix columns.

use gdroid_ir::{Expr, FieldId, Lhs, Literal, Method, MethodId, Program, Stmt, StmtIdx, VarId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A storage location that can hold an object reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Slot {
    /// A reference-typed local variable.
    Local(VarId),
    /// A static field.
    Static(FieldId),
    /// An instance field of a pooled instance: `(instance, field)`.
    Heap(InstanceIdx, FieldId),
    /// The merged element slot of a pooled array instance.
    ArrayElem(InstanceIdx),
}

/// An abstract object the analysis tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Instance {
    /// Allocation site within this method (`new`, string literal,
    /// `constclass`, caught exception).
    Alloc(StmtIdx),
    /// The symbolic object bound to formal `k` (0 = `this` for instance
    /// methods).
    Formal(u8),
    /// The symbolic content of a static field at method entry.
    StaticIn(FieldId),
    /// The symbolic object returned by the call at this statement
    /// (external callee or summarized escape).
    CallRet(StmtIdx),
}

/// Dense index of a slot within a method's pool.
pub type SlotIdx = u16;
/// Dense index of an instance within a method's pool.
pub type InstanceIdx = u16;

/// A packed data-fact: `(slot, instance)` as dense pool indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Fact {
    /// Row.
    pub slot: SlotIdx,
    /// Column.
    pub instance: InstanceIdx,
}

impl Fact {
    /// Packs into a single `u32` (used by the set store and for hashing).
    #[inline]
    pub fn pack(self) -> u32 {
        (u32::from(self.slot) << 16) | u32::from(self.instance)
    }

    /// Unpacks from [`Fact::pack`] form.
    #[inline]
    pub fn unpack(raw: u32) -> Fact {
        Fact { slot: (raw >> 16) as u16, instance: (raw & 0xFFFF) as u16 }
    }
}

/// The pre-determined pools and lookup tables of one method — everything
/// the transfer functions need, computed once before analysis.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MethodSpace {
    /// The method this space belongs to.
    pub method: MethodId,
    /// Slot pool; index = [`SlotIdx`].
    pub slots: Vec<Slot>,
    /// Instance pool; index = [`InstanceIdx`].
    pub instances: Vec<Instance>,
    /// Reverse slot lookup.
    #[serde(skip)]
    slot_idx: HashMap<Slot, SlotIdx>,
    /// Reverse instance lookup.
    #[serde(skip)]
    instance_idx: HashMap<Instance, InstanceIdx>,
    /// Reference fields accessed (read or written) by this method — the
    /// field axis of the heap-slot cross product.
    pub ref_fields: Vec<FieldId>,
    /// Statement count (bitmask width for the per-statement cell view).
    pub stmt_count: usize,
}

impl MethodSpace {
    /// Scans a method body and pre-computes its pools.
    pub fn build(program: &Program, mid: MethodId) -> MethodSpace {
        let method = &program.methods[mid];
        let mut sp = MethodSpace { method: mid, stmt_count: method.len(), ..Default::default() };

        // --- instances -----------------------------------------------------
        // Formals first (stable small indices), then allocation sites and
        // call returns in statement order, then static-ins.
        let mut formal_count = 0u8;
        if method.this_var.is_some() {
            sp.add_instance(Instance::Formal(formal_count));
            formal_count += 1;
        }
        for p in &method.params {
            if p.ty.is_reference() {
                sp.add_instance(Instance::Formal(formal_count));
            }
            // Formal numbering follows declaration order including
            // primitives, so callers can map argument positions directly.
            formal_count += 1;
        }
        for (idx, stmt) in method.body.iter_enumerated() {
            match stmt {
                Stmt::Assign {
                    rhs:
                        Expr::New { .. }
                        | Expr::Lit(Literal::Str(_))
                        | Expr::ConstClass { .. }
                        | Expr::Exception,
                    ..
                } => {
                    sp.add_instance(Instance::Alloc(idx));
                }
                // Every call site gets a fresh-object instance, even calls
                // whose result is discarded: a void callee can still store
                // a fresh object into an argument's field, and that object
                // needs a caller-side identity.
                Stmt::Call { .. } => {
                    sp.add_instance(Instance::CallRet(idx));
                }
                _ => {}
            }
        }

        // --- statics and accessed fields -----------------------------------
        let mut statics: Vec<FieldId> = Vec::new();
        for stmt in method.body.iter() {
            if let Stmt::Assign { lhs, rhs } = stmt {
                match lhs {
                    Lhs::Field { field, .. } => sp.note_ref_field(program, *field),
                    Lhs::StaticField { field }
                        if program.fields[*field].ty.is_reference() && !statics.contains(field) =>
                    {
                        statics.push(*field);
                    }
                    _ => {}
                }
                match rhs {
                    Expr::Access { field, .. } => sp.note_ref_field(program, *field),
                    Expr::StaticField { field }
                        if program.fields[*field].ty.is_reference() && !statics.contains(field) =>
                    {
                        statics.push(*field);
                    }
                    _ => {}
                }
            }
        }
        for &f in &statics {
            sp.add_instance(Instance::StaticIn(f));
        }

        // --- slots ----------------------------------------------------------
        // Locals.
        for (vid, decl) in method.vars.iter_enumerated() {
            if decl.ty.is_reference() {
                sp.add_slot(Slot::Local(vid));
            }
        }
        // Statics.
        for &f in &statics {
            sp.add_slot(Slot::Static(f));
        }
        // Heap slots: every pooled instance × every field the method
        // accesses, plus one array-element slot per instance when the
        // method has array operations. The pool stays at the paper's
        // "no. of Variable ≈ 116" scale because a method accesses only a
        // handful of distinct reference fields (as in real Dalvik code);
        // the pre-determinability of this pool is exactly what MAT
        // exploits (§IV-A).
        let n_inst = sp.instances.len() as u16;
        let has_array_ops = method.body.iter().any(|s| {
            matches!(s, Stmt::Assign { lhs: Lhs::ArrayElem { .. }, .. })
                || matches!(s, Stmt::Assign { rhs: Expr::Indexing { .. }, .. })
        });
        let fields = sp.ref_fields.clone();
        for inst in 0..n_inst {
            for &f in &fields {
                sp.add_slot(Slot::Heap(inst, f));
            }
            if has_array_ops {
                sp.add_slot(Slot::ArrayElem(inst));
            }
        }

        sp
    }

    fn note_ref_field(&mut self, program: &Program, field: FieldId) {
        if program.fields[field].ty.is_reference() && !self.ref_fields.contains(&field) {
            self.ref_fields.push(field);
        }
    }

    fn add_instance(&mut self, inst: Instance) -> InstanceIdx {
        if let Some(&i) = self.instance_idx.get(&inst) {
            return i;
        }
        let idx = self.instances.len() as InstanceIdx;
        self.instances.push(inst);
        self.instance_idx.insert(inst, idx);
        idx
    }

    fn add_slot(&mut self, slot: Slot) -> SlotIdx {
        if let Some(&i) = self.slot_idx.get(&slot) {
            return i;
        }
        let idx = self.slots.len() as SlotIdx;
        self.slots.push(slot);
        self.slot_idx.insert(slot, idx);
        idx
    }

    /// Looks up a slot's pool index.
    #[inline]
    pub fn slot(&self, slot: Slot) -> Option<SlotIdx> {
        self.slot_idx.get(&slot).copied()
    }

    /// Looks up an instance's pool index.
    #[inline]
    pub fn instance(&self, inst: Instance) -> Option<InstanceIdx> {
        self.instance_idx.get(&inst).copied()
    }

    /// Number of slots (matrix rows).
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of instances (matrix columns).
    #[inline]
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Matrix cells = slots × instances.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.slots.len() * self.instances.len()
    }

    /// Rebuilds the skipped lookup maps after deserialization.
    pub fn rebuild_lookups(&mut self) {
        self.slot_idx = self.slots.iter().enumerate().map(|(i, &s)| (s, i as SlotIdx)).collect();
        self.instance_idx =
            self.instances.iter().enumerate().map(|(i, &s)| (s, i as InstanceIdx)).collect();
    }

    /// The entry facts of this method: formals bound to their symbolic
    /// instances and statics to their entry contents.
    pub fn entry_facts(&self, method: &Method) -> Vec<Fact> {
        let mut facts = Vec::new();
        let mut formal = 0u8;
        if let Some(this) = method.this_var {
            if let (Some(s), Some(i)) =
                (self.slot(Slot::Local(this)), self.instance(Instance::Formal(formal)))
            {
                facts.push(Fact { slot: s, instance: i });
            }
            formal += 1;
        }
        for p in &method.params {
            if p.ty.is_reference() {
                if let (Some(s), Some(i)) =
                    (self.slot(Slot::Local(p.var)), self.instance(Instance::Formal(formal)))
                {
                    facts.push(Fact { slot: s, instance: i });
                }
            }
            formal += 1;
        }
        for (idx, inst) in self.instances.iter().enumerate() {
            if let Instance::StaticIn(f) = inst {
                if let Some(s) = self.slot(Slot::Static(*f)) {
                    facts.push(Fact { slot: s, instance: idx as InstanceIdx });
                }
            }
        }
        facts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_ir::{JType, MethodKind, ProgramBuilder};

    fn sample() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let obj = pb.class("java/lang/Object").build();
        let cls = pb.class("A").extends(obj).build();
        let obj_sym = pb.program().classes[obj].name;
        let f = pb.field(cls, "data", JType::Object(obj_sym), false);
        let sf = pb.field(cls, "shared", JType::Object(obj_sym), true);

        let mut mb = pb.method(cls, "m");
        let this = mb.this();
        let p0 = mb.param("p0", JType::Object(obj_sym));
        let _p1 = mb.param("p1", JType::Int);
        let r = mb.local("r", JType::Object(obj_sym));
        let _n = mb.local("n", JType::Int);
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(r), rhs: Expr::New { ty: JType::Object(obj_sym) } });
        mb.stmt(Stmt::Assign { lhs: Lhs::Field { base: this, field: f }, rhs: Expr::Var(r) });
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(r), rhs: Expr::StaticField { field: sf } });
        let ext_name = mb.intern("ext");
        mb.stmt(Stmt::Call {
            ret: Some(p0),
            kind: gdroid_ir::CallKind::Static,
            sig: gdroid_ir::Signature::new(obj_sym, ext_name, vec![], JType::Object(obj_sym)),
            args: vec![],
        });
        mb.stmt(Stmt::Return { var: None });
        let mid = mb.build();
        (pb.finish(), mid)
    }

    #[test]
    fn pools_contain_expected_entries() {
        let (p, mid) = sample();
        let sp = MethodSpace::build(&p, mid);
        // Instances: Formal(0)=this, Formal(1)=p0, Alloc(L0), CallRet(L3),
        // StaticIn(shared).
        assert!(sp.instance(Instance::Formal(0)).is_some());
        assert!(sp.instance(Instance::Formal(1)).is_some());
        assert!(sp.instance(Instance::Alloc(StmtIdx(0))).is_some());
        assert!(sp.instance(Instance::CallRet(StmtIdx(3))).is_some());
        assert_eq!(sp.instance_count(), 5);
        // Primitive param p1 does NOT get an instance, but bumps numbering:
        assert!(sp.instance(Instance::Formal(2)).is_none());

        // Slots: 3 ref locals (this, p0, r) + 1 static + heap pairs for
        // all 5 instances × 1 accessed field = 9. No array ops → no array
        // slots.
        assert_eq!(sp.slot_count(), 3 + 1 + 5);
        assert!(sp.slots.iter().all(|s| !matches!(s, Slot::ArrayElem(_))));
    }

    #[test]
    fn entry_facts_bind_formals_and_statics() {
        let (p, mid) = sample();
        let sp = MethodSpace::build(&p, mid);
        let facts = sp.entry_facts(&p.methods[mid]);
        // this→Formal(0), p0→Formal(1), shared→StaticIn = 3 facts.
        assert_eq!(facts.len(), 3);
        for f in &facts {
            assert!(usize::from(f.slot) < sp.slot_count());
            assert!(usize::from(f.instance) < sp.instance_count());
        }
    }

    #[test]
    fn fact_pack_roundtrip() {
        for (s, i) in [(0u16, 0u16), (1, 2), (65535, 65535), (300, 7)] {
            let f = Fact { slot: s, instance: i };
            assert_eq!(Fact::unpack(f.pack()), f);
        }
    }

    #[test]
    fn array_ops_create_array_slots() {
        let mut pb = ProgramBuilder::new();
        let obj = pb.class("java/lang/Object").build();
        let obj_sym = pb.program().classes[obj].name;
        let cls = pb.class("B").extends(obj).build();
        let mut mb = pb.method(cls, "m").kind(MethodKind::Static);
        let a = mb.local("a", JType::object_array(obj_sym));
        let x = mb.local("x", JType::Object(obj_sym));
        let i = mb.local("i", JType::Int);
        mb.stmt(Stmt::Assign {
            lhs: Lhs::Var(a),
            rhs: Expr::New { ty: JType::object_array(obj_sym) },
        });
        mb.stmt(Stmt::Assign { lhs: Lhs::ArrayElem { base: a, index: i }, rhs: Expr::Var(x) });
        mb.stmt(Stmt::Return { var: None });
        let mid = mb.build();
        let p = pb.finish();
        let sp = MethodSpace::build(&p, mid);
        assert!(sp.slots.iter().any(|s| matches!(s, Slot::ArrayElem(_))));
    }

    #[test]
    fn rebuild_lookups_restores_maps() {
        let (p, mid) = sample();
        let mut sp = MethodSpace::build(&p, mid);
        let slot0 = sp.slots[0];
        sp.slot_idx.clear();
        sp.instance_idx.clear();
        sp.rebuild_lookups();
        assert_eq!(sp.slot(slot0), Some(0));
    }

    #[test]
    fn corpus_method_space_sizes_are_bounded() {
        let app = gdroid_apk::generate_app(0, 2222, &gdroid_apk::GenConfig::tiny());
        for (mid, _) in app.program.methods.iter_enumerated() {
            let sp = MethodSpace::build(&app.program, mid);
            assert!(sp.slot_count() < 4000, "slot pool blew up: {}", sp.slot_count());
            assert!(sp.instance_count() < 1000);
            assert!(sp.slot_count() >= 1);
        }
    }
}
