//! Incremental re-analysis across app updates.
//!
//! The paper's introduction motivates GPU acceleration with update
//! pressure: *"most popular Apps update weekly or even daily."* Successive
//! versions share most of their code, and SBDA gives a natural incremental
//! unit: a method's facts depend only on its own body and its callees'
//! summaries. This module re-analyzes an updated program by solving, in
//! bottom-up order, only
//!
//! * methods whose bodies changed, and
//! * methods whose (transitive) callees' *summaries* changed —
//!
//! reusing the previous run's facts for everything else. The result is
//! bit-identical to a from-scratch analysis (tested), typically at a small
//! fraction of the work.

use crate::fact::MethodSpace;
use crate::solver::{solve_method, AppAnalysis, StoreKind, WorklistTelemetry};
use crate::store::{FactStore, Geometry, MatrixStore};
use crate::summary::{derive_summary, SummaryMap};
use gdroid_icfg::{CallGraph, CallLayers, Cfg};
use gdroid_ir::{MethodId, Program};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Work accounting of an incremental run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncrementalStats {
    /// Methods actually re-solved.
    pub resolved: usize,
    /// Methods whose previous facts and summary were reused verbatim.
    pub reused: usize,
}

/// Re-analyzes `program` (the updated version) given the previous run.
///
/// `changed` lists the methods whose bodies differ from the previous
/// version. Methods not in `changed` must be body-identical between the
/// two versions (the caller guarantees this — e.g. by diffing `.jil`
/// text); their spaces, CFGs, facts, and summaries are reused unless a
/// callee's summary changed.
pub fn analyze_app_incremental(
    program: &Program,
    cg: &CallGraph,
    roots: &[MethodId],
    prev: &AppAnalysis,
    changed: &[MethodId],
) -> (AppAnalysis, IncrementalStats) {
    let layers = CallLayers::compute(cg, roots);
    let changed_set: HashSet<MethodId> = changed.iter().copied().collect();

    let mut spaces: HashMap<MethodId, MethodSpace> = HashMap::new();
    let mut cfgs: HashMap<MethodId, Cfg> = HashMap::new();
    for mid in layers.scc_of.keys() {
        // Structure (pools, CFG) is cheap; rebuild for changed methods and
        // methods absent from the previous run, reuse otherwise.
        if changed_set.contains(mid) || !prev.spaces.contains_key(mid) {
            spaces.insert(*mid, MethodSpace::build(program, *mid));
            cfgs.insert(*mid, Cfg::build(&program.methods[*mid]));
        } else {
            spaces.insert(*mid, prev.spaces[mid].clone());
            cfgs.insert(*mid, prev.cfgs[mid].clone());
        }
    }

    let mut summaries: SummaryMap = HashMap::new();
    let mut facts: HashMap<MethodId, MatrixStore> = HashMap::new();
    let mut telemetry = WorklistTelemetry::default();
    let mut per_method: HashMap<MethodId, WorklistTelemetry> = HashMap::new();
    let mut stats = IncrementalStats::default();
    // Methods whose summary differs from the previous run (dirtiness
    // propagates to callers).
    let mut dirty: HashSet<MethodId> = HashSet::new();

    for layer_idx in 0..layers.layer_count() {
        let sccs: Vec<&Vec<MethodId>> = layers
            .scc_members
            .iter()
            .enumerate()
            .filter(|(i, _)| layers.scc_layer[*i] as usize == layer_idx)
            .map(|(_, m)| m)
            .collect();
        for scc in sccs {
            let needs_solve = scc.iter().any(|m| {
                changed_set.contains(m)
                    || !prev.facts.contains_key(m)
                    || cg.callees_of(*m).iter().any(|c| dirty.contains(c))
            });
            if !needs_solve {
                // Reuse the previous run wholesale.
                for &mid in scc {
                    summaries.insert(mid, prev.summaries[&mid].clone());
                    facts.insert(mid, prev.facts[&mid].clone());
                    stats.reused += 1;
                }
                continue;
            }
            // Solve the SCC to its summary fixed point, as in analyze_app.
            loop {
                let mut scc_changed = false;
                for &mid in scc {
                    let space = &spaces[&mid];
                    let cfg = &cfgs[&mid];
                    let mut store = MatrixStore::new(Geometry::of(space), cfg.len());
                    let tele = solve_method(program, mid, space, cfg, &mut store, &summaries, cg);
                    telemetry.absorb(&tele);
                    per_method.entry(mid).or_default().absorb(&tele);
                    let store_ref = &store;
                    let node_facts = |n: usize| store_ref.snapshot(n);
                    let summary = derive_summary(
                        &program.methods[mid],
                        space,
                        &node_facts,
                        cfg.exit() as usize,
                    );
                    if summaries.get(&mid) != Some(&summary) {
                        scc_changed = true;
                    }
                    summaries.insert(mid, summary);
                    facts.insert(mid, store);
                }
                if !scc_changed || scc.len() == 1 && !layers.is_recursive(scc[0], cg) {
                    break;
                }
            }
            for &mid in scc {
                stats.resolved += 1;
                // Dirty iff the new summary differs from the previous run's.
                if prev.summaries.get(&mid) != summaries.get(&mid) {
                    dirty.insert(mid);
                }
            }
        }
    }

    let store_bytes = facts.values().map(|s| s.memory_bytes()).sum();
    let analysis = AppAnalysis {
        spaces,
        cfgs,
        facts,
        summaries,
        telemetry,
        per_method,
        store_bytes,
        store_kind: StoreKind::Matrix,
        schedule: layers.layers.clone(),
    };
    (analysis, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::analyze_app;
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_icfg::prepare_app;
    use gdroid_ir::{Expr, JType, Lhs, Stmt};

    /// Simulates an app update: appends `x = new T` into one method whose
    /// body ends with a return, re-deriving the call graph.
    fn update_one_method(app: &gdroid_apk::App, victim: MethodId) -> Program {
        let mut program = app.program.clone();
        let method = &mut program.methods[victim];
        // Replace the final return with: alloc into the first ref var,
        // then return — a genuine data-fact change.
        let ret = method.body[gdroid_ir::StmtIdx::new(method.len() - 1)].clone();
        let ref_var = method
            .vars
            .iter_enumerated()
            .find(|(_, d)| d.ty.is_reference())
            .map(|(v, _)| v)
            .expect("method has a ref var");
        let ty = method.vars.iter().find(|d| d.ty.is_reference()).map(|d| d.ty).unwrap();
        let body = &mut method.body;
        // Overwrite the return slot with the new statement and re-append
        // the return.
        let last = gdroid_ir::StmtIdx::new(body.len() - 1);
        body[last] = Stmt::Assign { lhs: Lhs::Var(ref_var), rhs: Expr::New { ty } };
        body.push(ret);
        let _ = JType::Int;
        program.rebuild_lookups();
        program
    }

    #[test]
    fn incremental_matches_full_reanalysis() {
        let mut app = generate_app(0, 4242, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        let prev = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);

        // Update a leaf-ish method.
        let victim =
            *prev.schedule.first().and_then(|l| l.first()).expect("at least one scheduled method");
        let updated = update_one_method(&app, victim);
        let cg2 = gdroid_icfg::CallGraph::build(&updated);

        let full = analyze_app(&updated, &cg2, &roots, StoreKind::Matrix);
        let (incr, stats) = analyze_app_incremental(&updated, &cg2, &roots, &prev, &[victim]);

        assert_eq!(incr.summaries, full.summaries, "summaries diverge");
        for (mid, f) in &full.facts {
            let i = &incr.facts[mid];
            for node in 0..f.node_count() {
                assert_eq!(
                    f.snapshot(node).words(),
                    i.snapshot(node).words(),
                    "facts diverge at {mid:?} node {node}"
                );
            }
        }
        assert!(stats.reused > 0, "nothing was reused");
        assert!(stats.resolved >= 1);
        assert!(
            stats.resolved < stats.resolved + stats.reused,
            "incremental run did everything from scratch"
        );
    }

    #[test]
    fn unchanged_update_reuses_everything() {
        let mut app = generate_app(0, 4243, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        let prev = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);
        let (incr, stats) = analyze_app_incremental(&app.program, &cg, &roots, &prev, &[]);
        assert_eq!(stats.resolved, 0);
        assert_eq!(stats.reused, prev.facts.len());
        assert_eq!(incr.summaries, prev.summaries);
    }

    #[test]
    fn dirtiness_propagates_to_callers() {
        let mut app = generate_app(0, 4244, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        let prev = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);

        // Pick a method that actually has callers.
        let victim = prev
            .schedule
            .iter()
            .flatten()
            .copied()
            .find(|m| !cg.callers_of(*m).is_empty())
            .expect("some method has callers");
        let updated = update_one_method(&app, victim);
        let cg2 = gdroid_icfg::CallGraph::build(&updated);
        let full = analyze_app(&updated, &cg2, &roots, StoreKind::Matrix);
        let (incr, stats) = analyze_app_incremental(&updated, &cg2, &roots, &prev, &[victim]);
        assert_eq!(incr.summaries, full.summaries);
        // The victim was re-solved; callers only if its summary changed.
        assert!(stats.resolved >= 1);
    }
}
