//! The sequential worklist solver (Alg. 1 of the paper) and the bottom-up
//! SBDA driver that runs it over a whole app.
//!
//! Per method, the solver iterates `ProcessNode` over a worklist of CFG
//! nodes until the node-wise fact sets reach a fixed point. Per app, the
//! driver walks the call-graph layers bottom-up, iterating each SCC's
//! summaries to their own fixed point, so that by the time a caller runs,
//! every callee summary is final — the SBDA property.

use crate::fact::MethodSpace;
use crate::store::{FactStore, Geometry, MatrixStore, NodeFacts, SetStore};
use crate::summary::{derive_summary, MethodSummary, SummaryMap};
use crate::transfer::{CallResolution, TransferCtx};
use gdroid_icfg::{CallGraph, CallTarget, Cfg};
use gdroid_ir::{MethodId, Program};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which fact-store representation a solver run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoreKind {
    /// Dynamically growing hash sets (the original structure).
    Set,
    /// MAT fixed-size bitmask matrices.
    Matrix,
}

/// Counters from one method's fixed-point run — the raw material for
/// Table II and for the CPU/GPU cost models.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorklistTelemetry {
    /// Node processings (the paper's "worklist iterations" are counted as
    /// worklist *generations*; this is the total node count processed).
    pub nodes_processed: usize,
    /// Worklist generations (outer `while` rounds in the generation-based
    /// formulation).
    pub rounds: usize,
    /// Size of the worklist at the start of every round.
    pub round_sizes: Vec<u32>,
    /// Largest worklist observed.
    pub max_worklist: usize,
    /// Facts inserted into stores.
    pub facts_inserted: usize,
    /// Store reallocation events (set store only).
    pub reallocations: usize,
    /// Slot rows read by transfer functions.
    pub rows_read: usize,
    /// Facts written by transfer functions (pre-dedup).
    pub facts_written: usize,
    /// Successor-union operations performed (edges traversed).
    pub unions: usize,
    /// Bitmap words per node in this method's geometry (0 in aggregates
    /// where geometries differ; use `word_ops` instead).
    pub words_per_node: usize,
    /// Total `u64` words touched by snapshots and unions — the matrix
    /// store's work metric.
    pub word_ops: usize,
}

impl WorklistTelemetry {
    /// Merges another method's counters into an app-level aggregate.
    pub fn absorb(&mut self, other: &WorklistTelemetry) {
        self.nodes_processed += other.nodes_processed;
        self.rounds += other.rounds;
        self.round_sizes.extend_from_slice(&other.round_sizes);
        self.max_worklist = self.max_worklist.max(other.max_worklist);
        self.facts_inserted += other.facts_inserted;
        self.reallocations += other.reallocations;
        self.rows_read += other.rows_read;
        self.facts_written += other.facts_written;
        self.unions += other.unions;
        self.words_per_node = 0;
        self.word_ops += other.word_ops;
    }
}

/// Pre-merges the CHA call targets' summaries for every call site of a
/// method: `Some(merged)` for internal calls, `None` for external ones.
/// Missing summaries (same-SCC first iteration) contribute nothing yet;
/// the SCC loop re-solves until stable. Shared by the CPU solvers and the
/// GPU kernels.
pub fn merge_site_summaries(
    program: &Program,
    mid: MethodId,
    summaries: &SummaryMap,
    cg: &CallGraph,
) -> HashMap<gdroid_ir::StmtIdx, Option<MethodSummary>> {
    program.methods[mid]
        .body
        .iter_enumerated()
        .filter(|(_, s)| s.is_call())
        .map(|(idx, _)| {
            let merged = match cg.site(mid, idx) {
                Some(CallTarget::Internal(targets)) => {
                    let mut acc = MethodSummary::default();
                    for t in targets {
                        if let Some(s) = summaries.get(t) {
                            acc.merge(s);
                        }
                    }
                    Some(acc)
                }
                _ => None, // external
            };
            (idx, merged)
        })
        .collect()
}

/// Solves one method to its fact fixed point.
///
/// `store` holds IN-facts per CFG node (entry = node 0). Entry facts are
/// seeded from the method's formals/statics. Returns telemetry; the facts
/// stay in `store`.
pub fn solve_method<S: FactStore>(
    program: &Program,
    mid: MethodId,
    space: &MethodSpace,
    cfg: &Cfg,
    store: &mut S,
    summaries: &SummaryMap,
    cg: &CallGraph,
) -> WorklistTelemetry {
    let method = &program.methods[mid];
    let mut telemetry = WorklistTelemetry::default();
    let words = Geometry::of(space).words();
    telemetry.words_per_node = words;

    // Seed the entry node.
    store.seed(cfg.entry() as usize, &space.entry_facts(method));

    // Pre-merge CHA targets' summaries per call site.
    let site_summaries = merge_site_summaries(program, mid, summaries, cg);
    let resolve = |idx: gdroid_ir::StmtIdx| match site_summaries.get(&idx) {
        Some(Some(s)) => CallResolution::Summary(s),
        _ => CallResolution::External,
    };
    let ctx = TransferCtx { method, space, resolve_call: &resolve };

    // Generation-based worklist (mirrors the GPU kernels so Table II's
    // round-size profile is comparable). A successor is enqueued when its
    // facts changed OR it has never been visited — Alg. 1 terminates only
    // once "all nodes are visited and all data-fact sets reach the
    // fixed-point"; without the visited rule, regions behind empty fact
    // sets (e.g. the body of a parameterless environment method before its
    // first allocation) would never be analyzed.
    let mut current: Vec<u32> = vec![cfg.entry()];
    let mut visited = vec![false; cfg.len()];
    visited[cfg.entry() as usize] = true;
    let mut in_next = vec![false; cfg.len()];
    let mut next: Vec<u32> = Vec::new();

    while !current.is_empty() {
        telemetry.rounds += 1;
        telemetry.round_sizes.push(current.len() as u32);
        telemetry.max_worklist = telemetry.max_worklist.max(current.len());
        for &node in &current {
            telemetry.nodes_processed += 1;
            telemetry.word_ops += words; // snapshot copy
            let input = store.snapshot(node as usize);
            let (out, effort) = match cfg.stmt_of(node) {
                Some(stmt_idx) => ctx.transfer(stmt_idx, &input),
                None => (input, Default::default()), // entry/exit: identity
            };
            telemetry.rows_read += effort.rows_read;
            telemetry.facts_written += effort.facts_written;
            for &succ in cfg.succ(node) {
                telemetry.unions += 1;
                telemetry.word_ops += words;
                let outcome = store.union_into(succ as usize, &out);
                telemetry.facts_inserted += outcome.inserted;
                telemetry.reallocations += outcome.reallocations;
                let first_visit = !visited[succ as usize];
                if (outcome.changed || first_visit) && !in_next[succ as usize] {
                    visited[succ as usize] = true;
                    in_next[succ as usize] = true;
                    next.push(succ);
                }
            }
        }
        current.clear();
        std::mem::swap(&mut current, &mut next);
        for &n in &current {
            in_next[n as usize] = false;
        }
    }
    telemetry
}

/// The full result of analyzing one app on the CPU.
pub struct AppAnalysis {
    /// Per-method pools.
    pub spaces: HashMap<MethodId, MethodSpace>,
    /// Per-method CFGs.
    pub cfgs: HashMap<MethodId, Cfg>,
    /// Per-method node facts (IN sets) — the IDFG's `fact(n)` component.
    pub facts: HashMap<MethodId, MatrixStore>,
    /// Final summaries.
    pub summaries: SummaryMap,
    /// Aggregated telemetry.
    pub telemetry: WorklistTelemetry,
    /// Per-method telemetry (accumulated over SCC re-iterations) — the
    /// input for layer-parallel cost models.
    pub per_method: HashMap<MethodId, WorklistTelemetry>,
    /// Bytes the fact stores held, by the store kind used for the run.
    pub store_bytes: usize,
    /// Which store kind the run used.
    pub store_kind: StoreKind,
    /// Methods in bottom-up order (layer by layer).
    pub schedule: Vec<Vec<MethodId>>,
}

impl AppAnalysis {
    /// Facts of one node of one method.
    pub fn node_facts(&self, mid: MethodId, node: u32) -> NodeFacts {
        self.facts[&mid].snapshot(node as usize)
    }

    /// Total facts across all methods' nodes.
    pub fn total_facts(&self) -> usize {
        self.facts
            .values()
            .map(|s| (0..s.node_count()).map(|n| s.fact_count(n)).sum::<usize>())
            .sum()
    }
}

/// Analyzes an app bottom-up from the given roots (environment methods).
///
/// `store_kind` selects the fact-store representation, which changes the
/// memory/allocation profile (Fig. 10) but never the resulting facts
/// (property-tested).
pub fn analyze_app(
    program: &Program,
    cg: &CallGraph,
    roots: &[MethodId],
    store_kind: StoreKind,
) -> AppAnalysis {
    analyze_app_presolved(program, cg, roots, store_kind, &HashMap::new())
}

/// [`analyze_app`] with a set of *pre-solved* methods whose summaries and
/// node facts are already known (summary-store hits). Pre-solved methods
/// are never re-solved: their results are injected up front and their
/// callers consume the summaries as usual. Callers must guarantee the
/// injected results are what solving would have produced (the summary
/// store's canonical-hash contract).
pub fn analyze_app_presolved(
    program: &Program,
    cg: &CallGraph,
    roots: &[MethodId],
    store_kind: StoreKind,
    presolved: &HashMap<MethodId, (MethodSummary, MatrixStore)>,
) -> AppAnalysis {
    let layers = gdroid_icfg::CallLayers::compute(cg, roots);
    let mut spaces = HashMap::new();
    let mut cfgs = HashMap::new();
    let mut facts: HashMap<MethodId, MatrixStore> = HashMap::new();
    let mut summaries: SummaryMap = HashMap::new();
    let mut telemetry = WorklistTelemetry::default();
    let mut per_method: HashMap<MethodId, WorklistTelemetry> = HashMap::new();
    // Per-method store footprint — overwritten on SCC re-iterations so the
    // total reflects one live store per method, not re-solve churn.
    let mut bytes_per_method: HashMap<MethodId, usize> = HashMap::new();

    for mid in layers.scc_of.keys() {
        spaces.insert(*mid, MethodSpace::build(program, *mid));
        cfgs.insert(*mid, Cfg::build(&program.methods[*mid]));
    }

    // Inject pre-solved results before the bottom-up walk so callers see
    // the summaries at their first solve.
    for (&mid, (summary, store)) in presolved {
        if !layers.scc_of.contains_key(&mid) {
            continue; // not reachable in this run
        }
        summaries.insert(mid, summary.clone());
        bytes_per_method.insert(mid, store.memory_bytes());
        facts.insert(mid, store.clone());
    }

    // Bottom-up over layers; within a layer, SCC by SCC.
    for layer_idx in 0..layers.layer_count() {
        // SCCs whose layer is this one.
        let sccs: Vec<&Vec<MethodId>> = layers
            .scc_members
            .iter()
            .enumerate()
            .filter(|(i, _)| layers.scc_layer[*i] as usize == layer_idx)
            .map(|(_, m)| m)
            .collect();
        for scc in sccs {
            // Iterate the SCC until its summaries stabilize. Singleton,
            // non-recursive SCCs converge in one pass.
            loop {
                let mut changed = false;
                for &mid in scc {
                    if presolved.contains_key(&mid) {
                        continue;
                    }
                    let space = &spaces[&mid];
                    let cfg = &cfgs[&mid];
                    let geometry = Geometry::of(space);
                    let (tele, result_store, bytes) = match store_kind {
                        StoreKind::Matrix => {
                            let mut store = MatrixStore::new(geometry, cfg.len());
                            let tele =
                                solve_method(program, mid, space, cfg, &mut store, &summaries, cg);
                            let bytes = store.memory_bytes();
                            (tele, store, bytes)
                        }
                        StoreKind::Set => {
                            let mut store = SetStore::new(geometry, cfg.len());
                            let tele =
                                solve_method(program, mid, space, cfg, &mut store, &summaries, cg);
                            let bytes = store.memory_bytes();
                            // Convert to matrix form for the result
                            // container (facts are identical).
                            let mut mat = MatrixStore::new(geometry, cfg.len());
                            for node in 0..cfg.len() {
                                let snap = store.snapshot(node);
                                mat.union_into(node, &snap);
                            }
                            (tele, mat, bytes)
                        }
                    };
                    telemetry.absorb(&tele);
                    per_method.entry(mid).or_default().absorb(&tele);
                    bytes_per_method.insert(mid, bytes);

                    let exit = cfg.exit() as usize;
                    let store_ref = &result_store;
                    let node_facts = |n: usize| store_ref.snapshot(n);
                    let summary = derive_summary(&program.methods[mid], space, &node_facts, exit);
                    let prev = summaries.insert(mid, summary);
                    if prev.as_ref() != summaries.get(&mid) {
                        changed = true;
                    }
                    facts.insert(mid, result_store);
                }
                if !changed || scc.len() == 1 && !layers.is_recursive(scc[0], cg) {
                    break;
                }
            }
        }
    }

    AppAnalysis {
        spaces,
        cfgs,
        facts,
        summaries,
        telemetry,
        per_method,
        store_bytes: bytes_per_method.values().sum(),
        store_kind,
        schedule: layers.layers.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_icfg::prepare_app;

    fn analyzed(seed: u64, kind: StoreKind) -> (gdroid_apk::App, AppAnalysis) {
        let mut app = generate_app(0, seed, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        let analysis = analyze_app(&app.program, &cg, &roots, kind);
        (app, analysis)
    }

    #[test]
    fn analysis_reaches_fixed_point_with_facts() {
        let (_, analysis) = analyzed(1000, StoreKind::Matrix);
        assert!(analysis.telemetry.nodes_processed > 0);
        assert!(analysis.total_facts() > 0);
        assert!(!analysis.summaries.is_empty());
        assert!(analysis.telemetry.max_worklist >= 1);
    }

    #[test]
    fn matrix_and_set_stores_agree_exactly() {
        let (_, a_mat) = analyzed(1001, StoreKind::Matrix);
        let (_, a_set) = analyzed(1001, StoreKind::Set);
        assert_eq!(a_mat.facts.len(), a_set.facts.len());
        for (mid, mat) in &a_mat.facts {
            let set = &a_set.facts[mid];
            assert_eq!(mat.node_count(), set.node_count());
            for node in 0..mat.node_count() {
                let f1: Vec<_> = {
                    let mut v: Vec<_> = mat.snapshot(node).iter().collect();
                    v.sort();
                    v
                };
                let f2: Vec<_> = {
                    let mut v: Vec<_> = set.snapshot(node).iter().collect();
                    v.sort();
                    v
                };
                assert_eq!(f1, f2, "facts differ at {mid:?} node {node}");
            }
        }
        // Summaries must agree too.
        assert_eq!(a_mat.summaries, a_set.summaries);
    }

    #[test]
    fn set_store_reallocates_matrix_does_not() {
        let (_, a_set) = analyzed(1002, StoreKind::Set);
        let (_, a_mat) = analyzed(1002, StoreKind::Matrix);
        assert!(a_set.telemetry.reallocations > 0, "set store never reallocated");
        assert_eq!(a_mat.telemetry.reallocations, 0);
    }

    #[test]
    fn matrix_store_uses_less_memory() {
        // The MAT claim (Fig. 10): matrix ≤ set-based footprint on real
        // workloads.
        let (_, a_set) = analyzed(1003, StoreKind::Set);
        let (_, a_mat) = analyzed(1003, StoreKind::Matrix);
        assert!(
            a_mat.store_bytes < a_set.store_bytes,
            "matrix {} >= set {}",
            a_mat.store_bytes,
            a_set.store_bytes
        );
    }

    #[test]
    fn analysis_is_deterministic() {
        let (_, a1) = analyzed(1004, StoreKind::Matrix);
        let (_, a2) = analyzed(1004, StoreKind::Matrix);
        assert_eq!(a1.telemetry.nodes_processed, a2.telemetry.nodes_processed);
        assert_eq!(a1.total_facts(), a2.total_facts());
        assert_eq!(a1.summaries, a2.summaries);
    }

    #[test]
    fn entry_facts_present_at_entry_nodes() {
        let (app, analysis) = analyzed(1005, StoreKind::Matrix);
        for (mid, space) in &analysis.spaces {
            let entry_facts = space.entry_facts(&app.program.methods[*mid]);
            let entry = analysis.node_facts(*mid, 0);
            for f in entry_facts {
                assert!(entry.get(f), "missing entry fact at {mid:?}");
            }
        }
    }

    #[test]
    fn facts_flow_downstream_monotonically() {
        // Along any edge, succ facts ⊇ transfer of pred facts — spot-check
        // that exit facts contain entry bindings that survive identity.
        let (_, analysis) = analyzed(1006, StoreKind::Matrix);
        for (mid, cfg) in &analysis.cfgs {
            let entry = analysis.node_facts(*mid, cfg.entry());
            // Successor of entry sees at least entry's facts.
            for &s in cfg.succ(cfg.entry()) {
                let succ = analysis.node_facts(*mid, s);
                for f in entry.iter() {
                    assert!(succ.get(f), "entry fact lost on edge in {mid:?}");
                }
            }
        }
    }

    #[test]
    fn schedule_covers_all_analyzed_methods() {
        let (_, analysis) = analyzed(1007, StoreKind::Matrix);
        let scheduled: usize = analysis.schedule.iter().map(Vec::len).sum();
        assert_eq!(scheduled, analysis.facts.len());
    }
}
