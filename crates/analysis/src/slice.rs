//! Backward inter-procedural slicing from sink statements.
//!
//! Demand-driven vetting (BackDroid-style) answers "can anything flow into
//! these sinks?" without building the full IDFG. This module computes the
//! set of methods whose analysis can influence a sink verdict — the
//! **slice** — so the GPU driver can seed and launch only those blocks.
//!
//! The slice is a closure over three rules, iterated to a fixed point:
//!
//! * **R1 (callers):** every method containing a sink is a member, and
//!   every *reachable* caller of a member is a member. Consequently no
//!   method outside the slice ever calls into it.
//! * **R2 (exact members):** a member with at least one reachable caller
//!   is **exact** — its exit summary feeds that caller, so its entire
//!   behavior matters and all of its internal callees join the slice.
//! * **R3 (partial roots):** a member with no reachable caller is a
//!   **partial root** — an analysis entry whose summary nobody consumes.
//!   Only its facts *at* sink statements and at call sites targeting the
//!   slice matter, and facts at a CFG node depend only on the nodes that
//!   can reach it. So the root is refined by backward-CFG reachability
//!   from those relevant statements, and only call sites inside that
//!   region pull their callees into the slice.
//!
//! Exactness argument (why targeted verdicts equal full verdicts): by R1
//! the slice is closed under reachable callers, so data can enter sliced
//! methods only through call sites the slice itself contains; by R2 every
//! exact member sees the same entry facts and the same callee summaries
//! as in a full run (induction bottom-up over the restricted schedule);
//! by R3 a partial root's facts at every relevant node coincide with the
//! full run because pruned call sites cannot reach a relevant node. The
//! tier-1 gate (`tests/targeted_gate.rs`) checks the resulting per-sink
//! verdict agreement empirically over the whole corpus.

use gdroid_icfg::{CallGraph, Cfg, NodeId};
use gdroid_ir::{MethodId, Program, Stmt, StmtIdx};
use std::collections::{HashMap, HashSet};

/// A backward inter-procedural slice rooted at sink statements.
#[derive(Clone, Debug, Default)]
pub struct BackwardSlice {
    /// All slice members (methods the targeted run must analyze).
    pub members: HashSet<MethodId>,
    /// Members whose facts and summaries are bit-identical to a full run
    /// (they have at least one reachable caller, which is also a member).
    pub exact: HashSet<MethodId>,
    /// Partial roots: members with no reachable caller, analyzed for
    /// their relevant region only. Sorted.
    pub roots: Vec<MethodId>,
    /// Methods containing at least one (reachable) sink statement. Sorted.
    pub sink_methods: Vec<MethodId>,
    /// Per partial root: dense CFG-node mask of the backward-reachable
    /// relevant region (see [`Cfg::backward_reachable`]).
    pub relevant: HashMap<MethodId, Vec<bool>>,
    /// Size of the full reachable method set the slice was carved from.
    pub total_reachable: usize,
}

impl BackwardSlice {
    /// Computes the slice of `program` for the given analysis entry
    /// `roots` and `sink_sites` (call statements that invoke a sink).
    /// Sinks in methods unreachable from `roots` are ignored — the full
    /// analysis would never reach them either.
    pub fn compute(
        program: &Program,
        cg: &CallGraph,
        roots: &[MethodId],
        sink_sites: &[(MethodId, StmtIdx)],
    ) -> BackwardSlice {
        let reach_vec = cg.reachable_from(roots);
        let reach: HashSet<MethodId> = reach_vec.iter().copied().collect();
        let total_reachable = reach.len();

        let mut sink_stmts: HashMap<MethodId, Vec<StmtIdx>> = HashMap::new();
        for &(m, s) in sink_sites {
            if reach.contains(&m) {
                sink_stmts.entry(m).or_default().push(s);
            }
        }
        let mut sink_methods: Vec<MethodId> = sink_stmts.keys().copied().collect();
        sink_methods.sort_unstable();

        let mut members: HashSet<MethodId> = sink_stmts.keys().copied().collect();
        let mut exact: HashSet<MethodId> = HashSet::new();
        let mut relevant: HashMap<MethodId, Vec<bool>> = HashMap::new();
        // Partial-root CFGs are rebuilt per round as the slice grows; cache
        // them across rounds (bodies never change).
        let mut cfgs: HashMap<MethodId, Cfg> = HashMap::new();

        loop {
            let mut changed = false;

            // R1: close over reachable callers.
            let mut queue: Vec<MethodId> = members.iter().copied().collect();
            while let Some(m) = queue.pop() {
                for &c in cg.callers_of(m) {
                    if reach.contains(&c) && members.insert(c) {
                        queue.push(c);
                        changed = true;
                    }
                }
            }

            // Classify: exact iff some reachable caller exists (that
            // caller is itself a member by R1).
            exact.clear();
            exact.extend(
                members
                    .iter()
                    .copied()
                    .filter(|&m| cg.callers_of(m).iter().any(|c| reach.contains(c))),
            );

            // R2: exact members contribute every internal callee.
            let snapshot: Vec<MethodId> = exact.iter().copied().collect();
            for m in snapshot {
                for &c in cg.callees_of(m) {
                    changed |= members.insert(c);
                }
            }

            // R3: partial roots contribute only callees of call sites in
            // the backward-reachable region of their relevant statements.
            relevant.clear();
            let proots: Vec<MethodId> =
                members.iter().copied().filter(|m| !exact.contains(m)).collect();
            for r in proots {
                let cfg = cfgs.entry(r).or_insert_with(|| Cfg::build(&program.methods[r]));
                let mut targets: Vec<NodeId> = Vec::new();
                if let Some(stmts) = sink_stmts.get(&r) {
                    targets.extend(stmts.iter().map(|&s| cfg.node_of(s)));
                }
                for (idx, stmt) in program.methods[r].body.iter_enumerated() {
                    if !matches!(stmt, Stmt::Call { .. }) {
                        continue;
                    }
                    let Some(site) = cg.site(r, idx) else { continue };
                    if site.internal().iter().any(|t| members.contains(t)) {
                        targets.push(cfg.node_of(idx));
                    }
                }
                let mask = cfg.backward_reachable(&targets);
                for (idx, stmt) in program.methods[r].body.iter_enumerated() {
                    if !matches!(stmt, Stmt::Call { .. }) || !mask[cfg.node_of(idx) as usize] {
                        continue;
                    }
                    let Some(site) = cg.site(r, idx) else { continue };
                    for &t in site.internal() {
                        changed |= members.insert(t);
                    }
                }
                relevant.insert(r, mask);
            }

            if !changed {
                break;
            }
        }

        let mut roots_out: Vec<MethodId> =
            members.iter().copied().filter(|m| !exact.contains(m)).collect();
        roots_out.sort_unstable();

        BackwardSlice { members, exact, roots: roots_out, sink_methods, relevant, total_reachable }
    }

    /// Number of slice members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the slice is empty (no reachable sink at all).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Reachable methods the targeted run skips.
    pub fn methods_skipped(&self) -> usize {
        self.total_reachable - self.members.len()
    }

    /// Fraction of the reachable method set the slice retains (0 when
    /// nothing is reachable).
    pub fn sliced_fraction(&self) -> f64 {
        if self.total_reachable == 0 {
            0.0
        } else {
            self.members.len() as f64 / self.total_reachable as f64
        }
    }

    /// Whether a statement participates in the slice: its method must be
    /// a member, and in a partial root the statement must additionally sit
    /// inside the relevant backward-reachable region. The lint layer uses
    /// this to decide if a source call site can influence the slice's
    /// sinks.
    pub fn contains_site(&self, mid: MethodId, stmt: StmtIdx) -> bool {
        if !self.members.contains(&mid) {
            return false;
        }
        match self.relevant.get(&mid) {
            // Node id of a statement is `index + 1` (entry is node 0).
            Some(mask) => mask.get(stmt.index() + 1).copied().unwrap_or(false),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_ir::{CallKind, MethodKind, ProgramBuilder, Signature};

    /// A program of `n` static methods where method `i`'s body is the
    /// calls listed for it (in order) followed by a return.
    fn call_program(n: usize, edges: &[(usize, usize)]) -> (Program, Vec<MethodId>) {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let mut sigs: Vec<Signature> = Vec::new();
        for i in 0..n {
            let mut mb = pb.method(cls, &format!("m{i}")).kind(MethodKind::Static);
            mb.stmt(Stmt::Return { var: None });
            let mid = mb.build();
            sigs.push(pb.program().methods[mid].sig.clone());
        }
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let mut mids = Vec::new();
        for i in 0..n {
            let mut mb = pb.method(cls, &format!("m{i}")).kind(MethodKind::Static);
            for &(from, to) in edges {
                if from == i {
                    mb.stmt(Stmt::Call {
                        ret: None,
                        kind: CallKind::Static,
                        sig: sigs[to].clone(),
                        args: vec![],
                    });
                }
            }
            mb.stmt(Stmt::Return { var: None });
            mids.push(mb.build());
        }
        (pb.finish(), mids)
    }

    #[test]
    fn ancestors_join_and_unrelated_branches_stay_out() {
        // m0 -> m1 -> m2 (sink), m0 -> m3. The call to m3 comes after the
        // call to m1, so it is not backward-reachable from the relevant
        // site and m3 stays out of the slice.
        let (p, m) = call_program(4, &[(0, 1), (0, 3), (1, 2)]);
        let cg = CallGraph::build(&p);
        let sink = (m[2], StmtIdx(0));
        let slice = BackwardSlice::compute(&p, &cg, &[m[0]], &[sink]);
        assert!(slice.members.contains(&m[0]));
        assert!(slice.members.contains(&m[1]));
        assert!(slice.members.contains(&m[2]));
        assert!(!slice.members.contains(&m[3]), "{:?}", slice.members);
        assert_eq!(slice.roots, vec![m[0]]);
        assert!(slice.exact.contains(&m[1]) && slice.exact.contains(&m[2]));
        assert_eq!(slice.sink_methods, vec![m[2]]);
        assert_eq!(slice.total_reachable, 4);
        assert_eq!(slice.methods_skipped(), 1);
        assert!(slice.sliced_fraction() < 1.0);
    }

    #[test]
    fn earlier_call_sites_in_relevant_region_pull_their_callees() {
        // m0 body: call m3; call m1; return. The m3 call precedes the
        // relevant m1 call, so m3's effects can reach it: m3 joins.
        let (p, m) = call_program(4, &[(0, 3), (0, 1), (1, 2)]);
        let cg = CallGraph::build(&p);
        let slice = BackwardSlice::compute(&p, &cg, &[m[0]], &[(m[2], StmtIdx(0))]);
        assert!(slice.members.contains(&m[3]));
        assert!(slice.exact.contains(&m[3]), "m3 has a member caller");
    }

    #[test]
    fn exact_members_pull_all_callees() {
        // m0 -> m1 (sink in m1); m1 -> m2 after the sink. m1 is exact (its
        // summary feeds m0), so m2 joins even though the sink precedes it.
        let (p, m) = call_program(3, &[(0, 1), (1, 2)]);
        let cg = CallGraph::build(&p);
        // Sink = m1's call statement itself (stmt 0 of m1).
        let slice = BackwardSlice::compute(&p, &cg, &[m[0]], &[(m[1], StmtIdx(0))]);
        assert!(slice.members.contains(&m[2]));
    }

    #[test]
    fn unreachable_sinks_and_empty_sink_sets_give_empty_slices() {
        let (p, m) = call_program(3, &[(0, 1)]);
        let cg = CallGraph::build(&p);
        // m2 is unreachable from m0: its sink is ignored.
        let slice = BackwardSlice::compute(&p, &cg, &[m[0]], &[(m[2], StmtIdx(0))]);
        assert!(slice.is_empty());
        assert_eq!(slice.sliced_fraction(), 0.0);
        let none = BackwardSlice::compute(&p, &cg, &[m[0]], &[]);
        assert!(none.is_empty());
        assert_eq!(none.methods_skipped(), none.total_reachable);
    }

    #[test]
    fn contains_site_refines_partial_roots_only() {
        let (p, m) = call_program(4, &[(0, 1), (0, 3), (1, 2)]);
        let cg = CallGraph::build(&p);
        let slice = BackwardSlice::compute(&p, &cg, &[m[0]], &[(m[2], StmtIdx(0))]);
        // Root m0: the m1 call (stmt 0) is relevant, the m3 call (stmt 1)
        // is not, non-members never contain sites.
        assert!(slice.contains_site(m[0], StmtIdx(0)));
        assert!(!slice.contains_site(m[0], StmtIdx(1)));
        assert!(slice.contains_site(m[1], StmtIdx(0)));
        assert!(!slice.contains_site(m[3], StmtIdx(0)));
    }

    #[test]
    fn recursive_sccs_stay_whole() {
        // m0 -> m1 <-> m2, sink in m2: both SCC members are exact members.
        let (p, m) = call_program(3, &[(0, 1), (1, 2), (2, 1)]);
        let cg = CallGraph::build(&p);
        let slice = BackwardSlice::compute(&p, &cg, &[m[0]], &[(m[2], StmtIdx(0))]);
        assert!(slice.members.contains(&m[1]) && slice.members.contains(&m[2]));
        assert!(slice.exact.contains(&m[1]) && slice.exact.contains(&m[2]));
    }
}
