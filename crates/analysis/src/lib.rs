#![warn(missing_docs)]

//! # gdroid-analysis — the data-flow analysis core
//!
//! Implements the points-to data-flow analysis whose IDFG construction the
//! GDroid paper accelerates:
//!
//! * [`fact`] — the `(slot, instance)` fact domain and the pre-determined
//!   per-method pools MAT relies on;
//! * [`store`] — the set-based fact store (original) and the MAT
//!   bitmask-matrix store, with the memory accounting behind Fig. 10;
//! * [`transfer`] — gen/kill transfer functions (`ProcessNode`), shared by
//!   every solver in the repository;
//! * [`summary`] — SBDA heap-manipulation summaries;
//! * [`solver`] — the sequential worklist solver (Alg. 1) and bottom-up
//!   app driver;
//! * [`parallel`] — the multithreaded CPU baseline (the paper's
//!   "multithreading C" Amandroid re-implementation);
//! * [`costmodel`] — the calibrated CPU timing model (see DESIGN.md for
//!   why time is modeled rather than measured);
//! * [`concrete`] — a concrete IR interpreter used as a dynamic soundness
//!   oracle: every observed runtime points-to must appear in the IDFG;
//! * [`incremental`] — summary-driven incremental re-analysis across app
//!   updates (the introduction's "apps update weekly or daily" pressure);
//! * [`sweep`] — the conventional full-sweep iterative solver (§VI's
//!   algorithmic baseline), used to quantify the worklist's advantage;
//! * [`slice`] — backward inter-procedural slicing from sink statements,
//!   the demand-driven targeted-vetting core.

pub mod concrete;
pub mod costmodel;
pub mod fact;
pub mod incremental;
pub mod parallel;
pub mod slice;
pub mod solver;
pub mod store;
pub mod summary;
pub mod sweep;
pub mod transfer;

pub use concrete::{check_soundness, validate_app, InterpConfig, Interpreter, Violation};
pub use costmodel::{ns_to_ms, ns_to_s, CpuCostModel};
pub use fact::{Fact, Instance, InstanceIdx, MethodSpace, Slot, SlotIdx};
pub use incremental::{analyze_app_incremental, IncrementalStats};
pub use parallel::analyze_app_parallel;
pub use slice::BackwardSlice;
pub use solver::{
    analyze_app, analyze_app_presolved, merge_site_summaries, solve_method, AppAnalysis, StoreKind,
    WorklistTelemetry,
};
pub use store::{FactStore, Geometry, MatrixStore, NodeFacts, SetStore, UnionOutcome};
pub use summary::{derive_summary, MethodSummary, SummaryMap, Token};
pub use sweep::solve_method_sweep;
pub use transfer::{CallResolution, TransferCtx, TransferEffort};
