//! SBDA method summaries.
//!
//! Summary-based Bottom-up Data-flow Analysis (§III-A2 of the paper, after
//! Dillig et al.) gives every method a *unified heap-manipulation summary*
//! expressed over symbolic [`Token`]s, so callers can apply callee effects
//! without descending into them — the property that makes methods of the
//! same call-graph layer independent and thread-block-parallelizable.

use crate::fact::{Instance, MethodSpace, Slot};
use crate::store::NodeFacts;
use gdroid_ir::{FieldId, Method, MethodId, Stmt};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// A symbolic value source, relative to the summarized method's caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Token {
    /// Whatever the caller's argument `k` points to (0 = receiver for
    /// instance methods).
    Formal(u8),
    /// A fresh object that escapes the callee (allocation or nested call
    /// return) — resolves to the call site's [`Instance::CallRet`].
    Fresh,
    /// The caller's view of a static field's contents.
    StaticIn(FieldId),
}

/// The heap-manipulation summary of one method.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MethodSummary {
    /// Possible sources of the return value.
    pub returns: BTreeSet<Token>,
    /// Field writes that escape: `recv.field ← src`.
    pub field_writes: BTreeSet<(Token, FieldId, Token)>,
    /// Static writes: `field ← src`.
    pub static_writes: BTreeSet<(FieldId, Token)>,
    /// Array-element writes: `recv[…] ← src`.
    pub array_writes: BTreeSet<(Token, Token)>,
}

impl MethodSummary {
    /// The default summary for external (framework) callees: returns a
    /// fresh object, no side effects. The vetting layer refines source
    /// semantics on top of this.
    pub fn external() -> MethodSummary {
        let mut s = MethodSummary::default();
        s.returns.insert(Token::Fresh);
        s
    }

    /// Whether two summaries are equal — the SCC fixed-point test.
    pub fn len(&self) -> usize {
        self.returns.len()
            + self.field_writes.len()
            + self.static_writes.len()
            + self.array_writes.len()
    }

    /// Whether the summary is empty (pure method).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unions another summary in (CHA call sites merge all targets).
    pub fn merge(&mut self, other: &MethodSummary) {
        self.returns.extend(other.returns.iter().copied());
        self.field_writes.extend(other.field_writes.iter().copied());
        self.static_writes.extend(other.static_writes.iter().copied());
        self.array_writes.extend(other.array_writes.iter().copied());
    }
}

/// Summaries for all analyzed methods.
pub type SummaryMap = HashMap<MethodId, MethodSummary>;

/// Maps a callee-local instance to its caller-relative token.
#[inline]
pub fn token_of(instance: Instance) -> Token {
    match instance {
        Instance::Formal(k) => Token::Formal(k),
        Instance::Alloc(_) | Instance::CallRet(_) => Token::Fresh,
        Instance::StaticIn(f) => Token::StaticIn(f),
    }
}

/// Derives a method's summary from its solved facts.
///
/// * `returns` — union over all `return v` nodes of `v`'s points-to,
///   tokenized;
/// * heap/static/array effects — read off the *exit* facts (the union of
///   everything that reached a method exit).
pub fn derive_summary(
    method: &Method,
    space: &MethodSpace,
    // IN-facts per CFG node, indexed by node id (entry=0 … exit=last).
    node_facts: &dyn Fn(usize) -> NodeFacts,
    exit_node: usize,
) -> MethodSummary {
    let mut summary = MethodSummary::default();

    // Return-value sources: at each return node, the returned var's row.
    for (idx, stmt) in method.body.iter_enumerated() {
        if let Stmt::Return { var: Some(v) } = stmt {
            if let Some(slot) = space.slot(Slot::Local(*v)) {
                let facts = node_facts(idx.index() + 1);
                for inst in facts.row(slot) {
                    summary.returns.insert(token_of(space.instances[usize::from(inst)]));
                }
            }
        }
    }

    // Escaping heap effects: exit facts, all heap/static/array slots.
    let exit = node_facts(exit_node);
    for (si, &slot) in space.slots.iter().enumerate() {
        match slot {
            Slot::Heap(recv, field) => {
                let recv_tok = token_of(space.instances[usize::from(recv)]);
                for inst in exit.row(si as u16) {
                    let src_tok = token_of(space.instances[usize::from(inst)]);
                    summary.field_writes.insert((recv_tok, field, src_tok));
                }
            }
            Slot::Static(field) => {
                for inst in exit.row(si as u16) {
                    let tok = token_of(space.instances[usize::from(inst)]);
                    // The entry binding `Static(f) ∋ StaticIn(f)` is not an
                    // effect; only report genuine changes.
                    if tok != Token::StaticIn(field) {
                        summary.static_writes.insert((field, tok));
                    }
                }
            }
            Slot::ArrayElem(recv) => {
                let recv_tok = token_of(space.instances[usize::from(recv)]);
                for inst in exit.row(si as u16) {
                    let src_tok = token_of(space.instances[usize::from(inst)]);
                    summary.array_writes.insert((recv_tok, src_tok));
                }
            }
            Slot::Local(_) => {}
        }
    }

    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Fact;
    use crate::store::Geometry;
    use gdroid_ir::{Expr, JType, Lhs, ProgramBuilder, StmtIdx, VarId};

    #[test]
    fn external_summary_returns_fresh() {
        let s = MethodSummary::external();
        assert!(s.returns.contains(&Token::Fresh));
        assert!(s.field_writes.is_empty());
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn token_mapping() {
        assert_eq!(token_of(Instance::Formal(2)), Token::Formal(2));
        assert_eq!(token_of(Instance::Alloc(StmtIdx(3))), Token::Fresh);
        assert_eq!(token_of(Instance::CallRet(StmtIdx(1))), Token::Fresh);
        assert_eq!(token_of(Instance::StaticIn(FieldId(4))), Token::StaticIn(FieldId(4)));
    }

    #[test]
    fn merge_unions_everything() {
        let mut a = MethodSummary::default();
        a.returns.insert(Token::Formal(0));
        let mut b = MethodSummary::default();
        b.returns.insert(Token::Fresh);
        b.static_writes.insert((FieldId(0), Token::Formal(1)));
        a.merge(&b);
        assert_eq!(a.returns.len(), 2);
        assert_eq!(a.static_writes.len(), 1);
    }

    #[test]
    fn derive_summary_reads_returns_and_heap_effects() {
        // m(this, p): this.f = new; return p;
        let mut pb = ProgramBuilder::new();
        let obj = pb.class("java/lang/Object").build();
        let obj_sym = pb.program().classes[obj].name;
        let cls = pb.class("A").extends(obj).build();
        let f = pb.field(cls, "f", JType::Object(obj_sym), false);
        let mut mb = pb.method(cls, "m");
        let this = mb.this();
        let p0 = mb.param("p", JType::Object(obj_sym));
        mb.stmt(Stmt::Assign {
            lhs: Lhs::Field { base: this, field: f },
            rhs: Expr::New { ty: JType::Object(obj_sym) },
        });
        mb.stmt(Stmt::Return { var: Some(p0) });
        let mid = mb.build();
        let p = pb.finish();
        let method = &p.methods[mid];
        let space = MethodSpace::build(&p, mid);
        let geometry = Geometry::of(&space);

        // Hand-build node facts approximating the solved state.
        // Wait: `this.f = new` — the New is the RHS of a field store; the
        // pool registers the alloc site.
        let alloc = space.instance(Instance::Alloc(StmtIdx(0))).expect("alloc pooled");
        let formal0 = space.instance(Instance::Formal(0)).unwrap();
        let formal1 = space.instance(Instance::Formal(1)).unwrap();
        let this_slot = space.slot(Slot::Local(this)).unwrap();
        let p_slot = space.slot(Slot::Local(VarId(1))).unwrap();
        let heap_slot = space.slot(Slot::Heap(formal0, f)).unwrap();

        let mut exit = NodeFacts::empty(geometry);
        exit.set(Fact { slot: this_slot, instance: formal0 });
        exit.set(Fact { slot: p_slot, instance: formal1 });
        exit.set(Fact { slot: heap_slot, instance: alloc });
        let exit_clone = exit.clone();
        let node_facts = move |_n: usize| exit_clone.clone();

        let summary = derive_summary(method, &space, &node_facts, 3);
        assert!(summary.returns.contains(&Token::Formal(1)), "{summary:?}");
        assert!(summary.field_writes.contains(&(Token::Formal(0), f, Token::Fresh)), "{summary:?}");
    }
}
