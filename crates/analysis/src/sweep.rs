//! The conventional full-sweep iterative solver — the algorithmic baseline
//! the paper's related work contrasts the worklist algorithm against
//! (§VI): *"The conventional iterative search algorithm visits each ICFG
//! node once in one iteration, and keeps iterating until no further
//! changes occur to the data-flow sets… it has large redundancy and slow
//! convergence due to the fixed full workload in each iteration."*
//!
//! Functionally it reaches the same unique fixed point as the worklist
//! solver (tested); its node-processing count quantifies exactly the
//! redundancy the worklist formulation removes.

use crate::fact::MethodSpace;
use crate::solver::{merge_site_summaries, WorklistTelemetry};
use crate::store::{FactStore, Geometry};
use crate::summary::SummaryMap;
use crate::transfer::{CallResolution, TransferCtx};
use gdroid_icfg::{CallGraph, Cfg};
use gdroid_ir::{MethodId, Program};

/// Solves one method by repeated full sweeps over all CFG nodes until no
/// fact set changes. Drop-in comparable to
/// [`crate::solver::solve_method`]; `rounds` counts full sweeps and
/// `nodes_processed` the total (fixed `sweeps × nodes`) workload.
pub fn solve_method_sweep<S: FactStore>(
    program: &Program,
    mid: MethodId,
    space: &MethodSpace,
    cfg: &Cfg,
    store: &mut S,
    summaries: &SummaryMap,
    cg: &CallGraph,
) -> WorklistTelemetry {
    let method = &program.methods[mid];
    let mut telemetry = WorklistTelemetry::default();
    let words = Geometry::of(space).words();
    telemetry.words_per_node = words;

    store.seed(cfg.entry() as usize, &space.entry_facts(method));
    let site_summaries = merge_site_summaries(program, mid, summaries, cg);
    let resolve = |idx: gdroid_ir::StmtIdx| match site_summaries.get(&idx) {
        Some(Some(s)) => CallResolution::Summary(s),
        _ => CallResolution::External,
    };
    let ctx = TransferCtx { method, space, resolve_call: &resolve };

    loop {
        telemetry.rounds += 1;
        telemetry.round_sizes.push(cfg.len() as u32);
        telemetry.max_worklist = telemetry.max_worklist.max(cfg.len());
        let mut changed = false;
        // One full sweep: every node, in order.
        for node in 0..cfg.len() as u32 {
            telemetry.nodes_processed += 1;
            telemetry.word_ops += words;
            let input = store.snapshot(node as usize);
            let (out, effort) = match cfg.stmt_of(node) {
                Some(stmt_idx) => ctx.transfer(stmt_idx, &input),
                None => (input, Default::default()),
            };
            telemetry.rows_read += effort.rows_read;
            telemetry.facts_written += effort.facts_written;
            for &succ in cfg.succ(node) {
                telemetry.unions += 1;
                telemetry.word_ops += words;
                let outcome = store.union_into(succ as usize, &out);
                telemetry.facts_inserted += outcome.inserted;
                telemetry.reallocations += outcome.reallocations;
                changed |= outcome.changed;
            }
        }
        if !changed {
            break;
        }
    }
    telemetry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve_method;
    use crate::store::MatrixStore;
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_icfg::prepare_app;

    #[test]
    fn sweep_matches_worklist_fixed_point() {
        let mut app = generate_app(0, 1771, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        let methods = cg.reachable_from(&roots);
        let summaries = SummaryMap::new();
        for &mid in methods.iter().take(8) {
            let space = MethodSpace::build(&app.program, mid);
            let cfg = Cfg::build(&app.program.methods[mid]);
            let mut wl = MatrixStore::new(Geometry::of(&space), cfg.len());
            solve_method(&app.program, mid, &space, &cfg, &mut wl, &summaries, &cg);
            let mut sw = MatrixStore::new(Geometry::of(&space), cfg.len());
            solve_method_sweep(&app.program, mid, &space, &cfg, &mut sw, &summaries, &cg);
            for node in 0..cfg.len() {
                assert_eq!(
                    wl.snapshot(node).words(),
                    sw.snapshot(node).words(),
                    "sweep diverges from worklist at {mid:?} node {node}"
                );
            }
        }
    }

    /// The paper's §VI claim — "the conventional algorithm has large
    /// redundancy … due to the fixed full workload in each iteration" —
    /// shows on the workload shape that triggers it: a long straight-line
    /// prefix feeding a small loop that needs several waves to converge.
    /// Every wave re-sweeps the whole prefix; the worklist only revisits
    /// the loop. (On small branch-free bodies an in-order sweep is
    /// near-optimal, so a corpus-wide comparison is method-shape-dependent;
    /// see EXPERIMENTS.md.)
    #[test]
    fn sweep_is_redundant_on_loop_tails() {
        use gdroid_ir::{Expr, JType, Lhs, MethodKind, ProgramBuilder, Stmt, StmtIdx};
        let mut pb = ProgramBuilder::new();
        let obj = pb.class("java/lang/Object").build();
        let obj_sym = pb.program().classes[obj].name;
        let cls = pb.class("T").extends(obj).build();
        let f = pb.field(cls, "f", JType::Object(obj_sym), false);
        let mut mb = pb.method(cls, "m").kind(MethodKind::Static);
        let a = mb.local("a", JType::Object(obj_sym));
        let cond = mb.local("c", JType::Int);
        // A reverse copy chain inside the loop: facts advance one hop per
        // wave, so the fixed point needs as many waves as the chain is
        // long — and every wave re-sweeps the whole prefix.
        let chain: Vec<_> =
            (0..12).map(|i| mb.local(&format!("b{i}"), JType::Object(obj_sym))).collect();
        // Long straight-line prefix.
        for _ in 0..120 {
            mb.stmt(Stmt::Assign { lhs: Lhs::Var(a), rhs: Expr::Access { base: a, field: f } });
        }
        let head = mb.next_idx();
        let exit = mb.stmt(Stmt::If { cond, target: StmtIdx(0) });
        for i in 0..chain.len() - 1 {
            mb.stmt(Stmt::Assign { lhs: Lhs::Var(chain[i]), rhs: Expr::Var(chain[i + 1]) });
        }
        let lastv = *chain.last().unwrap();
        mb.stmt(Stmt::Assign {
            lhs: Lhs::Var(lastv),
            rhs: Expr::New { ty: JType::Object(obj_sym) },
        });
        mb.stmt(Stmt::Goto { target: head });
        let end = mb.next_idx();
        mb.patch_target(exit, end).expect("exit is an If");
        mb.stmt(Stmt::Return { var: None });
        let mid = mb.build();
        let program = pb.finish();
        let cg = CallGraph::build(&program);
        let summaries = SummaryMap::new();
        let space = MethodSpace::build(&program, mid);
        let cfg = Cfg::build(&program.methods[mid]);

        let mut wl = MatrixStore::new(Geometry::of(&space), cfg.len());
        let worklist =
            solve_method(&program, mid, &space, &cfg, &mut wl, &summaries, &cg).nodes_processed;
        let mut sw = MatrixStore::new(Geometry::of(&space), cfg.len());
        let sweep = solve_method_sweep(&program, mid, &space, &cfg, &mut sw, &summaries, &cg)
            .nodes_processed;
        assert!(
            sweep > worklist * 2,
            "sweep {sweep} should far exceed worklist {worklist} on loop tails"
        );
        // Same fixed point regardless.
        for node in 0..cfg.len() {
            assert_eq!(wl.snapshot(node).words(), sw.snapshot(node).words());
        }
    }

    #[test]
    fn sweep_rounds_are_full_width() {
        let mut app = generate_app(0, 1773, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let mid = envs[0].method;
        let space = MethodSpace::build(&app.program, mid);
        let cfg = Cfg::build(&app.program.methods[mid]);
        let mut store = MatrixStore::new(Geometry::of(&space), cfg.len());
        let summaries = SummaryMap::new();
        let tele = solve_method_sweep(&app.program, mid, &space, &cfg, &mut store, &summaries, &cg);
        assert!(tele.rounds >= 2, "needs at least a change sweep and a quiescent sweep");
        assert!(tele.round_sizes.iter().all(|&s| s as usize == cfg.len()));
        assert_eq!(tele.nodes_processed, tele.rounds * cfg.len());
    }
}
