//! CPU timing model.
//!
//! Fig. 1 and Fig. 4 of the paper compare wall-clock times on the authors'
//! testbed (10-core Xeon Gold 5115 @ 2.40 GHz for the CPU side). Our
//! "hardware" is whatever machine runs the benchmark, so — as documented in
//! DESIGN.md — CPU time is *modeled* from the abstract operation counters
//! in [`WorklistTelemetry`] with per-operation costs calibrated to
//! Xeon-class hardware. The GPU simulator charges cycles from the same
//! counters' GPU equivalents, making the speedup ratios hardware-
//! independent and reproducible.
//!
//! Two model flavors:
//!
//! * [`CpuCostModel`] — the multithreaded-C re-implementation (Fig. 4's
//!   baseline): tight loops over packed structures, parallel across one
//!   call-graph layer at a time.
//! * [`CpuCostModel::amandroid`] — the original Scala Amandroid (Fig. 1):
//!   sequential, with a JVM/boxing overhead factor on every operation.

use crate::solver::{AppAnalysis, WorklistTelemetry};
use serde::{Deserialize, Serialize};

/// Per-operation CPU costs in nanoseconds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CpuCostModel {
    /// Cores available to the layer-parallel solver.
    pub cores: usize,
    /// Fixed overhead per node processing (queue ops, dispatch).
    pub node_ns: f64,
    /// Per slot-row read (pointer chase + scan).
    pub row_read_ns: f64,
    /// Per fact written by a transfer function.
    pub fact_write_ns: f64,
    /// Per fact inserted into a store (hashing, probing).
    pub insert_ns: f64,
    /// Per reallocation event (grow + rehash), set store only.
    pub realloc_ns: f64,
    /// Per 64-bit word of bitmap traffic (matrix store only).
    pub word_ns: f64,
    /// Multiplier on everything — 1.0 for the C re-implementation, >1 for
    /// the Scala original (JVM boxing, megamorphic dispatch).
    pub language_factor: f64,
}

impl CpuCostModel {
    /// The multithreaded-C baseline on the paper's 10-core Xeon.
    pub fn multithreaded_c() -> CpuCostModel {
        CpuCostModel {
            cores: 10,
            node_ns: 780.0,
            row_read_ns: 215.0,
            fact_write_ns: 80.0,
            insert_ns: 300.0,
            realloc_ns: 10_300.0,
            word_ns: 8.4,
            language_factor: 1.0,
        }
    }

    /// The Scala Amandroid original (Fig. 1): sequential and slower per
    /// operation. The factor is calibrated so corpus medians land in the
    /// minutes range the paper reports (see EXPERIMENTS.md).
    pub fn amandroid() -> CpuCostModel {
        CpuCostModel { cores: 1, language_factor: 40.0, ..CpuCostModel::multithreaded_c() }
    }

    /// Time for one method's (or one aggregate's) counters, sequential.
    pub fn work_ns(&self, t: &WorklistTelemetry) -> f64 {
        let raw = t.nodes_processed as f64 * self.node_ns
            + t.rows_read as f64 * self.row_read_ns
            + t.facts_written as f64 * self.fact_write_ns
            + t.facts_inserted as f64 * self.insert_ns
            + t.reallocations as f64 * self.realloc_ns
            + t.word_ops as f64 * self.word_ns;
        raw * self.language_factor
    }

    /// Sequential wall-clock for a whole analysis.
    pub fn sequential_ns(&self, analysis: &AppAnalysis) -> f64 {
        self.work_ns(&analysis.telemetry)
    }

    /// Layer-parallel wall-clock: layers are barriers; inside a layer,
    /// work spreads over the cores but cannot beat the longest single
    /// method (one method never splits across threads).
    pub fn parallel_ns(&self, analysis: &AppAnalysis) -> f64 {
        let mut total = 0.0;
        for layer in &analysis.schedule {
            let mut layer_work = 0.0;
            let mut longest: f64 = 0.0;
            for mid in layer {
                let Some(t) = analysis.per_method.get(mid) else { continue };
                let w = self.work_ns(t);
                layer_work += w;
                longest = longest.max(w);
            }
            total += longest.max(layer_work / self.cores as f64);
        }
        total
    }
}

/// Convenience: nanoseconds to milliseconds.
pub fn ns_to_ms(ns: f64) -> f64 {
    ns / 1e6
}

/// Convenience: nanoseconds to seconds.
pub fn ns_to_s(ns: f64) -> f64 {
    ns / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{analyze_app, StoreKind};
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_icfg::prepare_app;
    use gdroid_ir::MethodId;

    fn analysis(seed: u64, kind: StoreKind) -> AppAnalysis {
        let mut app = generate_app(0, seed, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        analyze_app(&app.program, &cg, &roots, kind)
    }

    #[test]
    fn parallel_time_is_less_than_sequential_but_not_superlinear() {
        let a = analysis(31, StoreKind::Set);
        let m = CpuCostModel::multithreaded_c();
        let seq = m.sequential_ns(&a);
        let par = m.parallel_ns(&a);
        assert!(par <= seq, "parallel {par} > sequential {seq}");
        assert!(par * (m.cores as f64) >= seq * 0.99, "superlinear speedup");
    }

    #[test]
    fn amandroid_is_much_slower_than_c() {
        let a = analysis(32, StoreKind::Set);
        let c = CpuCostModel::multithreaded_c().sequential_ns(&a);
        let scala = CpuCostModel::amandroid().sequential_ns(&a);
        assert!(scala > 10.0 * c);
    }

    #[test]
    fn set_store_run_costs_more_than_matrix_run() {
        // The set store pays insert/realloc; matrix pays word traffic.
        // For CPU-sized pools the set store should be the slower of the
        // two under this model (matching the paper's choice of matrix
        // even on CPU for GDroid).
        let s = analysis(33, StoreKind::Set);
        let m = analysis(33, StoreKind::Matrix);
        let model = CpuCostModel::multithreaded_c();
        // Same fixed point → same structural counters; only store costs
        // differ.
        assert_eq!(s.telemetry.nodes_processed, m.telemetry.nodes_processed);
        let st = model.sequential_ns(&s);
        let mt = model.sequential_ns(&m);
        assert!(st > 0.0 && mt > 0.0);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(ns_to_ms(1_500_000.0), 1.5);
        assert_eq!(ns_to_s(2e9), 2.0);
    }
}
