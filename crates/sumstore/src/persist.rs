//! On-disk persistence: a versioned little-endian binary format.
//!
//! Layout of `summaries.bin`:
//!
//! ```text
//! magic   b"GSUM"
//! version u32 = 1
//! count   u64
//! entries sorted ascending by key:
//!   key     u128
//!   summary (four u32-count-prefixed vectors; strings are u32-len +
//!            UTF-8 bytes; tokens are a u8 tag: 0=Formal+u8,
//!            1=Fresh, 2=StaticIn+field; a field is class + name)
//!   slots, insts, nodes   u32 each
//!   words   u64 count + count × u64
//! checksum u64 — FNV-1a over everything before it
//! ```
//!
//! Entries are written in sorted key order so identical stores encode
//! to identical bytes. Decoding validates the magic, the version, the
//! checksum, and every length field against the remaining input, and
//! reports any mismatch as [`std::io::ErrorKind::InvalidData`].

use std::collections::HashMap;
use std::io;

use crate::reloc::{RelocField, RelocSummary, RelocToken};
use crate::store::StoredMethod;

/// File name under the store directory.
pub const STORE_FILE: &str = "summaries.bin";

const MAGIC: &[u8; 4] = b"GSUM";
const VERSION: u32 = 1;

// 64-bit FNV-1a, kept local: this crate deliberately has no dependency
// on the serving layer's hashing helpers.
const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// Encodes `entries` into the GSUM v1 byte format.
pub fn encode(entries: &HashMap<u128, StoredMethod>) -> Vec<u8> {
    let mut keys: Vec<u128> = entries.keys().copied().collect();
    keys.sort_unstable();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(keys.len() as u64).to_le_bytes());
    for key in keys {
        let e = &entries[&key];
        out.extend_from_slice(&key.to_le_bytes());
        put_summary(&mut out, &e.summary);
        out.extend_from_slice(&e.slots.to_le_bytes());
        out.extend_from_slice(&e.insts.to_le_bytes());
        out.extend_from_slice(&e.nodes.to_le_bytes());
        out.extend_from_slice(&(e.words.len() as u64).to_le_bytes());
        for &w in &e.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes a GSUM v1 byte stream.
pub fn decode(bytes: &[u8]) -> io::Result<HashMap<u128, StoredMethod>> {
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 {
        return Err(bad("file too short"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored_sum = u64::from_le_bytes(tail.try_into().expect("8-byte split tail"));
    if fnv1a64(body) != stored_sum {
        return Err(bad("checksum mismatch"));
    }
    let mut r = Reader { bytes: body, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(bad("bad magic"));
    }
    if r.u32()? != VERSION {
        return Err(bad("unsupported version"));
    }
    let count = r.u64()?;
    let mut entries = HashMap::new();
    for _ in 0..count {
        let key = r.u128()?;
        let summary = get_summary(&mut r)?;
        let slots = r.u32()?;
        let insts = r.u32()?;
        let nodes = r.u32()?;
        let n_words = r.u64()? as usize;
        let mut words = Vec::with_capacity(n_words.min(1 << 20));
        for _ in 0..n_words {
            words.push(r.u64()?);
        }
        if entries.insert(key, StoredMethod { summary, slots, insts, nodes, words }).is_some() {
            return Err(bad("duplicate key"));
        }
    }
    if r.pos != body.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(entries)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("sumstore: {msg}"))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_field(out: &mut Vec<u8>, f: &RelocField) {
    put_str(out, &f.class);
    put_str(out, &f.name);
}

fn put_token(out: &mut Vec<u8>, t: &RelocToken) {
    match t {
        RelocToken::Formal(k) => {
            out.push(0);
            out.push(*k);
        }
        RelocToken::Fresh => out.push(1),
        RelocToken::StaticIn(f) => {
            out.push(2);
            put_field(out, f);
        }
    }
}

fn put_summary(out: &mut Vec<u8>, s: &RelocSummary) {
    out.extend_from_slice(&(s.returns.len() as u32).to_le_bytes());
    for t in &s.returns {
        put_token(out, t);
    }
    out.extend_from_slice(&(s.field_writes.len() as u32).to_le_bytes());
    for (r, f, src) in &s.field_writes {
        put_token(out, r);
        put_field(out, f);
        put_token(out, src);
    }
    out.extend_from_slice(&(s.static_writes.len() as u32).to_le_bytes());
    for (f, src) in &s.static_writes {
        put_field(out, f);
        put_token(out, src);
    }
    out.extend_from_slice(&(s.array_writes.len() as u32).to_le_bytes());
    for (r, src) in &s.array_writes {
        put_token(out, r);
        put_token(out, src);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(bad("truncated input"));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn u128(&mut self) -> io::Result<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }

    fn string(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid UTF-8"))
    }

    fn field(&mut self) -> io::Result<RelocField> {
        Ok(RelocField { class: self.string()?, name: self.string()? })
    }

    fn token(&mut self) -> io::Result<RelocToken> {
        match self.u8()? {
            0 => Ok(RelocToken::Formal(self.u8()?)),
            1 => Ok(RelocToken::Fresh),
            2 => Ok(RelocToken::StaticIn(self.field()?)),
            _ => Err(bad("unknown token tag")),
        }
    }
}

fn get_summary(r: &mut Reader) -> io::Result<RelocSummary> {
    let mut s = RelocSummary::default();
    for _ in 0..r.u32()? {
        s.returns.push(r.token()?);
    }
    for _ in 0..r.u32()? {
        s.field_writes.push((r.token()?, r.field()?, r.token()?));
    }
    for _ in 0..r.u32()? {
        s.static_writes.push((r.field()?, r.token()?));
    }
    for _ in 0..r.u32()? {
        s.array_writes.push((r.token()?, r.token()?));
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_roundtrips() {
        let entries = HashMap::new();
        let bytes = encode(&entries);
        assert!(decode(&bytes).unwrap().is_empty());
    }

    #[test]
    fn truncation_is_detected() {
        let mut entries = HashMap::new();
        entries.insert(
            5u128,
            StoredMethod {
                summary: RelocSummary::default(),
                slots: 1,
                insts: 1,
                nodes: 1,
                words: vec![3],
            },
        );
        let bytes = encode(&entries);
        for cut in [0, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }
}
