//! gdroid-sumstore — cross-app shared-library summary store.
//!
//! Real app corpora share enormous amounts of library code: the same
//! support/ads/analytics packages are bundled into thousands of APKs.
//! Re-summarizing them per app wastes most of a vetting campaign's GPU
//! time. This crate makes SBDA method summaries *content-addressed* so
//! a summary computed once — in any app — is reused everywhere the same
//! code appears:
//!
//! - [`hash`] — the canonical method hash: a 128-bit digest over the
//!   resolved signature, the structural body (local *names* excluded;
//!   the IR references locals positionally so alpha-renaming never
//!   changes the digest), and the canonical hashes of resolved callees,
//!   folded bottom-up over call-graph SCC layers. Equal hashes imply
//!   behaviorally identical method subtrees across apps and builds.
//! - [`reloc`] — relocatable summaries: program-relative field ids are
//!   replaced by *(class name, field name)* pairs so app A's summary
//!   instantiates inside app B.
//! - [`store`] — the [`SumStore`]: a thread-safe map from canonical
//!   hash to stored summary + raw fact words, with hit/miss/insertion
//!   counters.
//! - [`persist`] — optional on-disk persistence (versioned binary
//!   format, integrity-checked).
//!
//! Store-hit methods are treated as pre-summarized leaves by the ICFG
//! layering and never enter the GPU worklist; see
//! `gdroid_vetting::execute_vetting_full_with_store` for the wiring.

#![warn(missing_docs)]

pub mod hash;
pub mod persist;
pub mod reloc;
pub mod store;

pub use hash::{canonical_hashes, Fnv128};
pub use reloc::{RelocField, RelocSummary, RelocToken};
pub use store::{StoredMethod, SumStore, SumStoreStats};
