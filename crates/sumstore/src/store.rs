//! The content-addressed summary store.
//!
//! Entries are keyed by the canonical method hash from [`crate::hash`]:
//! two methods with the same key have behaviorally identical bodies and
//! callee subtrees, so one method's SBDA result is valid for the other.
//! An entry carries the relocatable summary plus the raw per-node fact
//! words and the space geometry they were computed under; the geometry
//! acts as a belt-and-braces integrity check at instantiation time.
//!
//! The store is internally synchronized (a single [`Mutex`]) so one
//! handle can be shared across service workers behind an `Arc`.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

use crate::reloc::RelocSummary;

/// Running counters for a store handle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SumStoreStats {
    /// Lookups that found a matching entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries newly inserted (duplicates are not counted).
    pub insertions: u64,
    /// Hits discarded because the summary failed to re-bind in the
    /// target program (or the geometry did not match).
    pub reloc_failures: u64,
}

impl SumStoreStats {
    /// Exact merge of two instances' lifetime counters (field-wise sum) —
    /// used when per-shard service reports fold into one fleet report.
    pub fn merge(&self, other: &SumStoreStats) -> SumStoreStats {
        SumStoreStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            insertions: self.insertions + other.insertions,
            reloc_failures: self.reloc_failures + other.reloc_failures,
        }
    }

    /// Byte-stable JSON object with deterministic key order.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"insertions\":{},\"reloc_failures\":{}}}",
            self.hits, self.misses, self.insertions, self.reloc_failures
        )
    }
}

/// One stored analysis result: the symbolic summary plus the raw fact
/// matrix (`nodes × geometry-words` u64 words, row-major) and the
/// geometry it was computed under.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredMethod {
    /// Relocatable summary.
    pub summary: RelocSummary,
    /// Slot-pool size of the method space the facts were computed in.
    pub slots: u32,
    /// Instance-pool size of that method space.
    pub insts: u32,
    /// Number of CFG nodes (fact-matrix rows).
    pub nodes: u32,
    /// Flattened fact words, `nodes` rows of `words_per_node` each.
    pub words: Vec<u64>,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<u128, StoredMethod>,
    stats: SumStoreStats,
}

/// Cross-app summary store. Cheap to share via `Arc<SumStore>`.
#[derive(Default)]
pub struct SumStore {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for SumStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SumStore")
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl SumStore {
    /// An empty in-memory store.
    pub fn new() -> SumStore {
        SumStore::default()
    }

    /// Opens a store persisted under `dir` (see [`crate::persist`]).
    /// A missing file yields an empty store; a corrupt one an error.
    pub fn open(dir: &Path) -> std::io::Result<SumStore> {
        let file = dir.join(crate::persist::STORE_FILE);
        let entries = match std::fs::read(&file) {
            Ok(bytes) => crate::persist::decode(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => HashMap::new(),
            Err(e) => return Err(e),
        };
        Ok(SumStore { inner: Mutex::new(Inner { entries, stats: SumStoreStats::default() }) })
    }

    /// Persists the entries under `dir` (created if absent). Counters
    /// are session-local and not persisted.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let inner = self.lock();
        let bytes = crate::persist::encode(&inner.entries);
        std::fs::write(dir.join(crate::persist::STORE_FILE), bytes)
    }

    /// Looks up a canonical key, counting a hit or miss.
    pub fn lookup(&self, key: u128) -> Option<StoredMethod> {
        let mut inner = self.lock();
        match inner.entries.get(&key) {
            Some(entry) => {
                let entry = entry.clone();
                inner.stats.hits += 1;
                Some(entry)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Records that a hit could not be instantiated in the target
    /// program; callers treat such lookups as misses.
    pub fn note_reloc_failure(&self) {
        self.lock().stats.reloc_failures += 1;
    }

    /// Inserts an entry unless the key is already present. Returns
    /// whether the entry was newly inserted.
    pub fn insert(&self, key: u128, entry: StoredMethod) -> bool {
        let mut inner = self.lock();
        if inner.entries.contains_key(&key) {
            return false;
        }
        inner.entries.insert(key, entry);
        inner.stats.insertions += 1;
        true
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> SumStoreStats {
        self.lock().stats
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&self) {
        self.lock().entries.clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock leaves only counters and a
        // plain map behind; recovering the data is always safe.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reloc::{RelocField, RelocToken};

    fn entry(tag: u8) -> StoredMethod {
        StoredMethod {
            summary: RelocSummary {
                returns: vec![RelocToken::Formal(tag)],
                field_writes: vec![],
                static_writes: vec![(
                    RelocField { class: format!("com/x/C{tag}"), name: "f".into() },
                    RelocToken::Fresh,
                )],
                array_writes: vec![],
            },
            slots: 3,
            insts: 2,
            nodes: 4,
            words: vec![tag as u64, 0, u64::MAX, 7],
        }
    }

    #[test]
    fn lookup_and_insert_count() {
        let store = SumStore::new();
        assert!(store.lookup(1).is_none());
        assert!(store.insert(1, entry(1)));
        assert!(!store.insert(1, entry(2)), "duplicate key is ignored");
        assert_eq!(store.lookup(1).unwrap(), entry(1));
        store.note_reloc_failure();
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.reloc_failures), (1, 1, 1, 1));
        assert_eq!(store.len(), 1);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.stats().insertions, 1, "clear keeps counters");
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("gdroid-sumstore-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SumStore::new();
        store.insert(42, entry(1));
        store.insert(u128::MAX, entry(9));
        store.save(&dir).unwrap();
        let reopened = SumStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.lookup(42).unwrap(), entry(1));
        assert_eq!(reopened.lookup(u128::MAX).unwrap(), entry(9));
        // Byte-stable: saving the reopened store reproduces the file.
        let first = std::fs::read(dir.join(crate::persist::STORE_FILE)).unwrap();
        reopened.save(&dir).unwrap();
        let second = std::fs::read(dir.join(crate::persist::STORE_FILE)).unwrap();
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_missing_dir_is_empty() {
        let dir = std::env::temp_dir().join("gdroid-sumstore-definitely-missing");
        let store = SumStore::open(&dir).unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn corrupt_file_is_rejected() {
        let dir = std::env::temp_dir().join(format!("gdroid-sumstore-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SumStore::new();
        store.insert(7, entry(3));
        store.save(&dir).unwrap();
        let file = dir.join(crate::persist::STORE_FILE);
        let mut bytes = std::fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&file, &bytes).unwrap();
        let err = SumStore::open(&dir).expect_err("corrupt file must be rejected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
