//! Relocatable summaries — SBDA summaries expressed symbolically.
//!
//! A [`gdroid_analysis::MethodSummary`] is already *almost* relocatable:
//! its [`Token`]s are formal positions and fresh markers, both
//! program-independent. The one program-relative ingredient is
//! [`FieldId`], which numbers fields in declaration order of the owning
//! program. [`RelocSummary`] replaces every `FieldId` with the pair
//! *(declaring-class name, field name)* so a summary computed in app A
//! instantiates at a call site in app B — provided B declares the same
//! class and field, which the canonical hash guarantees for store hits
//! (the field access is part of the hashed body).
//!
//! Per-node fact matrices need **no** translation at all: the analysis'
//! slot/instance pools are positional functions of the body, so
//! structurally identical bodies produce same-shaped matrices whose bit
//! positions mean the corresponding (target-program) slots. The store
//! therefore keeps raw fact words next to the symbolic summary and
//! validates only the geometry at instantiation time.

use gdroid_analysis::{MethodSummary, Token};
use gdroid_ir::{FieldId, Program};

/// A field identified symbolically: declaring class + field name.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RelocField {
    /// Fully-qualified declaring class name.
    pub class: String,
    /// Field name.
    pub name: String,
}

impl RelocField {
    /// Resolves a program-relative field to its symbolic form.
    pub fn of(field: FieldId, program: &Program) -> RelocField {
        let fd = &program.fields[field];
        RelocField {
            class: program.interner.resolve(program.classes[fd.class].name).to_owned(),
            name: program.interner.resolve(fd.name).to_owned(),
        }
    }

    /// Re-binds the symbolic field in `program`, or `None` when the
    /// program declares no such class/field (a relocation failure).
    pub fn bind(&self, program: &Program) -> Option<FieldId> {
        let class_sym = program.interner.get(&self.class)?;
        let class = program.class_by_name(class_sym)?;
        let name_sym = program.interner.get(&self.name)?;
        program.classes[class].fields.iter().copied().find(|&f| program.fields[f].name == name_sym)
    }
}

/// A [`Token`] with fields symbolic instead of program-relative.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RelocToken {
    /// Caller argument `k` (0 = receiver).
    Formal(u8),
    /// A fresh escaping object.
    Fresh,
    /// The caller's view of a static field.
    StaticIn(RelocField),
}

impl RelocToken {
    fn of(token: Token, program: &Program) -> RelocToken {
        match token {
            Token::Formal(k) => RelocToken::Formal(k),
            Token::Fresh => RelocToken::Fresh,
            Token::StaticIn(f) => RelocToken::StaticIn(RelocField::of(f, program)),
        }
    }

    fn bind(&self, program: &Program) -> Option<Token> {
        Some(match self {
            RelocToken::Formal(k) => Token::Formal(*k),
            RelocToken::Fresh => Token::Fresh,
            RelocToken::StaticIn(f) => Token::StaticIn(f.bind(program)?),
        })
    }
}

/// A method summary in fully symbolic (cross-program) form. Vectors are
/// kept sorted so extraction is deterministic and persistence byte-stable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RelocSummary {
    /// Possible sources of the return value.
    pub returns: Vec<RelocToken>,
    /// Escaping field writes `recv.field ← src`.
    pub field_writes: Vec<(RelocToken, RelocField, RelocToken)>,
    /// Static writes `field ← src`.
    pub static_writes: Vec<(RelocField, RelocToken)>,
    /// Array-element writes `recv[…] ← src`.
    pub array_writes: Vec<(RelocToken, RelocToken)>,
}

impl RelocSummary {
    /// Extracts the symbolic form of a summary computed in `program`.
    pub fn extract(summary: &MethodSummary, program: &Program) -> RelocSummary {
        let mut out = RelocSummary {
            returns: summary.returns.iter().map(|&t| RelocToken::of(t, program)).collect(),
            field_writes: summary
                .field_writes
                .iter()
                .map(|&(r, f, s)| {
                    (
                        RelocToken::of(r, program),
                        RelocField::of(f, program),
                        RelocToken::of(s, program),
                    )
                })
                .collect(),
            static_writes: summary
                .static_writes
                .iter()
                .map(|&(f, s)| (RelocField::of(f, program), RelocToken::of(s, program)))
                .collect(),
            array_writes: summary
                .array_writes
                .iter()
                .map(|&(r, s)| (RelocToken::of(r, program), RelocToken::of(s, program)))
                .collect(),
        };
        out.returns.sort();
        out.field_writes.sort();
        out.static_writes.sort();
        out.array_writes.sort();
        out
    }

    /// Instantiates the summary into `program`, re-binding every symbolic
    /// field. `None` when any field fails to bind (relocation failure —
    /// the store treats the lookup as a miss).
    pub fn instantiate(&self, program: &Program) -> Option<MethodSummary> {
        let mut s = MethodSummary::default();
        for t in &self.returns {
            s.returns.insert(t.bind(program)?);
        }
        for (r, f, src) in &self.field_writes {
            s.field_writes.insert((r.bind(program)?, f.bind(program)?, src.bind(program)?));
        }
        for (f, src) in &self.static_writes {
            s.static_writes.insert((f.bind(program)?, src.bind(program)?));
        }
        for (r, src) in &self.array_writes {
            s.array_writes.insert((r.bind(program)?, src.bind(program)?));
        }
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_ir::text::{parse_program, print_program};

    #[test]
    fn summary_roundtrips_across_reinterning() {
        // Build a program, summarize symbolically, re-parse (fresh
        // interner order), and instantiate: the result must denote the
        // same fields by name.
        let app = gdroid_apk::generate_app(0, 8700, &gdroid_apk::GenConfig::tiny());
        let program = &app.program;
        // A synthetic summary touching a real static field, if any.
        let mut summary = MethodSummary::default();
        summary.returns.insert(Token::Formal(0));
        summary.returns.insert(Token::Fresh);
        if let Some((fid, _)) = program.fields.iter_enumerated().find(|(_, f)| f.is_static) {
            summary.static_writes.insert((fid, Token::Formal(1)));
            summary.returns.insert(Token::StaticIn(fid));
        }
        let reloc = RelocSummary::extract(&summary, program);
        let reparsed = parse_program(&print_program(program)).expect("reparse");
        let bound = reloc.instantiate(&reparsed).expect("fields exist in reparsed program");
        assert_eq!(bound.returns.len(), summary.returns.len());
        assert_eq!(bound.static_writes.len(), summary.static_writes.len());
        // And extraction from the re-bound form is identical symbolically.
        assert_eq!(RelocSummary::extract(&bound, &reparsed), reloc);
    }

    #[test]
    fn missing_field_is_a_relocation_failure() {
        let app = gdroid_apk::generate_app(0, 8701, &gdroid_apk::GenConfig::tiny());
        let mut summary = RelocSummary::default();
        summary.static_writes.push((
            RelocField { class: "com/does/not/Exist".into(), name: "ghost".into() },
            RelocToken::Fresh,
        ));
        assert!(summary.instantiate(&app.program).is_none());
    }
}
