//! Canonical method hashing — the content address of the summary store.
//!
//! The canonical hash of a method is a 128-bit digest of everything that
//! determines its SBDA summary and per-node facts, and *nothing* that
//! depends on the surrounding program's accidents:
//!
//! * local-variable **names** are excluded (statements reference locals by
//!   positional `VarId`, so alpha-renaming is invisible by construction);
//! * interned `Symbol` and `FieldId`/`MethodId` *values* are never hashed
//!   raw — class names, field names, and string literals are resolved
//!   through the interner to their text, so two programs that intern in
//!   different orders (or interleave unrelated classes) agree;
//! * call sites fold in the canonical hash of every **resolved callee**,
//!   making the key transitive: hash equality implies the entire callee
//!   subtree is behaviorally identical, which is what lets a stored
//!   summary *and* fact matrix be reused verbatim;
//! * recursion is handled on the SCC condensation: intra-SCC edges fold a
//!   marker plus the callee's resolved signature into a per-member "local"
//!   hash, and every member's final hash combines its own local hash with
//!   the sorted local hashes of the whole component.
//!
//! Slot/instance numbering needs no explicit canonicalization: the
//! analysis' `MethodSpace` pools are pure positional functions of the
//! body, so structurally identical bodies get correspondingly ordered
//! pools in any program (see `gdroid_analysis::fact`).

use gdroid_icfg::{CallGraph, CallLayers, CallTarget};
use gdroid_ir::types::ArrayElem;
use gdroid_ir::{
    Expr, FieldId, Interner, JType, Lhs, Literal, Method, MethodId, MethodKind, Program, Signature,
    Stmt, Visibility,
};
use std::collections::HashMap;

/// 128-bit FNV-1a offset basis.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Incremental 128-bit FNV-1a hasher.
#[derive(Clone)]
pub struct Fnv128(u128);

impl Fnv128 {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Fnv128 {
        Fnv128(FNV128_OFFSET)
    }

    /// Folds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Folds a tag byte.
    pub fn tag(&mut self, t: u8) {
        self.write(&[t]);
    }

    /// Folds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u128` (little-endian).
    pub fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a length-prefixed string (prefix keeps "ab"+"c" ≠ "a"+"bc").
    pub fn write_str(&mut self, s: &str) {
        self.write_u32(s.len() as u32);
        self.write(s.as_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> u128 {
        self.0
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

fn write_jtype(h: &mut Fnv128, ty: JType, interner: &Interner) {
    match ty {
        JType::Void => h.tag(0),
        JType::Boolean => h.tag(1),
        JType::Byte => h.tag(2),
        JType::Char => h.tag(3),
        JType::Short => h.tag(4),
        JType::Int => h.tag(5),
        JType::Long => h.tag(6),
        JType::Float => h.tag(7),
        JType::Double => h.tag(8),
        JType::Object(s) => {
            h.tag(9);
            h.write_str(interner.resolve(s));
        }
        JType::Array(ArrayElem::Prim(p)) => {
            h.tag(10);
            h.tag(p as u8);
        }
        JType::Array(ArrayElem::Object(s)) => {
            h.tag(11);
            h.write_str(interner.resolve(s));
        }
    }
}

fn write_sig(h: &mut Fnv128, sig: &Signature, interner: &Interner) {
    h.write_str(interner.resolve(sig.class));
    h.write_str(interner.resolve(sig.name));
    h.write_u32(sig.params.len() as u32);
    for &p in &sig.params {
        write_jtype(h, p, interner);
    }
    write_jtype(h, sig.ret, interner);
}

fn write_field(h: &mut Fnv128, f: FieldId, program: &Program) {
    let fd = &program.fields[f];
    h.write_str(program.interner.resolve(program.classes[fd.class].name));
    h.write_str(program.interner.resolve(fd.name));
    h.tag(fd.is_static as u8);
    write_jtype(h, fd.ty, &program.interner);
}

fn write_lhs(h: &mut Fnv128, lhs: &Lhs, program: &Program) {
    match lhs {
        Lhs::Var(v) => {
            h.tag(0);
            h.write_u32(v.0);
        }
        Lhs::Field { base, field } => {
            h.tag(1);
            h.write_u32(base.0);
            write_field(h, *field, program);
        }
        Lhs::StaticField { field } => {
            h.tag(2);
            write_field(h, *field, program);
        }
        Lhs::ArrayElem { base, index } => {
            h.tag(3);
            h.write_u32(base.0);
            h.write_u32(index.0);
        }
    }
}

fn write_expr(h: &mut Fnv128, e: &Expr, program: &Program) {
    let it = &program.interner;
    match e {
        Expr::Access { base, field } => {
            h.tag(0);
            h.write_u32(base.0);
            write_field(h, *field, program);
        }
        Expr::Binary { op, lhs, rhs } => {
            h.tag(1);
            h.tag(*op as u8);
            h.write_u32(lhs.0);
            h.write_u32(rhs.0);
        }
        Expr::CallRhs { ret } => {
            h.tag(2);
            h.write_u32(ret.0);
        }
        Expr::Cast { ty, operand } => {
            h.tag(3);
            write_jtype(h, *ty, it);
            h.write_u32(operand.0);
        }
        Expr::Cmp { kind, lhs, rhs } => {
            h.tag(4);
            h.tag(*kind as u8);
            h.write_u32(lhs.0);
            h.write_u32(rhs.0);
        }
        Expr::ConstClass { ty } => {
            h.tag(5);
            write_jtype(h, *ty, it);
        }
        Expr::Exception => h.tag(6),
        Expr::Indexing { base, index } => {
            h.tag(7);
            h.write_u32(base.0);
            h.write_u32(index.0);
        }
        Expr::InstanceOf { operand, ty } => {
            h.tag(8);
            h.write_u32(operand.0);
            write_jtype(h, *ty, it);
        }
        Expr::Length { base } => {
            h.tag(9);
            h.write_u32(base.0);
        }
        Expr::Lit(lit) => {
            h.tag(10);
            match lit {
                Literal::Int(v) => {
                    h.tag(0);
                    h.write(&v.to_le_bytes());
                }
                Literal::Float(v) => {
                    h.tag(1);
                    h.write_u64(v.to_bits());
                }
                Literal::Str(s) => {
                    h.tag(2);
                    h.write_str(it.resolve(*s));
                }
                Literal::Bool(b) => {
                    h.tag(3);
                    h.tag(*b as u8);
                }
            }
        }
        Expr::Var(v) => {
            h.tag(11);
            h.write_u32(v.0);
        }
        Expr::StaticField { field } => {
            h.tag(12);
            write_field(h, *field, program);
        }
        Expr::New { ty } => {
            h.tag(13);
            write_jtype(h, *ty, it);
        }
        Expr::Null => h.tag(14),
        Expr::Tuple { elems } => {
            h.tag(15);
            h.write_u32(elems.len() as u32);
            for v in elems {
                h.write_u32(v.0);
            }
        }
        Expr::Unary { op, operand } => {
            h.tag(16);
            h.tag(*op as u8);
            h.write_u32(operand.0);
        }
    }
}

fn kind_tag(k: MethodKind) -> u8 {
    match k {
        MethodKind::Instance => 0,
        MethodKind::Static => 1,
        MethodKind::Constructor => 2,
        MethodKind::LifecycleCallback => 3,
        MethodKind::Environment => 4,
    }
}

fn vis_tag(v: Visibility) -> u8 {
    match v {
        Visibility::Public => 0,
        Visibility::Protected => 1,
        Visibility::Private => 2,
    }
}

/// The "local" hash of one method: its own structure plus callee
/// bindings, with intra-SCC callees folded symbolically (marker +
/// resolved signature) since their final hashes are not yet known.
fn local_hash(
    program: &Program,
    cg: &CallGraph,
    mid: MethodId,
    done: &HashMap<MethodId, u128>,
    scc: &[MethodId],
) -> u128 {
    let m: &Method = &program.methods[mid];
    let it = &program.interner;
    let mut h = Fnv128::new();

    write_sig(&mut h, &m.sig, it);
    h.tag(kind_tag(m.kind));
    h.tag(vis_tag(m.visibility));
    h.tag(m.this_var.is_some() as u8);
    // Variable *types* in declaration order; names are printing-only.
    h.write_u32(m.params.len() as u32);
    h.write_u32(m.vars.len() as u32);
    for v in m.vars.iter() {
        write_jtype(&mut h, v.ty, it);
    }

    h.write_u32(m.body.len() as u32);
    for (idx, stmt) in m.body.iter_enumerated() {
        match stmt {
            Stmt::Assign { lhs, rhs } => {
                h.tag(0);
                write_lhs(&mut h, lhs, program);
                write_expr(&mut h, rhs, program);
            }
            Stmt::Empty => h.tag(1),
            Stmt::Monitor { op, var } => {
                h.tag(2);
                h.tag(*op as u8);
                h.write_u32(var.0);
            }
            Stmt::Throw { var } => {
                h.tag(3);
                h.write_u32(var.0);
            }
            Stmt::Call { ret, kind, sig, args } => {
                h.tag(4);
                match ret {
                    Some(v) => {
                        h.tag(1);
                        h.write_u32(v.0);
                    }
                    None => h.tag(0),
                }
                h.tag(*kind as u8);
                write_sig(&mut h, sig, it);
                h.write_u32(args.len() as u32);
                for a in args {
                    h.write_u32(a.0);
                }
                // Callee binding: the transitive part of the key.
                match cg.site(mid, idx) {
                    None => h.tag(0),
                    Some(CallTarget::External(esig)) => {
                        h.tag(1);
                        write_sig(&mut h, esig, it);
                    }
                    Some(CallTarget::Internal(targets)) => {
                        h.tag(2);
                        h.write_u32(targets.len() as u32);
                        // Sorted for order-independence of multi-target
                        // virtual dispatch.
                        let mut folded: Vec<u128> = targets
                            .iter()
                            .map(|&t| {
                                if scc.contains(&t) {
                                    // Same component: marker + resolved
                                    // signature (final hash unknown yet).
                                    let mut sh = Fnv128::new();
                                    sh.tag(1);
                                    write_sig(&mut sh, &program.methods[t].sig, it);
                                    sh.finish()
                                } else if let Some(&th) = done.get(&t) {
                                    th
                                } else {
                                    // Defensive: unscheduled callee binds
                                    // by resolved signature.
                                    let mut sh = Fnv128::new();
                                    sh.tag(2);
                                    write_sig(&mut sh, &program.methods[t].sig, it);
                                    sh.finish()
                                }
                            })
                            .collect();
                        folded.sort_unstable();
                        for f in folded {
                            h.write_u128(f);
                        }
                    }
                }
            }
            Stmt::Goto { target } => {
                h.tag(5);
                h.write_u32(target.0);
            }
            Stmt::If { cond, target } => {
                h.tag(6);
                h.write_u32(cond.0);
                h.write_u32(target.0);
            }
            Stmt::Return { var } => {
                h.tag(7);
                match var {
                    Some(v) => {
                        h.tag(1);
                        h.write_u32(v.0);
                    }
                    None => h.tag(0),
                }
            }
            Stmt::Switch { var, targets, default } => {
                h.tag(8);
                h.write_u32(var.0);
                h.write_u32(targets.len() as u32);
                for t in targets {
                    h.write_u32(t.0);
                }
                h.write_u32(default.0);
            }
        }
    }
    h.finish()
}

/// Computes the canonical hash of every method reachable from `roots`,
/// bottom-up over the SBDA layering so callee hashes exist before their
/// callers fold them in.
pub fn canonical_hashes(
    program: &Program,
    cg: &CallGraph,
    roots: &[MethodId],
) -> HashMap<MethodId, u128> {
    let layers = CallLayers::compute(cg, roots);
    let mut hashes: HashMap<MethodId, u128> = HashMap::with_capacity(layers.method_count());

    // SCCs ordered bottom-up; components on the same layer have no edges
    // between each other, so within-layer order is irrelevant.
    let mut scc_order: Vec<usize> = (0..layers.scc_members.len()).collect();
    scc_order.sort_by_key(|&s| (layers.scc_layer[s], s));

    for s in scc_order {
        let members = &layers.scc_members[s];
        let locals: Vec<u128> =
            members.iter().map(|&m| local_hash(program, cg, m, &hashes, members)).collect();
        let mut sorted = locals.clone();
        sorted.sort_unstable();
        for (i, &m) in members.iter().enumerate() {
            // Final hash: own local hash + the whole component's sorted
            // local hashes, so mutually recursive methods key on the
            // entire cycle.
            let mut h = Fnv128::new();
            h.write_u128(locals[i]);
            for &l in &sorted {
                h.write_u128(l);
            }
            hashes.insert(m, h.finish());
        }
    }
    hashes
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_ir::text::{parse_program, print_program};

    fn all_hashes(program: &Program) -> HashMap<MethodId, u128> {
        let cg = CallGraph::build(program);
        let roots: Vec<MethodId> = (0..program.methods.len() as u32).map(MethodId).collect();
        canonical_hashes(program, &cg, &roots)
    }

    #[test]
    fn hash_survives_reinterning() {
        // print → parse builds a fresh interner with a different symbol
        // order; canonical hashes must agree method-for-method.
        let app = generate_app(0, 4100, &GenConfig::tiny());
        let ha = all_hashes(&app.program);
        let reparsed = parse_program(&print_program(&app.program)).expect("reparse");
        let hb = all_hashes(&reparsed);
        assert_eq!(ha.len(), hb.len());
        for (mid, &h) in &ha {
            let sig = &app.program.methods[*mid].sig;
            let name = format!(
                "{}::{}",
                app.program.interner.resolve(sig.class),
                app.program.interner.resolve(sig.name)
            );
            let other = hb
                .iter()
                .find(|(m2, _)| {
                    let s2 = &reparsed.methods[**m2].sig;
                    format!(
                        "{}::{}",
                        reparsed.interner.resolve(s2.class),
                        reparsed.interner.resolve(s2.name)
                    ) == name
                })
                .map(|(_, h2)| *h2);
            assert_eq!(other, Some(h), "hash changed across re-interning for {name}");
        }
    }

    #[test]
    fn distinct_bodies_never_collide() {
        // Across several apps, two methods may share a hash only when
        // they are the same code (framework methods, shared libraries).
        // The generator interns the framework first, so identical code
        // across apps has an identical Debug form too.
        let mut by_hash: HashMap<u128, String> = HashMap::new();
        for seed in 0..4u64 {
            let app = generate_app(seed as usize, 3200 + seed, &GenConfig::tiny());
            for (mid, h) in all_hashes(&app.program) {
                let m = &app.program.methods[mid];
                let body = format!("{:?} {:?}", m.sig, m.body.as_slice());
                match by_hash.entry(h) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(body);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        assert_eq!(e.get(), &body, "hash collision between distinct bodies");
                    }
                }
            }
        }
        assert!(by_hash.len() > 50, "expected many distinct method hashes");
    }

    #[test]
    fn shared_library_methods_hash_identically_across_apps() {
        // The tentpole property: two different apps (different seeds,
        // different interner contents, different field numbering) that
        // bundle the same library package agree on every library method's
        // canonical hash — so a summary computed in one app is a store
        // hit in the other.
        let cfg = GenConfig::tiny().with_libraries(2, 2);
        let a = generate_app(0, 6100, &cfg);
        let b = generate_app(1, 6200, &cfg);
        let lib_hashes = |p: &Program| -> HashMap<String, u128> {
            all_hashes(p)
                .into_iter()
                .filter_map(|(mid, h)| {
                    let sig = &p.methods[mid].sig;
                    let cls = p.interner.resolve(sig.class);
                    cls.starts_with("com/lib/")
                        .then(|| (format!("{cls}::{}", p.interner.resolve(sig.name)), h))
                })
                .collect()
        };
        let (ha, hb) = (lib_hashes(&a.program), lib_hashes(&b.program));
        let mut shared = 0;
        for (name, h) in &ha {
            if let Some(h2) = hb.get(name) {
                assert_eq!(h, h2, "library method {name} hashes differ across apps");
                shared += 1;
            }
        }
        assert!(shared > 10, "apps share too few library methods ({shared})");
    }
}
