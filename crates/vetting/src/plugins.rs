//! Additional vetting plugins over the IDFG.
//!
//! The paper's §II-A argues Amandroid's strength is *IDFG reuse*: "it
//! builds the DFG and DDG, then adds low-cost plugins to realize various
//! specific analyses." The taint tracker in [`crate::taint`] is one such
//! plugin; this module adds three more, all reading the same node-wise
//! points-to facts without re-running the worklist:
//!
//! * [`intent_exposure`] — exported components whose Intent-derived data
//!   (lifecycle formals) reaches an exfiltration sink: the classic
//!   confused-deputy / component-hijacking shape;
//! * [`hardcoded_payloads`] — sink calls whose argument can only be a
//!   string literal: hardcoded identifiers/keys leaving the device;
//! * [`permission_audit`] — manifest permissions vs the API surface the
//!   code actually reaches: over- and under-privilege.

use crate::registry::SourceSinkRegistry;
use gdroid_analysis::{AppAnalysis, Instance, Slot};
use gdroid_apk::{builtin_api_roles, ApiRole, App, Permission};
use gdroid_icfg::{CallGraph, EnvironmentInfo};
use gdroid_ir::{Expr, Literal, MethodId, Stmt, StmtIdx};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A component whose externally controlled data reaches a sink.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExposureFinding {
    /// The exported component's class (interned name resolved to text).
    pub component: String,
    /// Method containing the sink call.
    pub method: MethodId,
    /// The sink call site.
    pub stmt: StmtIdx,
    /// Sink API name.
    pub sink: String,
}

/// Intent-exposure plugin: for every *exported* component, check whether a
/// lifecycle formal (the framework-delivered Intent/Bundle) can flow into a
/// sink argument anywhere in the component's reachable methods.
pub fn intent_exposure(
    app: &App,
    cg: &CallGraph,
    envs: &[EnvironmentInfo],
    analysis: &AppAnalysis,
    registry: &SourceSinkRegistry,
) -> Vec<ExposureFinding> {
    let mut findings = Vec::new();
    for env in envs.iter().filter(|e| e.component.exported) {
        let reachable = cg.reachable_from(&[env.method]);
        let reachable: HashSet<MethodId> = reachable.into_iter().collect();
        for &mid in &reachable {
            let Some(space) = analysis.spaces.get(&mid) else { continue };
            let Some(cfg) = analysis.cfgs.get(&mid) else { continue };
            let method = &app.program.methods[mid];
            // Only lifecycle methods receive framework-controlled formals
            // directly; transitively, formal-derived data in callees also
            // counts (the facts carry Formal instances there too).
            for (idx, stmt) in method.body.iter_enumerated() {
                let Stmt::Call { sig, args, .. } = stmt else { continue };
                let Some(sink) = registry.sink_of(sig) else { continue };
                let node = cfg.node_of(idx);
                let facts = analysis.node_facts(mid, node);
                let intent_controlled = args.iter().any(|&a| {
                    space.slot(Slot::Local(a)).is_some_and(|slot| {
                        facts.row(slot).iter().any(|&i| {
                            matches!(space.instances[usize::from(i)], Instance::Formal(k) if k > 0)
                        })
                    })
                });
                if intent_controlled {
                    findings.push(ExposureFinding {
                        component: app.program.interner.resolve(env.component.class).to_owned(),
                        method: mid,
                        stmt: idx,
                        sink: sink.to_owned(),
                    });
                }
            }
        }
    }
    findings.sort_by_key(|a| (a.method, a.stmt));
    findings.dedup();
    findings
}

/// A sink receiving only constant data.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardcodedFinding {
    /// Method containing the sink call.
    pub method: MethodId,
    /// The call site.
    pub stmt: StmtIdx,
    /// Sink API name.
    pub sink: String,
}

/// Hardcoded-payload plugin: a sink argument whose points-to set is
/// non-empty and consists *only* of string-literal allocation sites —
/// the code ships fixed data (tokens, ids, keys) to an output channel.
pub fn hardcoded_payloads(
    app: &App,
    analysis: &AppAnalysis,
    registry: &SourceSinkRegistry,
) -> Vec<HardcodedFinding> {
    let mut findings = Vec::new();
    for (&mid, space) in &analysis.spaces {
        let Some(cfg) = analysis.cfgs.get(&mid) else { continue };
        let method = &app.program.methods[mid];
        for (idx, stmt) in method.body.iter_enumerated() {
            let Stmt::Call { sig, args, .. } = stmt else { continue };
            let Some(sink) = registry.sink_of(sig) else { continue };
            let node = cfg.node_of(idx);
            let facts = analysis.node_facts(mid, node);
            let only_literals = args.iter().any(|&a| {
                let Some(slot) = space.slot(Slot::Local(a)) else { return false };
                let row = facts.row(slot);
                !row.is_empty()
                    && row.iter().all(|&i| match space.instances[usize::from(i)] {
                        Instance::Alloc(at) => matches!(
                            method.body[at],
                            Stmt::Assign { rhs: Expr::Lit(Literal::Str(_)), .. }
                        ),
                        _ => false,
                    })
            });
            if only_literals {
                findings.push(HardcodedFinding { method: mid, stmt: idx, sink: sink.to_owned() });
            }
        }
    }
    findings.sort_by_key(|a| (a.method, a.stmt));
    findings
}

/// Permission audit result.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermissionAudit {
    /// Permissions declared but never exercised by reachable API calls.
    pub over_privileged: Vec<Permission>,
    /// Sensitive APIs reached without a matching declared permission.
    pub under_privileged: Vec<String>,
}

/// Maps our modeled source APIs to the permission that gates them.
fn permission_for(class: &str) -> Option<Permission> {
    Some(match class {
        "android/telephony/TelephonyManager" => Permission::ReadPhoneState,
        "android/location/LocationManager" => Permission::AccessFineLocation,
        "android/content/ContentResolver" => Permission::ReadContacts,
        "android/telephony/SmsMessage" => Permission::ReadSms,
        "android/telephony/SmsManager" => Permission::SendSms,
        "android/media/AudioRecord" => Permission::RecordAudio,
        _ => return None,
    })
}

/// Permission-audit plugin: compares the manifest's permission set with
/// the gated APIs actually reachable in the analyzed code.
pub fn permission_audit(app: &App, analysis: &AppAnalysis) -> PermissionAudit {
    // Gated APIs present in the reachable code.
    let mut used: HashSet<Permission> = HashSet::new();
    let mut ungated_calls: Vec<String> = Vec::new();
    let gated: Vec<(&str, &str)> = builtin_api_roles()
        .filter(|(_, _, role)| !matches!(role, ApiRole::Neutral))
        .map(|(c, n, _)| (c, n))
        .collect();
    for &mid in analysis.spaces.keys() {
        for stmt in app.program.methods[mid].body.iter() {
            let Stmt::Call { sig, .. } = stmt else { continue };
            let class = app.program.interner.resolve(sig.class);
            let name = app.program.interner.resolve(sig.name);
            if !gated.iter().any(|&(c, n)| c == class && n == name) {
                continue;
            }
            if let Some(p) = permission_for(class) {
                used.insert(p);
                if !app.manifest.has_permission(p) {
                    ungated_calls.push(format!("{class}.{name}"));
                }
            }
        }
    }
    let mut over: Vec<Permission> = app
        .manifest
        .permissions
        .iter()
        .copied()
        .filter(|p| *p != Permission::Internet && !used.contains(p))
        .collect();
    over.sort_by_key(|p| p.manifest_name());
    ungated_calls.sort();
    ungated_calls.dedup();
    PermissionAudit { over_privileged: over, under_privileged: ungated_calls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_analysis::{analyze_app, StoreKind};
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_icfg::prepare_app;

    fn setup(seed: u64) -> (App, CallGraph, Vec<EnvironmentInfo>, AppAnalysis, SourceSinkRegistry) {
        let mut app = generate_app(0, seed, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        let analysis = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);
        let registry = SourceSinkRegistry::for_program(&app.program);
        (app, cg, envs, analysis, registry)
    }

    #[test]
    fn plugins_run_and_are_deterministic() {
        let (app, cg, envs, analysis, registry) = setup(7501);
        let e1 = intent_exposure(&app, &cg, &envs, &analysis, &registry);
        let e2 = intent_exposure(&app, &cg, &envs, &analysis, &registry);
        assert_eq!(e1, e2);
        let h1 = hardcoded_payloads(&app, &analysis, &registry);
        let h2 = hardcoded_payloads(&app, &analysis, &registry);
        assert_eq!(h1, h2);
        let a1 = permission_audit(&app, &analysis);
        let a2 = permission_audit(&app, &analysis);
        assert_eq!(a1, a2);
    }

    #[test]
    fn exposure_findings_reference_exported_components() {
        // Over a few seeds, at least one app should expose Intent data to
        // a sink (lifecycle formals flow freely in the generator).
        let mut found = false;
        for seed in 7510..7530 {
            let (app, cg, envs, analysis, registry) = setup(seed);
            let findings = intent_exposure(&app, &cg, &envs, &analysis, &registry);
            for f in &findings {
                assert!(!f.sink.is_empty());
                assert!(!f.component.is_empty());
                found = true;
            }
            if found {
                break;
            }
        }
        assert!(found, "no intent exposure found in 20 apps");
    }

    #[test]
    fn audit_flags_overprivilege_somewhere() {
        // The generator adds random extra permissions, so some app in a
        // small sweep must be over-privileged.
        let mut over = false;
        let mut under = false;
        for seed in 7540..7570 {
            let (app, _, _, analysis, _) = setup(seed);
            let audit = permission_audit(&app, &analysis);
            over |= !audit.over_privileged.is_empty();
            under |= !audit.under_privileged.is_empty();
            if over && under {
                break;
            }
        }
        assert!(over, "no over-privileged app found");
        // Under-privilege requires a source call without its permission —
        // possible because only ReadPhoneState is auto-added.
        assert!(under, "no under-privileged app found");
    }
}
