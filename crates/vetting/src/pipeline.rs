//! The end-to-end vetting pipeline — the "Amandroid run" of Fig. 1.
//!
//! One app flows through: environment synthesis → call graph → **IDFG
//! construction** (the worklist analysis — the part GDroid accelerates) →
//! taint plugin → report. The pipeline records a modeled time for each
//! stage so Fig. 1's total-vs-IDFG breakdown can be regenerated; per the
//! paper, IDFG construction takes 58–96% of the total.

use crate::registry::SourceSinkRegistry;
use crate::report::VettingReport;
use crate::taint::TaintAnalysis;
use gdroid_analysis::{analyze_app, AppAnalysis, CpuCostModel, FactStore, StoreKind};
use gdroid_apk::App;
use gdroid_core::{gpu_analyze_app, gpu_analyze_app_on, OptConfig};
use gdroid_gpusim::{Device, DeviceConfig, DeviceFault};
use gdroid_icfg::{prepare_app, CallGraph, EnvironmentInfo};
use gdroid_ir::MethodId;
use serde::{Deserialize, Serialize};

/// Which engine constructs the IDFG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Sequential Amandroid-style CPU run (Fig. 1).
    AmandroidCpu,
    /// The multithreaded-C CPU baseline (Fig. 4's CPU side).
    MultithreadedCpu,
    /// Simulated GPU with the given optimizations.
    Gpu(OptConfig),
}

/// Modeled per-stage times, nanoseconds.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct VettingTiming {
    /// Environment synthesis + manifest handling.
    pub envgen_ns: f64,
    /// Call-graph construction and IR loading.
    pub callgraph_ns: f64,
    /// IDFG construction — the worklist analysis.
    pub idfg_ns: f64,
    /// Taint plugin.
    pub taint_ns: f64,
}

impl VettingTiming {
    /// Total pipeline time.
    pub fn total_ns(&self) -> f64 {
        self.envgen_ns + self.callgraph_ns + self.idfg_ns + self.taint_ns
    }

    /// IDFG share of the total — the Fig. 1 ratio.
    pub fn idfg_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0.0 {
            0.0
        } else {
            self.idfg_ns / total
        }
    }
}

/// Everything one vetting run produces.
#[derive(Clone, Debug)]
pub struct VettingOutcome {
    /// The security report.
    pub report: VettingReport,
    /// Modeled stage times.
    pub timing: VettingTiming,
    /// Aggregate worklist telemetry of the IDFG stage.
    pub telemetry: gdroid_analysis::WorklistTelemetry,
    /// Fact-store bytes (Fig. 10's metric) for CPU engines.
    pub store_bytes: usize,
    /// Demand-driven provenance — `Some` iff the run was targeted (sliced).
    pub targeted: Option<crate::targeted::TargetedProvenance>,
}

impl VettingOutcome {
    /// Machine-readable rendering: the report plus timing and telemetry.
    /// Byte-stable for identical outcomes, so CLI and service results can
    /// be compared verbatim. Full-mode outcomes render exactly as before
    /// targeted vetting existed; targeted ones append a `"targeted"`
    /// provenance object.
    pub fn to_json(&self) -> String {
        let targeted = match &self.targeted {
            Some(t) => format!(",\"targeted\":{}", t.to_json()),
            None => String::new(),
        };
        format!(
            "{{\"report\":{},\"timing\":{{\"envgen_ns\":{},\"callgraph_ns\":{},\"idfg_ns\":{},\
             \"taint_ns\":{},\"total_ns\":{}}},\"telemetry\":{{\"nodes_processed\":{},\
             \"rounds\":{}}},\"store_bytes\":{}{}}}",
            self.report.to_json(),
            self.timing.envgen_ns,
            self.timing.callgraph_ns,
            self.timing.idfg_ns,
            self.timing.taint_ns,
            self.timing.total_ns(),
            self.telemetry.nodes_processed,
            self.telemetry.rounds,
            self.store_bytes,
            targeted,
        )
    }
}

/// Vetting outcome plus the underlying per-method analysis state — what a
/// result cache must retain so an updated version of the same app can be
/// re-analyzed incrementally ([`gdroid_analysis::incremental`]).
pub struct VettingRun {
    /// The outcome (report, timing, telemetry).
    pub outcome: VettingOutcome,
    /// The full per-method analysis behind the outcome.
    pub analysis: AppAnalysis,
}

/// Per-operation costs of the non-IDFG stages, Scala-calibrated (the
/// frontend stages run in the original Amandroid regardless of the IDFG
/// engine).
const ENVGEN_NS_PER_COMPONENT: f64 = 2.5e6;
const FRONTEND_NS_PER_STMT: f64 = 60.0e3;
const FRONTEND_NS_PER_METHOD: f64 = 2.5e6;
const TAINT_NS_PER_ROW: f64 = 280.0;

/// An app after the host-side prep stage (environment synthesis + call
/// graph). Splitting prep from execution lets a serving scheduler overlap
/// one app's host-side prep with another app's device execution, and lets
/// several engines vet the same prepared app without re-cloning it.
pub struct PreparedApp {
    /// The app, with environment methods synthesized into its program.
    pub app: App,
    /// Synthesized component environments.
    pub envs: Vec<EnvironmentInfo>,
    /// The call graph over the prepared program.
    pub cg: CallGraph,
    /// Analysis roots (one per environment).
    pub roots: Vec<MethodId>,
    /// Modeled prep-stage times (`envgen_ns` + `callgraph_ns` populated).
    pub prep_timing: VettingTiming,
}

/// Runs the host-side prep stage: environment synthesis + call graph.
pub fn prepare_vetting(mut app: App) -> PreparedApp {
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
    let prep_timing = VettingTiming {
        envgen_ns: ENVGEN_NS_PER_COMPONENT * envs.len() as f64,
        callgraph_ns: FRONTEND_NS_PER_STMT * app.program.total_statements() as f64
            + FRONTEND_NS_PER_METHOD * app.program.methods.len() as f64,
        ..Default::default()
    };
    PreparedApp { app, envs, cg, roots, prep_timing }
}

/// Runs the taint plugin over a finished IDFG and assembles the outcome.
pub(crate) fn finish_vetting(
    prep: &PreparedApp,
    analysis: AppAnalysis,
    idfg_ns: f64,
) -> VettingRun {
    let mut timing = prep.prep_timing;
    timing.idfg_ns = idfg_ns;
    let registry = SourceSinkRegistry::for_program(&prep.app.program);
    let taint = TaintAnalysis::new(
        &prep.app.program,
        &prep.cg,
        &analysis.facts,
        &analysis.spaces,
        &analysis.cfgs,
        &registry,
    );
    let (report, taint_stats) = taint.run();
    timing.taint_ns = TAINT_NS_PER_ROW * taint_stats.rows_read as f64;
    let outcome = VettingOutcome {
        report,
        timing,
        telemetry: analysis.telemetry.clone(),
        store_bytes: analysis.store_bytes,
        targeted: None,
    };
    VettingRun { outcome, analysis }
}

/// Folds a GPU analysis into the CPU-shaped [`AppAnalysis`] a cache or
/// incremental re-analysis consumes (the facts/summaries are bit-identical
/// across engines; only cost models differ).
pub(crate) fn gpu_to_app_analysis(gpu: gdroid_core::GpuAnalysis) -> AppAnalysis {
    let store_bytes = gpu.facts.values().map(FactStore::memory_bytes).sum();
    AppAnalysis {
        spaces: gpu.spaces,
        cfgs: gpu.cfgs,
        facts: gpu.facts,
        summaries: gpu.summaries,
        telemetry: gpu.telemetry,
        per_method: std::collections::HashMap::new(),
        store_bytes,
        store_kind: StoreKind::Matrix,
        schedule: Vec::new(),
    }
}

/// Executes the IDFG + taint stages on a prepared app, borrowing it (no
/// per-engine deep copy), and returns the analysis alongside the outcome.
pub fn execute_vetting_full(prep: &PreparedApp, engine: Engine) -> VettingRun {
    let program = &prep.app.program;
    match engine {
        Engine::AmandroidCpu => {
            let analysis = analyze_app(program, &prep.cg, &prep.roots, StoreKind::Set);
            let idfg_ns = CpuCostModel::amandroid().sequential_ns(&analysis);
            finish_vetting(prep, analysis, idfg_ns)
        }
        Engine::MultithreadedCpu => {
            let analysis = gdroid_analysis::analyze_app_parallel(
                program,
                &prep.cg,
                &prep.roots,
                StoreKind::Set,
            );
            let idfg_ns = CpuCostModel::multithreaded_c().parallel_ns(&analysis);
            finish_vetting(prep, analysis, idfg_ns)
        }
        Engine::Gpu(opts) => {
            let gpu =
                gpu_analyze_app(program, &prep.cg, &prep.roots, DeviceConfig::tesla_p40(), opts);
            let idfg_ns = gpu.stats.total_ns;
            // GPU engines report device memory, not host stores (the
            // historical `store_bytes: 0` contract of `vet_app`).
            let mut run = finish_vetting(prep, gpu_to_app_analysis(gpu), idfg_ns);
            run.outcome.store_bytes = 0;
            run
        }
    }
}

/// Like [`execute_vetting_full`] without retaining the analysis.
pub fn execute_vetting(prep: &PreparedApp, engine: Engine) -> VettingOutcome {
    execute_vetting_full(prep, engine).outcome
}

/// GPU execution on an existing long-lived device — the serving path. An
/// injected [`DeviceFault`] surfaces as `Err` so the caller can retry the
/// job on the same or another device.
pub fn execute_vetting_on_device(
    prep: &PreparedApp,
    device: &mut Device,
    opts: OptConfig,
) -> Result<VettingRun, DeviceFault> {
    let gpu = gpu_analyze_app_on(device, &prep.app.program, &prep.cg, &prep.roots, opts)?;
    let idfg_ns = gpu.stats.total_ns;
    let mut run = finish_vetting(prep, gpu_to_app_analysis(gpu), idfg_ns);
    run.outcome.store_bytes = 0;
    Ok(run)
}

/// Co-resident batch execution of several prepared apps on one device
/// (the serving layer's batch-forming mode): their per-layer launches are
/// interleaved into shared kernels by [`gdroid_core::gpu_analyze_batch_on`]
/// so small apps stop wasting block slots. Each returned [`VettingRun`] —
/// report, timing, telemetry, the whole outcome JSON — is bit-identical
/// to [`execute_vetting_on_device`] for the same app; the returned
/// [`gdroid_core::BatchStats`] carries the shared-pipeline makespan and
/// coresidency. An injected fault aborts the whole batch, and the caller
/// retries the member jobs individually.
pub fn execute_vetting_batch_on_device(
    preps: &[&PreparedApp],
    device: &mut Device,
    opts: OptConfig,
) -> Result<(Vec<VettingRun>, gdroid_core::BatchStats), DeviceFault> {
    let apps: Vec<gdroid_core::BatchApp<'_>> = preps
        .iter()
        .map(|p| gdroid_core::BatchApp { program: &p.app.program, cg: &p.cg, roots: &p.roots })
        .collect();
    let analysis = gdroid_core::gpu_analyze_batch_on(device, &apps, opts)?;
    let runs = analysis
        .apps
        .into_iter()
        .zip(preps)
        .map(|(gpu, prep)| {
            let idfg_ns = gpu.stats.total_ns;
            let mut run = finish_vetting(prep, gpu_to_app_analysis(gpu), idfg_ns);
            run.outcome.store_bytes = 0;
            run
        })
        .collect();
    Ok((runs, analysis.batch))
}

/// Incremental re-vetting of an updated app: methods not in `changed`
/// must be body-identical to the run that produced `prev` (see
/// [`gdroid_analysis::analyze_app_incremental`]). Facts — and therefore
/// the report — are bit-identical to a from-scratch run; only the cost
/// model reflects the reuse.
pub fn execute_vetting_incremental(
    prep: &PreparedApp,
    prev: &AppAnalysis,
    changed: &[MethodId],
) -> (VettingRun, gdroid_analysis::IncrementalStats) {
    let (analysis, stats) = gdroid_analysis::analyze_app_incremental(
        &prep.app.program,
        &prep.cg,
        &prep.roots,
        prev,
        changed,
    );
    let full_ns = CpuCostModel::amandroid().sequential_ns(&analysis);
    let touched = stats.resolved.max(1) as f64;
    let idfg_ns = full_ns * touched / (stats.resolved + stats.reused).max(1) as f64;
    (finish_vetting(prep, analysis, idfg_ns), stats)
}

/// Vets one app end to end. The `app` must be freshly generated (not yet
/// prepared); the pipeline synthesizes environments itself.
pub fn vet_app(app: App, engine: Engine) -> VettingOutcome {
    execute_vetting(&prepare_vetting(app), engine)
}

/// Emits the pipeline's four stage spans — envgen, callgraph, idfg,
/// taint — back to back in modeled time starting at `base_ns`, and
/// returns the modeled end of the last stage. Works for any engine: the
/// stages are the modeled [`VettingTiming`], not wall clock.
pub fn trace_stage_spans(
    tracer: &gdroid_trace::Tracer,
    timing: &VettingTiming,
    base_ns: u64,
    track: u32,
) -> u64 {
    let mut t = base_ns;
    for (name, ns) in [
        ("envgen", timing.envgen_ns),
        ("callgraph", timing.callgraph_ns),
        ("idfg", timing.idfg_ns),
        ("taint", timing.taint_ns),
    ] {
        let dur = ns.round() as u64;
        tracer.span("vetting", name, t, dur, track, vec![]);
        t += dur;
    }
    t
}

/// GPU execution with tracing: a fresh device records its kernel-launch
/// and driver events into `tracer`, with its modeled clock advanced past
/// the prep stages so those events nest inside the `idfg` stage span;
/// the four stage spans are emitted once the run finishes. With a
/// disabled tracer this is exactly [`execute_vetting_full`] on a GPU
/// engine (asserted in tests and the tier-1 trace gate).
pub fn execute_vetting_gpu_traced(
    prep: &PreparedApp,
    opts: OptConfig,
    tracer: &gdroid_trace::Tracer,
) -> VettingRun {
    let mut device = Device::new(DeviceConfig::tesla_p40());
    device.set_tracer(tracer.clone());
    let prep_ns = prep.prep_timing.envgen_ns + prep.prep_timing.callgraph_ns;
    device.advance_clock(prep_ns.round() as u64);
    let gpu = gpu_analyze_app_on(&mut device, &prep.app.program, &prep.cg, &prep.roots, opts)
        .expect("a fresh device has no fault plan");
    let idfg_ns = gpu.stats.total_ns;
    let mut run = finish_vetting(prep, gpu_to_app_analysis(gpu), idfg_ns);
    run.outcome.store_bytes = 0;
    if tracer.enabled() {
        trace_stage_spans(tracer, &run.outcome.timing, 0, 0);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_apk::{generate_app, GenConfig};

    #[test]
    fn pipeline_produces_report_and_timing() {
        let app = generate_app(0, 6100, &GenConfig::tiny());
        let outcome = vet_app(app, Engine::AmandroidCpu);
        assert!(outcome.timing.total_ns() > 0.0);
        assert!(outcome.timing.idfg_ns > 0.0);
        assert!(outcome.telemetry.nodes_processed > 0);
        assert!(outcome.store_bytes > 0);
        let f = outcome.timing.idfg_fraction();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn engines_agree_on_verdict() {
        for seed in [6200u64, 6201, 6202] {
            // One prepared app serves every engine — no per-engine clone.
            let prep = prepare_vetting(generate_app(0, seed, &GenConfig::tiny()));
            let verdicts: Vec<_> = [
                Engine::AmandroidCpu,
                Engine::MultithreadedCpu,
                Engine::Gpu(OptConfig::gdroid()),
                Engine::Gpu(OptConfig::plain()),
            ]
            .into_iter()
            .map(|e| {
                let o = execute_vetting(&prep, e);
                (o.report.verdict, o.report.leaks.len())
            })
            .collect();
            for pair in verdicts.windows(2) {
                assert_eq!(pair[0], pair[1], "engines disagree on seed {seed}");
            }
        }
    }

    #[test]
    fn staged_pipeline_matches_vet_app() {
        let prep = prepare_vetting(generate_app(0, 6400, &GenConfig::tiny()));
        let staged = execute_vetting(&prep, Engine::AmandroidCpu);
        let whole = vet_app(generate_app(0, 6400, &GenConfig::tiny()), Engine::AmandroidCpu);
        assert_eq!(staged.report.verdict, whole.report.verdict);
        assert_eq!(staged.report.leaks, whole.report.leaks);
        assert_eq!(
            staged.to_json(),
            whole.to_json(),
            "staged and whole runs must render identically"
        );
    }

    #[test]
    fn device_execution_matches_fresh_device_path() {
        use gdroid_gpusim::{Device, DeviceConfig};
        let prep = prepare_vetting(generate_app(0, 6401, &GenConfig::tiny()));
        let mut device = Device::new(DeviceConfig::tesla_p40());
        let on_device = execute_vetting_on_device(&prep, &mut device, OptConfig::gdroid())
            .expect("no fault plan");
        let fresh = execute_vetting(&prep, Engine::Gpu(OptConfig::gdroid()));
        assert_eq!(on_device.outcome.report.to_json(), fresh.report.to_json());
        assert_eq!(on_device.outcome.timing.idfg_ns, fresh.timing.idfg_ns);
    }

    #[test]
    fn batch_execution_matches_solo_byte_for_byte() {
        use gdroid_gpusim::{Device, DeviceConfig};
        let preps: Vec<PreparedApp> = [6403u64, 6404, 6405]
            .iter()
            .map(|&s| prepare_vetting(generate_app(0, s, &GenConfig::tiny())))
            .collect();
        let refs: Vec<&PreparedApp> = preps.iter().collect();
        let mut device = Device::new(DeviceConfig::tesla_p40());
        let (runs, batch) =
            execute_vetting_batch_on_device(&refs, &mut device, OptConfig::gdroid())
                .expect("no fault plan");
        assert_eq!(runs.len(), preps.len());
        let mut solo_sum = 0.0f64;
        for (prep, run) in preps.iter().zip(&runs) {
            let mut solo_dev = Device::new(DeviceConfig::tesla_p40());
            let solo = execute_vetting_on_device(prep, &mut solo_dev, OptConfig::gdroid())
                .expect("no fault plan");
            assert_eq!(run.outcome.to_json(), solo.outcome.to_json());
            solo_sum += solo.outcome.timing.idfg_ns;
        }
        assert!(batch.makespan_ns <= solo_sum, "{} > {}", batch.makespan_ns, solo_sum);
        assert!(batch.launches > 0);
    }

    #[test]
    fn outcome_json_is_stable_and_wellformed() {
        let prep = prepare_vetting(generate_app(0, 6402, &GenConfig::tiny()));
        let a = execute_vetting(&prep, Engine::AmandroidCpu).to_json();
        let b = execute_vetting(&prep, Engine::AmandroidCpu).to_json();
        assert_eq!(a, b, "identical runs must serialize identically");
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"report\":"));
        assert!(a.contains("\"idfg_ns\":"));
    }

    #[test]
    fn traced_run_matches_untraced_and_trace_is_deterministic() {
        let prep = prepare_vetting(generate_app(0, 6500, &GenConfig::tiny()));
        let untraced = execute_vetting(&prep, Engine::Gpu(OptConfig::gdroid()));
        let run_traced = || {
            let tracer = gdroid_trace::Tracer::enabled_new();
            let run = execute_vetting_gpu_traced(&prep, OptConfig::gdroid(), &tracer);
            (run.outcome.to_json(), tracer.to_chrome_json())
        };
        let (json_a, trace_a) = run_traced();
        let (json_b, trace_b) = run_traced();
        assert_eq!(json_a, untraced.to_json(), "tracing must not perturb the outcome");
        assert_eq!(json_a, json_b);
        assert_eq!(trace_a, trace_b, "same seed must give a byte-identical trace");
        for cat in ["gpusim", "driver", "vetting"] {
            assert!(trace_a.contains(&format!("\"cat\":\"{cat}\"")), "missing layer {cat}");
        }
        // Disabled tracer records nothing and still matches.
        let off = gdroid_trace::Tracer::disabled();
        let run = execute_vetting_gpu_traced(&prep, OptConfig::gdroid(), &off);
        assert_eq!(run.outcome.to_json(), json_a);
        assert!(off.events().is_empty());
    }

    #[test]
    fn multithreaded_cpu_is_faster_than_amandroid() {
        let app = generate_app(0, 6300, &GenConfig::small());
        let scala = vet_app(app, Engine::AmandroidCpu).timing.idfg_ns;
        let app = generate_app(0, 6300, &GenConfig::small());
        let mt = vet_app(app, Engine::MultithreadedCpu).timing.idfg_ns;
        assert!(mt < scala, "mt {mt} >= scala {scala}");
    }
}
