//! The end-to-end vetting pipeline — the "Amandroid run" of Fig. 1.
//!
//! One app flows through: environment synthesis → call graph → **IDFG
//! construction** (the worklist analysis — the part GDroid accelerates) →
//! taint plugin → report. The pipeline records a modeled time for each
//! stage so Fig. 1's total-vs-IDFG breakdown can be regenerated; per the
//! paper, IDFG construction takes 58–96% of the total.

use crate::registry::SourceSinkRegistry;
use crate::report::VettingReport;
use crate::taint::TaintAnalysis;
use gdroid_analysis::{analyze_app, AppAnalysis, CpuCostModel, StoreKind};
use gdroid_apk::App;
use gdroid_core::{gpu_analyze_app, GpuAnalysis, OptConfig};
use gdroid_gpusim::DeviceConfig;
use gdroid_icfg::prepare_app;
use gdroid_ir::MethodId;
use serde::{Deserialize, Serialize};

/// Which engine constructs the IDFG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Sequential Amandroid-style CPU run (Fig. 1).
    AmandroidCpu,
    /// The multithreaded-C CPU baseline (Fig. 4's CPU side).
    MultithreadedCpu,
    /// Simulated GPU with the given optimizations.
    Gpu(OptConfig),
}

/// Modeled per-stage times, nanoseconds.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct VettingTiming {
    /// Environment synthesis + manifest handling.
    pub envgen_ns: f64,
    /// Call-graph construction and IR loading.
    pub callgraph_ns: f64,
    /// IDFG construction — the worklist analysis.
    pub idfg_ns: f64,
    /// Taint plugin.
    pub taint_ns: f64,
}

impl VettingTiming {
    /// Total pipeline time.
    pub fn total_ns(&self) -> f64 {
        self.envgen_ns + self.callgraph_ns + self.idfg_ns + self.taint_ns
    }

    /// IDFG share of the total — the Fig. 1 ratio.
    pub fn idfg_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0.0 {
            0.0
        } else {
            self.idfg_ns / total
        }
    }
}

/// Everything one vetting run produces.
pub struct VettingOutcome {
    /// The security report.
    pub report: VettingReport,
    /// Modeled stage times.
    pub timing: VettingTiming,
    /// Aggregate worklist telemetry of the IDFG stage.
    pub telemetry: gdroid_analysis::WorklistTelemetry,
    /// Fact-store bytes (Fig. 10's metric) for CPU engines.
    pub store_bytes: usize,
}

/// Per-operation costs of the non-IDFG stages, Scala-calibrated (the
/// frontend stages run in the original Amandroid regardless of the IDFG
/// engine).
const ENVGEN_NS_PER_COMPONENT: f64 = 2.5e6;
const FRONTEND_NS_PER_STMT: f64 = 60.0e3;
const FRONTEND_NS_PER_METHOD: f64 = 2.5e6;
const TAINT_NS_PER_ROW: f64 = 280.0;

/// Vets one app end to end. The `app` must be freshly generated (not yet
/// prepared); the pipeline synthesizes environments itself.
pub fn vet_app(mut app: App, engine: Engine) -> VettingOutcome {
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();

    let mut timing = VettingTiming {
        envgen_ns: ENVGEN_NS_PER_COMPONENT * envs.len() as f64,
        callgraph_ns: FRONTEND_NS_PER_STMT * app.program.total_statements() as f64
            + FRONTEND_NS_PER_METHOD * app.program.methods.len() as f64,
        ..Default::default()
    };

    enum Run {
        Cpu(AppAnalysis),
        Gpu(GpuAnalysis),
    }

    let run = match engine {
        Engine::AmandroidCpu => {
            let analysis = analyze_app(&app.program, &cg, &roots, StoreKind::Set);
            timing.idfg_ns = CpuCostModel::amandroid().sequential_ns(&analysis);
            Run::Cpu(analysis)
        }
        Engine::MultithreadedCpu => {
            let analysis =
                gdroid_analysis::analyze_app_parallel(&app.program, &cg, &roots, StoreKind::Set);
            timing.idfg_ns = CpuCostModel::multithreaded_c().parallel_ns(&analysis);
            Run::Cpu(analysis)
        }
        Engine::Gpu(opts) => {
            let analysis =
                gpu_analyze_app(&app.program, &cg, &roots, DeviceConfig::tesla_p40(), opts);
            timing.idfg_ns = analysis.stats.total_ns;
            Run::Gpu(analysis)
        }
    };

    let registry = SourceSinkRegistry::for_program(&app.program);
    let (facts, spaces, cfgs, telemetry, store_bytes) = match &run {
        Run::Cpu(a) => (&a.facts, &a.spaces, &a.cfgs, a.telemetry.clone(), a.store_bytes),
        Run::Gpu(a) => (&a.facts, &a.spaces, &a.cfgs, a.telemetry.clone(), 0),
    };
    let engine_taint = TaintAnalysis::new(&app.program, &cg, facts, spaces, cfgs, &registry);
    let (report, taint_stats) = engine_taint.run();
    timing.taint_ns = TAINT_NS_PER_ROW * taint_stats.rows_read as f64;

    VettingOutcome { report, timing, telemetry, store_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_apk::{generate_app, GenConfig};

    #[test]
    fn pipeline_produces_report_and_timing() {
        let app = generate_app(0, 6100, &GenConfig::tiny());
        let outcome = vet_app(app, Engine::AmandroidCpu);
        assert!(outcome.timing.total_ns() > 0.0);
        assert!(outcome.timing.idfg_ns > 0.0);
        assert!(outcome.telemetry.nodes_processed > 0);
        assert!(outcome.store_bytes > 0);
        let f = outcome.timing.idfg_fraction();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn engines_agree_on_verdict() {
        for seed in [6200u64, 6201, 6202] {
            let verdicts: Vec<_> = [
                Engine::AmandroidCpu,
                Engine::MultithreadedCpu,
                Engine::Gpu(OptConfig::gdroid()),
                Engine::Gpu(OptConfig::plain()),
            ]
            .into_iter()
            .map(|e| {
                let app = generate_app(0, seed, &GenConfig::tiny());
                let o = vet_app(app, e);
                (o.report.verdict, o.report.leaks.len())
            })
            .collect();
            for pair in verdicts.windows(2) {
                assert_eq!(pair[0], pair[1], "engines disagree on seed {seed}");
            }
        }
    }

    #[test]
    fn multithreaded_cpu_is_faster_than_amandroid() {
        let app = generate_app(0, 6300, &GenConfig::small());
        let scala = vet_app(app, Engine::AmandroidCpu).timing.idfg_ns;
        let app = generate_app(0, 6300, &GenConfig::small());
        let mt = vet_app(app, Engine::MultithreadedCpu).timing.idfg_ns;
        assert!(mt < scala, "mt {mt} >= scala {scala}");
    }
}
