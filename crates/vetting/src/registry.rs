//! Source/sink registry: resolves the modeled Android API's taint roles
//! against a concrete app's interned symbols.

use gdroid_apk::{builtin_api_roles, ApiRole};
use gdroid_ir::{Program, Signature, Symbol};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A taint source identifier (index into the registry's source list).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SourceId(pub u16);

/// The registry, resolved for one app.
#[derive(Clone, Debug, Default)]
pub struct SourceSinkRegistry {
    /// `(class, name) → source id` for source APIs.
    sources: HashMap<(Symbol, Symbol), SourceId>,
    /// Source display names, indexed by [`SourceId`].
    pub source_names: Vec<String>,
    /// `(class, name)` pairs of sink APIs.
    sinks: HashMap<(Symbol, Symbol), String>,
}

impl SourceSinkRegistry {
    /// Builds the registry for an app, resolving API names through its
    /// interner. APIs the app never mentions are simply absent.
    pub fn for_program(program: &Program) -> SourceSinkRegistry {
        let mut reg = SourceSinkRegistry::default();
        for (cls, name, role) in builtin_api_roles() {
            let (Some(c), Some(n)) = (program.interner.get(cls), program.interner.get(name)) else {
                continue;
            };
            match role {
                ApiRole::Source => {
                    let id = SourceId(reg.source_names.len() as u16);
                    reg.source_names.push(format!("{cls}.{name}"));
                    reg.sources.insert((c, n), id);
                }
                ApiRole::Sink => {
                    reg.sinks.insert((c, n), format!("{cls}.{name}"));
                }
                ApiRole::Neutral => {}
            }
        }
        reg
    }

    /// Source id of a call signature, if it is a source.
    pub fn source_of(&self, sig: &Signature) -> Option<SourceId> {
        self.sources.get(&(sig.class, sig.name)).copied()
    }

    /// Sink name of a call signature, if it is a sink.
    pub fn sink_of(&self, sig: &Signature) -> Option<&str> {
        self.sinks.get(&(sig.class, sig.name)).map(String::as_str)
    }

    /// Number of resolved sources.
    pub fn source_count(&self) -> usize {
        self.source_names.len()
    }

    /// Number of resolved sinks.
    pub fn sink_count(&self) -> usize {
        self.sinks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_ir::JType;

    #[test]
    fn registry_resolves_known_apis() {
        let app = generate_app(0, 808, &GenConfig::tiny());
        let reg = SourceSinkRegistry::for_program(&app.program);
        // The framework installs all API classes, so everything resolves.
        assert!(reg.source_count() >= 5);
        assert!(reg.sink_count() >= 5);
    }

    #[test]
    fn source_and_sink_lookup() {
        let app = generate_app(0, 809, &GenConfig::tiny());
        let reg = SourceSinkRegistry::for_program(&app.program);
        let p = &app.program;
        let tm = p.interner.get("android/telephony/TelephonyManager").unwrap();
        let gdi = p.interner.get("getDeviceId").unwrap();
        let sig = Signature::new(tm, gdi, vec![], JType::Void);
        assert!(reg.source_of(&sig).is_some());
        assert!(reg.sink_of(&sig).is_none());

        let log = p.interner.get("android/util/Log").unwrap();
        let d = p.interner.get("d").unwrap();
        let sig = Signature::new(log, d, vec![], JType::Void);
        assert!(reg.sink_of(&sig).is_some());
        assert!(reg.source_of(&sig).is_none());
    }

    #[test]
    fn unknown_method_is_neither() {
        let app = generate_app(0, 810, &GenConfig::tiny());
        let reg = SourceSinkRegistry::for_program(&app.program);
        let p = &app.program;
        let cls = p.classes.iter().next().unwrap().name;
        let sig = Signature::new(cls, cls, vec![], JType::Void);
        assert!(reg.source_of(&sig).is_none());
        assert!(reg.sink_of(&sig).is_none());
    }
}
