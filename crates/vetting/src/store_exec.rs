//! Summary-store-aware vetting execution.
//!
//! The warm-corpus path: before the IDFG stage runs, every reachable
//! method's canonical hash is looked up in a shared
//! [`gdroid_sumstore::SumStore`]. Hits whose whole internal-callee
//! subtree also hit are *pre-solved* — their summaries and per-node fact
//! matrices are injected and they never enter a kernel launch (GPU) or
//! the worklist (CPU). After the run, every freshly solved method is
//! inserted so the next app that bundles the same code reuses it.
//!
//! Correctness contract: the resulting facts, summaries, and taint
//! verdicts are byte-identical to a store-disabled run (tier-1 tested);
//! only the modeled IDFG time shrinks.

use crate::pipeline::{
    execute_vetting_full, finish_vetting, gpu_to_app_analysis, trace_stage_spans, Engine,
    PreparedApp, VettingRun,
};
use gdroid_analysis::{
    analyze_app_presolved, CpuCostModel, Geometry, MatrixStore, MethodSpace, MethodSummary,
    StoreKind,
};
use gdroid_core::gpu_analyze_app_presolved_on;
use gdroid_gpusim::{Device, DeviceConfig, DeviceFault};
use gdroid_icfg::Cfg;
use gdroid_ir::{MethodId, Program};
use gdroid_sumstore::{canonical_hashes, RelocSummary, StoredMethod, SumStore};
use std::collections::HashMap;

/// How one run used the summary store.
#[derive(Clone, Debug, Default)]
pub struct StoreUse {
    /// Methods pre-solved from the store (never entered the solver).
    pub hits: u64,
    /// Methods solved in this run (and inserted afterwards).
    pub misses: u64,
    /// The pre-solved methods, ascending.
    pub hit_methods: Vec<MethodId>,
    /// The solved methods, ascending.
    pub missed_methods: Vec<MethodId>,
}

/// Looks up every reachable method and returns the *closed* pre-solved
/// set plus the canonical hashes (for post-run insertion).
///
/// A hit is only usable when its entire internal-callee subtree also
/// hit: cut subtrees are never scheduled, so a pre-solved method with an
/// unsolved callee would leave that callee's summary forever missing.
/// The canonical hash makes the closure *almost* free — a method's hash
/// folds its callees' hashes, so a subtree that hit once tends to hit
/// wholesale — but geometry or relocation failures can still punch
/// holes, hence the explicit greatest-fixpoint pass.
pub(crate) fn collect_presolved(
    prep: &PreparedApp,
    store: &SumStore,
) -> (HashMap<MethodId, (MethodSummary, MatrixStore)>, HashMap<MethodId, u128>) {
    let program = &prep.app.program;
    let hashes = canonical_hashes(program, &prep.cg, &prep.roots);
    let mut hits: HashMap<MethodId, (MethodSummary, MatrixStore)> = HashMap::new();
    for (&mid, &key) in &hashes {
        let Some(stored) = store.lookup(key) else { continue };
        let space = MethodSpace::build(program, mid);
        let cfg = Cfg::build(&program.methods[mid]);
        let geometry = Geometry::of(&space);
        let shape_ok = stored.slots as usize == geometry.slots
            && stored.insts as usize == geometry.insts
            && stored.nodes as usize == cfg.len();
        let summary = if shape_ok { stored.summary.instantiate(program) } else { None };
        let facts = MatrixStore::from_flat_words(geometry, cfg.len(), &stored.words);
        match (summary, facts) {
            (Some(s), Some(f)) => {
                hits.insert(mid, (s, f));
            }
            _ => store.note_reloc_failure(),
        }
    }
    // Greatest fixpoint: drop hits until every remaining hit's internal
    // callees are all hits themselves (self-recursive hits survive).
    loop {
        let violators: Vec<MethodId> = hits
            .keys()
            .copied()
            .filter(|&m| prep.cg.callees_of(m).iter().any(|c| !hits.contains_key(c)))
            .collect();
        if violators.is_empty() {
            break;
        }
        for v in violators {
            hits.remove(&v);
        }
    }
    (hits, hashes)
}

/// Inserts every freshly solved method into the store and assembles the
/// [`StoreUse`] accounting. With `insertable: Some(set)`, only methods in
/// the set are written — the targeted path restricts insertion to the
/// slice's *exact* members, whose facts and summaries are bit-identical
/// to a full run (partial roots are computed against pruned call sites
/// and must never poison the store under the canonical hash).
pub(crate) fn absorb_into_store(
    program: &Program,
    store: &SumStore,
    hashes: &HashMap<MethodId, u128>,
    presolved: &HashMap<MethodId, (MethodSummary, MatrixStore)>,
    analysis: &gdroid_analysis::AppAnalysis,
    insertable: Option<&std::collections::HashSet<MethodId>>,
) -> StoreUse {
    let mut hit_methods: Vec<MethodId> = presolved.keys().copied().collect();
    hit_methods.sort_unstable();
    let mut missed_methods: Vec<MethodId> =
        hashes.keys().copied().filter(|m| !presolved.contains_key(m)).collect();
    missed_methods.sort_unstable();
    for &mid in &missed_methods {
        if insertable.is_some_and(|set| !set.contains(&mid)) {
            continue;
        }
        let (summary, facts, space, cfg) = match (
            analysis.summaries.get(&mid),
            analysis.facts.get(&mid),
            analysis.spaces.get(&mid),
            analysis.cfgs.get(&mid),
        ) {
            (Some(s), Some(f), Some(sp), Some(c)) => (s, f, sp, c),
            _ => continue,
        };
        let geometry = Geometry::of(space);
        store.insert(
            hashes[&mid],
            StoredMethod {
                summary: RelocSummary::extract(summary, program),
                slots: geometry.slots as u32,
                insts: geometry.insts as u32,
                nodes: cfg.len() as u32,
                words: facts.flat_words(),
            },
        );
    }
    StoreUse {
        hits: hit_methods.len() as u64,
        misses: missed_methods.len() as u64,
        hit_methods,
        missed_methods,
    }
}

/// [`execute_vetting_full`] backed by a summary store.
///
/// Supported engines: [`Engine::AmandroidCpu`] (pre-solved sequential
/// solver) and [`Engine::Gpu`] (pre-solved leaves never launch). The
/// multithreaded CPU baseline has no pre-solved variant; it runs the
/// plain pipeline and only *feeds* the store (every method a miss).
pub fn execute_vetting_full_with_store(
    prep: &PreparedApp,
    engine: Engine,
    store: &SumStore,
) -> (VettingRun, StoreUse) {
    let program = &prep.app.program;
    let (presolved, hashes) = match engine {
        Engine::MultithreadedCpu => {
            (HashMap::new(), canonical_hashes(program, &prep.cg, &prep.roots))
        }
        _ => collect_presolved(prep, store),
    };
    let run = match engine {
        Engine::AmandroidCpu => {
            let analysis =
                analyze_app_presolved(program, &prep.cg, &prep.roots, StoreKind::Set, &presolved);
            let idfg_ns = CpuCostModel::amandroid().sequential_ns(&analysis);
            finish_vetting(prep, analysis, idfg_ns)
        }
        Engine::MultithreadedCpu => execute_vetting_full(prep, engine),
        Engine::Gpu(opts) => {
            let mut device = Device::new(DeviceConfig::tesla_p40());
            let gpu = gpu_analyze_app_presolved_on(
                &mut device,
                program,
                &prep.cg,
                &prep.roots,
                opts,
                &presolved,
            )
            .expect("a fresh device has no fault plan");
            let idfg_ns = gpu.stats.total_ns;
            let mut run = finish_vetting(prep, gpu_to_app_analysis(gpu), idfg_ns);
            run.outcome.store_bytes = 0;
            run
        }
    };
    let store_use = absorb_into_store(program, store, &hashes, &presolved, &run.analysis, None);
    (run, store_use)
}

/// [`crate::execute_vetting_gpu_traced`] backed by a summary store: the
/// traced GPU path with pre-solved leaves. Store hits short-circuit whole
/// subtrees out of the kernel schedule, so the trace records them as one
/// `sumstore` instant (hit/miss counts and the hit methods) at the start
/// of the IDFG stage rather than as launch spans.
pub fn execute_vetting_gpu_traced_with_store(
    prep: &PreparedApp,
    opts: gdroid_core::OptConfig,
    store: &SumStore,
    tracer: &gdroid_trace::Tracer,
) -> (VettingRun, StoreUse) {
    let program = &prep.app.program;
    let (presolved, hashes) = collect_presolved(prep, store);
    let mut device = Device::new(DeviceConfig::tesla_p40());
    device.set_tracer(tracer.clone());
    let prep_ns = prep.prep_timing.envgen_ns + prep.prep_timing.callgraph_ns;
    device.advance_clock(prep_ns.round() as u64);
    if tracer.enabled() {
        tracer.instant(
            "vetting",
            "sumstore",
            device.clock_ns(),
            0,
            vec![
                ("hits", (presolved.len() as u64).into()),
                ("candidates", (hashes.len() as u64).into()),
                ("package", prep.app.name.as_str().into()),
            ],
        );
    }
    let gpu =
        gpu_analyze_app_presolved_on(&mut device, program, &prep.cg, &prep.roots, opts, &presolved)
            .expect("a fresh device has no fault plan");
    let idfg_ns = gpu.stats.total_ns;
    let mut run = finish_vetting(prep, gpu_to_app_analysis(gpu), idfg_ns);
    run.outcome.store_bytes = 0;
    if tracer.enabled() {
        trace_stage_spans(tracer, &run.outcome.timing, 0, 0);
    }
    let store_use = absorb_into_store(program, store, &hashes, &presolved, &run.analysis, None);
    (run, store_use)
}

/// [`crate::execute_vetting_on_device`] backed by a summary store — the
/// serving path. Store lookups happen before the device is touched; an
/// injected fault surfaces as `Err` and the retry re-resolves against
/// the store (counters may count the lookups twice; they are
/// diagnostics, not accounting).
pub fn execute_vetting_on_device_with_store(
    prep: &PreparedApp,
    device: &mut Device,
    opts: gdroid_core::OptConfig,
    store: &SumStore,
) -> Result<(VettingRun, StoreUse), DeviceFault> {
    let program = &prep.app.program;
    let (presolved, hashes) = collect_presolved(prep, store);
    let gpu =
        gpu_analyze_app_presolved_on(device, program, &prep.cg, &prep.roots, opts, &presolved)?;
    let idfg_ns = gpu.stats.total_ns;
    let mut run = finish_vetting(prep, gpu_to_app_analysis(gpu), idfg_ns);
    run.outcome.store_bytes = 0;
    let store_use = absorb_into_store(program, store, &hashes, &presolved, &run.analysis, None);
    Ok((run, store_use))
}

/// [`crate::execute_vetting_targeted_on_device`] backed by a summary
/// store: pre-solved hits are restricted to slice members (the
/// intersection stays closed under slice-internal callee edges, since the
/// presolved set is closed under *all* callee edges), and post-run
/// insertion is restricted to the slice's exact members so partial-root
/// results never enter the store.
pub fn execute_vetting_targeted_on_device_with_store(
    prep: &PreparedApp,
    device: &mut Device,
    opts: gdroid_core::OptConfig,
    store: &SumStore,
) -> Result<(VettingRun, StoreUse), DeviceFault> {
    let program = &prep.app.program;
    let slice = crate::targeted::compute_vetting_slice(prep);
    let (all_presolved, hashes) = collect_presolved(prep, store);
    let presolved: HashMap<MethodId, (MethodSummary, MatrixStore)> =
        all_presolved.into_iter().filter(|(m, _)| slice.members.contains(m)).collect();
    let gpu = gdroid_core::gpu_analyze_app_sliced_presolved_on(
        device,
        program,
        &prep.cg,
        &prep.roots,
        opts,
        &presolved,
        &slice.members,
    )?;
    let idfg_ns = gpu.stats.total_ns;
    let mut run = finish_vetting(prep, gpu_to_app_analysis(gpu), idfg_ns);
    run.outcome.store_bytes = 0;
    run.outcome.targeted = Some(crate::targeted::TargetedProvenance::of(&slice));
    let store_use =
        absorb_into_store(program, store, &hashes, &presolved, &run.analysis, Some(&slice.exact));
    Ok((run, store_use))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare_vetting;
    use gdroid_analysis::FactStore;
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_core::OptConfig;

    fn facts_digest(analysis: &gdroid_analysis::AppAnalysis) -> Vec<(MethodId, Vec<u64>)> {
        let mut out: Vec<(MethodId, Vec<u64>)> =
            analysis.facts.iter().map(|(&m, f)| (m, f.flat_words())).collect();
        out.sort();
        out
    }

    #[test]
    fn warm_run_hits_and_matches_cold_and_disabled() {
        let cfg = GenConfig::tiny().with_libraries(2, 2);
        let engine = Engine::Gpu(OptConfig::gdroid());
        let store = SumStore::new();
        let prep_a = prepare_vetting(generate_app(0, 9500, &cfg));
        let prep_b = prepare_vetting(generate_app(1, 9501, &cfg));

        let disabled_b = execute_vetting_full(&prep_b, engine);
        let (cold_a, use_a) = execute_vetting_full_with_store(&prep_a, engine, &store);
        assert_eq!(use_a.hits, 0, "fresh store cannot hit");
        assert!(use_a.misses > 0);
        assert!(!cold_a.analysis.facts.is_empty());

        // App B bundles the same library packages: warm run must hit.
        let (warm_b, use_b) = execute_vetting_full_with_store(&prep_b, engine, &store);
        assert!(use_b.hits > 0, "no store hits on a shared-library corpus");
        assert_eq!(
            warm_b.outcome.report.to_json(),
            disabled_b.outcome.report.to_json(),
            "verdict changed with the store enabled"
        );
        assert_eq!(
            facts_digest(&warm_b.analysis),
            facts_digest(&disabled_b.analysis),
            "IDFG facts differ between warm and disabled runs"
        );
        // Pre-solved leaves skip launches: modeled IDFG time shrinks.
        assert!(
            warm_b.outcome.timing.idfg_ns < disabled_b.outcome.timing.idfg_ns,
            "warm {} >= disabled {}",
            warm_b.outcome.timing.idfg_ns,
            disabled_b.outcome.timing.idfg_ns
        );
    }

    #[test]
    fn cpu_engine_agrees_with_store() {
        let cfg = GenConfig::tiny().with_libraries(2, 2);
        let store = SumStore::new();
        let prep_a = prepare_vetting(generate_app(0, 9502, &cfg));
        let prep_b = prepare_vetting(generate_app(1, 9503, &cfg));
        let disabled = execute_vetting_full(&prep_b, Engine::AmandroidCpu);
        let (_, _) = execute_vetting_full_with_store(&prep_a, Engine::AmandroidCpu, &store);
        let (warm, used) = execute_vetting_full_with_store(&prep_b, Engine::AmandroidCpu, &store);
        assert!(used.hits > 0);
        assert_eq!(warm.outcome.report.to_json(), disabled.outcome.report.to_json());
        assert_eq!(facts_digest(&warm.analysis), facts_digest(&disabled.analysis));
    }

    #[test]
    fn targeted_with_store_agrees_and_never_absorbs_partial_roots() {
        let cfg = GenConfig::tiny().with_libraries(2, 2);
        let store = SumStore::new();
        let prep_a = prepare_vetting(generate_app(0, 9505, &cfg));
        let prep_b = prepare_vetting(generate_app(1, 9506, &cfg));
        let mut device = Device::new(DeviceConfig::tesla_p40());

        // Cold targeted run populates the store with exact members only.
        let slice_a = crate::targeted::compute_vetting_slice(&prep_a);
        let (run_a, use_a) = execute_vetting_targeted_on_device_with_store(
            &prep_a,
            &mut device,
            OptConfig::gdroid(),
            &store,
        )
        .expect("no fault plan");
        assert!(run_a.outcome.targeted.is_some());
        let hashes_a = canonical_hashes(&prep_a.app.program, &prep_a.cg, &prep_a.roots);
        for root in &slice_a.roots {
            assert!(
                store.lookup(hashes_a[root]).is_none(),
                "partial root {root:?} leaked into the store"
            );
        }
        assert_eq!(use_a.hits, 0);

        // A warm targeted run agrees with a store-free full run.
        let disabled = execute_vetting_full(&prep_b, Engine::Gpu(OptConfig::gdroid()));
        let (warm_b, _) = execute_vetting_targeted_on_device_with_store(
            &prep_b,
            &mut device,
            OptConfig::gdroid(),
            &store,
        )
        .expect("no fault plan");
        assert_eq!(warm_b.outcome.report.to_json(), disabled.outcome.report.to_json());
    }

    #[test]
    fn same_app_twice_presolves_everything_reachable() {
        let cfg = GenConfig::tiny();
        let store = SumStore::new();
        let prep = prepare_vetting(generate_app(0, 9504, &cfg));
        let (_, first) =
            execute_vetting_full_with_store(&prep, Engine::Gpu(OptConfig::gdroid()), &store);
        let (again, second) =
            execute_vetting_full_with_store(&prep, Engine::Gpu(OptConfig::gdroid()), &store);
        assert_eq!(second.misses, 0, "identical app must fully pre-solve");
        assert_eq!(second.hits, first.misses);
        assert!(again.analysis.facts.values().any(|f| f.memory_bytes() > 0));
    }
}
