#![warn(missing_docs)]

//! # gdroid-vetting — app vetting on top of the IDFG
//!
//! The paper's motivating application: fast Android app security vetting.
//! This crate adds the Amandroid-style plugin layer over the IDFG the
//! other crates construct:
//!
//! * [`registry`] — taint roles of the modeled Android API surface;
//! * [`taint`] — instance-labeling taint propagation over the node-wise
//!   points-to facts, intra- and inter-procedural;
//! * [`report`] — leak reports and verdicts;
//! * [`pipeline`] — the end-to-end vetting run (environment → call graph →
//!   IDFG → taint) with the per-stage timing behind Fig. 1, runnable
//!   against any engine: sequential Amandroid-style CPU, the
//!   multithreaded-C baseline, or the simulated GPU with any optimization
//!   ladder rung;
//! * [`engines`] — the [`gdroid_core::AnalysisEngine`]-based dispatch:
//!   per-job engine selection (worklist-GPU, relational-GPU, CPU
//!   reference) with byte-identical reports across engines;
//! * [`store_exec`] — the same pipeline backed by a cross-app
//!   [`gdroid_sumstore::SumStore`]: store-hit library methods are
//!   pre-solved and never scheduled;
//! * [`targeted`] — demand-driven vetting: a backward slice from the sink
//!   statements restricts the GPU worklist to the methods that can
//!   influence a sink verdict, with byte-identical reports;
//! * [`plugins`] — further IDFG-reuse plugins in the Amandroid style:
//!   intent exposure, hardcoded payloads, permission audit;
//! * [`assess`] — the composite, reviewer-auditable risk assessment
//!   aggregating every plugin into one scored verdict.

pub mod assess;
pub mod engines;
pub mod json;
pub mod pipeline;
pub mod plugins;
pub mod registry;
pub mod report;
pub mod store_exec;
pub mod taint;
pub mod targeted;

pub use assess::{assess_app, Assessment, RiskBand, Signal};
pub use engines::{
    engine_for, engine_for_mode, execute_vetting_engine, execute_vetting_engine_mode,
    execute_vetting_engine_on_device, execute_vetting_engine_on_device_mode,
    execute_vetting_engine_on_device_with_store, execute_vetting_engine_on_device_with_store_mode,
    execute_vetting_engine_targeted_on_device, execute_vetting_engine_targeted_on_device_mode,
    execute_vetting_engine_targeted_on_device_with_store,
    execute_vetting_engine_targeted_on_device_with_store_mode, execute_vetting_engine_traced,
    execute_vetting_engine_traced_mode,
};
pub use pipeline::{
    execute_vetting, execute_vetting_batch_on_device, execute_vetting_full,
    execute_vetting_gpu_traced, execute_vetting_incremental, execute_vetting_on_device,
    prepare_vetting, trace_stage_spans, vet_app, Engine, PreparedApp, VettingOutcome, VettingRun,
    VettingTiming,
};
pub use plugins::{
    hardcoded_payloads, intent_exposure, permission_audit, ExposureFinding, HardcodedFinding,
    PermissionAudit,
};
pub use registry::{SourceId, SourceSinkRegistry};
pub use report::{Leak, Verdict, VettingReport};
pub use store_exec::{
    execute_vetting_full_with_store, execute_vetting_gpu_traced_with_store,
    execute_vetting_on_device_with_store, execute_vetting_targeted_on_device_with_store, StoreUse,
};
pub use taint::{TaintAnalysis, TaintStats};
pub use targeted::{
    compute_vetting_slice, execute_vetting_targeted, execute_vetting_targeted_on_device,
    execute_vetting_targeted_traced, sink_reachability_findings, TargetedProvenance,
};
