//! Engine-selectable vetting: the same pipeline stages, with the IDFG
//! constructed by any [`AnalysisEngine`] — worklist-GPU, relational-GPU,
//! or the CPU reference solver — selected per job by [`EngineKind`].
//!
//! This is the dispatch layer `serve::JobSpec`, campaigns, and the CLI's
//! `--engine` flag route through. The taint plugin, report, and JSON
//! rendering are engine-invariant: for the same app, every engine yields
//! the byte-identical [`crate::VettingReport`] (the tier-1 rel gate), so
//! selecting an engine only trades modeled cost profiles.

use crate::pipeline::{finish_vetting, trace_stage_spans, PreparedApp, VettingRun};
use crate::store_exec::{absorb_into_store, collect_presolved, StoreUse};
use gdroid_analysis::{AppAnalysis, FactStore, StoreKind};
use gdroid_core::{
    AnalysisEngine, CpuEngine, EngineAnalysis, EngineKind, ExecMode, WorklistEngine,
};
use gdroid_gpusim::{Device, DeviceConfig, DeviceFault};
use gdroid_rel::RelEngine;
use gdroid_sumstore::SumStore;
use std::collections::HashMap;

/// Instantiates the engine for a kind — the single construction point
/// every dispatch path shares. The worklist engine runs the full-GDroid
/// rung (MAT+GRP+MER); the legacy ladder rungs stay reachable through
/// [`crate::Engine::Gpu`].
pub fn engine_for(kind: EngineKind) -> Box<dyn AnalysisEngine> {
    engine_for_mode(kind, ExecMode::MultiLaunch)
}

/// [`engine_for`] with an [`ExecMode`]. Only the worklist engine can run
/// persistent (`caps().persistent`); the caller must gate on that —
/// passing `Persistent` with any other engine panics.
pub fn engine_for_mode(kind: EngineKind, exec: ExecMode) -> Box<dyn AnalysisEngine> {
    assert!(
        exec == ExecMode::MultiLaunch || kind.caps().persistent,
        "engine {kind} does not support persistent-kernel execution"
    );
    match kind {
        EngineKind::Worklist => Box::new(WorklistEngine::gdroid().with_exec(exec)),
        EngineKind::Rel => Box::new(RelEngine),
        EngineKind::Cpu => Box::new(CpuEngine),
    }
}

/// Folds an [`EngineAnalysis`] into the CPU-shaped [`AppAnalysis`] the
/// taint plugin and result caches consume (mirrors `gpu_to_app_analysis`).
fn engine_to_app_analysis(ea: EngineAnalysis) -> AppAnalysis {
    let store_bytes = ea.facts.values().map(FactStore::memory_bytes).sum();
    AppAnalysis {
        spaces: ea.spaces,
        cfgs: ea.cfgs,
        facts: ea.facts,
        summaries: ea.summaries,
        telemetry: ea.telemetry,
        per_method: HashMap::new(),
        store_bytes,
        store_kind: StoreKind::Matrix,
        schedule: Vec::new(),
    }
}

/// Assembles the outcome from a finished engine run, applying the
/// store-bytes contract: GPU engines report device memory (historical
/// `store_bytes: 0`), the CPU engine reports its host fact stores.
fn finish_engine_run(prep: &PreparedApp, kind: EngineKind, ea: EngineAnalysis) -> VettingRun {
    let idfg_ns = ea.idfg_ns;
    let mut run = finish_vetting(prep, engine_to_app_analysis(ea), idfg_ns);
    if kind != EngineKind::Cpu {
        run.outcome.store_bytes = 0;
    }
    run
}

/// Vets a prepared app with the selected engine on an existing device
/// (the CPU engine takes the device slot but never touches it).
pub fn execute_vetting_engine_on_device(
    prep: &PreparedApp,
    device: &mut Device,
    kind: EngineKind,
) -> Result<VettingRun, DeviceFault> {
    execute_vetting_engine_on_device_mode(prep, device, kind, ExecMode::MultiLaunch)
}

/// [`execute_vetting_engine_on_device`] with an [`ExecMode`]: persistent
/// runs the whole fixpoint as one resident launch (worklist engine only).
pub fn execute_vetting_engine_on_device_mode(
    prep: &PreparedApp,
    device: &mut Device,
    kind: EngineKind,
    exec: ExecMode,
) -> Result<VettingRun, DeviceFault> {
    let ea = engine_for_mode(kind, exec).analyze_on(
        device,
        &prep.app.program,
        &prep.cg,
        &prep.roots,
        &HashMap::new(),
        None,
    )?;
    Ok(finish_engine_run(prep, kind, ea))
}

/// Vets a prepared app with the selected engine on a fresh device.
pub fn execute_vetting_engine(prep: &PreparedApp, kind: EngineKind) -> VettingRun {
    execute_vetting_engine_mode(prep, kind, ExecMode::MultiLaunch)
}

/// [`execute_vetting_engine`] with an [`ExecMode`].
pub fn execute_vetting_engine_mode(
    prep: &PreparedApp,
    kind: EngineKind,
    exec: ExecMode,
) -> VettingRun {
    let mut device = Device::new(DeviceConfig::tesla_p40());
    execute_vetting_engine_on_device_mode(prep, &mut device, kind, exec)
        .expect("a fresh device has no fault plan")
}

/// Targeted (sliced) vetting with the selected engine. The caller must
/// pick an engine whose [`EngineKind::caps`] advertise `targeted` — the
/// CLI and serve dispatch gate on that; passing the CPU engine panics.
pub fn execute_vetting_engine_targeted_on_device(
    prep: &PreparedApp,
    device: &mut Device,
    kind: EngineKind,
) -> Result<VettingRun, DeviceFault> {
    execute_vetting_engine_targeted_on_device_mode(prep, device, kind, ExecMode::MultiLaunch)
}

/// [`execute_vetting_engine_targeted_on_device`] with an [`ExecMode`]:
/// the sliced worklist runs inside one resident launch when persistent.
pub fn execute_vetting_engine_targeted_on_device_mode(
    prep: &PreparedApp,
    device: &mut Device,
    kind: EngineKind,
    exec: ExecMode,
) -> Result<VettingRun, DeviceFault> {
    assert!(kind.caps().targeted, "engine {kind} does not support targeted vetting");
    let slice = crate::targeted::compute_vetting_slice(prep);
    let ea = engine_for_mode(kind, exec).analyze_on(
        device,
        &prep.app.program,
        &prep.cg,
        &prep.roots,
        &HashMap::new(),
        Some(&slice.members),
    )?;
    let mut run = finish_engine_run(prep, kind, ea);
    run.outcome.targeted = Some(crate::targeted::TargetedProvenance::of(&slice));
    Ok(run)
}

/// Summary-store-backed vetting with the selected engine: store hits are
/// pre-solved and never scheduled, fresh solves feed the store afterwards.
/// Requires `caps().sumstore` (panics otherwise).
pub fn execute_vetting_engine_on_device_with_store(
    prep: &PreparedApp,
    device: &mut Device,
    kind: EngineKind,
    store: &SumStore,
) -> Result<(VettingRun, StoreUse), DeviceFault> {
    execute_vetting_engine_on_device_with_store_mode(
        prep,
        device,
        kind,
        store,
        ExecMode::MultiLaunch,
    )
}

/// [`execute_vetting_engine_on_device_with_store`] with an [`ExecMode`].
pub fn execute_vetting_engine_on_device_with_store_mode(
    prep: &PreparedApp,
    device: &mut Device,
    kind: EngineKind,
    store: &SumStore,
    exec: ExecMode,
) -> Result<(VettingRun, StoreUse), DeviceFault> {
    assert!(kind.caps().sumstore, "engine {kind} does not support the summary store");
    let (presolved, hashes) = collect_presolved(prep, store);
    let ea = engine_for_mode(kind, exec).analyze_on(
        device,
        &prep.app.program,
        &prep.cg,
        &prep.roots,
        &presolved,
        None,
    )?;
    let run = finish_engine_run(prep, kind, ea);
    let store_use =
        absorb_into_store(&prep.app.program, store, &hashes, &presolved, &run.analysis, None);
    Ok((run, store_use))
}

/// Targeted vetting composed with the summary store, engine-selectable —
/// the analogue of
/// [`crate::store_exec::execute_vetting_targeted_on_device_with_store`]:
/// hits restricted to slice members, insertion restricted to exact
/// members. Requires `caps().targeted && caps().sumstore`.
pub fn execute_vetting_engine_targeted_on_device_with_store(
    prep: &PreparedApp,
    device: &mut Device,
    kind: EngineKind,
    store: &SumStore,
) -> Result<(VettingRun, StoreUse), DeviceFault> {
    execute_vetting_engine_targeted_on_device_with_store_mode(
        prep,
        device,
        kind,
        store,
        ExecMode::MultiLaunch,
    )
}

/// [`execute_vetting_engine_targeted_on_device_with_store`] with an
/// [`ExecMode`].
pub fn execute_vetting_engine_targeted_on_device_with_store_mode(
    prep: &PreparedApp,
    device: &mut Device,
    kind: EngineKind,
    store: &SumStore,
    exec: ExecMode,
) -> Result<(VettingRun, StoreUse), DeviceFault> {
    assert!(
        kind.caps().targeted && kind.caps().sumstore,
        "engine {kind} does not compose targeted vetting with the summary store"
    );
    let slice = crate::targeted::compute_vetting_slice(prep);
    let (all_presolved, hashes) = collect_presolved(prep, store);
    let presolved: HashMap<_, _> =
        all_presolved.into_iter().filter(|(m, _)| slice.members.contains(m)).collect();
    let ea = engine_for_mode(kind, exec).analyze_on(
        device,
        &prep.app.program,
        &prep.cg,
        &prep.roots,
        &presolved,
        Some(&slice.members),
    )?;
    let mut run = finish_engine_run(prep, kind, ea);
    run.outcome.targeted = Some(crate::targeted::TargetedProvenance::of(&slice));
    let store_use = absorb_into_store(
        &prep.app.program,
        store,
        &hashes,
        &presolved,
        &run.analysis,
        Some(&slice.exact),
    );
    Ok((run, store_use))
}

/// Engine-selectable vetting with tracing: a fresh device records the
/// engine's driver events into `tracer` (the CPU engine records only the
/// stage spans), clock-advanced past prep so device events nest inside
/// the `idfg` stage span. A disabled tracer reproduces
/// [`execute_vetting_engine`] exactly — the rel gate asserts it.
pub fn execute_vetting_engine_traced(
    prep: &PreparedApp,
    kind: EngineKind,
    tracer: &gdroid_trace::Tracer,
) -> VettingRun {
    execute_vetting_engine_traced_mode(prep, kind, ExecMode::MultiLaunch, tracer)
}

/// [`execute_vetting_engine_traced`] with an [`ExecMode`]: under
/// persistent execution the trace shows the fixpoint rounds nested
/// inside one `persistent launch` span instead of a span per launch.
pub fn execute_vetting_engine_traced_mode(
    prep: &PreparedApp,
    kind: EngineKind,
    exec: ExecMode,
    tracer: &gdroid_trace::Tracer,
) -> VettingRun {
    let mut device = Device::new(DeviceConfig::tesla_p40());
    device.set_tracer(tracer.clone());
    let prep_ns = prep.prep_timing.envgen_ns + prep.prep_timing.callgraph_ns;
    device.advance_clock(prep_ns.round() as u64);
    let ea = engine_for_mode(kind, exec)
        .analyze_on(&mut device, &prep.app.program, &prep.cg, &prep.roots, &HashMap::new(), None)
        .expect("a fresh device has no fault plan");
    let run = finish_engine_run(prep, kind, ea);
    if tracer.enabled() {
        trace_stage_spans(tracer, &run.outcome.timing, 0, 0);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{execute_vetting, prepare_vetting, Engine};
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_core::OptConfig;

    #[test]
    fn all_engine_kinds_agree_with_the_legacy_paths() {
        for seed in [8700u64, 8701] {
            let prep = prepare_vetting(generate_app(0, seed, &GenConfig::tiny()));
            let legacy = execute_vetting(&prep, Engine::Gpu(OptConfig::gdroid()));
            for kind in EngineKind::ALL {
                let run = execute_vetting_engine(&prep, kind);
                assert_eq!(
                    run.outcome.report.to_json(),
                    legacy.report.to_json(),
                    "{kind} diverged on seed {seed}"
                );
            }
        }
    }

    #[test]
    fn worklist_kind_matches_legacy_gpu_byte_for_byte() {
        // The worklist EngineKind is the legacy Engine::Gpu(gdroid) path
        // behind the trait — entire outcome JSON included.
        let prep = prepare_vetting(generate_app(0, 8702, &GenConfig::tiny()));
        let legacy = execute_vetting(&prep, Engine::Gpu(OptConfig::gdroid()));
        let run = execute_vetting_engine(&prep, EngineKind::Worklist);
        assert_eq!(run.outcome.to_json(), legacy.to_json());
    }

    #[test]
    fn rel_targeted_matches_rel_full_report() {
        for seed in [8703u64, 8704] {
            let prep = prepare_vetting(generate_app(0, seed, &GenConfig::tiny()));
            let full = execute_vetting_engine(&prep, EngineKind::Rel);
            let mut device = Device::new(DeviceConfig::tesla_p40());
            let targeted =
                execute_vetting_engine_targeted_on_device(&prep, &mut device, EngineKind::Rel)
                    .expect("no fault plan");
            assert_eq!(
                targeted.outcome.report.to_json(),
                full.outcome.report.to_json(),
                "rel targeted diverged on seed {seed}"
            );
            assert!(targeted.outcome.targeted.is_some());
        }
    }

    #[test]
    fn rel_with_store_hits_and_agrees() {
        let cfg = GenConfig::tiny().with_libraries(2, 2);
        let store = SumStore::new();
        let prep_a = prepare_vetting(generate_app(0, 8705, &cfg));
        let prep_b = prepare_vetting(generate_app(1, 8706, &cfg));
        let disabled = execute_vetting_engine(&prep_b, EngineKind::Rel);
        let mut device = Device::new(DeviceConfig::tesla_p40());
        let (_, use_a) = execute_vetting_engine_on_device_with_store(
            &prep_a,
            &mut device,
            EngineKind::Rel,
            &store,
        )
        .expect("no fault plan");
        assert_eq!(use_a.hits, 0);
        let (warm, use_b) = execute_vetting_engine_on_device_with_store(
            &prep_b,
            &mut device,
            EngineKind::Rel,
            &store,
        )
        .expect("no fault plan");
        assert!(use_b.hits > 0, "no rel store hits on a shared-library corpus");
        assert_eq!(warm.outcome.report.to_json(), disabled.outcome.report.to_json());
        assert!(
            warm.outcome.timing.idfg_ns < disabled.outcome.timing.idfg_ns,
            "warm rel run must be faster"
        );
    }

    #[test]
    fn cpu_kind_reports_host_store_bytes() {
        let prep = prepare_vetting(generate_app(0, 8707, &GenConfig::tiny()));
        let cpu = execute_vetting_engine(&prep, EngineKind::Cpu);
        let rel = execute_vetting_engine(&prep, EngineKind::Rel);
        assert!(cpu.outcome.store_bytes > 0);
        assert_eq!(rel.outcome.store_bytes, 0);
    }

    #[test]
    fn persistent_exec_reports_match_multi_launch() {
        for seed in [8710u64, 8711] {
            let prep = prepare_vetting(generate_app(0, seed, &GenConfig::tiny()));
            let mut md = Device::new(DeviceConfig::tesla_p40());
            let multi = execute_vetting_engine_on_device(&prep, &mut md, EngineKind::Worklist)
                .expect("no fault plan");
            let mut pd = Device::new(DeviceConfig::tesla_p40());
            let per = execute_vetting_engine_on_device_mode(
                &prep,
                &mut pd,
                EngineKind::Worklist,
                ExecMode::Persistent,
            )
            .expect("no fault plan");
            assert_eq!(
                per.outcome.report.to_json(),
                multi.outcome.report.to_json(),
                "persistent verdicts diverged on seed {seed}"
            );
            // Same fixpoint, one launch instead of one per round.
            assert_eq!(pd.launches(), 1, "seed {seed}");
            if md.launches() > 1 {
                assert!(
                    per.outcome.timing.idfg_ns < multi.outcome.timing.idfg_ns,
                    "seed {seed}: persistent not faster"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "persistent")]
    fn persistent_exec_rejects_non_worklist_engines() {
        engine_for_mode(EngineKind::Rel, ExecMode::Persistent);
    }

    #[test]
    fn traced_engine_run_is_invariant() {
        let prep = prepare_vetting(generate_app(0, 8708, &GenConfig::tiny()));
        for kind in [EngineKind::Worklist, EngineKind::Rel] {
            let untraced = execute_vetting_engine(&prep, kind);
            let tracer = gdroid_trace::Tracer::enabled_new();
            let traced = execute_vetting_engine_traced(&prep, kind, &tracer);
            assert_eq!(
                traced.outcome.to_json(),
                untraced.outcome.to_json(),
                "tracing perturbed {kind}"
            );
            assert!(!tracer.events().is_empty());
        }
    }
}
