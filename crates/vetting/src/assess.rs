//! Composite risk assessment — the verdict an app store's vetting queue
//! would act on, aggregating every IDFG plugin into one scored report.
//!
//! Scoring is transparent and additive; each signal cites its plugin so a
//! human reviewer can audit the verdict (the paper's motivation is
//! *vetting*, which implies a reviewer workflow, not just a classifier).

use crate::pipeline::VettingOutcome;
use crate::plugins::{hardcoded_payloads, intent_exposure, permission_audit};
use crate::registry::SourceSinkRegistry;
use crate::taint::TaintAnalysis;
use gdroid_analysis::{analyze_app, StoreKind};
use gdroid_apk::App;
use gdroid_icfg::prepare_app;
use gdroid_ir::MethodId;
use serde::{Deserialize, Serialize};

/// One scored signal contributing to the verdict.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Signal {
    /// Which plugin raised it.
    pub plugin: String,
    /// Human-readable description.
    pub detail: String,
    /// Contribution to the risk score.
    pub weight: u32,
}

/// Risk bands for triage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RiskBand {
    /// No signals.
    Low,
    /// Signals worth a look (score 1–19).
    Medium,
    /// Likely malicious or badly broken (score ≥ 20).
    High,
}

/// The composite assessment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Assessment {
    /// App package name.
    pub package: String,
    /// All contributing signals, sorted by weight descending.
    pub signals: Vec<Signal>,
    /// Total score.
    pub score: u32,
    /// Triage band.
    pub band: RiskBand,
}

impl Assessment {
    /// Deterministic JSON rendering (stable key order, no whitespace).
    pub fn to_json(&self) -> String {
        let signals: Vec<String> = self
            .signals
            .iter()
            .map(|s| {
                format!(
                    "{{\"plugin\":{},\"detail\":{},\"weight\":{}}}",
                    crate::json::string(&s.plugin),
                    crate::json::string(&s.detail),
                    s.weight
                )
            })
            .collect();
        format!(
            "{{\"package\":{},\"score\":{},\"band\":{},\"signals\":{}}}",
            crate::json::string(&self.package),
            self.score,
            crate::json::string(&format!("{:?}", self.band)),
            crate::json::array(&signals)
        )
    }

    /// Renders a reviewer-facing report.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "{} — risk {:?} (score {})", self.package, self.band, self.score).unwrap();
        for s in &self.signals {
            writeln!(out, "  [{:>2}] {}: {}", s.weight, s.plugin, s.detail).unwrap();
        }
        if self.signals.is_empty() {
            writeln!(out, "  no signals").unwrap();
        }
        out
    }
}

/// Runs every plugin over one app and aggregates the verdict.
///
/// The IDFG is built once (matrix store, CPU reference engine — callers
/// wanting the GPU path can use [`crate::vet_app`] for the taint portion and
/// combine manually).
pub fn assess_app(mut app: App) -> Assessment {
    let package = app.manifest.package.clone();
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
    let analysis = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);
    let registry = SourceSinkRegistry::for_program(&app.program);

    let mut signals = Vec::new();

    // Taint leaks: the strongest signal, weighted by distinct sinks.
    let (report, _) = TaintAnalysis::new(
        &app.program,
        &cg,
        &analysis.facts,
        &analysis.spaces,
        &analysis.cfgs,
        &registry,
    )
    .run();
    for leak in &report.leaks {
        let sources: Vec<&str> =
            leak.sources.iter().map(|s| report.source_names[usize::from(s.0)].as_str()).collect();
        signals.push(Signal {
            plugin: "taint".into(),
            detail: format!("{} receives {}", leak.sink, sources.join(", ")),
            weight: 12,
        });
    }

    // Intent exposure: externally triggerable flows.
    for f in intent_exposure(&app, &cg, &envs, &analysis, &registry) {
        signals.push(Signal {
            plugin: "intent-exposure".into(),
            detail: format!("exported {} lets Intent data reach {}", f.component, f.sink),
            weight: 6,
        });
    }

    // Hardcoded payloads.
    for f in hardcoded_payloads(&app, &analysis, &registry) {
        signals.push(Signal {
            plugin: "hardcoded-payload".into(),
            detail: format!("constant data shipped to {}", f.sink),
            weight: 2,
        });
    }

    // Permission audit.
    let audit = permission_audit(&app, &analysis);
    for p in &audit.over_privileged {
        signals.push(Signal {
            plugin: "permission-audit".into(),
            detail: format!("declares but never exercises {}", p.manifest_name()),
            weight: 1,
        });
    }
    for api in &audit.under_privileged {
        signals.push(Signal {
            plugin: "permission-audit".into(),
            detail: format!("calls {api} without its permission"),
            weight: 3,
        });
    }

    signals.sort_by(|a, b| b.weight.cmp(&a.weight).then_with(|| a.detail.cmp(&b.detail)));
    let score: u32 = signals.iter().map(|s| s.weight).sum();
    let band = match score {
        0 => RiskBand::Low,
        1..=19 => RiskBand::Medium,
        _ => RiskBand::High,
    };
    Assessment { package, signals, score, band }
}

/// Convenience for pipelines that already vetted via [`crate::vet_app`]: derives
/// the band from a taint-only outcome.
pub fn band_of_outcome(outcome: &VettingOutcome) -> RiskBand {
    match outcome.report.leaks.len() {
        0 => RiskBand::Low,
        1 => RiskBand::Medium,
        _ => RiskBand::High,
    }
}

/// Re-export used by `band_of_outcome` callers that still need an engine.
pub use crate::pipeline::Engine as AssessEngine;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{vet_app, Engine};
    use gdroid_apk::{generate_app, Corpus, GenConfig};

    #[test]
    fn assessment_is_deterministic_and_ranked() {
        let a1 = assess_app(generate_app(0, 9701, &GenConfig::tiny()));
        let a2 = assess_app(generate_app(0, 9701, &GenConfig::tiny()));
        assert_eq!(a1.score, a2.score);
        assert_eq!(a1.signals, a2.signals);
        // Signals sorted by weight descending.
        for w in a1.signals.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
        // Band consistent with score.
        match a1.band {
            RiskBand::Low => assert_eq!(a1.score, 0),
            RiskBand::Medium => assert!((1..=19).contains(&a1.score)),
            RiskBand::High => assert!(a1.score >= 20),
        }
    }

    #[test]
    fn corpus_has_a_spread_of_bands() {
        let corpus = Corpus::test_corpus(12);
        let mut bands = std::collections::BTreeSet::new();
        for i in 0..12 {
            bands.insert(assess_app(corpus.generate(i)).band);
        }
        assert!(bands.len() >= 2, "all apps in one band: {bands:?}");
    }

    #[test]
    fn render_mentions_plugins() {
        for seed in 0..10 {
            let a = assess_app(generate_app(0, 9800 + seed, &GenConfig::tiny()));
            let text = a.render();
            assert!(text.contains("risk"));
            if !a.signals.is_empty() {
                assert!(text.contains(a.signals[0].plugin.as_str()));
                return;
            }
        }
    }

    #[test]
    fn band_of_outcome_matches_leak_count() {
        let outcome = vet_app(
            generate_app(0, 9901, &GenConfig::tiny()),
            Engine::Gpu(gdroid_core::OptConfig::gdroid()),
        );
        let band = band_of_outcome(&outcome);
        match outcome.report.leaks.len() {
            0 => assert_eq!(band, RiskBand::Low),
            1 => assert_eq!(band, RiskBand::Medium),
            _ => assert_eq!(band, RiskBand::High),
        }
    }
}
