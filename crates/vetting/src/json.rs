//! Minimal hand-rolled JSON emission helpers.
//!
//! The workspace's `serde` is a vendored marker stub with no real
//! serialization, so machine-readable output is rendered by hand. These
//! helpers keep the rendering deterministic (stable key order, no
//! whitespace) so two identical runs produce byte-identical JSON — the
//! property the serving layer's cache-parity checks rely on.

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a quoted JSON string literal.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders a JSON array from already-rendered element values.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("hi"), "\"hi\"");
    }

    #[test]
    fn arrays_join_without_spaces() {
        assert_eq!(array(&["1".into(), "2".into()]), "[1,2]");
        assert_eq!(array(&[]), "[]");
    }
}
