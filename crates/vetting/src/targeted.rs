//! Demand-driven (targeted) vetting: slice-then-analyze.
//!
//! Most vetting queries are "does anything flow into these sinks?" — the
//! BackDroid observation. Instead of building the full IDFG, the targeted
//! path computes a [`BackwardSlice`] from the taint registry's sink call
//! sites and runs the GPU driver over slice members only
//! ([`gdroid_core::gpu_analyze_app_sliced_on`]). Because the slice
//! over-approximates everything that can influence a sink verdict (see
//! `gdroid_analysis::slice` for the argument), the report is byte-identical
//! to a full run — enforced by the tier-1 gate `tests/targeted_gate.rs` —
//! while the modeled IDFG time shrinks with the sliced fraction.

use crate::pipeline::{
    finish_vetting, gpu_to_app_analysis, trace_stage_spans, PreparedApp, VettingRun,
};
use crate::registry::SourceSinkRegistry;
use gdroid_analysis::BackwardSlice;
use gdroid_core::{gpu_analyze_app_sliced_on, OptConfig};
use gdroid_gpusim::{Device, DeviceConfig, DeviceFault};
use gdroid_ir::{MethodId, Program, Stmt, StmtIdx};

/// Provenance of a targeted run, rendered into the outcome JSON as the
/// `"targeted"` block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TargetedProvenance {
    /// Slice members analyzed.
    pub slice_methods: usize,
    /// Reachable methods the slice skipped.
    pub methods_skipped: usize,
    /// Size of the full reachable method set.
    pub total_reachable: usize,
    /// `slice_methods / total_reachable` (0 for an empty reachable set).
    pub sliced_fraction: f64,
    /// Methods containing a reachable sink statement.
    pub sink_methods: usize,
    /// Partial roots (members analyzed for their relevant region only).
    pub partial_roots: usize,
}

impl TargetedProvenance {
    /// Summarizes a computed slice.
    pub fn of(slice: &BackwardSlice) -> TargetedProvenance {
        TargetedProvenance {
            slice_methods: slice.len(),
            methods_skipped: slice.methods_skipped(),
            total_reachable: slice.total_reachable,
            sliced_fraction: slice.sliced_fraction(),
            sink_methods: slice.sink_methods.len(),
            partial_roots: slice.roots.len(),
        }
    }

    /// Hand-formatted, byte-stable JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"targeted\":true,\"slice_methods\":{},\"methods_skipped\":{},\
             \"total_reachable\":{},\"sliced_fraction\":{:.6},\"sink_methods\":{},\
             \"partial_roots\":{}}}",
            self.slice_methods,
            self.methods_skipped,
            self.total_reachable,
            self.sliced_fraction,
            self.sink_methods,
            self.partial_roots,
        )
    }
}

/// Every call site of `program` whose signature the registry knows as a
/// sink — the slice targets.
pub(crate) fn sink_sites(
    program: &Program,
    registry: &SourceSinkRegistry,
) -> Vec<(MethodId, StmtIdx)> {
    let mut sites = Vec::new();
    for (mid, method) in program.methods.iter_enumerated() {
        for (idx, stmt) in method.body.iter_enumerated() {
            if let Stmt::Call { sig, .. } = stmt {
                if registry.sink_of(sig).is_some() {
                    sites.push((mid, idx));
                }
            }
        }
    }
    sites
}

/// Sink call sites that no source call site can reach — the findings
/// behind the `sink-reachability` lint pass
/// ([`gdroid_ir::SinkReachability`]).
///
/// Reuses the slicer core: every method is treated as a root (lint runs
/// on the raw program, before environment synthesis), one backward slice
/// is computed per sink site, and the site is dead iff no source call
/// site lies in the slice's relevant region
/// ([`BackwardSlice::contains_site`]). Returned in (method, statement)
/// order; the lint runner re-sorts by declaring class anyway.
pub fn sink_reachability_findings(program: &Program) -> Vec<(MethodId, StmtIdx, String)> {
    let registry = SourceSinkRegistry::for_program(program);
    let cg = gdroid_icfg::CallGraph::build(program);
    let roots: Vec<MethodId> = program.methods.indices().collect();
    let mut source_sites: Vec<(MethodId, StmtIdx)> = Vec::new();
    for (mid, method) in program.methods.iter_enumerated() {
        for (idx, stmt) in method.body.iter_enumerated() {
            if let Stmt::Call { sig, .. } = stmt {
                if registry.source_of(sig).is_some() {
                    source_sites.push((mid, idx));
                }
            }
        }
    }
    let mut findings = Vec::new();
    for (mid, method) in program.methods.iter_enumerated() {
        for (idx, stmt) in method.body.iter_enumerated() {
            let Stmt::Call { sig, .. } = stmt else { continue };
            let Some(sink) = registry.sink_of(sig) else { continue };
            let slice = BackwardSlice::compute(program, &cg, &roots, &[(mid, idx)]);
            let reached = source_sites.iter().any(|&(m, i)| slice.contains_site(m, i));
            if !reached {
                findings.push((mid, idx, sink.to_owned()));
            }
        }
    }
    findings
}

/// Computes the backward sink slice of a prepared app.
pub fn compute_vetting_slice(prep: &PreparedApp) -> BackwardSlice {
    let registry = SourceSinkRegistry::for_program(&prep.app.program);
    let sites = sink_sites(&prep.app.program, &registry);
    BackwardSlice::compute(&prep.app.program, &prep.cg, &prep.roots, &sites)
}

/// Targeted vetting on an existing long-lived device — the fast-lane
/// serving path. Slices, launches slice members only, and attaches the
/// [`TargetedProvenance`] to the outcome.
pub fn execute_vetting_targeted_on_device(
    prep: &PreparedApp,
    device: &mut Device,
    opts: OptConfig,
) -> Result<VettingRun, DeviceFault> {
    let slice = compute_vetting_slice(prep);
    let gpu = gpu_analyze_app_sliced_on(
        device,
        &prep.app.program,
        &prep.cg,
        &prep.roots,
        opts,
        &slice.members,
    )?;
    let idfg_ns = gpu.stats.total_ns;
    let mut run = finish_vetting(prep, gpu_to_app_analysis(gpu), idfg_ns);
    run.outcome.store_bytes = 0;
    run.outcome.targeted = Some(TargetedProvenance::of(&slice));
    Ok(run)
}

/// Targeted vetting on a fresh device.
pub fn execute_vetting_targeted(prep: &PreparedApp, opts: OptConfig) -> VettingRun {
    let mut device = Device::new(DeviceConfig::tesla_p40());
    execute_vetting_targeted_on_device(prep, &mut device, opts)
        .expect("a fresh device has no fault plan")
}

/// Targeted vetting with tracing: mirrors
/// [`crate::execute_vetting_gpu_traced`], plus a `targeted-slice` instant
/// carrying the slice shape. A disabled tracer reproduces
/// [`execute_vetting_targeted`] exactly (tier-1 invariance).
pub fn execute_vetting_targeted_traced(
    prep: &PreparedApp,
    opts: OptConfig,
    tracer: &gdroid_trace::Tracer,
) -> VettingRun {
    let mut device = Device::new(DeviceConfig::tesla_p40());
    device.set_tracer(tracer.clone());
    let prep_ns = prep.prep_timing.envgen_ns + prep.prep_timing.callgraph_ns;
    device.advance_clock(prep_ns.round() as u64);
    let slice = compute_vetting_slice(prep);
    if tracer.enabled() {
        tracer.instant(
            "vetting",
            "targeted-slice",
            device.clock_ns(),
            0,
            vec![
                ("slice_methods", slice.len().into()),
                ("total_reachable", slice.total_reachable.into()),
                ("sink_methods", slice.sink_methods.len().into()),
                ("partial_roots", slice.roots.len().into()),
            ],
        );
    }
    let gpu = gpu_analyze_app_sliced_on(
        &mut device,
        &prep.app.program,
        &prep.cg,
        &prep.roots,
        opts,
        &slice.members,
    )
    .expect("a fresh device has no fault plan");
    let idfg_ns = gpu.stats.total_ns;
    let mut run = finish_vetting(prep, gpu_to_app_analysis(gpu), idfg_ns);
    run.outcome.store_bytes = 0;
    run.outcome.targeted = Some(TargetedProvenance::of(&slice));
    if tracer.enabled() {
        trace_stage_spans(tracer, &run.outcome.timing, 0, 0);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{execute_vetting, prepare_vetting, Engine};
    use gdroid_apk::{generate_app, GenConfig};

    #[test]
    fn targeted_report_matches_full_and_carries_provenance() {
        for seed in [7100u64, 7101, 7102] {
            let prep = prepare_vetting(generate_app(0, seed, &GenConfig::tiny()));
            let full = execute_vetting(&prep, Engine::Gpu(OptConfig::gdroid()));
            let targeted = execute_vetting_targeted(&prep, OptConfig::gdroid());
            assert_eq!(
                targeted.outcome.report.to_json(),
                full.report.to_json(),
                "targeted verdict diverged on seed {seed}"
            );
            let prov = targeted.outcome.targeted.expect("provenance missing");
            assert!(prov.slice_methods <= prov.total_reachable);
            assert_eq!(prov.slice_methods + prov.methods_skipped, prov.total_reachable);
            assert!(full.targeted.is_none(), "full runs must not claim provenance");
            let json = targeted.outcome.to_json();
            assert!(json.contains("\"targeted\":{\"targeted\":true"), "{json}");
            assert!(!full.to_json().contains("targeted"), "full JSON must be unchanged");
        }
    }

    #[test]
    fn targeted_is_deterministic() {
        let prep = prepare_vetting(generate_app(0, 7103, &GenConfig::tiny()));
        let a = execute_vetting_targeted(&prep, OptConfig::gdroid());
        let b = execute_vetting_targeted(&prep, OptConfig::gdroid());
        assert_eq!(a.outcome.to_json(), b.outcome.to_json());
    }

    #[test]
    fn dead_sinks_are_real_sink_sites_and_never_leak() {
        for seed in [7120u64, 7121, 7122, 7123] {
            let prep = prepare_vetting(generate_app(0, seed, &GenConfig::tiny()));
            let program = &prep.app.program;
            let findings = sink_reachability_findings(program);
            let registry = SourceSinkRegistry::for_program(program);
            for (mid, idx, name) in &findings {
                let Stmt::Call { sig, .. } = &program.methods[*mid].body[*idx] else {
                    panic!("finding does not point at a call site");
                };
                assert_eq!(registry.sink_of(sig), Some(name.as_str()));
            }
            // A sink flagged as source-unreachable must never appear as a
            // leak — the slice over-approximates every possible flow.
            let full = execute_vetting(&prep, Engine::Gpu(OptConfig::gdroid()));
            for leak in &full.report.leaks {
                assert!(
                    !findings.iter().any(|(m, i, _)| *m == leak.method && *i == leak.stmt),
                    "leaking sink flagged as dead, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn slice_covers_all_leaking_methods() {
        // Every reported leak sits in a sink method, which is a slice
        // member by construction.
        for seed in 7104..7112u64 {
            let prep = prepare_vetting(generate_app(0, seed, &GenConfig::tiny()));
            let slice = compute_vetting_slice(&prep);
            let full = execute_vetting(&prep, Engine::Gpu(OptConfig::gdroid()));
            for leak in &full.report.leaks {
                assert!(slice.members.contains(&leak.method), "leak outside slice, seed {seed}");
            }
        }
    }
}
