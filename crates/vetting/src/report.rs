//! Vetting verdicts and leak reports.

use crate::registry::SourceId;
use gdroid_ir::{MethodId, StmtIdx};
use serde::{Deserialize, Serialize};

/// One detected source→sink flow.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Leak {
    /// Method containing the sink call.
    pub method: MethodId,
    /// The sink call statement.
    pub stmt: StmtIdx,
    /// Sink API name (`class.method`).
    pub sink: String,
    /// Source labels that reach the sink.
    pub sources: Vec<SourceId>,
}

/// Overall verdict for one app.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// No tainted flow reached a sink.
    Clean,
    /// Tainted data reaches exfiltration sinks.
    Suspicious,
}

/// The vetting report for one app.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VettingReport {
    /// All detected leaks, ordered by (method, statement).
    pub leaks: Vec<Leak>,
    /// Source display names (index = [`SourceId`]).
    pub source_names: Vec<String>,
    /// The verdict.
    pub verdict: Verdict,
}

impl VettingReport {
    /// Builds a report from detected leaks.
    pub fn new(leaks: Vec<Leak>, source_names: &[String]) -> VettingReport {
        let verdict = if leaks.is_empty() { Verdict::Clean } else { Verdict::Suspicious };
        VettingReport { leaks, source_names: source_names.to_vec(), verdict }
    }

    /// Locates the call sites that could have produced a leak's source
    /// labels — the witness endpoints of the flow. Post-hoc and
    /// API-granular: every call site of a matching source API is listed.
    pub fn origin_sites(
        &self,
        leak: &Leak,
        program: &gdroid_ir::Program,
        registry: &crate::registry::SourceSinkRegistry,
    ) -> Vec<(gdroid_ir::MethodId, StmtIdx)> {
        let mut sites = Vec::new();
        for (mid, method) in program.methods.iter_enumerated() {
            for (idx, stmt) in method.body.iter_enumerated() {
                if let gdroid_ir::Stmt::Call { sig, .. } = stmt {
                    if let Some(id) = registry.source_of(sig) {
                        if leak.sources.contains(&id) {
                            sites.push((mid, idx));
                        }
                    }
                }
            }
        }
        sites
    }

    /// Deterministic JSON rendering (stable key order, no whitespace).
    ///
    /// Source labels are resolved to display names so the document stands
    /// alone without the registry. Byte-identical across engines and runs
    /// for the same app — the serving cache's parity checks compare these
    /// strings directly.
    pub fn to_json(&self) -> String {
        let leaks: Vec<String> = self
            .leaks
            .iter()
            .map(|leak| {
                let sources: Vec<String> = leak
                    .sources
                    .iter()
                    .map(|s| crate::json::string(&self.source_names[usize::from(s.0)]))
                    .collect();
                format!(
                    "{{\"method\":{},\"stmt\":{},\"sink\":{},\"sources\":{}}}",
                    leak.method.0,
                    leak.stmt.0,
                    crate::json::string(&leak.sink),
                    crate::json::array(&sources)
                )
            })
            .collect();
        format!(
            "{{\"verdict\":{},\"leaks\":{}}}",
            crate::json::string(&format!("{:?}", self.verdict)),
            crate::json::array(&leaks)
        )
    }

    /// Human-readable one-line-per-leak rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "verdict: {:?} ({} leak(s))", self.verdict, self.leaks.len()).unwrap();
        for leak in &self.leaks {
            let sources: Vec<&str> =
                leak.sources.iter().map(|s| self.source_names[usize::from(s.0)].as_str()).collect();
            writeln!(
                out,
                "  {}:{} {} <- {}",
                leak.method,
                leak.stmt,
                leak.sink,
                sources.join(", ")
            )
            .unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_clean() {
        let r = VettingReport::new(vec![], &[]);
        assert_eq!(r.verdict, Verdict::Clean);
        assert!(r.render().contains("Clean"));
    }

    #[test]
    fn leaky_report_is_suspicious_and_renders_names() {
        let names = vec!["android/telephony/TelephonyManager.getDeviceId".to_owned()];
        let r = VettingReport::new(
            vec![Leak {
                method: MethodId(3),
                stmt: StmtIdx(7),
                sink: "android/util/Log.d".into(),
                sources: vec![SourceId(0)],
            }],
            &names,
        );
        assert_eq!(r.verdict, Verdict::Suspicious);
        let text = r.render();
        assert!(text.contains("Log.d"));
        assert!(text.contains("getDeviceId"));
        assert!(text.contains("M3:L7"));
    }
}

#[cfg(test)]
mod origin_tests {
    use crate::registry::SourceSinkRegistry;
    use crate::taint::TaintAnalysis;
    use gdroid_analysis::{analyze_app, StoreKind};
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_icfg::prepare_app;

    #[test]
    fn origin_sites_point_at_source_calls() {
        // Find a leaky app and check every leak has at least one origin
        // call site whose API matches a reported label.
        for seed in 0..25u64 {
            let mut app = generate_app(0, 8600 + seed, &GenConfig::tiny());
            let (envs, cg) = prepare_app(&mut app);
            let roots: Vec<gdroid_ir::MethodId> = envs.iter().map(|e| e.method).collect();
            let analysis = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);
            let registry = SourceSinkRegistry::for_program(&app.program);
            let (report, _) = TaintAnalysis::new(
                &app.program,
                &cg,
                &analysis.facts,
                &analysis.spaces,
                &analysis.cfgs,
                &registry,
            )
            .run();
            if report.leaks.is_empty() {
                continue;
            }
            for leak in &report.leaks {
                let origins = report.origin_sites(leak, &app.program, &registry);
                assert!(!origins.is_empty(), "leak without any source call site");
                for (mid, idx) in origins {
                    let stmt = &app.program.methods[mid].body[idx];
                    assert!(matches!(stmt, gdroid_ir::Stmt::Call { .. }));
                }
            }
            return;
        }
        panic!("no leaky app in 25 seeds");
    }
}
