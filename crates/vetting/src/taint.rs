//! Taint analysis over the IDFG — the vetting plugin.
//!
//! This is the "low-cost plugin on top of the IDFG" architecture the paper
//! attributes to Amandroid (§II-A): the expensive points-to reasoning is
//! already in the node-wise fact sets; taint tracking just labels
//! instances and follows the existing flows.
//!
//! * An instance is *tainted* when it is the [`CallRet`] of a source-API
//!   call site, or a callee formal fed a tainted argument, or a caller's
//!   `CallRet` whose callee returns tainted data.
//! * Intra-procedural flows (copies, casts, field stores/loads, arrays)
//!   need no extra work — the points-to facts already carry the instance
//!   through them.
//! * A *leak* is a sink-API call site where some reference argument may
//!   point to a tainted instance.
//!
//! [`CallRet`]: gdroid_analysis::Instance::CallRet

use crate::registry::{SourceId, SourceSinkRegistry};
use crate::report::{Leak, VettingReport};
use gdroid_analysis::{Instance, MatrixStore, MethodSpace, Slot};
use gdroid_icfg::{CallGraph, CallTarget, Cfg};
use gdroid_ir::{MethodId, Program, Stmt};
use std::collections::{BTreeSet, HashMap};

/// Per-method taint labels: instance index → set of source labels.
type MethodTaint = HashMap<u16, BTreeSet<SourceId>>;

/// Counters for the vetting cost model.
#[derive(Clone, Copy, Debug, Default)]
pub struct TaintStats {
    /// Fact-row reads performed.
    pub rows_read: usize,
    /// Cross-method propagation passes until fixed point.
    pub passes: usize,
    /// Labeled (instance, method) pairs at the end.
    pub tainted_instances: usize,
}

/// The taint engine.
pub struct TaintAnalysis<'a> {
    program: &'a Program,
    cg: &'a CallGraph,
    facts: &'a HashMap<MethodId, MatrixStore>,
    spaces: &'a HashMap<MethodId, MethodSpace>,
    cfgs: &'a HashMap<MethodId, Cfg>,
    registry: &'a SourceSinkRegistry,
    taint: HashMap<MethodId, MethodTaint>,
    /// Cost counters.
    pub stats: TaintStats,
}

impl<'a> TaintAnalysis<'a> {
    /// Creates the engine over a finished analysis.
    pub fn new(
        program: &'a Program,
        cg: &'a CallGraph,
        facts: &'a HashMap<MethodId, MatrixStore>,
        spaces: &'a HashMap<MethodId, MethodSpace>,
        cfgs: &'a HashMap<MethodId, Cfg>,
        registry: &'a SourceSinkRegistry,
    ) -> Self {
        TaintAnalysis {
            program,
            cg,
            facts,
            spaces,
            cfgs,
            registry,
            taint: HashMap::new(),
            stats: TaintStats::default(),
        }
    }

    /// Runs the analysis and produces the vetting report.
    pub fn run(mut self) -> (VettingReport, TaintStats) {
        self.seed_sources();
        self.propagate();
        let leaks = self.find_leaks();
        self.stats.tainted_instances =
            self.taint.values().map(|m| m.values().filter(|s| !s.is_empty()).count()).sum();
        let report = VettingReport::new(leaks, &self.registry.source_names);
        (report, self.stats)
    }

    /// Labels the `CallRet` instances of source call sites.
    fn seed_sources(&mut self) {
        for (&mid, space) in self.spaces {
            for (idx, stmt) in self.program.methods[mid].body.iter_enumerated() {
                let Stmt::Call { sig, .. } = stmt else { continue };
                let Some(source) = self.registry.source_of(sig) else { continue };
                if let Some(inst) = space.instance(Instance::CallRet(idx)) {
                    self.taint.entry(mid).or_default().entry(inst).or_default().insert(source);
                }
            }
        }
    }

    /// Labels on the instances a variable may point to at a node.
    fn labels_at(&mut self, mid: MethodId, node: u32, var: gdroid_ir::VarId) -> BTreeSet<SourceId> {
        let mut labels = BTreeSet::new();
        let Some(slot) = self.spaces[&mid].slot(Slot::Local(var)) else { return labels };
        self.stats.rows_read += 1;
        for inst in self.facts[&mid].node(node as usize).row(slot) {
            if let Some(l) = self.taint.get(&mid).and_then(|t| t.get(&inst)) {
                labels.extend(l.iter().copied());
            }
        }
        labels
    }

    /// Tainted labels flowing out of a callee's returns. Callees outside
    /// the analyzed method set (possible in sliced runs, where pruned
    /// call sites keep their statements but lose their spaces) contribute
    /// nothing.
    fn return_labels(&mut self, callee: MethodId) -> BTreeSet<SourceId> {
        let mut labels = BTreeSet::new();
        let Some(cfg) = self.cfgs.get(&callee) else { return labels };
        for (idx, stmt) in self.program.methods[callee].body.iter_enumerated() {
            if let Stmt::Return { var: Some(v) } = stmt {
                let node = cfg.node_of(idx);
                labels.extend(self.labels_at(callee, node, *v));
            }
        }
        labels
    }

    /// Cross-method propagation to a fixed point: tainted arguments label
    /// callee formals; tainted callee returns label caller `CallRet`s.
    fn propagate(&mut self) {
        // Sorted iteration keeps the pass count — and every derived stat
        // (`rows_read`, modeled taint time) — independent of hash order, so
        // identical apps render byte-identical machine-readable outcomes.
        let mut methods: Vec<MethodId> = self.spaces.keys().copied().collect();
        methods.sort_unstable();
        loop {
            self.stats.passes += 1;
            let mut changed = false;
            for &mid in &methods {
                let body_calls: Vec<(gdroid_ir::StmtIdx, Vec<gdroid_ir::VarId>)> =
                    self.program.methods[mid]
                        .body
                        .iter_enumerated()
                        .filter_map(|(idx, s)| match s {
                            Stmt::Call { args, .. } => Some((idx, args.clone())),
                            _ => None,
                        })
                        .collect();
                for (idx, args) in body_calls {
                    let Some(CallTarget::Internal(targets)) = self.cg.site(mid, idx) else {
                        continue;
                    };
                    let targets = targets.clone();
                    let node = self.cfgs[&mid].node_of(idx);
                    // Arguments → formals.
                    for (k, &arg) in args.iter().enumerate() {
                        let labels = self.labels_at(mid, node, arg);
                        if labels.is_empty() {
                            continue;
                        }
                        for &t in &targets {
                            // Pruned callees of a sliced run have no space.
                            let Some(formal) = self
                                .spaces
                                .get(&t)
                                .and_then(|s| s.instance(Instance::Formal(k as u8)))
                            else {
                                continue;
                            };
                            let entry = self.taint.entry(t).or_default().entry(formal).or_default();
                            let before = entry.len();
                            entry.extend(labels.iter().copied());
                            changed |= entry.len() != before;
                        }
                    }
                    // Returns → CallRet.
                    let mut ret_labels = BTreeSet::new();
                    for &t in &targets {
                        ret_labels.extend(self.return_labels(t));
                    }
                    if !ret_labels.is_empty() {
                        if let Some(inst) = self.spaces[&mid].instance(Instance::CallRet(idx)) {
                            let entry = self.taint.entry(mid).or_default().entry(inst).or_default();
                            let before = entry.len();
                            entry.extend(ret_labels);
                            changed |= entry.len() != before;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Scans sink call sites for tainted arguments.
    fn find_leaks(&mut self) -> Vec<Leak> {
        let mut leaks = Vec::new();
        let mut methods: Vec<MethodId> = self.spaces.keys().copied().collect();
        methods.sort_unstable();
        for &mid in &methods {
            let calls: Vec<(gdroid_ir::StmtIdx, String, Vec<gdroid_ir::VarId>)> = self
                .program
                .methods[mid]
                .body
                .iter_enumerated()
                .filter_map(|(idx, s)| match s {
                    Stmt::Call { sig, args, .. } => {
                        self.registry.sink_of(sig).map(|sink| (idx, sink.to_owned(), args.clone()))
                    }
                    _ => None,
                })
                .collect();
            for (idx, sink, args) in calls {
                let node = self.cfgs[&mid].node_of(idx);
                let mut labels = BTreeSet::new();
                for &arg in &args {
                    labels.extend(self.labels_at(mid, node, arg));
                }
                if !labels.is_empty() {
                    leaks.push(Leak {
                        method: mid,
                        stmt: idx,
                        sink,
                        sources: labels.into_iter().collect(),
                    });
                }
            }
        }
        leaks.sort_by_key(|l| (l.method, l.stmt));
        leaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_analysis::{analyze_app, StoreKind};
    use gdroid_apk::{generate_app, GenConfig, Permission};
    use gdroid_icfg::prepare_app;

    fn vet(seed: u64) -> (gdroid_apk::App, VettingReport) {
        let mut app = generate_app(0, seed, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        let analysis = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);
        let registry = SourceSinkRegistry::for_program(&app.program);
        let engine = TaintAnalysis::new(
            &app.program,
            &cg,
            &analysis.facts,
            &analysis.spaces,
            &analysis.cfgs,
            &registry,
        );
        let (report, stats) = engine.run();
        assert!(stats.passes >= 1);
        (app, report)
    }

    #[test]
    fn planted_leaks_are_detected() {
        // Scan seeds until we hit apps with and without planted leaks;
        // the generator plants source→sink flows in ~35% of apps.
        let mut leaky_found = false;
        let mut clean_found = false;
        for seed in 0..12 {
            let (app, report) = vet(3000 + seed);
            let planted = app.manifest.has_permission(Permission::ReadPhoneState);
            if planted {
                // A planted leak calls source + sink on a shared value.
                if !report.leaks.is_empty() {
                    leaky_found = true;
                }
            } else if report.leaks.is_empty() {
                clean_found = true;
            }
        }
        assert!(leaky_found, "no planted leak was ever detected");
        assert!(clean_found, "every clean app was flagged");
    }

    #[test]
    fn leak_reports_name_source_and_sink() {
        for seed in 0..20 {
            let (_, report) = vet(3100 + seed);
            for leak in &report.leaks {
                assert!(!leak.sink.is_empty());
                assert!(!leak.sources.is_empty());
            }
            if !report.leaks.is_empty() {
                assert!(!report.source_names.is_empty());
                return;
            }
        }
        panic!("no leaks in 20 apps");
    }

    #[test]
    fn taint_is_deterministic() {
        let (_, r1) = vet(3200);
        let (_, r2) = vet(3200);
        assert_eq!(r1.leaks.len(), r2.leaks.len());
        for (a, b) in r1.leaks.iter().zip(&r2.leaks) {
            assert_eq!(a.method, b.method);
            assert_eq!(a.stmt, b.stmt);
            assert_eq!(a.sources, b.sources);
        }
    }
}
