//! Whole-program container: interner, classes, fields, methods.

use crate::idx::{ClassId, FieldId, IndexVec, MethodId, Symbol};
use crate::method::{Method, Signature};
use crate::types::JType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A string interner. [`Symbol`]s are indices into its table.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Interner {
    strings: Vec<String>,
    #[serde(skip)]
    lookup: HashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(s) {
            return sym;
        }
        let sym = Symbol::new(self.strings.len());
        self.strings.push(s.to_owned());
        self.lookup.insert(s.to_owned(), sym);
        sym
    }

    /// Resolves a symbol to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Looks up an already-interned string.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.lookup.get(s).copied()
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Rebuilds the reverse lookup table (needed after deserialization,
    /// where the map is skipped).
    pub fn rebuild_lookup(&mut self) {
        self.lookup =
            self.strings.iter().enumerate().map(|(i, s)| (s.clone(), Symbol::new(i))).collect();
    }
}

/// A field declaration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDef {
    /// Declaring class.
    pub class: ClassId,
    /// Field name.
    pub name: Symbol,
    /// Declared type.
    pub ty: JType,
    /// Whether the field is static.
    pub is_static: bool,
}

/// A class definition.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassDef {
    /// Fully-qualified interned name.
    pub name: Symbol,
    /// Superclass, if any (only `java/lang/Object` has none).
    pub superclass: Option<ClassId>,
    /// Declared fields.
    pub fields: Vec<FieldId>,
    /// Declared methods.
    pub methods: Vec<MethodId>,
    /// Whether this is an interface.
    pub is_interface: bool,
}

/// A whole program: the unit the analyses consume.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// String interner for all names.
    pub interner: Interner,
    /// All classes.
    pub classes: IndexVec<ClassId, ClassDef>,
    /// All fields.
    pub fields: IndexVec<FieldId, FieldDef>,
    /// All methods.
    pub methods: IndexVec<MethodId, Method>,
    /// Class lookup by name.
    #[serde(skip)]
    class_by_name: HashMap<Symbol, ClassId>,
    /// Method lookup by signature.
    #[serde(skip)]
    method_by_sig: HashMap<Signature, MethodId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a class; the caller has already pushed it. Internal —
    /// used by the builder.
    pub(crate) fn index_class(&mut self, id: ClassId) {
        let name = self.classes[id].name;
        self.class_by_name.insert(name, id);
    }

    /// Registers a method for signature lookup. Internal — used by builder.
    pub(crate) fn index_method(&mut self, id: MethodId) {
        let sig = self.methods[id].sig.clone();
        self.method_by_sig.insert(sig, id);
    }

    /// Looks up a class by interned name.
    pub fn class_by_name(&self, name: Symbol) -> Option<ClassId> {
        self.class_by_name.get(&name).copied()
    }

    /// Looks up a method by exact signature.
    pub fn method_by_sig(&self, sig: &Signature) -> Option<MethodId> {
        self.method_by_sig.get(sig).copied()
    }

    /// Resolves a method by (class, name) pair, walking up the superclass
    /// chain — a simplified virtual-dispatch resolution.
    pub fn resolve_method(&self, class: ClassId, sig: &Signature) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(cid) = cur {
            let cdef = &self.classes[cid];
            let candidate = Signature { class: cdef.name, ..sig.clone() };
            if let Some(mid) = self.method_by_sig(&candidate) {
                return Some(mid);
            }
            cur = cdef.superclass;
        }
        None
    }

    /// All subclasses (transitive, including `class` itself). Used by
    /// class-hierarchy-analysis call-graph construction.
    pub fn subtree_of(&self, class: ClassId) -> Vec<ClassId> {
        // Children index computed on the fly; programs are small enough
        // (hundreds of classes) that this is not a hot path.
        let mut children: HashMap<ClassId, Vec<ClassId>> = HashMap::new();
        for (id, c) in self.classes.iter_enumerated() {
            if let Some(sup) = c.superclass {
                children.entry(sup).or_default().push(id);
            }
        }
        let mut out = vec![class];
        let mut stack = vec![class];
        while let Some(c) = stack.pop() {
            if let Some(kids) = children.get(&c) {
                for &k in kids {
                    out.push(k);
                    stack.push(k);
                }
            }
        }
        out
    }

    /// Total statement count across all methods — "CFG nodes" in the
    /// paper's Table I sense (one node per statement, plus entry/exit
    /// added by the ICFG layer).
    pub fn total_statements(&self) -> usize {
        self.methods.iter().map(|m| m.len()).sum()
    }

    /// Total variable count across all methods.
    pub fn total_vars(&self) -> usize {
        self.methods.iter().map(|m| m.var_count()).sum()
    }

    /// Rebuilds skipped lookup tables after deserialization.
    pub fn rebuild_lookups(&mut self) {
        self.interner.rebuild_lookup();
        self.class_by_name = self.classes.iter_enumerated().map(|(id, c)| (c.name, id)).collect();
        self.method_by_sig =
            self.methods.iter_enumerated().map(|(id, m)| (m.sig.clone(), id)).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dedups() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("bar");
        let c = i.intern("foo");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "foo");
        assert_eq!(i.get("bar"), Some(b));
        assert_eq!(i.get("baz"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn interner_rebuild_after_clearing_lookup() {
        let mut i = Interner::new();
        let a = i.intern("x");
        i.lookup.clear();
        i.rebuild_lookup();
        assert_eq!(i.get("x"), Some(a));
    }
}
