//! Dense index newtypes used across the IR and all downstream analyses.
//!
//! Every entity (class, method, field, local variable, statement) is
//! identified by a `u32`-backed newtype. Dense indices keep downstream data
//! structures (CFG adjacency, fact matrices, GPU buffers) flat and
//! allocation-free, which is the property the paper's MAT optimization
//! depends on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Declares a `u32`-backed dense index newtype with the common conversions.
macro_rules! index_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an index from a raw `usize`, panicking on overflow.
            #[inline]
            pub fn new(raw: usize) -> Self {
                debug_assert!(raw <= u32::MAX as usize, "index overflow");
                Self(raw as u32)
            }

            /// Returns the raw index as a `usize`, suitable for slice indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(idx: $name) -> u32 {
                idx.0
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(idx: $name) -> usize {
                idx.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

index_type!(
    /// Identifies a class within a [`crate::Program`].
    ClassId,
    "C"
);
index_type!(
    /// Identifies a method within a [`crate::Program`].
    MethodId,
    "M"
);
index_type!(
    /// Identifies a field declaration within a [`crate::Program`].
    FieldId,
    "F"
);
index_type!(
    /// Identifies a local variable (or parameter) within one method body.
    VarId,
    "v"
);
index_type!(
    /// Identifies a statement within one method body (its position).
    StmtIdx,
    "L"
);
index_type!(
    /// An interned string. Symbols are only meaningful relative to the
    /// [`crate::Interner`] that produced them.
    Symbol,
    "s"
);

/// A strongly typed, growable vector indexed by one of the dense index types.
///
/// This is a thin wrapper over `Vec<T>` that only accepts the matching index
/// newtype, preventing cross-entity index mixups at compile time.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexVec<I, T> {
    raw: Vec<T>,
    _marker: std::marker::PhantomData<fn(I)>,
}

impl<I, T> Default for IndexVec<I, T> {
    fn default() -> Self {
        Self { raw: Vec::new(), _marker: std::marker::PhantomData }
    }
}

impl<I: Into<usize> + From<u32> + Copy + 'static, T> IndexVec<I, T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty vector with space reserved for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        Self { raw: Vec::with_capacity(cap), _marker: std::marker::PhantomData }
    }

    /// Appends an element and returns its index.
    pub fn push(&mut self, value: T) -> I {
        let idx = I::from(self.raw.len() as u32);
        self.raw.push(value);
        idx
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Immutable access by typed index.
    pub fn get(&self, idx: I) -> Option<&T> {
        self.raw.get(idx.into())
    }

    /// Iterates over `(index, element)` pairs.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw.iter().enumerate().map(|(i, t)| (I::from(i as u32), t))
    }

    /// Iterates over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterates over all valid indices.
    pub fn indices(&self) -> impl Iterator<Item = I> + 'static {
        (0..self.raw.len() as u32).map(I::from)
    }

    /// Returns the underlying slice.
    pub fn as_slice(&self) -> &[T] {
        &self.raw
    }
}

impl<I: Into<usize> + From<u32> + Copy, T> std::ops::Index<I> for IndexVec<I, T> {
    type Output = T;

    #[inline]
    fn index(&self, idx: I) -> &T {
        &self.raw[idx.into()]
    }
}

impl<I: Into<usize> + From<u32> + Copy, T> std::ops::IndexMut<I> for IndexVec<I, T> {
    #[inline]
    fn index_mut(&mut self, idx: I) -> &mut T {
        &mut self.raw[idx.into()]
    }
}

impl<I, T> FromIterator<T> for IndexVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        Self { raw: iter.into_iter().collect(), _marker: std::marker::PhantomData }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let idx = StmtIdx::new(42);
        assert_eq!(idx.index(), 42);
        assert_eq!(u32::from(idx), 42);
        assert_eq!(StmtIdx::from(42u32), idx);
    }

    #[test]
    fn index_display_uses_prefix() {
        assert_eq!(format!("{}", StmtIdx(7)), "L7");
        assert_eq!(format!("{}", MethodId(3)), "M3");
        assert_eq!(format!("{:?}", VarId(0)), "v0");
    }

    #[test]
    fn index_vec_push_and_lookup() {
        let mut v: IndexVec<VarId, &str> = IndexVec::new();
        let a = v.push("a");
        let b = v.push("b");
        assert_eq!(v[a], "a");
        assert_eq!(v[b], "b");
        assert_eq!(v.len(), 2);
        let collected: Vec<_> = v.iter_enumerated().map(|(i, t)| (i.index(), *t)).collect();
        assert_eq!(collected, vec![(0, "a"), (1, "b")]);
    }

    #[test]
    fn index_vec_indices_iterate_in_order() {
        let v: IndexVec<StmtIdx, i32> = (0..5).collect();
        let idxs: Vec<usize> = v.indices().map(|i| i.index()).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(StmtIdx(1) < StmtIdx(2));
        assert_eq!(StmtIdx::default(), StmtIdx(0));
    }
}
