//! Java/Dalvik-style types carried by the IR.
//!
//! The analysis is type-assisted rather than type-driven: types decide which
//! slots an expression can touch (object vs. primitive) and how call targets
//! resolve through the class hierarchy.

use crate::idx::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Java-like type as it appears in Dalvik descriptors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JType {
    /// `void` — only valid as a return type.
    Void,
    /// `boolean`
    Boolean,
    /// `byte`
    Byte,
    /// `char`
    Char,
    /// `short`
    Short,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `float`
    Float,
    /// `double`
    Double,
    /// A class or interface type, by interned fully-qualified name.
    Object(Symbol),
    /// A one-dimensional array of the element type.
    ///
    /// Element types are restricted to non-array types so that `JType` stays
    /// `Copy`; multi-dimensional arrays are modeled as arrays of `Object`
    /// wrapper classes by the generator, which is faithful enough for
    /// points-to purposes.
    Array(ArrayElem),
}

/// The element type of an array — a flattened subset of [`JType`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrayElem {
    /// Array of primitives (`int[]`, `byte[]`, …).
    Prim(PrimKind),
    /// Array of objects (`Ljava/lang/String;[]`, …).
    Object(Symbol),
}

/// Primitive kinds, used inside [`ArrayElem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimKind {
    /// `boolean`
    Boolean,
    /// `byte`
    Byte,
    /// `char`
    Char,
    /// `short`
    Short,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `float`
    Float,
    /// `double`
    Double,
}

impl JType {
    /// Whether values of this type live on the heap (objects and arrays).
    ///
    /// Only reference-typed slots participate in points-to facts; primitive
    /// assignments are identity transfers for the IDFG.
    #[inline]
    pub fn is_reference(&self) -> bool {
        matches!(self, JType::Object(_) | JType::Array(_))
    }

    /// Whether this is a primitive (non-void, non-reference) type.
    #[inline]
    pub fn is_primitive(&self) -> bool {
        !self.is_reference() && !matches!(self, JType::Void)
    }

    /// Object type constructor from an interned class name.
    #[inline]
    pub fn object(name: Symbol) -> Self {
        JType::Object(name)
    }

    /// Object-array type constructor from an interned class name.
    #[inline]
    pub fn object_array(name: Symbol) -> Self {
        JType::Array(ArrayElem::Object(name))
    }

    /// The class name if this is an object type (not an array).
    #[inline]
    pub fn class_name(&self) -> Option<Symbol> {
        match self {
            JType::Object(s) => Some(*s),
            _ => None,
        }
    }

    /// The Dalvik-style one-character descriptor for primitives, or `None`.
    pub fn descriptor_char(&self) -> Option<char> {
        Some(match self {
            JType::Void => 'V',
            JType::Boolean => 'Z',
            JType::Byte => 'B',
            JType::Char => 'C',
            JType::Short => 'S',
            JType::Int => 'I',
            JType::Long => 'J',
            JType::Float => 'F',
            JType::Double => 'D',
            _ => return None,
        })
    }

    /// Parses a primitive descriptor character.
    pub fn from_descriptor_char(c: char) -> Option<Self> {
        Some(match c {
            'V' => JType::Void,
            'Z' => JType::Boolean,
            'B' => JType::Byte,
            'C' => JType::Char,
            'S' => JType::Short,
            'I' => JType::Int,
            'J' => JType::Long,
            'F' => JType::Float,
            'D' => JType::Double,
            _ => return None,
        })
    }
}

impl fmt::Display for JType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JType::Object(s) => write!(f, "L{s};"),
            JType::Array(ArrayElem::Object(s)) => write!(f, "[L{s};"),
            JType::Array(ArrayElem::Prim(p)) => write!(f, "[{}", prim_char(*p)),
            other => write!(f, "{}", other.descriptor_char().unwrap()),
        }
    }
}

fn prim_char(p: PrimKind) -> char {
    match p {
        PrimKind::Boolean => 'Z',
        PrimKind::Byte => 'B',
        PrimKind::Char => 'C',
        PrimKind::Short => 'S',
        PrimKind::Int => 'I',
        PrimKind::Long => 'J',
        PrimKind::Float => 'F',
        PrimKind::Double => 'D',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_classification() {
        assert!(JType::Object(Symbol(0)).is_reference());
        assert!(JType::Array(ArrayElem::Prim(PrimKind::Int)).is_reference());
        assert!(!JType::Int.is_reference());
        assert!(!JType::Void.is_reference());
        assert!(JType::Int.is_primitive());
        assert!(!JType::Void.is_primitive());
        assert!(!JType::Object(Symbol(0)).is_primitive());
    }

    #[test]
    fn descriptor_roundtrip() {
        for c in ['V', 'Z', 'B', 'C', 'S', 'I', 'J', 'F', 'D'] {
            let t = JType::from_descriptor_char(c).unwrap();
            assert_eq!(t.descriptor_char(), Some(c));
        }
        assert_eq!(JType::from_descriptor_char('X'), None);
        assert_eq!(JType::Object(Symbol(0)).descriptor_char(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(JType::Int.to_string(), "I");
        assert_eq!(JType::Object(Symbol(3)).to_string(), "Ls3;");
        assert_eq!(JType::Array(ArrayElem::Prim(PrimKind::Int)).to_string(), "[I");
    }

    #[test]
    fn class_name_extraction() {
        assert_eq!(JType::Object(Symbol(5)).class_name(), Some(Symbol(5)));
        assert_eq!(JType::Int.class_name(), None);
        assert_eq!(JType::object_array(Symbol(5)).class_name(), None);
    }
}
