//! Fluent builders for programs, classes, and method bodies.
//!
//! The synthetic app generator (`gdroid-apk`) and the hand-written test
//! fixtures both construct IR through this API, so well-formedness
//! conventions (e.g. `this` is always `v0` of instance methods) are encoded
//! once, here.

use crate::idx::{ClassId, FieldId, IndexVec, MethodId, StmtIdx, Symbol, VarId};
use crate::method::{Method, MethodKind, ParamDecl, Signature, VarDecl, Visibility};
use crate::program::{ClassDef, FieldDef, Program};
use crate::stmt::Stmt;
use crate::types::JType;

/// A structural error from a body-patching builder call — returned (not
/// panicked) so a malformed construction request from an untrusted caller
/// (e.g. a vetting-service job) cannot abort the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuilderError {
    /// `replace_switch` aimed at a statement that is not a `Switch`.
    NotASwitch {
        /// The statement index that was targeted.
        at: StmtIdx,
        /// Kind of the statement actually found there.
        found: crate::stmt::StmtKind,
    },
    /// `patch_target` aimed at a statement with no patchable target
    /// (only `Goto`, `If`, and `Switch` defaults can be patched).
    NotPatchable {
        /// The statement index that was targeted.
        at: StmtIdx,
        /// Kind of the statement actually found there.
        found: crate::stmt::StmtKind,
    },
}

impl std::fmt::Display for BuilderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuilderError::NotASwitch { at, found } => {
                write!(f, "replace_switch at {at}: expected Switch, found {found:?}")
            }
            BuilderError::NotPatchable { at, found } => {
                write!(f, "patch_target at {at}: {found:?} has no patchable branch target")
            }
        }
    }
}

impl std::error::Error for BuilderError {}

/// Builds a [`Program`] incrementally.
#[derive(Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates a fresh builder with an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resumes building on top of an existing program — used by the
    /// environment synthesizer, which adds methods to already-generated
    /// apps.
    pub fn from_program(program: Program) -> Self {
        Self { program }
    }

    /// Interns a string.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.program.interner.intern(s)
    }

    /// Starts a class. `superclass` must already exist if given by name.
    pub fn class(&mut self, name: &str) -> ClassBuilder<'_> {
        let name = self.intern(name);
        ClassBuilder { pb: self, name, superclass: None, is_interface: false }
    }

    /// Looks up a previously added class.
    pub fn find_class(&self, name: Symbol) -> Option<ClassId> {
        self.program.class_by_name(name)
    }

    /// Adds a field to an existing class, returning its id.
    pub fn field(&mut self, class: ClassId, name: &str, ty: JType, is_static: bool) -> FieldId {
        let name = self.intern(name);
        let fid = self.program.fields.push(FieldDef { class, name, ty, is_static });
        self.program.classes[class].fields.push(fid);
        fid
    }

    /// Starts a method on an existing class.
    pub fn method(&mut self, class: ClassId, name: &str) -> MethodBuilder<'_> {
        let name_sym = self.intern(name);
        let class_name = self.program.classes[class].name;
        MethodBuilder {
            pb: self,
            class,
            sig: Signature::new(class_name, name_sym, Vec::new(), JType::Void),
            kind: MethodKind::Instance,
            visibility: Visibility::Public,
            this_var: None,
            params: Vec::new(),
            vars: IndexVec::new(),
            body: IndexVec::new(),
            auto_this: true,
        }
    }

    /// Finishes, returning the program.
    pub fn finish(self) -> Program {
        self.program
    }

    /// Read-only access to the program under construction.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

/// Builds one class.
pub struct ClassBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    name: Symbol,
    superclass: Option<ClassId>,
    is_interface: bool,
}

impl<'a> ClassBuilder<'a> {
    /// Sets the superclass (by id).
    pub fn extends(mut self, superclass: ClassId) -> Self {
        self.superclass = Some(superclass);
        self
    }

    /// Marks the class as an interface.
    pub fn interface(mut self) -> Self {
        self.is_interface = true;
        self
    }

    /// Finalizes the class and returns its id.
    pub fn build(self) -> ClassId {
        let id = self.pb.program.classes.push(ClassDef {
            name: self.name,
            superclass: self.superclass,
            fields: Vec::new(),
            methods: Vec::new(),
            is_interface: self.is_interface,
        });
        self.pb.program.index_class(id);
        id
    }
}

/// Builds one method body.
pub struct MethodBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    class: ClassId,
    sig: Signature,
    kind: MethodKind,
    visibility: Visibility,
    this_var: Option<VarId>,
    params: Vec<ParamDecl>,
    vars: IndexVec<VarId, VarDecl>,
    body: IndexVec<StmtIdx, Stmt>,
    auto_this: bool,
}

impl<'a> MethodBuilder<'a> {
    /// Sets the method kind. `Static` suppresses the implicit `this`.
    pub fn kind(mut self, kind: MethodKind) -> Self {
        self.kind = kind;
        if matches!(kind, MethodKind::Static | MethodKind::Environment) {
            self.auto_this = false;
        }
        self
    }

    /// Sets visibility.
    pub fn visibility(mut self, v: Visibility) -> Self {
        self.visibility = v;
        self
    }

    /// Sets the return type.
    pub fn returns(mut self, ty: JType) -> Self {
        self.sig.ret = ty;
        self
    }

    /// Sets the return type without consuming the builder (for use after
    /// body generation has started).
    pub fn set_returns(&mut self, ty: JType) {
        self.sig.ret = ty;
    }

    /// Interns a string via the underlying program builder.
    pub fn intern(&mut self, s: &str) -> crate::idx::Symbol {
        self.pb.intern(s)
    }

    /// Read access to the program under construction (classes declared so
    /// far, etc.).
    pub fn pb_program(&self) -> &crate::program::Program {
        self.pb.program()
    }

    /// Replaces a previously appended `Switch` statement wholesale — used
    /// by generators that know the case targets only after emitting the
    /// case blocks. Errors if the statement at `at` is not a `Switch`.
    pub fn replace_switch(
        &mut self,
        at: StmtIdx,
        var: VarId,
        targets: Vec<StmtIdx>,
        default: StmtIdx,
    ) -> Result<(), BuilderError> {
        match &self.body[at] {
            Stmt::Switch { .. } => {
                self.body[at] = Stmt::Switch { var, targets, default };
                Ok(())
            }
            other => Err(BuilderError::NotASwitch { at, found: other.kind() }),
        }
    }

    fn ensure_this(&mut self) {
        if self.auto_this && self.this_var.is_none() {
            let name = self.pb.intern("this");
            let class_name = self.pb.program.classes[self.class].name;
            let v = self.vars.push(VarDecl { name, ty: JType::Object(class_name) });
            self.this_var = Some(v);
        }
    }

    /// Declares a parameter; returns its variable.
    pub fn param(&mut self, name: &str, ty: JType) -> VarId {
        self.ensure_this();
        let name = self.pb.intern(name);
        let v = self.vars.push(VarDecl { name, ty });
        self.params.push(ParamDecl { var: v, ty });
        self.sig.params.push(ty);
        v
    }

    /// Declares a local variable; returns its id.
    pub fn local(&mut self, name: &str, ty: JType) -> VarId {
        self.ensure_this();
        let name = self.pb.intern(name);
        self.vars.push(VarDecl { name, ty })
    }

    /// The receiver variable, declaring it if needed.
    pub fn this(&mut self) -> VarId {
        self.ensure_this();
        self.this_var.expect("static methods have no `this`")
    }

    /// Appends a statement; returns its index.
    pub fn stmt(&mut self, s: Stmt) -> StmtIdx {
        self.ensure_this();
        self.body.push(s)
    }

    /// Index that the *next* appended statement will get — for forward
    /// branch targets.
    pub fn next_idx(&self) -> StmtIdx {
        StmtIdx::new(self.body.len())
    }

    /// Patches a previously appended `Goto`/`If` statement's target (or a
    /// `Switch`'s default). Errors if the statement at `at` has no
    /// patchable target.
    pub fn patch_target(&mut self, at: StmtIdx, target: StmtIdx) -> Result<(), BuilderError> {
        match &mut self.body[at] {
            Stmt::Goto { target: t } | Stmt::If { target: t, .. } => *t = target,
            Stmt::Switch { default, .. } => *default = target,
            other => return Err(BuilderError::NotPatchable { at, found: other.kind() }),
        }
        Ok(())
    }

    /// Finalizes the method, registering it on its class; returns its id.
    pub fn build(mut self) -> MethodId {
        self.ensure_this();
        let method = Method {
            sig: self.sig,
            kind: self.kind,
            visibility: self.visibility,
            this_var: self.this_var,
            params: self.params,
            vars: self.vars,
            body: self.body,
        };
        let mid = self.pb.program.methods.push(method);
        self.pb.program.classes[self.class].methods.push(mid);
        self.pb.program.index_method(mid);
        mid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::stmt::Lhs;

    #[test]
    fn builds_class_with_method() {
        let mut pb = ProgramBuilder::new();
        let obj = pb.class("java/lang/Object").build();
        let cls = pb.class("com/example/A").extends(obj).build();
        let f = pb.field(cls, "data", JType::Object(pb.program().classes[obj].name), false);

        let mut mb = pb.method(cls, "run");
        let this = mb.this();
        let tmp = mb.local("tmp", JType::Object(Symbol(0)));
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(tmp), rhs: Expr::Access { base: this, field: f } });
        mb.stmt(Stmt::Return { var: None });
        let mid = mb.build();

        let p = pb.finish();
        assert_eq!(p.classes.len(), 2);
        assert_eq!(p.methods.len(), 1);
        let m = &p.methods[mid];
        assert_eq!(m.len(), 2);
        assert_eq!(m.this_var, Some(VarId(0)));
        assert_eq!(m.var_count(), 2);
        assert!(p.method_by_sig(&m.sig).is_some());
    }

    #[test]
    fn static_method_has_no_this() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("com/example/B").build();
        let mut mb = pb.method(cls, "main").kind(MethodKind::Static);
        let p0 = mb.param("args", JType::Int);
        mb.stmt(Stmt::Return { var: None });
        let mid = mb.build();
        let p = pb.finish();
        let m = &p.methods[mid];
        assert_eq!(m.this_var, None);
        assert_eq!(p0, VarId(0));
        assert_eq!(m.sig.params, vec![JType::Int]);
    }

    #[test]
    fn forward_patching() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("com/example/C").build();
        let mut mb = pb.method(cls, "loopy").kind(MethodKind::Static);
        let c = mb.local("c", JType::Int);
        let g = mb.stmt(Stmt::If { cond: c, target: StmtIdx(0) });
        mb.stmt(Stmt::Empty);
        let end = mb.next_idx();
        mb.patch_target(g, end).unwrap();
        mb.stmt(Stmt::Return { var: None });
        let mid = mb.build();
        let p = pb.finish();
        match &p.methods[mid].body[g] {
            Stmt::If { target, .. } => assert_eq!(*target, end),
            _ => unreachable!(),
        }
    }

    #[test]
    fn mispatched_statements_error_instead_of_panicking() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("com/example/E").build();
        let mut mb = pb.method(cls, "broken").kind(MethodKind::Static);
        let v = mb.local("v", JType::Int);
        let ret = mb.stmt(Stmt::Return { var: None });
        let err = mb.patch_target(ret, StmtIdx(0)).unwrap_err();
        assert!(matches!(err, BuilderError::NotPatchable { .. }));
        assert!(err.to_string().contains("no patchable branch target"), "{err}");
        let err = mb.replace_switch(ret, v, vec![], StmtIdx(0)).unwrap_err();
        assert!(matches!(err, BuilderError::NotASwitch { .. }));
        assert!(err.to_string().contains("expected Switch"), "{err}");
        // The builder is still usable after the failed patches.
        mb.stmt(Stmt::Empty);
        mb.build();
    }

    #[test]
    fn resolve_walks_superclass_chain() {
        let mut pb = ProgramBuilder::new();
        let base = pb.class("Base").build();
        let derived = pb.class("Derived").extends(base).build();
        let mut mb = pb.method(base, "m");
        mb.stmt(Stmt::Return { var: None });
        let base_m = mb.build();
        let p = pb.finish();
        let sig = p.methods[base_m].sig.clone();
        // Resolution from Derived finds Base::m.
        assert_eq!(p.resolve_method(derived, &sig), Some(base_m));
    }
}
