//! Structural well-formedness checks for programs and methods.
//!
//! The synthetic generator and the parser both produce IR that is validated
//! before analysis; the analyses are then free to index without bounds
//! anxiety.

use crate::idx::{MethodId, StmtIdx, VarId};
use crate::method::Method;
use crate::program::Program;
use crate::stmt::Stmt;
use std::fmt;

/// A validation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// A branch target points outside the method body.
    TargetOutOfRange {
        /// Offending method.
        method: MethodId,
        /// Statement containing the branch.
        stmt: StmtIdx,
        /// The out-of-range target.
        target: StmtIdx,
    },
    /// A variable is referenced but not declared.
    UndeclaredVar {
        /// Offending method.
        method: MethodId,
        /// Statement referencing the variable.
        stmt: StmtIdx,
        /// The undeclared variable.
        var: VarId,
    },
    /// A call's argument count does not match its signature's parameter
    /// count (+1 receiver for non-static dispatch).
    CallArityMismatch {
        /// Offending method.
        method: MethodId,
        /// The call statement.
        stmt: StmtIdx,
        /// Arguments supplied.
        supplied: usize,
        /// Arguments expected.
        expected: usize,
    },
    /// A method body's last statement can fall through past the end.
    FallsOffEnd {
        /// Offending method.
        method: MethodId,
    },
    /// A method has an empty body.
    EmptyBody {
        /// Offending method.
        method: MethodId,
    },
    /// A field index is out of range for the program.
    BadFieldRef {
        /// Offending method.
        method: MethodId,
        /// Statement with the bad reference.
        stmt: StmtIdx,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::TargetOutOfRange { method, stmt, target } => {
                write!(f, "{method}:{stmt}: branch target {target} out of range")
            }
            ValidationError::UndeclaredVar { method, stmt, var } => {
                write!(f, "{method}:{stmt}: variable {var} not declared")
            }
            ValidationError::CallArityMismatch { method, stmt, supplied, expected } => {
                write!(f, "{method}:{stmt}: call supplies {supplied} args, expects {expected}")
            }
            ValidationError::FallsOffEnd { method } => {
                write!(f, "{method}: control can fall off the end of the body")
            }
            ValidationError::EmptyBody { method } => write!(f, "{method}: empty body"),
            ValidationError::BadFieldRef { method, stmt } => {
                write!(f, "{method}:{stmt}: field reference out of range")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates one method, appending problems to `errors`.
pub fn validate_method(
    program: &Program,
    mid: MethodId,
    method: &Method,
    errors: &mut Vec<ValidationError>,
) {
    if method.body.is_empty() {
        errors.push(ValidationError::EmptyBody { method: mid });
        return;
    }
    let n = method.body.len();
    let nvars = method.vars.len();
    let nfields = program.fields.len();
    let mut uses = Vec::new();
    let mut targets = Vec::new();
    for (idx, stmt) in method.body.iter_enumerated() {
        uses.clear();
        stmt.uses(&mut uses);
        if let Some(d) = stmt.defined_var() {
            uses.push(d);
        }
        for &v in &uses {
            if v.index() >= nvars {
                errors.push(ValidationError::UndeclaredVar { method: mid, stmt: idx, var: v });
            }
        }
        targets.clear();
        stmt.jump_targets(&mut targets);
        for &t in &targets {
            if t.index() >= n {
                errors.push(ValidationError::TargetOutOfRange {
                    method: mid,
                    stmt: idx,
                    target: t,
                });
            }
        }
        match stmt {
            Stmt::Call { kind, sig, args, .. } => {
                let receiver = match kind {
                    crate::stmt::CallKind::Static => 0,
                    _ => 1,
                };
                let expected = sig.params.len() + receiver;
                if args.len() != expected {
                    errors.push(ValidationError::CallArityMismatch {
                        method: mid,
                        stmt: idx,
                        supplied: args.len(),
                        expected,
                    });
                }
            }
            Stmt::Assign { lhs, rhs } => {
                let mut check_field = |fid: crate::idx::FieldId| {
                    if fid.index() >= nfields {
                        errors.push(ValidationError::BadFieldRef { method: mid, stmt: idx });
                    }
                };
                match lhs {
                    crate::stmt::Lhs::Field { field, .. }
                    | crate::stmt::Lhs::StaticField { field } => check_field(*field),
                    _ => {}
                }
                match rhs {
                    crate::expr::Expr::Access { field, .. }
                    | crate::expr::Expr::StaticField { field } => check_field(*field),
                    _ => {}
                }
            }
            _ => {}
        }
    }
    // The final statement must not fall through.
    let last = &method.body[StmtIdx::new(n - 1)];
    if last.falls_through() {
        errors.push(ValidationError::FallsOffEnd { method: mid });
    }
}

/// Validates a whole program. Returns all problems found (empty = valid).
pub fn validate_program(program: &Program) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    for (mid, m) in program.methods.iter_enumerated() {
        validate_method(program, mid, m, &mut errors);
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::Expr;
    use crate::method::MethodKind;
    use crate::stmt::{CallKind, Lhs};
    use crate::types::JType;

    #[test]
    fn valid_program_passes() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let mut mb = pb.method(cls, "m").kind(MethodKind::Static);
        let v = mb.local("v", JType::Int);
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(v), rhs: Expr::Lit(crate::expr::Literal::Int(0)) });
        mb.stmt(Stmt::Return { var: None });
        mb.build();
        let p = pb.finish();
        assert!(validate_program(&p).is_empty());
    }

    #[test]
    fn detects_bad_target() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let mut mb = pb.method(cls, "m").kind(MethodKind::Static);
        mb.stmt(Stmt::Goto { target: StmtIdx(99) });
        mb.stmt(Stmt::Return { var: None });
        mb.build();
        let p = pb.finish();
        let errs = validate_program(&p);
        assert!(matches!(errs[0], ValidationError::TargetOutOfRange { .. }));
    }

    #[test]
    fn detects_undeclared_var_and_fall_off() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let mut mb = pb.method(cls, "m").kind(MethodKind::Static);
        mb.stmt(Stmt::Throw { var: VarId(7) });
        mb.stmt(Stmt::Empty); // falls off the end
        mb.build();
        let p = pb.finish();
        let errs = validate_program(&p);
        assert!(errs.iter().any(|e| matches!(e, ValidationError::UndeclaredVar { .. })));
        assert!(errs.iter().any(|e| matches!(e, ValidationError::FallsOffEnd { .. })));
    }

    #[test]
    fn detects_call_arity_mismatch() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let callee_sig = {
            let mut mb = pb.method(cls, "callee").kind(MethodKind::Static);
            mb.param("x", JType::Int);
            mb.stmt(Stmt::Return { var: None });
            let mid = mb.build();
            pb.program().methods[mid].sig.clone()
        };
        let mut mb = pb.method(cls, "caller").kind(MethodKind::Static);
        mb.stmt(Stmt::Call { ret: None, kind: CallKind::Static, sig: callee_sig, args: vec![] });
        mb.stmt(Stmt::Return { var: None });
        mb.build();
        let p = pb.finish();
        let errs = validate_program(&p);
        assert!(errs.iter().any(|e| matches!(
            e,
            ValidationError::CallArityMismatch { supplied: 0, expected: 1, .. }
        )));
    }

    #[test]
    fn detects_empty_body() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let mb = pb.method(cls, "m").kind(MethodKind::Static);
        mb.build();
        let p = pb.finish();
        let errs = validate_program(&p);
        assert!(matches!(errs[0], ValidationError::EmptyBody { .. }));
    }

    #[test]
    fn virtual_call_expects_receiver() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let callee_sig = {
            let mut mb = pb.method(cls, "vm");
            let _ = mb.this();
            mb.stmt(Stmt::Return { var: None });
            let mid = mb.build();
            pb.program().methods[mid].sig.clone()
        };
        let mut mb = pb.method(cls, "caller");
        let this = mb.this();
        mb.stmt(Stmt::Call {
            ret: None,
            kind: CallKind::Virtual,
            sig: callee_sig,
            args: vec![this],
        });
        mb.stmt(Stmt::Return { var: None });
        mb.build();
        let p = pb.finish();
        assert!(validate_program(&p).is_empty());
    }
}
