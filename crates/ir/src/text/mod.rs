//! Textual serialization of the IR: the `.jil` format.
//!
//! `.jil` (*Jawa-like Intermediate Language*) is a line-oriented, keyword-
//! delimited format designed so that generated corpora can be stored on disk,
//! diffed, and inspected. The grammar (informal):
//!
//! ```text
//! program   := { class }
//! class     := ".class" path [":" path] ["interface"]
//!              { field } { method } ".endclass"
//! field     := ".field" ident type ("static" | "instance")
//! method    := ".method" ident "(" { type } ")" type kind vis
//!              { ".var" ident type } { stmt } ".end"
//! kind      := "instance" | "static" | "ctor" | "lifecycle" | "environment"
//! vis       := "public" | "protected" | "private"
//! type      := "int" | "long" | "float" | "double" | "bool" | "byte"
//!            | "char" | "short" | "void" | "obj" path | "arr" elem
//! stmt      := "nop" | "monitor" ("enter"|"exit") var | "throw" var
//!            | "goto" int | "if" var "goto" int
//!            | "return" (var | "_")
//!            | "switch" var "(" { int } ")" "default" int
//!            | "call" callkind path ident "(" { type } ")" type
//!              "args" "(" { var } ")" "ret" (var | "_")
//!            | lhs "=" expr
//! lhs       := var | var "." fieldref | var "[" var "]" | fieldref
//! fieldref  := "{" path ident "}"
//! expr      := "new" type | "null" | "constclass" type | "lit" literal
//!            | "cast" type var | "instanceof" var type | "length" var
//!            | "neg" var | "not" var | "exception" | "callrhs" var
//!            | "tuple" "(" { var } ")"
//!            | ("cmp"|"cmpl"|"cmpg") var var
//!            | var [ binop var | "." fieldref | "[" var "]" ]
//!            | fieldref
//! ```
//!
//! Statement jump targets are absolute statement indices within the method.
//! The printer and parser round-trip: `parse(print(p)) == p` structurally
//! (verified by property tests).

mod lexer;
mod parser;
mod printer;

pub use lexer::{LexError, Lexer, Token, TokenKind};
pub use parser::{parse_program, ParseError, Parser};
pub use printer::print_program;
