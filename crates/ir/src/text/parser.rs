//! Recursive-descent parser for the `.jil` format.
//!
//! Parsing happens in two passes over the token stream so that classes and
//! fields may be referenced before their textual definition:
//!
//! 1. **Declaration pass** — registers every class (name, interface flag)
//!    and every field.
//! 2. **Body pass** — resolves superclasses and parses method bodies,
//!    resolving `{Class field}` references against the declaration table.

use super::lexer::{Lexer, Token, TokenKind};
use crate::expr::{BinOp, CmpKind, Expr, Literal, UnOp};
use crate::idx::{ClassId, FieldId, StmtIdx, Symbol, VarId};
use crate::method::{Method, MethodKind, ParamDecl, Signature, VarDecl, Visibility};
use crate::program::{ClassDef, FieldDef, Program};
use crate::stmt::{CallKind, Lhs, MonitorOp, Stmt};
use crate::types::{ArrayElem, JType, PrimKind};
use std::collections::HashMap;
use std::fmt;

/// A parse failure with location.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line (0 when at end of input).
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<super::lexer::LexError> for ParseError {
    fn from(e: super::lexer::LexError) -> Self {
        ParseError { message: e.message, line: e.line }
    }
}

/// Parses a complete `.jil` program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = Lexer::tokenize(src)?;
    let mut parser = Parser::new(tokens);
    parser.parse()
}

/// The parser state machine. Most users call [`parse_program`].
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    program: Program,
    /// `(class symbol, field name symbol) -> FieldId`
    field_table: HashMap<(Symbol, Symbol), FieldId>,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    /// Creates a parser over pre-lexed tokens.
    pub fn new(tokens: Vec<Token>) -> Self {
        Self { tokens, pos: 0, program: Program::new(), field_table: HashMap::new() }
    }

    fn line(&self) -> u32 {
        self.tokens.get(self.pos).map(|t| t.line).unwrap_or(0)
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError { message: message.into(), line: self.line() })
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.bump() {
            Some(TokenKind::Ident(s)) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> PResult<()> {
        match self.bump() {
            Some(TokenKind::Ident(s)) if s == kw => Ok(()),
            other => self.err(format!("expected `{kw}`, found {other:?}")),
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> PResult<()> {
        match self.bump() {
            Some(k) if &k == kind => Ok(()),
            other => self.err(format!("expected {kind:?}, found {other:?}")),
        }
    }

    fn expect_var(&mut self) -> PResult<VarId> {
        match self.bump() {
            Some(TokenKind::Var(n)) => Ok(VarId(n)),
            other => self.err(format!("expected variable, found {other:?}")),
        }
    }

    fn expect_var_or_none(&mut self) -> PResult<Option<VarId>> {
        match self.bump() {
            Some(TokenKind::Var(n)) => Ok(Some(VarId(n))),
            Some(TokenKind::Underscore) => Ok(None),
            other => self.err(format!("expected variable or `_`, found {other:?}")),
        }
    }

    fn expect_int(&mut self) -> PResult<i64> {
        match self.bump() {
            Some(TokenKind::Int(n)) => Ok(n),
            other => self.err(format!("expected integer, found {other:?}")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if s == kw)
    }

    /// Runs both passes and returns the program.
    pub fn parse(&mut self) -> PResult<Program> {
        self.declaration_pass()?;
        self.pos = 0;
        self.body_pass()?;
        Ok(std::mem::take(&mut self.program))
    }

    // ---- pass 1: declarations -------------------------------------------

    fn declaration_pass(&mut self) -> PResult<()> {
        while self.peek().is_some() {
            self.expect_keyword(".class")?;
            let name = self.expect_ident()?;
            let name_sym = self.program.interner.intern(&name);
            if self.peek() == Some(&TokenKind::Colon) {
                self.bump();
                self.expect_ident()?; // superclass resolved in pass 2
            }
            let is_interface = if self.at_keyword("interface") {
                self.bump();
                true
            } else {
                false
            };
            let cid = self.program.classes.push(ClassDef {
                name: name_sym,
                superclass: None,
                fields: Vec::new(),
                methods: Vec::new(),
                is_interface,
            });
            self.program.index_class(cid);
            // Fields, then skip method bodies.
            loop {
                if self.at_keyword(".field") {
                    self.bump();
                    let fname = self.expect_ident()?;
                    let fname_sym = self.program.interner.intern(&fname);
                    let ty = self.parse_type()?;
                    let is_static = match self.expect_ident()?.as_str() {
                        "static" => true,
                        "instance" => false,
                        other => return self.err(format!("expected static/instance, got {other}")),
                    };
                    let fid = self.program.fields.push(FieldDef {
                        class: cid,
                        name: fname_sym,
                        ty,
                        is_static,
                    });
                    self.program.classes[cid].fields.push(fid);
                    self.field_table.insert((name_sym, fname_sym), fid);
                } else if self.at_keyword(".method") {
                    // Skip to matching `.end`.
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(TokenKind::Ident(s)) if s == ".end" => break,
                            Some(_) => {}
                            None => return self.err("unterminated method"),
                        }
                    }
                } else if self.at_keyword(".endclass") {
                    self.bump();
                    break;
                } else {
                    return self.err(format!(
                        "expected .field/.method/.endclass, found {:?}",
                        self.peek()
                    ));
                }
            }
        }
        Ok(())
    }

    // ---- pass 2: bodies ---------------------------------------------------

    fn body_pass(&mut self) -> PResult<()> {
        while self.peek().is_some() {
            self.expect_keyword(".class")?;
            let name = self.expect_ident()?;
            let name_sym = self.program.interner.intern(&name);
            let cid = self.program.class_by_name(name_sym).expect("registered in pass 1");
            if self.peek() == Some(&TokenKind::Colon) {
                self.bump();
                let sup = self.expect_ident()?;
                let sup_sym = self.program.interner.intern(&sup);
                let Some(sup_id) = self.program.class_by_name(sup_sym) else {
                    return self.err(format!("unknown superclass {sup}"));
                };
                self.program.classes[cid].superclass = Some(sup_id);
            }
            if self.at_keyword("interface") {
                self.bump();
            }
            loop {
                if self.at_keyword(".field") {
                    // Already registered; skip the 3 payload tokens (name,
                    // type, static/instance). Types are 1-2 tokens.
                    self.bump();
                    self.expect_ident()?;
                    self.parse_type()?;
                    self.expect_ident()?;
                } else if self.at_keyword(".method") {
                    self.bump();
                    self.parse_method_body(cid)?;
                } else if self.at_keyword(".endclass") {
                    self.bump();
                    break;
                } else {
                    return self.err(format!("unexpected token {:?}", self.peek()));
                }
            }
        }
        Ok(())
    }

    fn parse_type(&mut self) -> PResult<JType> {
        let kw = self.expect_ident()?;
        Ok(match kw.as_str() {
            "int" => JType::Int,
            "long" => JType::Long,
            "float" => JType::Float,
            "double" => JType::Double,
            "bool" => JType::Boolean,
            "byte" => JType::Byte,
            "char" => JType::Char,
            "short" => JType::Short,
            "void" => JType::Void,
            "obj" => {
                let cls = self.expect_ident()?;
                JType::Object(self.program.interner.intern(&cls))
            }
            "arr" => {
                let elem = self.expect_ident()?;
                let e = match elem.as_str() {
                    "int" => ArrayElem::Prim(PrimKind::Int),
                    "long" => ArrayElem::Prim(PrimKind::Long),
                    "float" => ArrayElem::Prim(PrimKind::Float),
                    "double" => ArrayElem::Prim(PrimKind::Double),
                    "bool" => ArrayElem::Prim(PrimKind::Boolean),
                    "byte" => ArrayElem::Prim(PrimKind::Byte),
                    "char" => ArrayElem::Prim(PrimKind::Char),
                    "short" => ArrayElem::Prim(PrimKind::Short),
                    cls => ArrayElem::Object(self.program.interner.intern(cls)),
                };
                JType::Array(e)
            }
            other => return self.err(format!("unknown type keyword `{other}`")),
        })
    }

    fn parse_method_body(&mut self, cid: ClassId) -> PResult<()> {
        let mname = self.expect_ident()?;
        let mname_sym = self.program.interner.intern(&mname);
        self.expect_kind(&TokenKind::LParen)?;
        let mut params_ty = Vec::new();
        while self.peek() != Some(&TokenKind::RParen) {
            params_ty.push(self.parse_type()?);
        }
        self.expect_kind(&TokenKind::RParen)?;
        let ret = self.parse_type()?;
        let kind = match self.expect_ident()?.as_str() {
            "instance" => MethodKind::Instance,
            "static" => MethodKind::Static,
            "ctor" => MethodKind::Constructor,
            "lifecycle" => MethodKind::LifecycleCallback,
            "environment" => MethodKind::Environment,
            other => return self.err(format!("unknown method kind `{other}`")),
        };
        let visibility = match self.expect_ident()?.as_str() {
            "public" => Visibility::Public,
            "protected" => Visibility::Protected,
            "private" => Visibility::Private,
            other => return self.err(format!("unknown visibility `{other}`")),
        };

        // Variable declarations, in index order.
        let mut vars = crate::idx::IndexVec::new();
        while self.at_keyword(".var") {
            self.bump();
            let vname = self.expect_ident()?;
            let vname_sym = self.program.interner.intern(&vname);
            let ty = self.parse_type()?;
            vars.push(VarDecl { name: vname_sym, ty });
        }

        let has_this = matches!(
            kind,
            MethodKind::Instance | MethodKind::Constructor | MethodKind::LifecycleCallback
        );
        let this_var = if has_this { Some(VarId(0)) } else { None };
        let first_param = if has_this { 1 } else { 0 };
        let params: Vec<ParamDecl> = params_ty
            .iter()
            .enumerate()
            .map(|(i, &ty)| ParamDecl { var: VarId((first_param + i) as u32), ty })
            .collect();
        if vars.len() < first_param + params.len() {
            return self.err("fewer .var declarations than parameters");
        }

        // Statements.
        let mut body = crate::idx::IndexVec::new();
        while !self.at_keyword(".end") {
            let stmt = self.parse_stmt()?;
            body.push(stmt);
        }
        self.bump(); // `.end`

        let class_name = self.program.classes[cid].name;
        let method = Method {
            sig: Signature::new(class_name, mname_sym, params_ty, ret),
            kind,
            visibility,
            this_var,
            params,
            vars,
            body,
        };
        let mid = self.program.methods.push(method);
        self.program.classes[cid].methods.push(mid);
        self.program.index_method(mid);
        Ok(())
    }

    fn parse_field_ref(&mut self) -> PResult<FieldId> {
        self.expect_kind(&TokenKind::LBrace)?;
        let cls = self.expect_ident()?;
        let fname = self.expect_ident()?;
        self.expect_kind(&TokenKind::RBrace)?;
        let cls_sym = self.program.interner.intern(&cls);
        let fname_sym = self.program.interner.intern(&fname);
        match self.field_table.get(&(cls_sym, fname_sym)) {
            Some(&fid) => Ok(fid),
            None => self.err(format!("unknown field {{{cls} {fname}}}")),
        }
    }

    fn parse_stmt(&mut self) -> PResult<Stmt> {
        match self.peek() {
            Some(TokenKind::Ident(kw)) => match kw.as_str() {
                "nop" => {
                    self.bump();
                    Ok(Stmt::Empty)
                }
                "monitor" => {
                    self.bump();
                    let op = match self.expect_ident()?.as_str() {
                        "enter" => MonitorOp::Enter,
                        "exit" => MonitorOp::Exit,
                        other => return self.err(format!("bad monitor op `{other}`")),
                    };
                    let var = self.expect_var()?;
                    Ok(Stmt::Monitor { op, var })
                }
                "throw" => {
                    self.bump();
                    Ok(Stmt::Throw { var: self.expect_var()? })
                }
                "goto" => {
                    self.bump();
                    Ok(Stmt::Goto { target: StmtIdx(self.expect_int()? as u32) })
                }
                "if" => {
                    self.bump();
                    let cond = self.expect_var()?;
                    self.expect_keyword("goto")?;
                    Ok(Stmt::If { cond, target: StmtIdx(self.expect_int()? as u32) })
                }
                "return" => {
                    self.bump();
                    Ok(Stmt::Return { var: self.expect_var_or_none()? })
                }
                "switch" => {
                    self.bump();
                    let var = self.expect_var()?;
                    self.expect_kind(&TokenKind::LParen)?;
                    let mut targets = Vec::new();
                    while self.peek() != Some(&TokenKind::RParen) {
                        targets.push(StmtIdx(self.expect_int()? as u32));
                    }
                    self.expect_kind(&TokenKind::RParen)?;
                    self.expect_keyword("default")?;
                    let default = StmtIdx(self.expect_int()? as u32);
                    Ok(Stmt::Switch { var, targets, default })
                }
                "call" => {
                    self.bump();
                    let kind = match self.expect_ident()?.as_str() {
                        "virtual" => CallKind::Virtual,
                        "static" => CallKind::Static,
                        "direct" => CallKind::Direct,
                        "interface" => CallKind::Interface,
                        other => return self.err(format!("bad call kind `{other}`")),
                    };
                    let cls = self.expect_ident()?;
                    let name = self.expect_ident()?;
                    self.expect_kind(&TokenKind::LParen)?;
                    let mut params = Vec::new();
                    while self.peek() != Some(&TokenKind::RParen) {
                        params.push(self.parse_type()?);
                    }
                    self.expect_kind(&TokenKind::RParen)?;
                    let ret_ty = self.parse_type()?;
                    self.expect_keyword("args")?;
                    self.expect_kind(&TokenKind::LParen)?;
                    let mut args = Vec::new();
                    while self.peek() != Some(&TokenKind::RParen) {
                        args.push(self.expect_var()?);
                    }
                    self.expect_kind(&TokenKind::RParen)?;
                    self.expect_keyword("ret")?;
                    let ret = self.expect_var_or_none()?;
                    let cls_sym = self.program.interner.intern(&cls);
                    let name_sym = self.program.interner.intern(&name);
                    Ok(Stmt::Call {
                        ret,
                        kind,
                        sig: Signature::new(cls_sym, name_sym, params, ret_ty),
                        args,
                    })
                }
                _ => self.err(format!("unknown statement keyword `{kw}`")),
            },
            Some(TokenKind::Var(_)) => {
                let base = self.expect_var()?;
                match self.peek() {
                    Some(TokenKind::Dot) => {
                        self.bump();
                        let field = self.parse_field_ref()?;
                        self.expect_kind(&TokenKind::Eq)?;
                        let rhs = self.parse_expr()?;
                        Ok(Stmt::Assign { lhs: Lhs::Field { base, field }, rhs })
                    }
                    Some(TokenKind::LBracket) => {
                        self.bump();
                        let index = self.expect_var()?;
                        self.expect_kind(&TokenKind::RBracket)?;
                        self.expect_kind(&TokenKind::Eq)?;
                        let rhs = self.parse_expr()?;
                        Ok(Stmt::Assign { lhs: Lhs::ArrayElem { base, index }, rhs })
                    }
                    Some(TokenKind::Eq) => {
                        self.bump();
                        let rhs = self.parse_expr()?;
                        Ok(Stmt::Assign { lhs: Lhs::Var(base), rhs })
                    }
                    other => self.err(format!("expected `.`/`[`/`=`, found {other:?}")),
                }
            }
            Some(TokenKind::LBrace) => {
                let field = self.parse_field_ref()?;
                self.expect_kind(&TokenKind::Eq)?;
                let rhs = self.parse_expr()?;
                Ok(Stmt::Assign { lhs: Lhs::StaticField { field }, rhs })
            }
            other => self.err(format!("expected statement, found {other:?}")),
        }
    }

    fn parse_expr(&mut self) -> PResult<Expr> {
        match self.peek() {
            Some(TokenKind::Ident(kw)) => {
                let kw = kw.clone();
                match kw.as_str() {
                    "new" => {
                        self.bump();
                        Ok(Expr::New { ty: self.parse_type()? })
                    }
                    "null" => {
                        self.bump();
                        Ok(Expr::Null)
                    }
                    "constclass" => {
                        self.bump();
                        Ok(Expr::ConstClass { ty: self.parse_type()? })
                    }
                    "lit" => {
                        self.bump();
                        let lit = match self.bump() {
                            Some(TokenKind::Int(n)) => Literal::Int(n),
                            Some(TokenKind::Float(f)) => Literal::Float(f),
                            Some(TokenKind::Str(s)) => {
                                Literal::Str(self.program.interner.intern(&s))
                            }
                            other => return self.err(format!("bad literal {other:?}")),
                        };
                        Ok(Expr::Lit(lit))
                    }
                    "cast" => {
                        self.bump();
                        let ty = self.parse_type()?;
                        Ok(Expr::Cast { ty, operand: self.expect_var()? })
                    }
                    "instanceof" => {
                        self.bump();
                        let operand = self.expect_var()?;
                        Ok(Expr::InstanceOf { operand, ty: self.parse_type()? })
                    }
                    "length" => {
                        self.bump();
                        Ok(Expr::Length { base: self.expect_var()? })
                    }
                    "neg" => {
                        self.bump();
                        Ok(Expr::Unary { op: UnOp::Neg, operand: self.expect_var()? })
                    }
                    "not" => {
                        self.bump();
                        Ok(Expr::Unary { op: UnOp::Not, operand: self.expect_var()? })
                    }
                    "exception" => {
                        self.bump();
                        Ok(Expr::Exception)
                    }
                    "callrhs" => {
                        self.bump();
                        Ok(Expr::CallRhs { ret: self.expect_var()? })
                    }
                    "tuple" => {
                        self.bump();
                        self.expect_kind(&TokenKind::LParen)?;
                        let mut elems = Vec::new();
                        while self.peek() != Some(&TokenKind::RParen) {
                            elems.push(self.expect_var()?);
                        }
                        self.expect_kind(&TokenKind::RParen)?;
                        Ok(Expr::Tuple { elems })
                    }
                    "cmp" | "cmpl" | "cmpg" => {
                        self.bump();
                        let kind = match kw.as_str() {
                            "cmp" => CmpKind::Cmp,
                            "cmpl" => CmpKind::Cmpl,
                            _ => CmpKind::Cmpg,
                        };
                        let lhs = self.expect_var()?;
                        let rhs = self.expect_var()?;
                        Ok(Expr::Cmp { kind, lhs, rhs })
                    }
                    other => self.err(format!("unknown expression keyword `{other}`")),
                }
            }
            Some(TokenKind::Var(_)) => {
                let v = self.expect_var()?;
                match self.peek() {
                    Some(TokenKind::Dot) => {
                        self.bump();
                        let field = self.parse_field_ref()?;
                        Ok(Expr::Access { base: v, field })
                    }
                    Some(TokenKind::LBracket) => {
                        self.bump();
                        let index = self.expect_var()?;
                        self.expect_kind(&TokenKind::RBracket)?;
                        Ok(Expr::Indexing { base: v, index })
                    }
                    Some(TokenKind::Ident(op)) if bin_op(op).is_some() => {
                        let op = bin_op(op).unwrap();
                        self.bump();
                        let rhs = self.expect_var()?;
                        Ok(Expr::Binary { op, lhs: v, rhs })
                    }
                    _ => Ok(Expr::Var(v)),
                }
            }
            Some(TokenKind::LBrace) => {
                let field = self.parse_field_ref()?;
                Ok(Expr::StaticField { field })
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

/// Maps a binary-operator keyword to its [`BinOp`].
pub(crate) fn bin_op(kw: &str) -> Option<BinOp> {
    Some(match kw {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a small two-class program
.class java/lang/Object
.endclass
.class com/example/A : java/lang/Object
.field data obj java/lang/Object instance
.field count int static
.method run ( int ) void instance public
.var this obj com/example/A
.var x int
.var t obj java/lang/Object
  v2 = new obj java/lang/Object
  v0 . { com/example/A data } = v2
  v2 = v0 . { com/example/A data }
  { com/example/A count } = v1
  if v1 goto 6
  call virtual com/example/A run ( int ) void args ( v1 ) ret _
  return _
.end
.endclass
"#;

    #[test]
    fn parses_sample() {
        let p = parse_program(SAMPLE).unwrap();
        assert_eq!(p.classes.len(), 2);
        assert_eq!(p.fields.len(), 2);
        assert_eq!(p.methods.len(), 1);
        let m = &p.methods[crate::idx::MethodId(0)];
        assert_eq!(m.len(), 7);
        assert_eq!(m.this_var, Some(VarId(0)));
        assert_eq!(m.params.len(), 1);
        assert_eq!(m.params[0].var, VarId(1));
        assert!(matches!(m.body[StmtIdx(0)], Stmt::Assign { lhs: Lhs::Var(VarId(2)), .. }));
        assert!(matches!(m.body[StmtIdx(1)], Stmt::Assign { lhs: Lhs::Field { .. }, .. }));
        assert!(matches!(m.body[StmtIdx(2)], Stmt::Assign { rhs: Expr::Access { .. }, .. }));
        assert!(matches!(m.body[StmtIdx(3)], Stmt::Assign { lhs: Lhs::StaticField { .. }, .. }));
        assert!(matches!(m.body[StmtIdx(4)], Stmt::If { target: StmtIdx(6), .. }));
        assert!(matches!(m.body[StmtIdx(5)], Stmt::Call { ret: None, .. }));
    }

    #[test]
    fn superclass_resolved_across_order() {
        // Subclass defined before its superclass.
        let src = r#"
.class B : A
.endclass
.class A
.endclass
"#;
        let p = parse_program(src).unwrap();
        let b = p.class_by_name(p.interner.get("B").unwrap()).unwrap();
        let a = p.class_by_name(p.interner.get("A").unwrap()).unwrap();
        assert_eq!(p.classes[b].superclass, Some(a));
    }

    #[test]
    fn forward_field_reference_resolves() {
        let src = r#"
.class A
.method m ( ) void static public
  { B f } = v0
  return _
.end
.endclass
.class B
.field f int static
.endclass
"#;
        // v0 is undeclared (no .var) but parsing succeeds; validation
        // catches that separately.
        let p = parse_program(src).unwrap();
        assert_eq!(p.fields.len(), 1);
    }

    #[test]
    fn unknown_field_is_error() {
        let src = ".class A\n.method m ( ) void static public\n v0 = { A nope }\n.end\n.endclass";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("unknown field"), "{e}");
    }

    #[test]
    fn binary_and_indexing_exprs() {
        let src = r#"
.class A
.method m ( ) void static public
.var a int
.var b int
.var c arr int
  v0 = v0 add v1
  v1 = v2 [ v0 ]
  v2 [ v0 ] = v1
  v0 = cmpl v0 v1
  return _
.end
.endclass
"#;
        let p = parse_program(src).unwrap();
        let m = &p.methods[crate::idx::MethodId(0)];
        assert!(matches!(
            m.body[StmtIdx(0)],
            Stmt::Assign { rhs: Expr::Binary { op: BinOp::Add, .. }, .. }
        ));
        assert!(matches!(m.body[StmtIdx(1)], Stmt::Assign { rhs: Expr::Indexing { .. }, .. }));
        assert!(matches!(m.body[StmtIdx(2)], Stmt::Assign { lhs: Lhs::ArrayElem { .. }, .. }));
        assert!(matches!(
            m.body[StmtIdx(3)],
            Stmt::Assign { rhs: Expr::Cmp { kind: CmpKind::Cmpl, .. }, .. }
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser never panics on arbitrary token soup.
        #[test]
        fn parser_is_total(src in "[a-z0-9 .(){}=_\n-]{0,200}") {
            let _ = parse_program(&src);
        }
    }
}
