//! Tokenizer for the `.jil` format.

use std::fmt;

/// A token kind with its payload.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier, including `/`-separated class paths and
    /// leading-dot directives (`.class`, `.method`, …).
    Ident(String),
    /// Variable reference `v<N>`.
    Var(u32),
    /// Integer literal (decimal, optionally negative).
    Int(i64),
    /// Floating literal with a trailing `f` (e.g. `1.5f`).
    Float(f64),
    /// Double-quoted string literal with `\"` and `\\` escapes.
    Str(String),
    /// `=`
    Eq,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `.` (only when not starting a directive ident)
    Dot,
    /// `_` (used for "no variable")
    Underscore,
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// A lexing failure.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Streaming tokenizer. Usually used via [`Lexer::tokenize`].
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'$'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'/' || b == b'$' || b == b'<' || b == b'>'
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Self { src: src.as_bytes(), pos: 0, line: 1 }
    }

    /// Tokenizes the whole input.
    pub fn tokenize(src: &'a str) -> Result<Vec<Token>, LexError> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        while let Some(tok) = lx.next_token()? {
            out.push(tok);
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError { message: message.into(), line: self.line }
    }

    /// Produces the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        self.skip_ws_and_comments();
        let line = self.line;
        let Some(b) = self.peek() else { return Ok(None) };
        let kind = match b {
            b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b':' => {
                self.bump();
                TokenKind::Colon
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'n') => s.push('\n'),
                            other => {
                                return Err(self.err(format!(
                                    "invalid string escape: {:?}",
                                    other.map(|c| c as char)
                                )))
                            }
                        },
                        Some(c) => s.push(c as char),
                        None => return Err(self.err("unterminated string literal")),
                    }
                }
                TokenKind::Str(s)
            }
            b'.' => {
                // Either a directive (`.class`) or a field-access dot.
                self.bump();
                if self.peek().map(is_ident_start).unwrap_or(false) {
                    let ident = self.lex_ident_body();
                    TokenKind::Ident(format!(".{ident}"))
                } else {
                    TokenKind::Dot
                }
            }
            b'_' => {
                self.bump();
                // Bare underscore is the "no var" marker; `_foo` is an ident.
                if self.peek().map(is_ident_cont).unwrap_or(false) {
                    let rest = self.lex_ident_body();
                    TokenKind::Ident(format!("_{rest}"))
                } else {
                    TokenKind::Underscore
                }
            }
            b'-' => {
                self.bump();
                self.lex_number(true)?
            }
            b if b.is_ascii_digit() => self.lex_number(false)?,
            b'v' => {
                // `v<digits>` is a var ref; `v<alpha>` is an ident.
                let start = self.pos;
                self.bump();
                if self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                    let mut n: u64 = 0;
                    while let Some(c) = self.peek() {
                        if !c.is_ascii_digit() {
                            break;
                        }
                        n = n * 10 + u64::from(c - b'0');
                        if n > u64::from(u32::MAX) {
                            return Err(self.err("variable index overflow"));
                        }
                        self.bump();
                    }
                    // `v12abc` would be malformed; treat as ident.
                    if self.peek().map(is_ident_cont).unwrap_or(false) {
                        self.pos = start;
                        let ident = self.lex_ident_body();
                        TokenKind::Ident(ident)
                    } else {
                        TokenKind::Var(n as u32)
                    }
                } else {
                    self.pos = start;
                    let ident = self.lex_ident_body();
                    TokenKind::Ident(ident)
                }
            }
            b if is_ident_start(b) => {
                let ident = self.lex_ident_body();
                match ident.as_str() {
                    "true" => TokenKind::Int(1),
                    "false" => TokenKind::Int(0),
                    _ => TokenKind::Ident(ident),
                }
            }
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        };
        Ok(Some(Token { kind, line }))
    }

    fn lex_ident_body(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if !is_ident_cont(b) {
                break;
            }
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn lex_number(&mut self, negative: bool) -> Result<TokenKind, LexError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if !b.is_ascii_digit() {
                break;
            }
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            // Lookahead: digit after the dot makes it a float literal.
            if self.src.get(self.pos + 1).map(|c| c.is_ascii_digit()).unwrap_or(false) {
                is_float = true;
                self.bump(); // '.'
                while let Some(b) = self.peek() {
                    if !b.is_ascii_digit() {
                        break;
                    }
                    self.bump();
                }
                if self.peek() == Some(b'e') || self.peek() == Some(b'E') {
                    self.bump();
                    if self.peek() == Some(b'-') || self.peek() == Some(b'+') {
                        self.bump();
                    }
                    while let Some(b) = self.peek() {
                        if !b.is_ascii_digit() {
                            break;
                        }
                        self.bump();
                    }
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        // Trailing `f` marks floats explicitly; an integer part with `.` also
        // parses as float.
        if self.peek() == Some(b'f') {
            self.bump();
            is_float = true;
        }
        if is_float {
            let v: f64 =
                text.parse().map_err(|e| self.err(format!("bad float literal {text:?}: {e}")))?;
            Ok(TokenKind::Float(if negative { -v } else { v }))
        } else {
            let v: i64 =
                text.parse().map_err(|e| self.err(format!("bad int literal {text:?}: {e}")))?;
            Ok(TokenKind::Int(if negative { -v } else { v }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_directives_and_idents() {
        assert_eq!(
            kinds(".class com/example/A : java/lang/Object"),
            vec![
                TokenKind::Ident(".class".into()),
                TokenKind::Ident("com/example/A".into()),
                TokenKind::Colon,
                TokenKind::Ident("java/lang/Object".into()),
            ]
        );
    }

    #[test]
    fn lexes_vars_and_numbers() {
        assert_eq!(
            kinds("v0 v12 42 -7 1.5f 2.25 vx"),
            vec![
                TokenKind::Var(0),
                TokenKind::Var(12),
                TokenKind::Int(42),
                TokenKind::Int(-7),
                TokenKind::Float(1.5),
                TokenKind::Float(2.25),
                TokenKind::Ident("vx".into()),
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""hello \"w\\orld\n""#),
            vec![TokenKind::Str("hello \"w\\orld\n".into())]
        );
    }

    #[test]
    fn lexes_punctuation_and_underscore() {
        assert_eq!(
            kinds("( ) { } [ ] = . _ _tmp"),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::LBracket,
                TokenKind::RBracket,
                TokenKind::Eq,
                TokenKind::Dot,
                TokenKind::Underscore,
                TokenKind::Ident("_tmp".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = Lexer::tokenize("# header\nfoo # trailing\nbar").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn booleans_lex_as_ints() {
        assert_eq!(kinds("true false"), vec![TokenKind::Int(1), TokenKind::Int(0)]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(Lexer::tokenize("\"oops").is_err());
    }

    #[test]
    fn angle_brackets_in_idents_for_ctors() {
        // '<' cannot start an identifier — constructors are written `init`.
        assert!(Lexer::tokenize("<init>").is_err());
        // But '<'/'>' are allowed inside an identifier body.
        assert_eq!(kinds("init$<clinit>"), vec![TokenKind::Ident("init$<clinit>".into())]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The lexer never panics: any input either tokenizes or returns a
        /// structured error.
        #[test]
        fn lexer_is_total(src in "\\PC*") {
            let _ = Lexer::tokenize(&src);
        }

        /// Tokenizing twice is deterministic.
        #[test]
        fn lexer_is_deterministic(src in "[a-z0-9 .(){}\\[\\]=_\"\\\\#\n-]*") {
            let a = Lexer::tokenize(&src);
            let b = Lexer::tokenize(&src);
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(x), Err(y)) => prop_assert_eq!(x, y),
                _ => prop_assert!(false, "tokenize nondeterministic"),
            }
        }

        /// Integer and variable tokens roundtrip through their textual form.
        #[test]
        fn numbers_and_vars_roundtrip(n in 0u32..1_000_000) {
            let toks = Lexer::tokenize(&format!("v{n} {n} -{n}")).unwrap();
            prop_assert_eq!(toks.len(), 3);
            prop_assert_eq!(&toks[0].kind, &TokenKind::Var(n));
            prop_assert_eq!(&toks[1].kind, &TokenKind::Int(i64::from(n)));
            prop_assert_eq!(&toks[2].kind, &TokenKind::Int(-i64::from(n)));
        }
    }
}
