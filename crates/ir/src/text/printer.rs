//! Pretty-printer emitting the `.jil` format. Inverse of the parser.

use crate::expr::{BinOp, CmpKind, Expr, Literal, UnOp};
use crate::idx::FieldId;
use crate::method::MethodKind;
use crate::method::Visibility;
use crate::program::Program;
use crate::stmt::{CallKind, Lhs, MonitorOp, Stmt};
use crate::types::{ArrayElem, JType, PrimKind};
use std::fmt::Write;

/// Prints a whole program in `.jil` syntax.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    let mut pr = Printer { p, out: &mut out };
    pr.program();
    out
}

struct Printer<'a> {
    p: &'a Program,
    out: &'a mut String,
}

impl<'a> Printer<'a> {
    fn program(&mut self) {
        for class in self.p.classes.iter() {
            write!(self.out, ".class {}", self.p.interner.resolve(class.name)).unwrap();
            if let Some(sup) = class.superclass {
                write!(self.out, " : {}", self.p.interner.resolve(self.p.classes[sup].name))
                    .unwrap();
            }
            if class.is_interface {
                self.out.push_str(" interface");
            }
            self.out.push('\n');
            for &fid in &class.fields {
                let f = &self.p.fields[fid];
                write!(self.out, ".field {} ", self.p.interner.resolve(f.name)).unwrap();
                self.ty(f.ty);
                self.out.push_str(if f.is_static { " static\n" } else { " instance\n" });
            }
            for &mid in &class.methods {
                self.method(mid);
            }
            self.out.push_str(".endclass\n");
        }
    }

    fn method(&mut self, mid: crate::idx::MethodId) {
        let m = &self.p.methods[mid];
        write!(self.out, ".method {} (", self.p.interner.resolve(m.sig.name)).unwrap();
        for &ty in &m.sig.params {
            self.out.push(' ');
            self.ty(ty);
        }
        self.out.push_str(" ) ");
        self.ty(m.sig.ret);
        let kind = match m.kind {
            MethodKind::Instance => "instance",
            MethodKind::Static => "static",
            MethodKind::Constructor => "ctor",
            MethodKind::LifecycleCallback => "lifecycle",
            MethodKind::Environment => "environment",
        };
        let vis = match m.visibility {
            Visibility::Public => "public",
            Visibility::Protected => "protected",
            Visibility::Private => "private",
        };
        writeln!(self.out, " {kind} {vis}").unwrap();
        for v in m.vars.iter() {
            write!(self.out, ".var {} ", self.p.interner.resolve(v.name)).unwrap();
            self.ty(v.ty);
            self.out.push('\n');
        }
        for (idx, s) in m.body.iter_enumerated() {
            write!(self.out, "  # {idx}\n  ").unwrap();
            self.stmt(s);
            self.out.push('\n');
        }
        self.out.push_str(".end\n");
    }

    fn ty(&mut self, ty: JType) {
        match ty {
            JType::Void => self.out.push_str("void"),
            JType::Boolean => self.out.push_str("bool"),
            JType::Byte => self.out.push_str("byte"),
            JType::Char => self.out.push_str("char"),
            JType::Short => self.out.push_str("short"),
            JType::Int => self.out.push_str("int"),
            JType::Long => self.out.push_str("long"),
            JType::Float => self.out.push_str("float"),
            JType::Double => self.out.push_str("double"),
            JType::Object(s) => {
                write!(self.out, "obj {}", self.p.interner.resolve(s)).unwrap();
            }
            JType::Array(e) => {
                self.out.push_str("arr ");
                match e {
                    ArrayElem::Object(s) => self.out.push_str(self.p.interner.resolve(s)),
                    ArrayElem::Prim(pk) => self.out.push_str(match pk {
                        PrimKind::Boolean => "bool",
                        PrimKind::Byte => "byte",
                        PrimKind::Char => "char",
                        PrimKind::Short => "short",
                        PrimKind::Int => "int",
                        PrimKind::Long => "long",
                        PrimKind::Float => "float",
                        PrimKind::Double => "double",
                    }),
                }
            }
        }
    }

    fn field_ref(&mut self, fid: FieldId) {
        let f = &self.p.fields[fid];
        let cls = self.p.classes[f.class].name;
        write!(
            self.out,
            "{{ {} {} }}",
            self.p.interner.resolve(cls),
            self.p.interner.resolve(f.name)
        )
        .unwrap();
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Empty => self.out.push_str("nop"),
            Stmt::Monitor { op, var } => {
                let op = match op {
                    MonitorOp::Enter => "enter",
                    MonitorOp::Exit => "exit",
                };
                write!(self.out, "monitor {op} {var}").unwrap();
            }
            Stmt::Throw { var } => write!(self.out, "throw {var}").unwrap(),
            Stmt::Goto { target } => write!(self.out, "goto {}", target.0).unwrap(),
            Stmt::If { cond, target } => write!(self.out, "if {cond} goto {}", target.0).unwrap(),
            Stmt::Return { var } => match var {
                Some(v) => write!(self.out, "return {v}").unwrap(),
                None => self.out.push_str("return _"),
            },
            Stmt::Switch { var, targets, default } => {
                write!(self.out, "switch {var} (").unwrap();
                for t in targets {
                    write!(self.out, " {}", t.0).unwrap();
                }
                write!(self.out, " ) default {}", default.0).unwrap();
            }
            Stmt::Call { ret, kind, sig, args } => {
                let kind = match kind {
                    CallKind::Virtual => "virtual",
                    CallKind::Static => "static",
                    CallKind::Direct => "direct",
                    CallKind::Interface => "interface",
                };
                write!(
                    self.out,
                    "call {kind} {} {} (",
                    self.p.interner.resolve(sig.class),
                    self.p.interner.resolve(sig.name)
                )
                .unwrap();
                for &ty in &sig.params {
                    self.out.push(' ');
                    self.ty(ty);
                }
                self.out.push_str(" ) ");
                self.ty(sig.ret);
                self.out.push_str(" args (");
                for a in args {
                    write!(self.out, " {a}").unwrap();
                }
                self.out.push_str(" ) ret ");
                match ret {
                    Some(v) => write!(self.out, "{v}").unwrap(),
                    None => self.out.push('_'),
                }
            }
            Stmt::Assign { lhs, rhs } => {
                match lhs {
                    Lhs::Var(v) => write!(self.out, "{v}").unwrap(),
                    Lhs::Field { base, field } => {
                        write!(self.out, "{base} . ").unwrap();
                        self.field_ref(*field);
                    }
                    Lhs::StaticField { field } => self.field_ref(*field),
                    Lhs::ArrayElem { base, index } => {
                        write!(self.out, "{base} [ {index} ]").unwrap();
                    }
                }
                self.out.push_str(" = ");
                self.expr(rhs);
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Access { base, field } => {
                write!(self.out, "{base} . ").unwrap();
                self.field_ref(*field);
            }
            Expr::Binary { op, lhs, rhs } => {
                let op = match op {
                    BinOp::Add => "add",
                    BinOp::Sub => "sub",
                    BinOp::Mul => "mul",
                    BinOp::Div => "div",
                    BinOp::Rem => "rem",
                    BinOp::And => "and",
                    BinOp::Or => "or",
                    BinOp::Xor => "xor",
                    BinOp::Shl => "shl",
                    BinOp::Shr => "shr",
                };
                write!(self.out, "{lhs} {op} {rhs}").unwrap();
            }
            Expr::CallRhs { ret } => write!(self.out, "callrhs {ret}").unwrap(),
            Expr::Cast { ty, operand } => {
                self.out.push_str("cast ");
                self.ty(*ty);
                write!(self.out, " {operand}").unwrap();
            }
            Expr::Cmp { kind, lhs, rhs } => {
                let k = match kind {
                    CmpKind::Cmp => "cmp",
                    CmpKind::Cmpl => "cmpl",
                    CmpKind::Cmpg => "cmpg",
                };
                write!(self.out, "{k} {lhs} {rhs}").unwrap();
            }
            Expr::ConstClass { ty } => {
                self.out.push_str("constclass ");
                self.ty(*ty);
            }
            Expr::Exception => self.out.push_str("exception"),
            Expr::Indexing { base, index } => {
                write!(self.out, "{base} [ {index} ]").unwrap();
            }
            Expr::InstanceOf { operand, ty } => {
                write!(self.out, "instanceof {operand} ").unwrap();
                self.ty(*ty);
            }
            Expr::Length { base } => write!(self.out, "length {base}").unwrap(),
            Expr::Lit(lit) => {
                self.out.push_str("lit ");
                match lit {
                    Literal::Int(v) => write!(self.out, "{v}").unwrap(),
                    Literal::Float(v) => {
                        // Always include a decimal point + `f` suffix so the
                        // lexer reads it back as a float.
                        if v.fract() == 0.0 && v.is_finite() {
                            write!(self.out, "{v:.1}f").unwrap();
                        } else {
                            write!(self.out, "{v}f").unwrap();
                        }
                    }
                    Literal::Str(s) => {
                        let raw = self.p.interner.resolve(*s);
                        let escaped =
                            raw.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
                        write!(self.out, "\"{escaped}\"").unwrap();
                    }
                    Literal::Bool(b) => write!(self.out, "{b}").unwrap(),
                }
            }
            Expr::Var(v) => write!(self.out, "{v}").unwrap(),
            Expr::StaticField { field } => self.field_ref(*field),
            Expr::New { ty } => {
                self.out.push_str("new ");
                self.ty(*ty);
            }
            Expr::Null => self.out.push_str("null"),
            Expr::Tuple { elems } => {
                self.out.push_str("tuple (");
                for v in elems {
                    write!(self.out, " {v}").unwrap();
                }
                self.out.push_str(" )");
            }
            Expr::Unary { op, operand } => {
                let op = match op {
                    UnOp::Neg => "neg",
                    UnOp::Not => "not",
                };
                write!(self.out, "{op} {operand}").unwrap();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::idx::{StmtIdx, VarId};
    use crate::method::MethodKind;
    use crate::text::parse_program;

    fn fixture() -> Program {
        let mut pb = ProgramBuilder::new();
        let obj = pb.class("java/lang/Object").build();
        let cls = pb.class("com/example/A").extends(obj).build();
        let obj_name = pb.intern("java/lang/Object");
        let f = pb.field(cls, "data", JType::Object(obj_name), false);
        let sf = pb.field(cls, "count", JType::Int, true);

        let mut mb = pb.method(cls, "run");
        let this = mb.this();
        let x = mb.param("x", JType::Int);
        let t = mb.local("t", JType::Object(obj_name));
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(t), rhs: Expr::New { ty: JType::Object(obj_name) } });
        mb.stmt(Stmt::Assign { lhs: Lhs::Field { base: this, field: f }, rhs: Expr::Var(t) });
        mb.stmt(Stmt::Assign { lhs: Lhs::StaticField { field: sf }, rhs: Expr::Var(x) });
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(t), rhs: Expr::Access { base: this, field: f } });
        mb.stmt(Stmt::If { cond: x, target: StmtIdx(6) });
        mb.stmt(Stmt::Switch { var: x, targets: vec![StmtIdx(6)], default: StmtIdx(6) });
        mb.stmt(Stmt::Return { var: None });
        mb.build();

        let mut mb = pb.method(cls, "helper").kind(MethodKind::Static);
        let a = mb.local("a", JType::Int);
        mb.stmt(Stmt::Assign {
            lhs: Lhs::Var(a),
            rhs: Expr::Binary { op: BinOp::Add, lhs: a, rhs: a },
        });
        mb.stmt(Stmt::Return { var: Some(a) });
        mb.build();

        pb.finish()
    }

    #[test]
    fn roundtrip_structural_equality() {
        let p = fixture();
        let text = print_program(&p);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p.classes.len(), p2.classes.len());
        assert_eq!(p.fields.len(), p2.fields.len());
        assert_eq!(p.methods.len(), p2.methods.len());
        for (m1, m2) in p.methods.iter().zip(p2.methods.iter()) {
            assert_eq!(m1.body.as_slice(), m2.body.as_slice(), "bodies differ");
            assert_eq!(m1.kind, m2.kind);
            assert_eq!(m1.this_var, m2.this_var);
            assert_eq!(m1.params.len(), m2.params.len());
        }
        // Interned names survive the trip.
        for (c1, c2) in p.classes.iter().zip(p2.classes.iter()) {
            assert_eq!(p.interner.resolve(c1.name), p2.interner.resolve(c2.name));
        }
    }

    #[test]
    fn printed_form_mentions_all_sections() {
        let text = print_program(&fixture());
        assert!(text.contains(".class com/example/A : java/lang/Object"));
        assert!(text.contains(".field data obj java/lang/Object instance"));
        assert!(text.contains(".field count int static"));
        assert!(text.contains(".method run ( int ) void instance public"));
        assert!(text.contains("new obj java/lang/Object"));
        assert!(text.contains(".endclass"));
    }

    #[test]
    fn float_literals_roundtrip() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("F").build();
        let mut mb = pb.method(cls, "m").kind(MethodKind::Static);
        let a = mb.local("a", JType::Float);
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(a), rhs: Expr::Lit(Literal::Float(2.0)) });
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(a), rhs: Expr::Lit(Literal::Float(-0.125)) });
        mb.stmt(Stmt::Return { var: None });
        mb.build();
        let p = pb.finish();
        let p2 = parse_program(&print_program(&p)).unwrap();
        assert_eq!(
            p.methods[crate::idx::MethodId(0)].body.as_slice(),
            p2.methods[crate::idx::MethodId(0)].body.as_slice()
        );
        let _ = VarId(0);
    }
}
