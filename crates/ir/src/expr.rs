//! The seventeen expression kinds of assignment right-hand sides.
//!
//! The GDroid paper (§III-B2) counts 25 ICFG node partitions on the CPU:
//! 8 non-assignment statement kinds plus 17 expression kinds inside
//! `AssignmentStatement`. This module defines those 17 expression kinds
//! verbatim; [`ExprKind`] exposes the partition index used by the plain GPU
//! kernel's branch-divergence model, and [`Expr::access_pattern`] exposes the
//! 3-way memory-access classification used by the GRP optimization.

use crate::idx::{FieldId, Symbol, VarId};
use crate::method::Signature;
use crate::types::JType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A literal constant.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// Integer constant (covers all integral widths).
    Int(i64),
    /// Floating constant (covers float/double).
    Float(f64),
    /// Interned string constant. Strings are heap instances in the
    /// points-to domain (each string literal is an allocation site).
    Str(Symbol),
    /// Boolean constant.
    Bool(bool),
}

/// Binary arithmetic/logic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise/logical complement.
    Not,
}

/// Comparison kinds for [`Expr::Cmp`] (Dalvik `cmp`/`cmpl`/`cmpg`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpKind {
    /// `cmp` on longs.
    Cmp,
    /// `cmpl` (NaN → -1).
    Cmpl,
    /// `cmpg` (NaN → +1).
    Cmpg,
}

/// The 3-way memory-access-pattern classification behind the paper's GRP
/// optimization (§IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// One-time fact generation: the node creates facts only on its first
    /// visit; re-visits merely propagate (e.g. `ConstClass`, `Null`,
    /// `Literal`, `New`).
    OneTimeGen = 0,
    /// Single de-reference per visit: one global-memory round trip (e.g.
    /// `VariableName`, `StaticFieldAccess`).
    SingleLayer = 1,
    /// Double de-reference per visit: two dependent global-memory round trips
    /// (e.g. `Access` = `x.f`, `Indexing` = `a[i]`).
    DoubleLayer = 2,
}

/// An assignment right-hand side. Exactly the paper's seventeen kinds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields (base/field/lhs/rhs/…) are self-describing
pub enum Expr {
    /// `x.f` — instance field read (*AccessExpr*).
    Access { base: VarId, field: FieldId },
    /// `a ⊕ b` — arithmetic on primitives (*BinaryExpr*).
    Binary { op: BinOp, lhs: VarId, rhs: VarId },
    /// The value returned by a call when the call statement has an
    /// assignment form `x = call …` (*CallRhs*). The callee signature is
    /// carried on the enclosing [`crate::Stmt::Call`]; this variant appears
    /// when a call's result flows through a temporary.
    CallRhs { ret: VarId },
    /// `(T) x` — checked cast (*CastExpr*).
    Cast { ty: JType, operand: VarId },
    /// `cmp(a, b)` — long/float comparison producing an int (*CmpExpr*).
    Cmp { kind: CmpKind, lhs: VarId, rhs: VarId },
    /// `T.class` — class constant (*ConstClassExpr*).
    ConstClass { ty: JType },
    /// The caught exception object at a handler head (*ExceptionExpr*).
    Exception,
    /// `a[i]` — array element read (*IndexingExpr*).
    Indexing { base: VarId, index: VarId },
    /// `x instanceof T` (*InstanceOfExpr*).
    InstanceOf { operand: VarId, ty: JType },
    /// `a.length` (*LengthExpr*).
    Length { base: VarId },
    /// Constant literal (*LiteralExpr*).
    Lit(Literal),
    /// `y` — plain variable copy (*VariableNameExpr*).
    Var(VarId),
    /// `C.f` — static field read (*StaticFieldAccessExpr*).
    StaticField { field: FieldId },
    /// `new T` / `new T[n]` — allocation (*NewExpr*). The allocation site is
    /// the enclosing statement; `ty` is the allocated type.
    New { ty: JType },
    /// `null` (*NullExpr*).
    Null,
    /// `(a, b, …)` — tuple construction, used by the environment model to
    /// pass multiple values (*TupleExpr*).
    Tuple { elems: Vec<VarId> },
    /// `⊖ x` — unary operation (*UnaryExpr*).
    Unary { op: UnOp, operand: VarId },
}

/// Discriminant-only view of [`Expr`], used for branch-partition bookkeeping
/// (the "25 node groups" of the plain implementation) and for statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ExprKind {
    Access,
    Binary,
    CallRhs,
    Cast,
    Cmp,
    ConstClass,
    Exception,
    Indexing,
    InstanceOf,
    Length,
    Literal,
    VariableName,
    StaticFieldAccess,
    New,
    Null,
    Tuple,
    Unary,
}

impl ExprKind {
    /// All seventeen kinds, in declaration order.
    pub const ALL: [ExprKind; 17] = [
        ExprKind::Access,
        ExprKind::Binary,
        ExprKind::CallRhs,
        ExprKind::Cast,
        ExprKind::Cmp,
        ExprKind::ConstClass,
        ExprKind::Exception,
        ExprKind::Indexing,
        ExprKind::InstanceOf,
        ExprKind::Length,
        ExprKind::Literal,
        ExprKind::VariableName,
        ExprKind::StaticFieldAccess,
        ExprKind::New,
        ExprKind::Null,
        ExprKind::Tuple,
        ExprKind::Unary,
    ];

    /// Stable small integer for use as a branch-partition index.
    #[inline]
    pub fn partition(self) -> usize {
        self as usize
    }
}

impl Expr {
    /// The discriminant-only kind.
    pub fn kind(&self) -> ExprKind {
        match self {
            Expr::Access { .. } => ExprKind::Access,
            Expr::Binary { .. } => ExprKind::Binary,
            Expr::CallRhs { .. } => ExprKind::CallRhs,
            Expr::Cast { .. } => ExprKind::Cast,
            Expr::Cmp { .. } => ExprKind::Cmp,
            Expr::ConstClass { .. } => ExprKind::ConstClass,
            Expr::Exception => ExprKind::Exception,
            Expr::Indexing { .. } => ExprKind::Indexing,
            Expr::InstanceOf { .. } => ExprKind::InstanceOf,
            Expr::Length { .. } => ExprKind::Length,
            Expr::Lit(_) => ExprKind::Literal,
            Expr::Var(_) => ExprKind::VariableName,
            Expr::StaticField { .. } => ExprKind::StaticFieldAccess,
            Expr::New { .. } => ExprKind::New,
            Expr::Null => ExprKind::Null,
            Expr::Tuple { .. } => ExprKind::Tuple,
            Expr::Unary { .. } => ExprKind::Unary,
        }
    }

    /// The memory-access pattern of this expression, per the paper's GRP
    /// classification (§IV-B): one-time generation, single de-reference, or
    /// double de-reference.
    pub fn access_pattern(&self) -> AccessPattern {
        match self.kind() {
            // Nodes that only generate facts on first visit.
            ExprKind::ConstClass
            | ExprKind::Null
            | ExprKind::Literal
            | ExprKind::New
            | ExprKind::Exception => AccessPattern::OneTimeGen,
            // Single de-reference: read one slot.
            ExprKind::VariableName
            | ExprKind::StaticFieldAccess
            | ExprKind::Cast
            | ExprKind::CallRhs
            | ExprKind::Binary
            | ExprKind::Cmp
            | ExprKind::InstanceOf
            | ExprKind::Length
            | ExprKind::Unary
            | ExprKind::Tuple => AccessPattern::SingleLayer,
            // Double de-reference: resolve the base's instances, then the
            // per-instance heap slot.
            ExprKind::Access | ExprKind::Indexing => AccessPattern::DoubleLayer,
        }
    }

    /// Variables read by this expression (for use/def analysis).
    pub fn uses(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Access { base, .. } | Expr::Length { base } => out.push(*base),
            Expr::Binary { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            Expr::CallRhs { ret } => out.push(*ret),
            Expr::Cast { operand, .. }
            | Expr::InstanceOf { operand, .. }
            | Expr::Unary { operand, .. } => out.push(*operand),
            Expr::Indexing { base, index } => {
                out.push(*base);
                out.push(*index);
            }
            Expr::Var(v) => out.push(*v),
            Expr::Tuple { elems } => out.extend_from_slice(elems),
            Expr::ConstClass { .. }
            | Expr::Exception
            | Expr::Lit(_)
            | Expr::StaticField { .. }
            | Expr::New { .. }
            | Expr::Null => {}
        }
    }

    /// Whether this expression can yield a heap reference (and therefore
    /// generates or propagates points-to facts).
    pub fn may_produce_reference(&self) -> bool {
        match self {
            Expr::New { .. }
            | Expr::Null
            | Expr::ConstClass { .. }
            | Expr::Exception
            | Expr::Access { .. }
            | Expr::Indexing { .. }
            | Expr::Var(_)
            | Expr::StaticField { .. }
            | Expr::CallRhs { .. }
            | Expr::Tuple { .. } => true,
            Expr::Cast { ty, .. } => ty.is_reference(),
            Expr::Lit(Literal::Str(_)) => true,
            Expr::Lit(_)
            | Expr::Binary { .. }
            | Expr::Cmp { .. }
            | Expr::InstanceOf { .. }
            | Expr::Length { .. }
            | Expr::Unary { .. } => false,
        }
    }
}

/// A method signature reference carried by call expressions in the text
/// format before resolution; re-exported for parser use.
pub type SigRef = Signature;

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => write!(f, "{v:?}f"),
            Literal::Str(s) => write!(f, "\"{s}\""),
            Literal::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_all_seventeen() {
        assert_eq!(ExprKind::ALL.len(), 17);
        // Partitions are distinct and dense.
        let mut parts: Vec<usize> = ExprKind::ALL.iter().map(|k| k.partition()).collect();
        parts.sort_unstable();
        assert_eq!(parts, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn access_patterns_match_paper_examples() {
        // §IV-B names these exact examples for each group.
        assert_eq!(Expr::ConstClass { ty: JType::Int }.access_pattern(), AccessPattern::OneTimeGen);
        assert_eq!(Expr::Null.access_pattern(), AccessPattern::OneTimeGen);
        assert_eq!(Expr::Lit(Literal::Int(3)).access_pattern(), AccessPattern::OneTimeGen);
        assert_eq!(Expr::Var(VarId(0)).access_pattern(), AccessPattern::SingleLayer);
        assert_eq!(
            Expr::StaticField { field: FieldId(0) }.access_pattern(),
            AccessPattern::SingleLayer
        );
        assert_eq!(
            Expr::Access { base: VarId(0), field: FieldId(0) }.access_pattern(),
            AccessPattern::DoubleLayer
        );
        assert_eq!(
            Expr::Indexing { base: VarId(0), index: VarId(1) }.access_pattern(),
            AccessPattern::DoubleLayer
        );
    }

    #[test]
    fn uses_collects_operands() {
        let mut v = Vec::new();
        Expr::Binary { op: BinOp::Add, lhs: VarId(1), rhs: VarId(2) }.uses(&mut v);
        assert_eq!(v, vec![VarId(1), VarId(2)]);
        v.clear();
        Expr::Indexing { base: VarId(3), index: VarId(4) }.uses(&mut v);
        assert_eq!(v, vec![VarId(3), VarId(4)]);
        v.clear();
        Expr::Null.uses(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn reference_production() {
        assert!(Expr::New { ty: JType::Object(Symbol(0)) }.may_produce_reference());
        assert!(Expr::Lit(Literal::Str(Symbol(0))).may_produce_reference());
        assert!(!Expr::Lit(Literal::Int(1)).may_produce_reference());
        assert!(
            !Expr::Binary { op: BinOp::Add, lhs: VarId(0), rhs: VarId(1) }.may_produce_reference()
        );
        assert!(
            Expr::Cast { ty: JType::Object(Symbol(1)), operand: VarId(0) }.may_produce_reference()
        );
        assert!(!Expr::Cast { ty: JType::Int, operand: VarId(0) }.may_produce_reference());
    }
}
