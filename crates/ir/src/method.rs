//! Methods, signatures, and declarations.

use crate::idx::{IndexVec, StmtIdx, Symbol, VarId};
use crate::stmt::Stmt;
use crate::types::JType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A method signature: the resolution key for call statements.
///
/// Signatures are structural (class name + method name + parameter types +
/// return type), matching Dalvik method references.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    /// Declaring (or nominal receiver) class name.
    pub class: Symbol,
    /// Method name.
    pub name: Symbol,
    /// Parameter types, excluding the implicit receiver.
    pub params: Vec<JType>,
    /// Return type.
    pub ret: JType,
}

impl Signature {
    /// Convenience constructor.
    pub fn new(class: Symbol, name: Symbol, params: Vec<JType>, ret: JType) -> Self {
        Self { class, name, params, ret }
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{};.{}:(", self.class, self.name)?;
        for p in &self.params {
            write!(f, "{p}")?;
        }
        write!(f, "){}", self.ret)
    }
}

/// Method visibility (affects call-graph construction for `Direct` calls).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Visibility {
    /// `public`
    Public,
    /// `protected`
    Protected,
    /// `private`
    Private,
}

/// How the method participates in dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodKind {
    /// Ordinary instance method (virtual dispatch).
    Instance,
    /// Static method.
    Static,
    /// Constructor (`<init>`).
    Constructor,
    /// Android lifecycle callback (e.g. `onCreate`) — called by the
    /// synthesized environment method rather than app code.
    LifecycleCallback,
    /// A synthesized per-component environment method (the ICFG entry point
    /// `EC` of equation (1) in the paper).
    Environment,
}

/// A declared parameter.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParamDecl {
    /// The local variable the parameter binds to.
    pub var: VarId,
    /// Declared type.
    pub ty: JType,
}

/// A declared local variable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Interned variable name (for printing only).
    pub name: Symbol,
    /// Declared type.
    pub ty: JType,
}

/// A method: signature, declarations, and a flat statement body.
///
/// Control flow is encoded positionally: statement `i` falls through to
/// `i + 1` unless it is a `goto`/`return`/`throw`; jump targets are
/// [`StmtIdx`] positions within the same body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Method {
    /// The resolution signature.
    pub sig: Signature,
    /// Kind (instance/static/constructor/lifecycle/environment).
    pub kind: MethodKind,
    /// Visibility.
    pub visibility: Visibility,
    /// Receiver variable (`this`) for instance methods; `None` for static.
    pub this_var: Option<VarId>,
    /// Declared parameters, in order.
    pub params: Vec<ParamDecl>,
    /// All local variables, including `this` and parameters.
    pub vars: IndexVec<VarId, VarDecl>,
    /// The statement body.
    pub body: IndexVec<StmtIdx, Stmt>,
}

impl Method {
    /// Number of statements.
    #[inline]
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the body is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Number of local variables (including `this` and parameters).
    #[inline]
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of reference-typed local variables — the rows of the
    /// fact-matrix slot pool contributed by locals.
    pub fn reference_var_count(&self) -> usize {
        self.vars.iter().filter(|v| v.ty.is_reference()).count()
    }

    /// Iterate over call statements with their positions.
    pub fn call_sites(&self) -> impl Iterator<Item = (StmtIdx, &Stmt)> {
        self.body.iter_enumerated().filter(|(_, s)| s.is_call())
    }

    /// Number of allocation sites (`New` expressions and string literals)
    /// in the body — the columns of the fact-matrix instance pool
    /// contributed by this method.
    pub fn allocation_site_count(&self) -> usize {
        use crate::expr::{Expr, Literal};
        self.body
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Stmt::Assign { rhs: Expr::New { .. }, .. }
                        | Stmt::Assign { rhs: Expr::Lit(Literal::Str(_)), .. }
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, Literal};
    use crate::stmt::{CallKind, Lhs};

    fn small_method() -> Method {
        let sig = Signature::new(Symbol(0), Symbol(1), vec![], JType::Void);
        let mut vars = IndexVec::new();
        let v0 = vars.push(VarDecl { name: Symbol(2), ty: JType::Object(Symbol(0)) });
        let v1 = vars.push(VarDecl { name: Symbol(3), ty: JType::Int });
        let mut body: IndexVec<StmtIdx, Stmt> = IndexVec::new();
        body.push(Stmt::Assign {
            lhs: Lhs::Var(v0),
            rhs: Expr::New { ty: JType::Object(Symbol(0)) },
        });
        body.push(Stmt::Assign { lhs: Lhs::Var(v1), rhs: Expr::Lit(Literal::Int(1)) });
        body.push(Stmt::Call {
            ret: None,
            kind: CallKind::Static,
            sig: Signature::new(Symbol(4), Symbol(5), vec![], JType::Void),
            args: vec![],
        });
        body.push(Stmt::Return { var: None });
        Method {
            sig,
            kind: MethodKind::Static,
            visibility: Visibility::Public,
            this_var: None,
            params: vec![],
            vars,
            body,
        }
    }

    #[test]
    fn counts() {
        let m = small_method();
        assert_eq!(m.len(), 4);
        assert_eq!(m.var_count(), 2);
        assert_eq!(m.reference_var_count(), 1);
        assert_eq!(m.allocation_site_count(), 1);
        assert_eq!(m.call_sites().count(), 1);
    }

    #[test]
    fn signature_display() {
        let sig = Signature::new(Symbol(0), Symbol(1), vec![JType::Int], JType::Void);
        assert_eq!(sig.to_string(), "Ls0;.s1:(I)V");
    }
}
