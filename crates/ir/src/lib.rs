#![warn(missing_docs)]

//! # gdroid-ir — Android-like intermediate representation
//!
//! This crate defines the intermediate representation (IR) that every other
//! GDroid crate analyzes. It plays the role that Amandroid's *Jawa/Pilar* IR
//! plays in the original system: a register-based, statement-oriented encoding
//! of Android (Dalvik) bytecode.
//!
//! The IR mirrors the taxonomy the GDroid paper (IPDPS 2020, §III-B2) relies
//! on for its branch-divergence analysis:
//!
//! * **nine statement kinds** — [`Stmt`]: assignment, empty, monitor, throw,
//!   call, goto, if, return, switch;
//! * **seventeen expression kinds** — [`Expr`]: access, binary, call-rhs,
//!   cast, cmp, const-class, exception, indexing, instance-of, length,
//!   literal, variable-name, static-field-access, new, null, tuple, unary.
//!
//! The crate provides:
//!
//! * the data model ([`Program`], [`ClassDef`], [`Method`], [`Stmt`],
//!   [`Expr`], …) with interned names and dense index types;
//! * a fluent [`builder`] API used by the synthetic app generator;
//! * a textual serialization format (".jil", *Jawa-like Intermediate
//!   Language*) with a [`text::Lexer`], [`text::Parser`] and pretty-printer,
//!   so corpora can be inspected and stored on disk;
//! * structural [`validate`] checks (branch targets in range, variables
//!   declared, call arity consistent with signatures);
//! * a pass-based [`lint`] framework generalizing validation with
//!   flow-sensitive checks (def-before-use, unreachable code, type
//!   confusion, dead stores), driven by `gdroid lint`.

pub mod builder;
pub mod expr;
pub mod idx;
pub mod lint;
pub mod method;
pub mod program;
pub mod stmt;
pub mod text;
pub mod types;
pub mod validate;

pub use builder::{BuilderError, ClassBuilder, MethodBuilder, ProgramBuilder};
pub use expr::{BinOp, CmpKind, Expr, ExprKind, Literal, UnOp};
pub use idx::{ClassId, FieldId, MethodId, StmtIdx, Symbol, VarId};
pub use lint::{lint_program, LintDiagnostic, LintPass, LintRunner, Severity, SinkReachability};
pub use method::{Method, MethodKind, ParamDecl, Signature, VarDecl, Visibility};
pub use program::{ClassDef, FieldDef, Interner, Program};
pub use stmt::{CallKind, Lhs, MonitorOp, Stmt, StmtKind};
pub use types::JType;
pub use validate::{validate_method, validate_program, ValidationError};
