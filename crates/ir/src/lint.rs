//! Pass-based static lints over the IR.
//!
//! [`validate`](crate::validate) answers "can the analyses index this
//! program without bounds anxiety?" — a hard yes/no. This module
//! generalizes it into a pluggable pass framework that also surfaces
//! *suspicious but well-formed* IR: uses of may-uninitialized variables,
//! unreachable statements, reference/primitive type confusion on heap
//! accesses, and dead stores. The `gdroid lint` subcommand and the
//! `figures` driver run [`LintRunner::default_passes`] over whole corpora.
//!
//! Severity policy: anything [`validate`](crate::validate) rejects is an
//! [`Severity::Error`]; the flow-sensitive lints are
//! [`Severity::Warning`]s because the synthetic generator (like real
//! Dalvik output) legitimately produces, e.g., stores that a later
//! refactor made dead.

use crate::idx::{MethodId, StmtIdx, VarId};
use crate::method::Method;
use crate::program::Program;
use crate::stmt::{Lhs, Stmt};
use crate::validate::validate_method;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but analyzable; does not fail `gdroid lint`.
    Warning,
    /// Structurally broken; `gdroid lint` (and `figures`) exit nonzero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding of one pass.
#[derive(Clone, Debug, PartialEq)]
pub struct LintDiagnostic {
    /// Name of the pass that produced the diagnostic.
    pub pass: &'static str,
    /// Severity.
    pub severity: Severity,
    /// The offending method.
    pub method: MethodId,
    /// The offending statement, when the finding is statement-scoped.
    pub stmt: Option<StmtIdx>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.stmt {
            Some(s) => {
                write!(
                    f,
                    "{}: {}:{}: [{}] {}",
                    self.severity, self.method, s, self.pass, self.message
                )
            }
            None => {
                write!(f, "{}: {}: [{}] {}", self.severity, self.method, self.pass, self.message)
            }
        }
    }
}

/// A lint pass: examines one method at a time.
pub trait LintPass {
    /// Stable pass name (shown in diagnostics).
    fn name(&self) -> &'static str;
    /// Checks one method, appending diagnostics to `out`.
    fn check_method(
        &self,
        program: &Program,
        mid: MethodId,
        method: &Method,
        out: &mut Vec<LintDiagnostic>,
    );
}

/// Runs a sequence of passes over a program.
#[derive(Default)]
pub struct LintRunner {
    passes: Vec<Box<dyn LintPass>>,
}

impl LintRunner {
    /// An empty runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard pass pipeline: structural validation, def-before-use,
    /// unreachable code, type confusion, dead stores.
    pub fn default_passes() -> Self {
        Self::new()
            .with_pass(Structural)
            .with_pass(DefBeforeUse)
            .with_pass(UnreachableCode)
            .with_pass(TypeConfusion)
            .with_pass(DeadStore)
    }

    /// Appends a pass.
    pub fn with_pass(mut self, pass: impl LintPass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Runs every pass over every method. Findings are sorted by
    /// (declaring class, method, statement index) — a stable sort, so
    /// same-statement findings keep pass registration order — making
    /// `gdroid lint` output byte-deterministic regardless of how a pass
    /// discovered its findings.
    pub fn run(&self, program: &Program) -> Vec<LintDiagnostic> {
        let mut out = Vec::new();
        for (mid, method) in program.methods.iter_enumerated() {
            for pass in &self.passes {
                pass.check_method(program, mid, method, &mut out);
            }
        }
        out.sort_by_key(|d| (program.methods[d.method].sig.class, d.method, d.stmt));
        out
    }
}

/// Convenience: run the default pipeline.
pub fn lint_program(program: &Program) -> Vec<LintDiagnostic> {
    LintRunner::default_passes().run(program)
}

/// Whether any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[LintDiagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

// ---------------------------------------------------------------------------
// Mini-CFG: positional successors. `gdroid-icfg` owns the real CFG, but the
// lints live below it in the crate graph, and the positional encoding makes
// successors trivial: fall-through to `i + 1` plus explicit jump targets.
// Out-of-range targets are dropped here (the structural pass reports them).

fn successors(method: &Method, idx: StmtIdx, out: &mut Vec<usize>) {
    out.clear();
    let n = method.body.len();
    let stmt = &method.body[idx];
    if stmt.falls_through() && idx.index() + 1 < n {
        out.push(idx.index() + 1);
    }
    let mut targets = Vec::new();
    stmt.jump_targets(&mut targets);
    for t in targets {
        if t.index() < n {
            out.push(t.index());
        }
    }
}

// --- bitset helpers (nvars is small; one Vec<u64> row per statement) -------

#[inline]
fn bit_get(row: &[u64], i: usize) -> bool {
    row[i / 64] & (1 << (i % 64)) != 0
}

#[inline]
fn bit_set(row: &mut [u64], i: usize) {
    row[i / 64] |= 1 << (i % 64);
}

/// `dst &= src`; returns whether `dst` changed.
fn bit_and_assign(dst: &mut [u64], src: &[u64]) -> bool {
    let mut changed = false;
    for (d, s) in dst.iter_mut().zip(src) {
        let nv = *d & *s;
        changed |= nv != *d;
        *d = nv;
    }
    changed
}

/// `dst |= src`; returns whether `dst` changed.
fn bit_or_assign(dst: &mut [u64], src: &[u64]) -> bool {
    let mut changed = false;
    for (d, s) in dst.iter_mut().zip(src) {
        let nv = *d | *s;
        changed |= nv != *d;
        *d = nv;
    }
    changed
}

// ---------------------------------------------------------------------------

/// Wraps [`validate_method`]: every structural failure is an error-severity
/// diagnostic.
pub struct Structural;

impl LintPass for Structural {
    fn name(&self) -> &'static str {
        "structural"
    }

    fn check_method(
        &self,
        program: &Program,
        mid: MethodId,
        method: &Method,
        out: &mut Vec<LintDiagnostic>,
    ) {
        let mut errors = Vec::new();
        validate_method(program, mid, method, &mut errors);
        out.extend(errors.into_iter().map(|e| LintDiagnostic {
            pass: self.name(),
            severity: Severity::Error,
            method: mid,
            stmt: None,
            message: e.to_string(),
        }));
    }
}

/// Forward definite-assignment dataflow: warns when a statement may read a
/// variable no path has assigned. `this` and parameters are defined at
/// entry.
pub struct DefBeforeUse;

impl LintPass for DefBeforeUse {
    fn name(&self) -> &'static str {
        "def-before-use"
    }

    fn check_method(
        &self,
        _program: &Program,
        mid: MethodId,
        method: &Method,
        out: &mut Vec<LintDiagnostic>,
    ) {
        let n = method.body.len();
        let nvars = method.vars.len();
        if n == 0 || nvars == 0 {
            return;
        }
        let words = nvars.div_ceil(64);

        let mut entry_defined = vec![0u64; words];
        if let Some(t) = method.this_var {
            if t.index() < nvars {
                bit_set(&mut entry_defined, t.index());
            }
        }
        for p in &method.params {
            if p.var.index() < nvars {
                bit_set(&mut entry_defined, p.var.index());
            }
        }

        // Must-analysis: start from the universal set, intersect over
        // predecessors, iterate down to the greatest fixed point.
        let mut da_in = vec![vec![u64::MAX; words]; n];
        da_in[0] = entry_defined;
        let mut succs = Vec::new();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                let mut da_out = da_in[i].clone();
                if let Some(d) = method.body[StmtIdx::new(i)].defined_var() {
                    if d.index() < nvars {
                        bit_set(&mut da_out, d.index());
                    }
                }
                successors(method, StmtIdx::new(i), &mut succs);
                for &s in &succs {
                    changed |= bit_and_assign(&mut da_in[s], &da_out);
                }
            }
        }

        let mut uses = Vec::new();
        for (idx, stmt) in method.body.iter_enumerated() {
            uses.clear();
            stmt.uses(&mut uses);
            if let Stmt::Assign { lhs, .. } = stmt {
                lhs.uses(&mut uses);
            }
            uses.sort_unstable();
            uses.dedup();
            for &v in &uses {
                if v.index() < nvars && !bit_get(&da_in[idx.index()], v.index()) {
                    out.push(LintDiagnostic {
                        pass: self.name(),
                        severity: Severity::Warning,
                        method: mid,
                        stmt: Some(idx),
                        message: format!("{v} may be read before any assignment"),
                    });
                }
            }
        }
    }
}

/// Flags statements no path from the entry reaches.
pub struct UnreachableCode;

impl LintPass for UnreachableCode {
    fn name(&self) -> &'static str {
        "unreachable"
    }

    fn check_method(
        &self,
        _program: &Program,
        mid: MethodId,
        method: &Method,
        out: &mut Vec<LintDiagnostic>,
    ) {
        let n = method.body.len();
        if n == 0 {
            return;
        }
        let mut reached = vec![false; n];
        let mut stack = vec![0usize];
        reached[0] = true;
        let mut succs = Vec::new();
        while let Some(i) = stack.pop() {
            successors(method, StmtIdx::new(i), &mut succs);
            for s in succs.clone() {
                if !reached[s] {
                    reached[s] = true;
                    stack.push(s);
                }
            }
        }
        for (i, r) in reached.iter().enumerate() {
            if !r {
                out.push(LintDiagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    method: mid,
                    stmt: Some(StmtIdx::new(i)),
                    message: "statement is unreachable from the method entry".into(),
                });
            }
        }
    }
}

/// Reference/primitive confusion on heap-shaped accesses: instance-field
/// bases must be references, array bases must be arrays with primitive
/// indices, and field loads into a local must agree with the field's
/// reference-ness. (Exact class compatibility is the type checker's job —
/// subtyping makes symbol equality too strict for a lint.)
pub struct TypeConfusion;

impl TypeConfusion {
    fn check_ref_base(
        &self,
        mid: MethodId,
        method: &Method,
        idx: StmtIdx,
        base: VarId,
        what: &str,
        out: &mut Vec<LintDiagnostic>,
    ) {
        if let Some(decl) = method.vars.get(base) {
            if !decl.ty.is_reference() {
                out.push(LintDiagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    method: mid,
                    stmt: Some(idx),
                    message: format!("{what} base {base} has primitive type {}", decl.ty),
                });
            }
        }
    }

    fn check_array_access(
        &self,
        mid: MethodId,
        method: &Method,
        idx: StmtIdx,
        base: VarId,
        index: VarId,
        out: &mut Vec<LintDiagnostic>,
    ) {
        if let Some(decl) = method.vars.get(base) {
            if !matches!(decl.ty, crate::types::JType::Array(_)) {
                out.push(LintDiagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    method: mid,
                    stmt: Some(idx),
                    message: format!("array access base {base} has non-array type {}", decl.ty),
                });
            }
        }
        if let Some(decl) = method.vars.get(index) {
            if !decl.ty.is_primitive() {
                out.push(LintDiagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    method: mid,
                    stmt: Some(idx),
                    message: format!("array index {index} has non-primitive type {}", decl.ty),
                });
            }
        }
    }
}

impl LintPass for TypeConfusion {
    fn name(&self) -> &'static str {
        "type-confusion"
    }

    fn check_method(
        &self,
        program: &Program,
        mid: MethodId,
        method: &Method,
        out: &mut Vec<LintDiagnostic>,
    ) {
        use crate::expr::Expr;
        for (idx, stmt) in method.body.iter_enumerated() {
            let Stmt::Assign { lhs, rhs } = stmt else { continue };
            match lhs {
                Lhs::Field { base, .. } => {
                    self.check_ref_base(mid, method, idx, *base, "field store", out);
                }
                Lhs::ArrayElem { base, index } => {
                    self.check_array_access(mid, method, idx, *base, *index, out);
                }
                Lhs::Var(_) | Lhs::StaticField { .. } => {}
            }
            match rhs {
                Expr::Access { base, .. } => {
                    self.check_ref_base(mid, method, idx, *base, "field read", out);
                }
                Expr::Indexing { base, index } => {
                    self.check_array_access(mid, method, idx, *base, *index, out);
                }
                Expr::Length { base } => {
                    self.check_ref_base(mid, method, idx, *base, "length read", out);
                }
                _ => {}
            }
            // Field slot vs. destination local: reference-ness must agree.
            if let (Lhs::Var(dst), Expr::Access { field, .. } | Expr::StaticField { field }) =
                (lhs, rhs)
            {
                if let (Some(decl), Some(fdef)) =
                    (method.vars.get(*dst), program.fields.get(*field))
                {
                    if decl.ty.is_reference() != fdef.ty.is_reference() {
                        out.push(LintDiagnostic {
                            pass: self.name(),
                            severity: Severity::Warning,
                            method: mid,
                            stmt: Some(idx),
                            message: format!(
                                "field of type {} loaded into {dst} of type {}",
                                fdef.ty, decl.ty
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Backward liveness: warns on assignments to locals that no path reads
/// before the next write (or the method end). Only side-effect-free
/// right-hand sides are flagged — heap reads can fault and allocations are
/// observable to the points-to analysis.
pub struct DeadStore;

fn rhs_is_pure(rhs: &crate::expr::Expr) -> bool {
    use crate::expr::Expr;
    matches!(
        rhs,
        Expr::Lit(_)
            | Expr::Var(_)
            | Expr::Binary { .. }
            | Expr::Cmp { .. }
            | Expr::Unary { .. }
            | Expr::Null
            | Expr::ConstClass { .. }
            | Expr::InstanceOf { .. }
            | Expr::Tuple { .. }
    )
}

impl LintPass for DeadStore {
    fn name(&self) -> &'static str {
        "dead-store"
    }

    fn check_method(
        &self,
        _program: &Program,
        mid: MethodId,
        method: &Method,
        out: &mut Vec<LintDiagnostic>,
    ) {
        let n = method.body.len();
        let nvars = method.vars.len();
        if n == 0 || nvars == 0 {
            return;
        }
        let words = nvars.div_ceil(64);
        let mut live_in = vec![vec![0u64; words]; n];
        let mut succs = Vec::new();
        let mut uses = Vec::new();
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..n).rev() {
                let idx = StmtIdx::new(i);
                // live_out = ∪ succ live_in
                let mut live_out = vec![0u64; words];
                successors(method, idx, &mut succs);
                for &s in &succs {
                    bit_or_assign(&mut live_out, &live_in[s]);
                }
                // live_in = use ∪ (live_out − def)
                let stmt = &method.body[idx];
                if let Some(d) = stmt.defined_var() {
                    if d.index() < nvars {
                        live_out[d.index() / 64] &= !(1 << (d.index() % 64));
                    }
                }
                uses.clear();
                stmt.uses(&mut uses);
                for &u in &uses {
                    if u.index() < nvars {
                        bit_set(&mut live_out, u.index());
                    }
                }
                changed |= bit_or_assign(&mut live_in[i], &live_out);
            }
        }

        for (idx, stmt) in method.body.iter_enumerated() {
            let Stmt::Assign { lhs: Lhs::Var(v), rhs } = stmt else { continue };
            if !rhs_is_pure(rhs) || v.index() >= nvars {
                continue;
            }
            // Dead iff the defined var is not live-out of this statement.
            let mut live_out = vec![0u64; words];
            successors(method, idx, &mut succs);
            for &s in &succs {
                bit_or_assign(&mut live_out, &live_in[s]);
            }
            if !bit_get(&live_out, v.index()) {
                out.push(LintDiagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    method: mid,
                    stmt: Some(idx),
                    message: format!("value assigned to {v} is never read"),
                });
            }
        }
    }
}

/// Sink call sites that no inter-procedurally reachable source can feed —
/// dead sinks a targeted (demand-driven) vetting run still has to slice
/// for, and a vetting rule author probably mis-modeled.
///
/// The reachability computation needs the call graph and the backward
/// slicer, which live *above* this crate (`gdroid-icfg` /
/// `gdroid-analysis`), so the pass carries precomputed findings: the
/// caller (e.g. `gdroid lint`) runs the slicer per sink site and hands
/// the unreached ones here; the pass only renders them as diagnostics in
/// the framework's ordering.
pub struct SinkReachability {
    findings: Vec<(MethodId, StmtIdx, String)>,
}

impl SinkReachability {
    /// Wraps precomputed findings: `(method, sink statement, sink name)`
    /// triples for sink sites whose backward slice contains no source
    /// call site.
    pub fn new(findings: Vec<(MethodId, StmtIdx, String)>) -> SinkReachability {
        SinkReachability { findings }
    }
}

impl LintPass for SinkReachability {
    fn name(&self) -> &'static str {
        "sink-reachability"
    }

    fn check_method(
        &self,
        _program: &Program,
        mid: MethodId,
        _method: &Method,
        out: &mut Vec<LintDiagnostic>,
    ) {
        for (_, stmt, sink) in self.findings.iter().filter(|(m, _, _)| *m == mid) {
            out.push(LintDiagnostic {
                pass: self.name(),
                severity: Severity::Warning,
                method: mid,
                stmt: Some(*stmt),
                message: format!("sink {sink} is not reachable by any taint source"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::expr::{Expr, Literal};
    use crate::method::MethodKind;
    use crate::stmt::Lhs;
    use crate::types::JType;

    fn static_method(build: impl FnOnce(&mut crate::builder::MethodBuilder<'_>)) -> Program {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let mut mb = pb.method(cls, "m").kind(MethodKind::Static);
        build(&mut mb);
        mb.build();
        pb.finish()
    }

    fn diags_of<'d>(diags: &'d [LintDiagnostic], pass: &str) -> Vec<&'d LintDiagnostic> {
        diags.iter().filter(|d| d.pass == pass).collect()
    }

    #[test]
    fn clean_method_has_no_diagnostics() {
        let p = static_method(|mb| {
            let v = mb.local("v", JType::Int);
            let w = mb.local("w", JType::Int);
            mb.stmt(Stmt::Assign { lhs: Lhs::Var(v), rhs: Expr::Lit(Literal::Int(1)) });
            mb.stmt(Stmt::Assign { lhs: Lhs::Var(w), rhs: Expr::Var(v) });
            mb.stmt(Stmt::Return { var: Some(w) });
        });
        let diags = lint_program(&p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn structural_errors_surface_as_error_severity() {
        let p = static_method(|mb| {
            mb.stmt(Stmt::Goto { target: StmtIdx(99) });
            mb.stmt(Stmt::Return { var: None });
        });
        let diags = lint_program(&p);
        assert!(has_errors(&diags));
        assert_eq!(diags_of(&diags, "structural").len(), 1);
    }

    #[test]
    fn detects_use_before_def() {
        let p = static_method(|mb| {
            let v = mb.local("v", JType::Int);
            mb.stmt(Stmt::Return { var: Some(v) });
        });
        let diags = lint_program(&p);
        let d = diags_of(&diags, "def-before-use");
        assert_eq!(d.len(), 1, "{diags:?}");
        assert_eq!(d[0].severity, Severity::Warning);
        assert_eq!(d[0].stmt, Some(StmtIdx(0)));
    }

    #[test]
    fn params_and_this_count_as_defined() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let mut mb = pb.method(cls, "m");
        let this = mb.this();
        let x = mb.param("x", JType::Int);
        mb.stmt(Stmt::Monitor { op: crate::stmt::MonitorOp::Enter, var: this });
        mb.stmt(Stmt::Return { var: Some(x) });
        mb.build();
        let p = pb.finish();
        assert!(diags_of(&lint_program(&p), "def-before-use").is_empty());
    }

    #[test]
    fn def_on_one_branch_only_is_flagged() {
        let p = static_method(|mb| {
            let c = mb.param("c", JType::Int);
            let v = mb.local("v", JType::Int);
            // if c goto 2; v = 1; <target> return v — v undefined on the
            // jumping path.
            mb.stmt(Stmt::If { cond: c, target: StmtIdx(2) });
            mb.stmt(Stmt::Assign { lhs: Lhs::Var(v), rhs: Expr::Lit(Literal::Int(1)) });
            mb.stmt(Stmt::Return { var: Some(v) });
        });
        let d = lint_program(&p);
        let ub = diags_of(&d, "def-before-use");
        assert_eq!(ub.len(), 1, "{d:?}");
        assert_eq!(ub[0].stmt, Some(StmtIdx(2)));
    }

    #[test]
    fn detects_unreachable_code() {
        let p = static_method(|mb| {
            mb.stmt(Stmt::Return { var: None });
            mb.stmt(Stmt::Empty);
            mb.stmt(Stmt::Return { var: None });
        });
        let d = lint_program(&p);
        let un = diags_of(&d, "unreachable");
        assert_eq!(un.len(), 2, "{d:?}");
        assert_eq!(un[0].stmt, Some(StmtIdx(1)));
    }

    #[test]
    fn detects_type_confusion_on_field_and_array() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let f = pb.field(cls, "f", JType::Int, false);
        let mut mb = pb.method(cls, "m").kind(MethodKind::Static);
        let i = mb.local("i", JType::Int);
        let o = mb.local("o", JType::object(crate::idx::Symbol(0)));
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(i), rhs: Expr::Lit(Literal::Int(0)) });
        // Field read through a primitive base.
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(i), rhs: Expr::Access { base: i, field: f } });
        // Array access on a non-array base, indexed by a reference.
        mb.stmt(Stmt::Assign {
            lhs: Lhs::ArrayElem { base: i, index: o },
            rhs: Expr::Lit(Literal::Int(1)),
        });
        mb.stmt(Stmt::Return { var: None });
        mb.build();
        let p = pb.finish();
        let d = lint_program(&p);
        let tc = diags_of(&d, "type-confusion");
        // primitive field base + non-array base + reference index = 3.
        assert_eq!(tc.len(), 3, "{d:?}");
    }

    #[test]
    fn detects_field_reference_ness_mismatch() {
        let mut pb = ProgramBuilder::new();
        let cls = pb.class("A").build();
        let f = pb.field(cls, "f", JType::object(crate::idx::Symbol(0)), false);
        let mut mb = pb.method(cls, "m").kind(MethodKind::Static);
        let o = mb.local("o", JType::object(crate::idx::Symbol(0)));
        let i = mb.local("i", JType::Int);
        mb.stmt(Stmt::Assign {
            lhs: Lhs::Var(o),
            rhs: Expr::New { ty: JType::object(crate::idx::Symbol(0)) },
        });
        // Reference-typed field loaded into an int local.
        mb.stmt(Stmt::Assign { lhs: Lhs::Var(i), rhs: Expr::Access { base: o, field: f } });
        mb.stmt(Stmt::Return { var: None });
        mb.build();
        let p = pb.finish();
        let d = lint_program(&p);
        assert_eq!(diags_of(&d, "type-confusion").len(), 1, "{d:?}");
    }

    #[test]
    fn detects_dead_store() {
        let p = static_method(|mb| {
            let v = mb.local("v", JType::Int);
            mb.stmt(Stmt::Assign { lhs: Lhs::Var(v), rhs: Expr::Lit(Literal::Int(1)) });
            mb.stmt(Stmt::Assign { lhs: Lhs::Var(v), rhs: Expr::Lit(Literal::Int(2)) });
            mb.stmt(Stmt::Return { var: Some(v) });
        });
        let d = lint_program(&p);
        let ds = diags_of(&d, "dead-store");
        assert_eq!(ds.len(), 1, "{d:?}");
        assert_eq!(ds[0].stmt, Some(StmtIdx(0)));
    }

    #[test]
    fn loop_carried_use_is_not_a_dead_store() {
        let p = static_method(|mb| {
            let c = mb.param("c", JType::Int);
            let v = mb.local("v", JType::Int);
            mb.stmt(Stmt::Assign { lhs: Lhs::Var(v), rhs: Expr::Lit(Literal::Int(0)) });
            mb.stmt(Stmt::Assign {
                lhs: Lhs::Var(v),
                rhs: Expr::Binary { op: crate::expr::BinOp::Add, lhs: v, rhs: c },
            });
            mb.stmt(Stmt::If { cond: c, target: StmtIdx(1) });
            mb.stmt(Stmt::Return { var: Some(v) });
        });
        let d = lint_program(&p);
        assert!(diags_of(&d, "dead-store").is_empty(), "{d:?}");
    }

    #[test]
    fn sink_reachability_renders_precomputed_findings() {
        let p = static_method(|mb| {
            mb.stmt(Stmt::Return { var: None });
        });
        let mid = MethodId::new(0);
        let pass =
            SinkReachability::new(vec![(mid, StmtIdx(0), "Log.d(sink::SINK_LOG)".to_owned())]);
        let diags = LintRunner::new().with_pass(pass).run(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].pass, "sink-reachability");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert_eq!(diags[0].stmt, Some(StmtIdx(0)));
        assert!(diags[0].message.contains("SINK_LOG"));
    }

    #[test]
    fn findings_are_sorted_by_class_method_statement() {
        // Two classes, interleaved construction: B's method is built
        // before A2's, so raw pass order would put B first. The runner
        // must re-sort by (class, method, stmt).
        let mut pb = ProgramBuilder::new();
        let a = pb.class("A").build();
        let b = pb.class("B").build();
        let mut mb = pb.method(b, "mb").kind(MethodKind::Static);
        mb.stmt(Stmt::Return { var: None });
        mb.build();
        let mut mb = pb.method(a, "ma").kind(MethodKind::Static);
        mb.stmt(Stmt::Return { var: None });
        mb.build();
        let p = pb.finish();
        let b_mid = MethodId::new(0);
        let a_mid = MethodId::new(1);
        let pass = SinkReachability::new(vec![
            (b_mid, StmtIdx(0), "s1".to_owned()),
            (a_mid, StmtIdx(0), "s2".to_owned()),
        ]);
        let diags = LintRunner::new().with_pass(pass).run(&p);
        let order: Vec<MethodId> = diags.iter().map(|d| d.method).collect();
        let key = |mid: MethodId| (p.methods[mid].sig.class, mid);
        assert!(key(order[0]) < key(order[1]), "diagnostics must sort by (class, method)");
    }

    #[test]
    fn runner_is_composable() {
        let p = static_method(|mb| {
            let v = mb.local("v", JType::Int);
            mb.stmt(Stmt::Return { var: Some(v) });
        });
        // Only the unreachable pass: no diagnostics for this method.
        let diags = LintRunner::new().with_pass(UnreachableCode).run(&p);
        assert!(diags.is_empty());
        // Ordering: diagnostics come out grouped per method, pass order.
        let diags = LintRunner::default_passes().run(&p);
        assert!(!diags.is_empty());
        assert!(!has_errors(&diags));
    }
}
