//! The nine statement kinds of the IR.
//!
//! These are exactly the categories the GDroid paper enumerates (§III-B2):
//! `AssignmentStatement`, `EmptyStatement`, `MonitorStatement`,
//! `ThrowStatement`, `CallStatement`, `GoToStatement`, `IfStatement`,
//! `ReturnStatement`, `SwitchStatement`.

use crate::expr::{AccessPattern, Expr};
use crate::idx::{FieldId, StmtIdx, VarId};
use crate::method::Signature;
use serde::{Deserialize, Serialize};

/// An assignment left-hand side.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields (base/field/index) are self-describing
pub enum Lhs {
    /// `x = …` — local variable.
    Var(VarId),
    /// `x.f = …` — instance field store.
    Field { base: VarId, field: FieldId },
    /// `C.f = …` — static field store.
    StaticField { field: FieldId },
    /// `a[i] = …` — array element store. The index variable is kept for
    /// use/def purposes but element slots are merged (array-insensitive),
    /// as in Amandroid.
    ArrayElem { base: VarId, index: VarId },
}

impl Lhs {
    /// The variable defined by this LHS, if it defines one (only `Var`).
    #[inline]
    pub fn defined_var(&self) -> Option<VarId> {
        match self {
            Lhs::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// Variables *read* in order to perform the store (base pointers and
    /// indices).
    pub fn uses(&self, out: &mut Vec<VarId>) {
        match self {
            Lhs::Var(_) | Lhs::StaticField { .. } => {}
            Lhs::Field { base, .. } => out.push(*base),
            Lhs::ArrayElem { base, index } => {
                out.push(*base);
                out.push(*index);
            }
        }
    }

    /// Whether the store needs a heap de-reference (field/array stores).
    #[inline]
    pub fn is_heap_store(&self) -> bool {
        matches!(self, Lhs::Field { .. } | Lhs::ArrayElem { .. })
    }
}

/// Monitor operation kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MonitorOp {
    /// `monitor-enter`
    Enter,
    /// `monitor-exit`
    Exit,
}

/// Call dispatch kind (Dalvik invoke flavors).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallKind {
    /// `invoke-virtual` — receiver-dispatched.
    Virtual,
    /// `invoke-static`.
    Static,
    /// `invoke-direct` — constructors and private methods.
    Direct,
    /// `invoke-interface`.
    Interface,
}

/// A statement. Each statement occupies one ICFG node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields (lhs/rhs/target/args/…) are self-describing
pub enum Stmt {
    /// `lhs := expr` (*AssignmentStatement*).
    Assign { lhs: Lhs, rhs: Expr },
    /// No-op / label placeholder (*EmptyStatement*).
    Empty,
    /// `monitor-enter v` / `monitor-exit v` (*MonitorStatement*).
    Monitor { op: MonitorOp, var: VarId },
    /// `throw v` (*ThrowStatement*).
    Throw { var: VarId },
    /// `ret := invoke-kind sig(args)` (*CallStatement*). `ret` is `None`
    /// for `void` calls or when the result is discarded.
    Call { ret: Option<VarId>, kind: CallKind, sig: Signature, args: Vec<VarId> },
    /// Unconditional jump (*GoToStatement*).
    Goto { target: StmtIdx },
    /// Conditional jump: falls through on false (*IfStatement*). The
    /// condition variable is primitive; reference conditions (`if x == null`)
    /// are lowered by the generator to an `InstanceOf`/`Cmp` temp.
    If { cond: VarId, target: StmtIdx },
    /// `return v?` (*ReturnStatement*).
    Return { var: Option<VarId> },
    /// `switch v { case k → Lx, … } default → Ld` (*SwitchStatement*).
    Switch { var: VarId, targets: Vec<StmtIdx>, default: StmtIdx },
}

/// Discriminant-only view of [`Stmt`]. Together with
/// [`crate::ExprKind`]'s 17 assignment partitions, the 8 non-assignment
/// kinds here form the 25 branch partitions of the plain GPU implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum StmtKind {
    Assign,
    Empty,
    Monitor,
    Throw,
    Call,
    Goto,
    If,
    Return,
    Switch,
}

impl StmtKind {
    /// All nine statement kinds in declaration order.
    pub const ALL: [StmtKind; 9] = [
        StmtKind::Assign,
        StmtKind::Empty,
        StmtKind::Monitor,
        StmtKind::Throw,
        StmtKind::Call,
        StmtKind::Goto,
        StmtKind::If,
        StmtKind::Return,
        StmtKind::Switch,
    ];
}

/// Total number of branch partitions in the plain (un-grouped) node
/// classification: 17 assignment-expression kinds + 8 other statement kinds.
pub const PLAIN_PARTITIONS: usize = 25;

impl Stmt {
    /// The discriminant-only kind.
    pub fn kind(&self) -> StmtKind {
        match self {
            Stmt::Assign { .. } => StmtKind::Assign,
            Stmt::Empty => StmtKind::Empty,
            Stmt::Monitor { .. } => StmtKind::Monitor,
            Stmt::Throw { .. } => StmtKind::Throw,
            Stmt::Call { .. } => StmtKind::Call,
            Stmt::Goto { .. } => StmtKind::Goto,
            Stmt::If { .. } => StmtKind::If,
            Stmt::Return { .. } => StmtKind::Return,
            Stmt::Switch { .. } => StmtKind::Switch,
        }
    }

    /// The branch-partition index in `0..25` used by the plain GPU kernel:
    /// assignments map to their expression kind (0..17), other statements to
    /// 17 + their position among the 8 remaining kinds.
    pub fn plain_partition(&self) -> usize {
        match self {
            Stmt::Assign { rhs, .. } => rhs.kind().partition(),
            Stmt::Empty => 17,
            Stmt::Monitor { .. } => 18,
            Stmt::Throw { .. } => 19,
            Stmt::Call { .. } => 20,
            Stmt::Goto { .. } => 21,
            Stmt::If { .. } => 22,
            Stmt::Return { .. } => 23,
            Stmt::Switch { .. } => 24,
        }
    }

    /// The GRP memory-access-pattern group of this node (§IV-B).
    ///
    /// Assignments use their expression's pattern, except that a heap store
    /// on the LHS forces [`AccessPattern::DoubleLayer`] (the store itself
    /// de-references the base's instances). Calls are single-layer (summary
    /// lookup). Control statements generate no facts and are one-time.
    pub fn access_pattern(&self) -> AccessPattern {
        match self {
            Stmt::Assign { lhs, rhs } => {
                if lhs.is_heap_store() {
                    AccessPattern::DoubleLayer
                } else {
                    rhs.access_pattern()
                }
            }
            Stmt::Call { .. } => AccessPattern::SingleLayer,
            Stmt::Throw { .. } => AccessPattern::SingleLayer,
            Stmt::Empty
            | Stmt::Monitor { .. }
            | Stmt::Goto { .. }
            | Stmt::If { .. }
            | Stmt::Return { .. }
            | Stmt::Switch { .. } => AccessPattern::OneTimeGen,
        }
    }

    /// Variables read by this statement.
    pub fn uses(&self, out: &mut Vec<VarId>) {
        match self {
            Stmt::Assign { lhs, rhs } => {
                lhs.uses(out);
                rhs.uses(out);
            }
            Stmt::Monitor { var, .. } | Stmt::Throw { var } => out.push(*var),
            Stmt::Call { args, .. } => out.extend_from_slice(args),
            Stmt::If { cond, .. } => out.push(*cond),
            Stmt::Return { var } => out.extend(var.iter().copied()),
            Stmt::Switch { var, .. } => out.push(*var),
            Stmt::Empty | Stmt::Goto { .. } => {}
        }
    }

    /// The variable defined by this statement, if any.
    pub fn defined_var(&self) -> Option<VarId> {
        match self {
            Stmt::Assign { lhs, .. } => lhs.defined_var(),
            Stmt::Call { ret, .. } => *ret,
            _ => None,
        }
    }

    /// Whether control can fall through to the next statement.
    pub fn falls_through(&self) -> bool {
        !matches!(self, Stmt::Goto { .. } | Stmt::Return { .. } | Stmt::Throw { .. })
    }

    /// Explicit jump targets of this statement (excluding fall-through).
    pub fn jump_targets(&self, out: &mut Vec<StmtIdx>) {
        match self {
            Stmt::Goto { target } | Stmt::If { target, .. } => out.push(*target),
            Stmt::Switch { targets, default, .. } => {
                out.extend_from_slice(targets);
                out.push(*default);
            }
            _ => {}
        }
    }

    /// Whether this is a call statement.
    #[inline]
    pub fn is_call(&self) -> bool {
        matches!(self, Stmt::Call { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Literal;
    use crate::idx::Symbol;
    use crate::types::JType;

    fn sig() -> Signature {
        Signature { class: Symbol(0), name: Symbol(1), params: vec![JType::Int], ret: JType::Void }
    }

    #[test]
    fn partitions_are_dense_and_distinct() {
        let stmts: Vec<Stmt> = vec![
            Stmt::Empty,
            Stmt::Monitor { op: MonitorOp::Enter, var: VarId(0) },
            Stmt::Throw { var: VarId(0) },
            Stmt::Call { ret: None, kind: CallKind::Static, sig: sig(), args: vec![] },
            Stmt::Goto { target: StmtIdx(0) },
            Stmt::If { cond: VarId(0), target: StmtIdx(0) },
            Stmt::Return { var: None },
            Stmt::Switch { var: VarId(0), targets: vec![], default: StmtIdx(0) },
        ];
        let parts: Vec<usize> = stmts.iter().map(|s| s.plain_partition()).collect();
        assert_eq!(parts, vec![17, 18, 19, 20, 21, 22, 23, 24]);
        // An assignment's partition is its expression kind.
        let a = Stmt::Assign { lhs: Lhs::Var(VarId(0)), rhs: Expr::Null };
        assert!(a.plain_partition() < 17);
        assert_eq!(PLAIN_PARTITIONS, 25);
    }

    #[test]
    fn heap_store_forces_double_layer() {
        let s = Stmt::Assign {
            lhs: Lhs::Field { base: VarId(0), field: FieldId(0) },
            rhs: Expr::Lit(Literal::Int(1)),
        };
        assert_eq!(s.access_pattern(), AccessPattern::DoubleLayer);
        let s2 = Stmt::Assign { lhs: Lhs::Var(VarId(0)), rhs: Expr::Lit(Literal::Int(1)) };
        assert_eq!(s2.access_pattern(), AccessPattern::OneTimeGen);
    }

    #[test]
    fn fall_through_classification() {
        assert!(!Stmt::Goto { target: StmtIdx(1) }.falls_through());
        assert!(!Stmt::Return { var: None }.falls_through());
        assert!(!Stmt::Throw { var: VarId(0) }.falls_through());
        assert!(Stmt::If { cond: VarId(0), target: StmtIdx(1) }.falls_through());
        assert!(Stmt::Empty.falls_through());
    }

    #[test]
    fn jump_targets_of_switch_include_default() {
        let s = Stmt::Switch {
            var: VarId(0),
            targets: vec![StmtIdx(3), StmtIdx(5)],
            default: StmtIdx(7),
        };
        let mut t = Vec::new();
        s.jump_targets(&mut t);
        assert_eq!(t, vec![StmtIdx(3), StmtIdx(5), StmtIdx(7)]);
    }

    #[test]
    fn defs_and_uses() {
        let c = Stmt::Call {
            ret: Some(VarId(9)),
            kind: CallKind::Virtual,
            sig: sig(),
            args: vec![VarId(1), VarId(2)],
        };
        assert_eq!(c.defined_var(), Some(VarId(9)));
        let mut u = Vec::new();
        c.uses(&mut u);
        assert_eq!(u, vec![VarId(1), VarId(2)]);

        let store = Stmt::Assign {
            lhs: Lhs::ArrayElem { base: VarId(4), index: VarId(5) },
            rhs: Expr::Var(VarId(6)),
        };
        assert_eq!(store.defined_var(), None);
        u.clear();
        store.uses(&mut u);
        assert_eq!(u, vec![VarId(4), VarId(5), VarId(6)]);
    }
}
