//! The `figures serve` experiment: service-throughput scaling.
//!
//! Two sweeps over the in-process vetting service, emitted as
//! `BENCH_serve.json`:
//!
//! 1. **Scaling** — apps/sec for a fixed job stream across a grid of
//!    (prep workers × devices), demonstrating that prep/execute overlap
//!    and the device pool actually scale.
//! 2. **Cache-hit sweep** — the same stream re-submitted with increasing
//!    duplication factors, showing throughput as a function of hit rate.
//!
//! Wall-clock throughput is machine-dependent; the emitted JSON is for
//! plotting shape, not for byte-stable comparison.

use gdroid_apk::GenConfig;
use gdroid_serve::{JobSource, Priority, ServiceConfig, ServiceReport, VettingService};

/// One measured service run.
pub struct ServePoint {
    /// Prep (host-side) worker threads.
    pub workers: usize,
    /// Simulated devices in the pool.
    pub devices: usize,
    /// Jobs submitted.
    pub jobs: usize,
    /// Distinct apps behind those jobs (jobs / distinct = duplication).
    pub distinct: usize,
    /// The drained service report.
    pub report: ServiceReport,
}

impl ServePoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"workers\":{},\"devices\":{},\"jobs\":{},\"distinct\":{},\
             \"apps_per_sec\":{:.3},\"cache_hit_rate\":{:.3},\"report\":{}}}",
            self.workers,
            self.devices,
            self.jobs,
            self.distinct,
            self.report.apps_per_sec,
            self.report.cache.hits as f64 / self.jobs.max(1) as f64,
            self.report.to_json(),
        )
    }
}

/// Runs `jobs` submissions spread over `distinct` apps on a service with
/// the given worker/device counts and returns the drained report.
///
/// When `jobs > distinct`, the distinct prefix is submitted first and the
/// service is fenced (`wait_for`) before the duplicates go in, so every
/// duplicate is a guaranteed cache hit — the hit *rate* is the controlled
/// variable of the sweep, not a race outcome.
pub fn run_service(workers: usize, devices: usize, jobs: usize, distinct: usize) -> ServePoint {
    let svc = VettingService::start(ServiceConfig {
        prep_workers: workers,
        devices,
        queue_capacity: jobs.max(1),
        ..ServiceConfig::default()
    });
    let source = |i: usize| JobSource::Seed {
        index: i % distinct,
        seed: 0x5eed ^ (i % distinct) as u64,
        config: Box::new(GenConfig::tiny()),
    };
    for i in 0..distinct.min(jobs) {
        svc.submit(Priority::Standard, source(i)).expect("queue sized for the whole run");
    }
    if jobs > distinct {
        svc.wait_for(distinct as u64);
        for i in distinct..jobs {
            svc.submit(Priority::ALL[i % Priority::ALL.len()], source(i))
                .expect("queue sized for the whole run");
        }
    }
    let (report, results) = svc.drain();
    assert_eq!(results.len(), jobs, "service lost or duplicated jobs");
    ServePoint { workers, devices, jobs, distinct, report }
}

/// Runs both sweeps and returns `(json, human_summary)`.
pub fn serve_benchmark(jobs: usize) -> (String, String) {
    let jobs = jobs.max(8);
    let mut scaling = Vec::new();
    for (workers, devices) in [(1, 1), (2, 1), (2, 2), (4, 2), (4, 4)] {
        scaling.push(run_service(workers, devices, jobs, jobs));
    }
    // Duplication factors 1, 2, 4, 8 → hit rates ~0, .5, .75, .875.
    let mut cache = Vec::new();
    for dup in [1usize, 2, 4, 8] {
        cache.push(run_service(2, 2, jobs, (jobs / dup).max(1)));
    }

    let mut summary = String::from("apps/sec vs workers x devices\n");
    for p in &scaling {
        summary.push_str(&format!(
            "  {}w x {}d: {:>8.2} apps/s  (exec p95 {:.2} ms)\n",
            p.workers,
            p.devices,
            p.report.apps_per_sec,
            p.report.exec_wall.p95_ns as f64 / 1e6,
        ));
    }
    summary.push_str("cache-hit sweep (2w x 2d)\n");
    for p in &cache {
        summary.push_str(&format!(
            "  {:>3} distinct / {} jobs: hit rate {:.2}, {:>8.2} apps/s\n",
            p.distinct,
            p.jobs,
            p.report.cache.hits as f64 / p.jobs as f64,
            p.report.apps_per_sec,
        ));
    }

    let join = |v: &[ServePoint]| v.iter().map(ServePoint::to_json).collect::<Vec<_>>().join(",");
    let json = format!("{{\"scaling\":[{}],\"cache_sweep\":[{}]}}", join(&scaling), join(&cache));
    (json, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_service_completes_all_jobs() {
        let p = run_service(2, 2, 6, 3);
        assert_eq!(p.report.counters.completed, 6);
        assert_eq!(p.report.counters.quarantined, 0);
        // The duplicate half is fenced behind `wait_for`, so it must hit.
        assert_eq!(p.report.cache.hits, 3);
        assert!(p.to_json().contains("\"cache_hit_rate\":0.500"));
    }
}
