//! `figures sancheck` — the sanitizer/lint sweep over a corpus.
//!
//! Runs every app of a corpus through all four kernel variants with the
//! `simcheck` sanitizer enabled, plus the IR lint pipeline, and renders a
//! pass/fail report. A non-clean outcome makes `figures` exit nonzero, so
//! CI can gate on kernel discipline the same way it gates on tests.

use gdroid_apk::Corpus;
use gdroid_core::{gpu_analyze_app, OptConfig};
use gdroid_gpusim::{DeviceConfig, SanReport};
use gdroid_icfg::prepare_app;
use gdroid_ir::{MethodId, Severity};
use std::fmt;

/// Result of one sanitizer sweep.
pub struct SancheckOutcome {
    /// Apps checked.
    pub apps: usize,
    /// Per-variant merged sanitizer reports, in ladder order.
    pub reports: Vec<(OptConfig, SanReport)>,
    /// Lint diagnostics counted over all apps: (errors, warnings).
    pub lint: (usize, usize),
}

impl SancheckOutcome {
    /// Clean = no sanitizer findings and no error-severity lints.
    pub fn is_clean(&self) -> bool {
        self.reports.iter().all(|(_, r)| r.is_clean()) && self.lint.0 == 0
    }
}

impl fmt::Display for SancheckOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sancheck: {} app(s), all kernel variants, sanitizer on", self.apps)?;
        for (opts, report) in &self.reports {
            writeln!(
                f,
                "  {:<20} {:>12} accesses  {:>8} words  {} finding(s)",
                opts.to_string(),
                report.accesses_checked,
                report.words_tracked,
                report.total()
            )?;
            if !report.is_clean() {
                for line in report.to_string().lines() {
                    writeln!(f, "    {line}")?;
                }
            }
        }
        writeln!(f, "  lint: {} error(s), {} warning(s)", self.lint.0, self.lint.1)?;
        write!(f, "  verdict: {}", if self.is_clean() { "CLEAN" } else { "NOT CLEAN" })
    }
}

/// Sweeps the first `apps` apps of `corpus`.
pub fn sancheck_corpus(corpus: &Corpus, apps: usize) -> SancheckOutcome {
    let apps = apps.min(corpus.size);
    let mut reports: Vec<(OptConfig, SanReport)> =
        OptConfig::ladder().into_iter().map(|o| (o, SanReport::default())).collect();
    let mut lint = (0usize, 0usize);

    for index in 0..apps {
        let app = corpus.generate(index);
        for d in gdroid_ir::lint_program(&app.program) {
            match d.severity {
                Severity::Error => lint.0 += 1,
                Severity::Warning => lint.1 += 1,
            }
        }
        for (opts, merged) in reports.iter_mut() {
            let mut app = app.clone();
            let (envs, cg) = prepare_app(&mut app);
            let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
            let run = gpu_analyze_app(
                &app.program,
                &cg,
                &roots,
                DeviceConfig::tesla_p40().with_sanitizer(),
                *opts,
            );
            merged.merge(&run.sanitizer.expect("sanitizer was enabled"));
        }
    }
    SancheckOutcome { apps, reports, lint }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_corpus_is_clean() {
        let outcome = sancheck_corpus(&Corpus::test_corpus(3), 3);
        assert!(outcome.is_clean(), "{outcome}");
        assert_eq!(outcome.reports.len(), 4);
        for (_, r) in &outcome.reports {
            assert!(r.accesses_checked > 0);
        }
        // The rendering mentions the verdict.
        assert!(outcome.to_string().contains("CLEAN"));
    }
}
