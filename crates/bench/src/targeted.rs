//! The `figures targeted` experiment: demand-driven (sliced) vetting.
//!
//! Every corpus app is vetted twice on a long-lived device: once in full,
//! once through the targeted path ([`gdroid_vetting::targeted`]), which
//! restricts the GPU worklist to the backward slice of the sink call
//! sites. The verdict JSON is asserted byte-identical per app, and the
//! targeted modeled IDFG makespan is asserted no worse than the full one
//! (the sliced worklist is a subset of the full launches).
//!
//! Every number in `BENCH_targeted.json` is modeled (makespans) or
//! counted (slice shape), so the file is byte-deterministic for a fixed
//! corpus.

use crate::corpus::corpus_prep;
use gdroid_apk::GenConfig;
use gdroid_core::OptConfig;
use gdroid_gpusim::{Device, DeviceConfig};
use gdroid_vetting::{execute_vetting_on_device, execute_vetting_targeted_on_device};

/// One app's full-vs-targeted measurement.
pub struct TargetedPoint {
    /// Corpus index.
    pub app: usize,
    /// Slice members analyzed by the targeted run.
    pub slice_methods: usize,
    /// Full reachable method set the slice was cut from.
    pub total_reachable: usize,
    /// `slice_methods / total_reachable`.
    pub sliced_fraction: f64,
    /// Leaks in the (agreeing) verdicts.
    pub leaks: usize,
    /// Full modeled IDFG makespan (ns).
    pub full_ns: f64,
    /// Targeted modeled IDFG makespan (ns).
    pub targeted_ns: f64,
}

impl TargetedPoint {
    fn speedup(&self) -> f64 {
        // An empty slice finishes in 0 modeled ns; clamp the denominator
        // so the emitted ratio stays finite (and deterministic).
        self.full_ns / self.targeted_ns.max(1.0)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"app\":{},\"slice_methods\":{},\"total_reachable\":{},\
             \"sliced_fraction\":{:.6},\"leaks\":{},\"full_ns\":{:.1},\"targeted_ns\":{:.1},\
             \"speedup\":{:.4}}}",
            self.app,
            self.slice_methods,
            self.total_reachable,
            self.sliced_fraction,
            self.leaks,
            self.full_ns,
            self.targeted_ns,
            self.speedup(),
        )
    }
}

/// Vets one prepared corpus app full and targeted, asserting verdict
/// agreement and makespan dominance.
pub fn run_targeted_point(app: usize) -> TargetedPoint {
    let prep = corpus_prep(app, &GenConfig::tiny());
    let mut device = Device::new(DeviceConfig::tesla_p40());
    let full = execute_vetting_on_device(&prep, &mut device, OptConfig::gdroid())
        .expect("no fault plan installed");
    let targeted = execute_vetting_targeted_on_device(&prep, &mut device, OptConfig::gdroid())
        .expect("no fault plan installed");
    assert_eq!(
        targeted.outcome.report.to_json(),
        full.outcome.report.to_json(),
        "app {app}: targeted verdict diverged from full"
    );
    let prov = targeted.outcome.targeted.expect("targeted run must carry provenance");
    let full_ns = full.outcome.timing.idfg_ns;
    let targeted_ns = targeted.outcome.timing.idfg_ns;
    assert!(
        targeted_ns <= full_ns * 1.000001,
        "app {app}: targeted makespan {targeted_ns} exceeds full {full_ns}"
    );
    TargetedPoint {
        app,
        slice_methods: prov.slice_methods,
        total_reachable: prov.total_reachable,
        sliced_fraction: prov.sliced_fraction,
        leaks: full.outcome.report.leaks.len(),
        full_ns,
        targeted_ns,
    }
}

/// Runs the full-vs-targeted sweep and returns `(json, human_summary)`.
pub fn targeted_benchmark(apps: usize) -> (String, String) {
    let apps = apps.max(4);
    let points: Vec<TargetedPoint> = (0..apps).map(run_targeted_point).collect();

    let full_ns: f64 = points.iter().map(|p| p.full_ns).sum();
    let targeted_ns: f64 = points.iter().map(|p| p.targeted_ns).sum();
    let mean_fraction: f64 =
        points.iter().map(|p| p.sliced_fraction).sum::<f64>() / points.len() as f64;
    let leaky = points.iter().filter(|p| p.leaks > 0).count();

    let mut summary =
        format!("demand-driven targeted vetting over a {apps}-app corpus (TESLA P40 model)\n");
    summary.push_str(&format!(
        "  corpus makespan: {:>9.3} ms full vs {:>9.3} ms targeted ({:.2}x)\n",
        full_ns / 1e6,
        targeted_ns / 1e6,
        full_ns / targeted_ns.max(1.0),
    ));
    summary.push_str(&format!(
        "  mean sliced fraction {:.3} ({leaky}/{apps} apps leaky; verdicts byte-identical,\n  \
         asserted per app)\n",
        mean_fraction,
    ));
    let rows = points.iter().map(TargetedPoint::to_json).collect::<Vec<_>>().join(",");
    let json = format!(
        "{{\"apps\":{apps},\"full_ns\":{full_ns:.1},\"targeted_ns\":{targeted_ns:.1},\
         \"speedup\":{:.4},\"mean_sliced_fraction\":{mean_fraction:.6},\"per_app\":[{rows}]}}",
        full_ns / targeted_ns.max(1.0),
    );
    (json, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targeted_sweep_agrees_and_reports_slice_shape() {
        let (json, summary) = targeted_benchmark(4);
        assert!(json.contains("\"apps\":4"));
        assert!(json.contains("\"mean_sliced_fraction\":"));
        assert!(json.contains("\"per_app\":[{\"app\":0,"));
        assert!(summary.contains("demand-driven targeted vetting"));
    }

    #[test]
    fn targeted_benchmark_is_deterministic() {
        let (a, _) = targeted_benchmark(4);
        let (b, _) = targeted_benchmark(4);
        assert_eq!(a, b);
    }
}
