//! The `figures corpus1000` experiment: the paper's speedup ladder at
//! corpus scale, streamed.
//!
//! The evaluation's headline claim is made over 1000 Google Play apps;
//! this experiment reproduces the whole ladder at that N on the
//! synthetic corpus, streaming window by window so memory stays bounded
//! (nothing but the current 8-app window is ever resident):
//!
//! * **kernel rungs** — every app solo on PLAIN, MAT, MAT+GRP, and full
//!   GDroid (modeled IDFG time summed per rung);
//! * **targeted lane** — every app demand-driven (backward sink slice),
//!   verdict asserted byte-identical to the full GDroid run;
//! * **co-resident batching** — every window re-run in groups of
//!   K ∈ {2, 4, 8}, per-app outcomes asserted byte-identical to solo;
//! * **summary store** — a sequential cold pass over the same corpus
//!   re-generated with shared libraries, store-backed, on one device (the
//!   sequential order makes store hits deterministic).
//!
//! Every number in `BENCH_corpus1000.json` is modeled or counted, so the
//! file is byte-deterministic across reruns — CI compares two small-N
//! generations with `cmp`.

use gdroid_apk::{Corpus, GenConfig, PAPER_MASTER_SEED};
use gdroid_core::OptConfig;
use gdroid_gpusim::{Device, DeviceConfig};
use gdroid_serve::fnv1a;
use gdroid_vetting::{
    execute_vetting_batch_on_device, execute_vetting_on_device,
    execute_vetting_on_device_with_store, execute_vetting_targeted_on_device, prepare_vetting,
    PreparedApp,
};

/// Window size of the streamed sweep — also the largest batching degree.
pub const WINDOW: usize = 8;

/// One kernel rung of the ladder.
pub struct LadderRung {
    /// Rung label (`plain` / `mat` / `matgrp` / `gdroid`).
    pub label: &'static str,
    /// Summed modeled IDFG time over the corpus (ns).
    pub idfg_ns: f64,
}

/// The corpus-scale ladder results.
pub struct Corpus1000 {
    /// Apps vetted.
    pub apps: usize,
    /// Generator scale applied to the `small` profile.
    pub scale: f64,
    /// The four kernel rungs, slowest first.
    pub rungs: Vec<LadderRung>,
    /// Summed targeted (sliced) modeled IDFG time (ns).
    pub targeted_ns: f64,
    /// Mean sliced fraction over the corpus.
    pub mean_sliced_fraction: f64,
    /// Per-degree (K, summed batched makespan ns, launches) triples.
    pub batch: Vec<(usize, f64, usize)>,
    /// Summed solo GDroid device makespans the batch points compare to
    /// (ns).
    pub solo_makespan_ns: f64,
    /// Summed store-backed modeled IDFG time over the library corpus
    /// (ns).
    pub sumstore_ns: f64,
    /// Summed store-free modeled IDFG time over the library corpus (ns).
    pub sumstore_baseline_ns: f64,
    /// Store hits of the sequential cold pass.
    pub sumstore_hits: u64,
    /// Suspicious verdicts.
    pub suspicious: usize,
    /// FNV-1a over the sorted per-app verdict lines.
    pub verdict_digest: u64,
}

impl Corpus1000 {
    /// The byte-deterministic JSON document (`BENCH_corpus1000.json`).
    pub fn to_json(&self) -> String {
        let plain_ns = self.rungs.first().map_or(0.0, |r| r.idfg_ns);
        let gdroid_ns = self.rungs.last().map_or(0.0, |r| r.idfg_ns);
        let speedup = |ns: f64| if ns > 0.0 { plain_ns / ns } else { 1.0 };
        let rungs: Vec<String> = self
            .rungs
            .iter()
            .map(|r| {
                format!(
                    "{{\"engine\":\"{}\",\"idfg_ns\":{:.1},\"speedup\":{:.4}}}",
                    r.label,
                    r.idfg_ns,
                    speedup(r.idfg_ns)
                )
            })
            .collect();
        let batch: Vec<String> = self
            .batch
            .iter()
            .map(|(k, ns, launches)| {
                format!(
                    "{{\"coresident\":{},\"batched_ns\":{:.1},\"launches\":{},\"speedup\":{:.4}}}",
                    k,
                    ns,
                    launches,
                    if *ns > 0.0 { self.solo_makespan_ns / ns } else { 1.0 }
                )
            })
            .collect();
        format!(
            "{{\"apps\":{},\"profile\":\"small\",\"scale\":{:.3},\"rungs\":[{}],\
             \"targeted\":{{\"idfg_ns\":{:.1},\"speedup_vs_full\":{:.4},\
             \"mean_sliced_fraction\":{:.6}}},\"batch\":{{\"solo_makespan_ns\":{:.1},\
             \"points\":[{}]}},\"sumstore\":{{\"idfg_ns\":{:.1},\"baseline_ns\":{:.1},\
             \"speedup\":{:.4},\"hits\":{}}},\"verdicts\":{{\"suspicious\":{},\"clean\":{},\
             \"digest\":\"{:016x}\"}}}}",
            self.apps,
            self.scale,
            rungs.join(","),
            self.targeted_ns,
            if self.targeted_ns > 0.0 { gdroid_ns / self.targeted_ns } else { 1.0 },
            self.mean_sliced_fraction,
            self.solo_makespan_ns,
            batch.join(","),
            self.sumstore_ns,
            self.sumstore_baseline_ns,
            if self.sumstore_ns > 0.0 { self.sumstore_baseline_ns / self.sumstore_ns } else { 1.0 },
            self.sumstore_hits,
            self.suspicious,
            self.apps - self.suspicious,
            self.verdict_digest,
        )
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let plain_ns = self.rungs.first().map_or(0.0, |r| r.idfg_ns);
        let gdroid_ns = self.rungs.last().map_or(0.0, |r| r.idfg_ns);
        let mut out = format!(
            "corpus-scale ladder over {} apps (small profile x {:.2})\n",
            self.apps, self.scale
        );
        for r in &self.rungs {
            writeln!(
                out,
                "  {:<7} {:>12.1} ms  ({:.2}x vs plain)",
                r.label,
                r.idfg_ns / 1e6,
                if r.idfg_ns > 0.0 { plain_ns / r.idfg_ns } else { 1.0 }
            )
            .unwrap();
        }
        writeln!(
            out,
            "  targeted {:>10.1} ms  ({:.2}x vs full gdroid, {:.1}% sliced mean)",
            self.targeted_ns / 1e6,
            if self.targeted_ns > 0.0 { gdroid_ns / self.targeted_ns } else { 1.0 },
            100.0 * self.mean_sliced_fraction
        )
        .unwrap();
        for (k, ns, launches) in &self.batch {
            writeln!(
                out,
                "  batch K{k} {:>9.1} ms  ({:.2}x vs solo, {launches} launches)",
                ns / 1e6,
                if *ns > 0.0 { self.solo_makespan_ns / ns } else { 1.0 }
            )
            .unwrap();
        }
        writeln!(
            out,
            "  sumstore {:>10.1} ms  ({:.2}x vs store-free, {} hits)",
            self.sumstore_ns / 1e6,
            if self.sumstore_ns > 0.0 { self.sumstore_baseline_ns / self.sumstore_ns } else { 1.0 },
            self.sumstore_hits
        )
        .unwrap();
        writeln!(
            out,
            "  verdicts: {} suspicious / {} clean, digest {:016x}",
            self.suspicious,
            self.apps - self.suspicious,
            self.verdict_digest
        )
        .unwrap();
        out
    }
}

/// Runs the streamed corpus-scale ladder. `scale` multiplies the `small`
/// generator profile. Returns `(json, human_summary)`.
pub fn corpus1000_benchmark(apps: usize, scale: f64) -> (String, String) {
    let apps = apps.max(WINDOW);
    let mut gen = GenConfig::small();
    gen.scale *= scale;
    let corpus = Corpus { master_seed: PAPER_MASTER_SEED, size: apps, config: gen.clone() };

    type Rung = (&'static str, fn() -> OptConfig);
    const RUNGS: [Rung; 4] = [
        ("plain", OptConfig::plain),
        ("mat", OptConfig::mat),
        ("matgrp", OptConfig::mat_grp),
        ("gdroid", OptConfig::gdroid),
    ];
    let mut rung_ns = [0.0f64; 4];
    let mut devices: Vec<Device> =
        (0..RUNGS.len() + 1).map(|_| Device::new(DeviceConfig::tesla_p40())).collect();

    let mut targeted_ns = 0.0;
    let mut sliced_sum = 0.0;
    let mut batch: Vec<(usize, f64, usize)> = vec![(2, 0.0, 0), (4, 0.0, 0), (8, 0.0, 0)];
    let mut solo_makespan_ns = 0.0;
    let mut suspicious = 0usize;
    let mut verdict_lines = String::new();

    // Streamed window sweep: prepare 8 apps, run every lane, discard.
    let mut stream = corpus.stream_all().peekable();
    let mut batch_device = Device::new(DeviceConfig::tesla_p40());
    while stream.peek().is_some() {
        let window: Vec<(usize, PreparedApp)> =
            stream.by_ref().take(WINDOW).map(|(i, app)| (i, prepare_vetting(app))).collect();
        let mut gdroid_refs: Vec<String> = Vec::with_capacity(window.len());
        for (index, prep) in &window {
            for (r, (_, opt)) in RUNGS.iter().enumerate() {
                let run = execute_vetting_on_device(prep, &mut devices[r], opt())
                    .expect("no fault plan installed");
                rung_ns[r] += run.outcome.timing.idfg_ns;
                if r == RUNGS.len() - 1 {
                    solo_makespan_ns += run.outcome.timing.idfg_ns;
                    suspicious += usize::from(!run.outcome.report.leaks.is_empty());
                    use std::fmt::Write;
                    writeln!(
                        verdict_lines,
                        "{:06} {} {:?} {:016x}",
                        index,
                        prep.app.manifest.package,
                        run.outcome.report.verdict,
                        fnv1a(run.outcome.report.to_json().as_bytes())
                    )
                    .expect("writing to String cannot fail");
                    gdroid_refs.push(run.outcome.report.to_json());
                }
            }
            let t = execute_vetting_targeted_on_device(
                prep,
                &mut devices[RUNGS.len()],
                OptConfig::gdroid(),
            )
            .expect("no fault plan installed");
            assert_eq!(
                t.outcome.report.to_json(),
                gdroid_refs.last().expect("gdroid rung ran first").as_str(),
                "app {index}: targeted verdict diverged from full gdroid"
            );
            targeted_ns += t.outcome.timing.idfg_ns;
            sliced_sum += t.outcome.targeted.as_ref().map_or(1.0, |p| p.sliced_fraction);
        }
        for (k, total_ns, launches) in batch.iter_mut() {
            for (chunk_base, chunk) in window.chunks(*k).enumerate() {
                let preps: Vec<&PreparedApp> = chunk.iter().map(|(_, p)| p).collect();
                let (runs, b) =
                    execute_vetting_batch_on_device(&preps, &mut batch_device, OptConfig::gdroid())
                        .expect("no fault plan installed");
                for (j, run) in runs.iter().enumerate() {
                    assert_eq!(
                        run.outcome.report.to_json(),
                        gdroid_refs[chunk_base * *k + j],
                        "batched app diverged from solo at K {k}"
                    );
                }
                *total_ns += b.makespan_ns;
                *launches += b.launches;
            }
        }
    }

    // Summary-store lane: the same corpus re-generated with shared
    // libraries, vetted sequentially (cold store) on one device — and
    // store-free as the baseline.
    let lib_gen = gen.with_libraries(2, 4);
    let lib_corpus = Corpus { master_seed: PAPER_MASTER_SEED, size: apps, config: lib_gen };
    let store = gdroid_sumstore::SumStore::new();
    let mut store_device = Device::new(DeviceConfig::tesla_p40());
    let mut sumstore_ns = 0.0;
    let mut sumstore_baseline_ns = 0.0;
    for (_, app) in lib_corpus.stream_all() {
        let prep = prepare_vetting(app);
        let baseline = execute_vetting_on_device(&prep, &mut store_device, OptConfig::gdroid())
            .expect("no fault plan installed");
        sumstore_baseline_ns += baseline.outcome.timing.idfg_ns;
        let (run, _) = execute_vetting_on_device_with_store(
            &prep,
            &mut store_device,
            OptConfig::gdroid(),
            &store,
        )
        .expect("no fault plan installed");
        assert_eq!(
            run.outcome.report.to_json(),
            baseline.outcome.report.to_json(),
            "store-backed verdict diverged from store-free"
        );
        sumstore_ns += run.outcome.timing.idfg_ns;
    }

    let result = Corpus1000 {
        apps,
        scale,
        rungs: RUNGS
            .iter()
            .zip(rung_ns)
            .map(|((label, _), idfg_ns)| LadderRung { label, idfg_ns })
            .collect(),
        targeted_ns,
        mean_sliced_fraction: sliced_sum / apps as f64,
        batch,
        solo_makespan_ns,
        sumstore_ns,
        sumstore_baseline_ns,
        sumstore_hits: store.stats().hits,
        suspicious,
        verdict_digest: fnv1a(verdict_lines.as_bytes()),
    };
    (result.to_json(), result.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_ladder_is_deterministic_and_ordered() {
        // Tiny scale keeps this double run debug-build friendly; CI's
        // release smoke covers a larger N (see ci/check.sh).
        let (a, summary) = corpus1000_benchmark(8, 0.02);
        let (b, _) = corpus1000_benchmark(8, 0.02);
        assert_eq!(a, b, "BENCH_corpus1000.json must be byte-deterministic");
        assert!(a.contains("\"engine\":\"plain\"") && a.contains("\"engine\":\"gdroid\""));
        assert!(a.contains("\"coresident\":8"));
        assert!(summary.contains("corpus-scale ladder"));
        // The ladder must be monotone: each rung at least as fast as the
        // one before, and targeted no slower than full gdroid.
        let ns: Vec<f64> = ["plain", "mat", "matgrp", "gdroid"]
            .iter()
            .map(|label| {
                let key = format!("\"engine\":\"{label}\",\"idfg_ns\":");
                let tail = &a[a.find(&key).unwrap() + key.len()..];
                tail[..tail.find(',').unwrap()].parse().unwrap()
            })
            .collect();
        assert!(ns[0] >= ns[1] && ns[1] >= ns[2] && ns[2] >= ns[3], "ladder not monotone: {ns:?}");
    }
}
