//! The `figures batch` experiment: co-resident multi-app batching.
//!
//! A small corpus is vetted solo (one device run per app), then again in
//! co-resident groups of K ∈ {1, 2, 4, 8}: each group's apps share every
//! kernel launch ([`gdroid_core::gpu_analyze_batch_on`]), filling block
//! slots that a narrow per-app layer would leave idle. Per-app outcomes
//! are asserted byte-identical to solo at every K, and every group's
//! makespan is asserted no worse than the sum of its members' solo
//! makespans (launch and transfer overheads are shared, never added).
//!
//! Every number emitted into `BENCH_batch.json` is modeled (makespans,
//! utilization) or counted (launches), so the file is byte-deterministic
//! for a fixed corpus.

use crate::corpus::corpus_preps;
use gdroid_apk::GenConfig;
use gdroid_core::OptConfig;
use gdroid_gpusim::{Device, DeviceConfig};
use gdroid_vetting::{execute_vetting_batch_on_device, execute_vetting_on_device, PreparedApp};

/// One co-residency-degree measurement.
pub struct BatchPoint {
    /// Apps co-scheduled per group (K).
    pub coresident: usize,
    /// Apps in the corpus.
    pub apps: usize,
    /// Groups the corpus was chunked into.
    pub groups: usize,
    /// Shared kernel launches summed over all groups.
    pub launches: usize,
    /// Summed solo makespans of the same corpus (ns).
    pub solo_ns: f64,
    /// Summed group makespans under co-residency K (ns).
    pub batched_ns: f64,
    /// Launch-weighted mean block-slot utilization of the shared launches.
    pub utilization: f64,
    /// Launch-weighted mean distinct apps per shared launch.
    pub mean_coresidency: f64,
}

impl BatchPoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"coresident\":{},\"apps\":{},\"groups\":{},\"launches\":{},\
             \"solo_ns\":{:.1},\"batched_ns\":{:.1},\"speedup\":{:.4},\
             \"utilization\":{:.4},\"mean_coresidency\":{:.3}}}",
            self.coresident,
            self.apps,
            self.groups,
            self.launches,
            self.solo_ns,
            self.batched_ns,
            if self.batched_ns > 0.0 { self.solo_ns / self.batched_ns } else { 1.0 },
            self.utilization,
            self.mean_coresidency,
        )
    }
}

/// Runs one co-residency point over an already-prepared corpus, checking
/// every app's outcome against its solo reference JSON.
pub fn run_batch_point(
    preps: &[PreparedApp],
    solo_refs: &[String],
    solo_ns: &[f64],
    coresident: usize,
) -> BatchPoint {
    let mut device = Device::new(DeviceConfig::tesla_p40());
    let mut point = BatchPoint {
        coresident,
        apps: preps.len(),
        groups: 0,
        launches: 0,
        solo_ns: solo_ns.iter().sum(),
        batched_ns: 0.0,
        utilization: 0.0,
        mean_coresidency: 0.0,
    };
    for (chunk_idx, chunk) in preps.chunks(coresident.max(1)).enumerate() {
        let refs: Vec<&PreparedApp> = chunk.iter().collect();
        let (runs, batch) =
            execute_vetting_batch_on_device(&refs, &mut device, OptConfig::gdroid())
                .expect("no fault plan installed");
        let base = chunk_idx * coresident.max(1);
        let mut group_solo_ns = 0.0;
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(
                run.outcome.to_json(),
                solo_refs[base + i],
                "app {} diverged from solo at coresidency {coresident}",
                base + i
            );
            group_solo_ns += solo_ns[base + i];
        }
        assert!(
            batch.makespan_ns <= group_solo_ns * 1.000001,
            "group {chunk_idx} makespan {} exceeds summed solo {group_solo_ns} at K {coresident}",
            batch.makespan_ns
        );
        point.groups += 1;
        point.launches += batch.launches;
        point.batched_ns += batch.makespan_ns;
        point.utilization += batch.utilization * batch.launches as f64;
        point.mean_coresidency += batch.mean_coresidency * batch.launches as f64;
    }
    if point.launches > 0 {
        point.utilization /= point.launches as f64;
        point.mean_coresidency /= point.launches as f64;
    }
    point
}

/// Runs the co-residency sweep and returns `(json, human_summary)`.
pub fn batch_benchmark(apps: usize) -> (String, String) {
    let apps = apps.max(4);
    let preps: Vec<PreparedApp> = corpus_preps(apps, &GenConfig::tiny());

    // Solo baseline: one run per app on a long-lived device; the outcome
    // JSONs are the byte-identity references for every sweep point.
    let mut device = Device::new(DeviceConfig::tesla_p40());
    let mut solo_refs = Vec::with_capacity(apps);
    let mut solo_ns = Vec::with_capacity(apps);
    for prep in &preps {
        let run = execute_vetting_on_device(prep, &mut device, OptConfig::gdroid())
            .expect("no fault plan installed");
        solo_ns.push(run.outcome.timing.idfg_ns);
        solo_refs.push(run.outcome.to_json());
    }

    let points: Vec<BatchPoint> =
        [1, 2, 4, 8].map(|k| run_batch_point(&preps, &solo_refs, &solo_ns, k)).into();

    let mut summary = format!("co-resident batching over a {apps}-app corpus (TESLA P40 model)\n");
    for p in &points {
        summary.push_str(&format!(
            "  K {:>2} ({:>2} groups, {:>4} launches): {:>9.3} ms vs solo {:>9.3} ms \
             ({:.2}x, {:>5.1}% slots, {:.2} apps/launch)\n",
            p.coresident,
            p.groups,
            p.launches,
            p.batched_ns / 1e6,
            p.solo_ns / 1e6,
            if p.batched_ns > 0.0 { p.solo_ns / p.batched_ns } else { 1.0 },
            100.0 * p.utilization,
            p.mean_coresidency,
        ));
    }
    summary
        .push_str("  (per-app outcomes byte-identical to solo at every K; asserted per group)\n");
    let rows = points.iter().map(BatchPoint::to_json).collect::<Vec<_>>().join(",");
    (format!("{{\"points\":[{rows}]}}"), summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coresidency_shares_launches_without_changing_outcomes() {
        let (json, summary) = batch_benchmark(6);
        assert!(json.contains("\"coresident\":1") && json.contains("\"coresident\":4"));
        assert!(summary.contains("co-resident batching"));
        // K = 1 through the batch driver must reproduce solo exactly
        // (speedup 1.0000 modulo the shared-pipeline rounding in print).
        assert!(json.contains("\"coresident\":1,\"apps\":6,\"groups\":6"));
    }

    #[test]
    fn batch_benchmark_is_deterministic() {
        let (a, _) = batch_benchmark(4);
        let (b, _) = batch_benchmark(4);
        assert_eq!(a, b);
    }
}
