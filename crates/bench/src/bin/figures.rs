//! `figures` — regenerates the paper's tables and figures.
//!
//! ```text
//! figures <experiment> [--apps N] [--scale S]
//!
//! experiments: table1 fig1 fig4 fig8 fig9 fig10 fig11 fig12 table2 all serve sumstore batch
//!   --apps N   analyze the first N corpus apps (default 100; paper: 1000)
//!   --scale S  generator scale factor (default 1.0 = Table I calibration)
//! ```
//!
//! `serve` benchmarks the vetting service (worker/device scaling and a
//! cache-hit sweep) and writes `BENCH_serve.json`. `sumstore` sweeps the
//! cross-app summary store over library duplication factors and writes
//! the byte-deterministic `BENCH_sumstore.json`. `trace` vets the corpus
//! traced and untraced, proving tracing never perturbs outcomes, and
//! writes the byte-deterministic `BENCH_trace.json`. `batch` sweeps
//! co-resident multi-app batching over degrees 1/2/4/8, asserts per-app
//! outcomes byte-identical to solo, and writes the byte-deterministic
//! `BENCH_batch.json`. `targeted` vets the corpus full and demand-driven
//! (backward sink slice), asserts per-app verdict agreement, and writes
//! the byte-deterministic `BENCH_targeted.json`. `corpus1000` streams the
//! paper's full speedup ladder (kernel rungs, targeted, batching K 2/4/8,
//! summary store) over the 1000-app corpus at the `small` profile and
//! writes the byte-deterministic `BENCH_corpus1000.json`. `rel` compares
//! the relational (semi-naive) engine against the MAT/MAT+GRP/worklist
//! ladder and the CPU reference — facts and verdicts asserted identical
//! across engines — and writes the byte-deterministic `BENCH_rel.json`.
//! `persist` pits persistent-kernel execution (one resident launch per
//! app) against classic per-round multi-launch on a per-app detail set
//! and a streamed corpus — facts and verdicts asserted mode-identical —
//! and writes the byte-deterministic `BENCH_persist.json`.

use gdroid_apk::Corpus;
use gdroid_bench::{
    batch_benchmark, corpus1000_benchmark, experiments, persist_benchmark, rel_benchmark,
    run_corpus, sancheck_corpus, serve_benchmark, snapshot_benchmark, snapshot_rotate,
    sumstore_benchmark, targeted_benchmark, trace_benchmark, PERSIST_DETAIL_APPS, REL_DETAIL_APPS,
    SNAPSHOT_SHARDS,
};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: figures <table1|fig1|fig4|fig8|fig9|fig10|fig11|fig12|table2|all|multigpu|autotune|csv|debug|sancheck|serve|sumstore|trace|batch|targeted|corpus1000|rel|persist|snapshot10k> \
         [--apps N] [--scale S]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let experiment = args[0].clone();
    // The corpus-scale ladder, the rel engine sweep, and the persistent
    // kernel comparison default to the paper's full 1000 apps; everything
    // else defaults to the first 100.
    let mut apps = if experiment == "corpus1000" || experiment == "rel" || experiment == "persist" {
        1000
    } else if experiment == "snapshot10k" {
        10_000
    } else {
        100
    };
    let mut scale = 1.0f64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--apps" => {
                apps = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                i += 2;
            }
            "--scale" => {
                scale = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }

    let mut corpus = Corpus::paper_sized(apps);
    corpus.config.scale *= scale;

    if experiment == "serve" {
        eprintln!("benchmarking the vetting service ({apps} jobs per point)…");
        let t0 = Instant::now();
        let (json, summary) = serve_benchmark(apps.min(64));
        eprintln!("…done in {:.1}s\n", t0.elapsed().as_secs_f64());
        std::fs::write("BENCH_serve.json", &json).unwrap_or_else(|e| {
            eprintln!("cannot write BENCH_serve.json: {e}");
            std::process::exit(1)
        });
        print!("{summary}");
        eprintln!("wrote BENCH_serve.json");
        return;
    }

    if experiment == "sumstore" {
        eprintln!("benchmarking the summary store (dup factors 1/2/4/8)…");
        let t0 = Instant::now();
        let (json, summary) = sumstore_benchmark(apps.min(20));
        eprintln!("…done in {:.1}s\n", t0.elapsed().as_secs_f64());
        std::fs::write("BENCH_sumstore.json", &json).unwrap_or_else(|e| {
            eprintln!("cannot write BENCH_sumstore.json: {e}");
            std::process::exit(1)
        });
        print!("{summary}");
        eprintln!("wrote BENCH_sumstore.json");
        return;
    }

    if experiment == "trace" {
        eprintln!("checking trace invariance over the corpus (traced vs untraced runs)…");
        let t0 = Instant::now();
        let (json, summary) = trace_benchmark(apps.min(20));
        eprintln!("…done in {:.1}s\n", t0.elapsed().as_secs_f64());
        std::fs::write("BENCH_trace.json", &json).unwrap_or_else(|e| {
            eprintln!("cannot write BENCH_trace.json: {e}");
            std::process::exit(1)
        });
        print!("{summary}");
        eprintln!("wrote BENCH_trace.json");
        return;
    }

    if experiment == "batch" {
        eprintln!("benchmarking co-resident batching (degrees 1/2/4/8)…");
        let t0 = Instant::now();
        let (json, summary) = batch_benchmark(apps.min(20));
        eprintln!("…done in {:.1}s\n", t0.elapsed().as_secs_f64());
        std::fs::write("BENCH_batch.json", &json).unwrap_or_else(|e| {
            eprintln!("cannot write BENCH_batch.json: {e}");
            std::process::exit(1)
        });
        print!("{summary}");
        eprintln!("wrote BENCH_batch.json");
        return;
    }

    if experiment == "targeted" {
        eprintln!("benchmarking demand-driven targeted vetting (full vs sliced)…");
        let t0 = Instant::now();
        let (json, summary) = targeted_benchmark(apps.min(20));
        eprintln!("…done in {:.1}s\n", t0.elapsed().as_secs_f64());
        std::fs::write("BENCH_targeted.json", &json).unwrap_or_else(|e| {
            eprintln!("cannot write BENCH_targeted.json: {e}");
            std::process::exit(1)
        });
        print!("{summary}");
        eprintln!("wrote BENCH_targeted.json");
        return;
    }

    if experiment == "corpus1000" {
        eprintln!("streaming the corpus-scale speedup ladder over {apps} apps (small profile)…");
        let t0 = Instant::now();
        let (json, summary) = corpus1000_benchmark(apps, scale);
        eprintln!("…done in {:.1}s\n", t0.elapsed().as_secs_f64());
        std::fs::write("BENCH_corpus1000.json", &json).unwrap_or_else(|e| {
            eprintln!("cannot write BENCH_corpus1000.json: {e}");
            std::process::exit(1)
        });
        print!("{summary}");
        eprintln!("wrote BENCH_corpus1000.json");
        return;
    }

    if experiment == "rel" {
        eprintln!(
            "comparing the relational engine against the worklist ladder \
             ({REL_DETAIL_APPS} detail apps + {apps} streamed)…"
        );
        let t0 = Instant::now();
        let (json, summary) = rel_benchmark(REL_DETAIL_APPS, apps, scale);
        eprintln!("…done in {:.1}s\n", t0.elapsed().as_secs_f64());
        std::fs::write("BENCH_rel.json", &json).unwrap_or_else(|e| {
            eprintln!("cannot write BENCH_rel.json: {e}");
            std::process::exit(1)
        });
        print!("{summary}");
        eprintln!("wrote BENCH_rel.json");
        return;
    }

    if experiment == "persist" {
        eprintln!(
            "comparing persistent-kernel vs multi-launch execution \
             ({PERSIST_DETAIL_APPS} detail apps + {apps} streamed)…"
        );
        let t0 = Instant::now();
        let (json, summary) = persist_benchmark(PERSIST_DETAIL_APPS, apps, scale);
        eprintln!("…done in {:.1}s\n", t0.elapsed().as_secs_f64());
        std::fs::write("BENCH_persist.json", &json).unwrap_or_else(|e| {
            eprintln!("cannot write BENCH_persist.json: {e}");
            std::process::exit(1)
        });
        print!("{summary}");
        eprintln!("wrote BENCH_persist.json");
        return;
    }

    if experiment == "snapshot10k" {
        eprintln!(
            "streaming a rotated snapshot campaign over {apps} apps ({SNAPSHOT_SHARDS} shards, \
             segments of {}) plus store and delta lanes…",
            snapshot_rotate(apps)
        );
        let t0 = Instant::now();
        let (json, summary) = snapshot_benchmark(apps);
        eprintln!("…done in {:.1}s\n", t0.elapsed().as_secs_f64());
        std::fs::write("BENCH_snapshot10k.json", &json).unwrap_or_else(|e| {
            eprintln!("cannot write BENCH_snapshot10k.json: {e}");
            std::process::exit(1)
        });
        print!("{summary}");
        eprintln!("wrote BENCH_snapshot10k.json");
        return;
    }

    if experiment == "sancheck" {
        eprintln!("sanitizing {apps} apps (scale {scale}) across all kernel variants…");
        let t0 = Instant::now();
        let outcome = sancheck_corpus(&corpus, apps);
        eprintln!("…done in {:.1}s\n", t0.elapsed().as_secs_f64());
        println!("{outcome}");
        std::process::exit(if outcome.is_clean() { 0 } else { 1 });
    }

    eprintln!("analyzing {apps} apps (scale {scale}) across all engines…");
    let t0 = Instant::now();
    let records = run_corpus(&corpus, apps);
    eprintln!("…done in {:.1}s\n", t0.elapsed().as_secs_f64());

    let report = match experiment.as_str() {
        "table1" => experiments::table1(&records),
        "fig1" => experiments::fig1(&records),
        "fig4" => experiments::fig4(&records),
        "fig8" => experiments::fig8(&records),
        "fig9" => experiments::fig9(&records),
        "fig10" => experiments::fig10(&records),
        "fig11" => experiments::fig11(&records),
        "fig12" => experiments::fig12(&records),
        "table2" => experiments::table2(&records),
        "all" => experiments::all(&records),
        "debug" => experiments::debug(&records),
        "multigpu" => experiments::ext_multigpu(&records),
        "autotune" => experiments::ext_autotune(&records),
        "csv" => experiments::csv(&records),
        _ => usage(),
    };
    println!("{report}");
}
