//! Shared corpus construction for the `figures` experiments.
//!
//! Every per-app experiment walks the same deterministic corpus: app
//! `i` is generated from `PAPER_MASTER_SEED ^ i` and run through the
//! host-side prep stage. This module is the single place that spelling
//! lives — the batch, trace, targeted, sumstore, and rel sweeps all
//! build their windows through it.

use gdroid_apk::{generate_app, GenConfig, PAPER_MASTER_SEED};
use gdroid_vetting::{prepare_vetting, PreparedApp};

/// Generates and preps corpus app `index` under the paper master seed.
pub fn corpus_prep(index: usize, config: &GenConfig) -> PreparedApp {
    prepare_vetting(generate_app(index, PAPER_MASTER_SEED ^ index as u64, config))
}

/// Preps the first `apps` corpus apps (resident all at once — the
/// streamed experiments use [`corpus_prep`] window by window instead).
pub fn corpus_preps(apps: usize, config: &GenConfig) -> Vec<PreparedApp> {
    (0..apps).map(|i| corpus_prep(i, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_prep_matches_the_longhand_spelling() {
        let a = corpus_prep(3, &GenConfig::tiny());
        let b = prepare_vetting(generate_app(3, PAPER_MASTER_SEED ^ 3, &GenConfig::tiny()));
        assert_eq!(a.app.manifest.package, b.app.manifest.package);
        assert_eq!(a.roots, b.roots);
    }
}
