//! Small statistics helpers for aggregate reporting.

/// A sortable series of per-app values with the summary operations the
/// paper's figures use.
#[derive(Clone, Debug, Default)]
pub struct Series {
    values: Vec<f64>,
}

impl Series {
    /// Builds from raw values.
    pub fn new(values: Vec<f64>) -> Series {
        Series { values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Maximum.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The values sorted descending — the x-axis ordering of every figure.
    pub fn sorted_desc(&self) -> Vec<f64> {
        let mut v = self.values.clone();
        v.sort_by(|a, b| b.partial_cmp(a).unwrap());
        v
    }

    /// `p`-th percentile (0–100) of the ascending ordering.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut v = self.values.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = (p / 100.0 * (v.len() - 1) as f64).round() as usize;
        v[rank.min(v.len() - 1)]
    }

    /// Fraction (0–1) of values strictly below `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        percent_below(&self.values, x)
    }

    /// Fraction of values in `[lo, hi)`.
    pub fn fraction_between(&self, lo: f64, hi: f64) -> f64 {
        percent_between(&self.values, lo, hi)
    }

    /// Raw access.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Fraction of values strictly below `x`.
pub fn percent_below(values: &[f64], x: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v < x).count() as f64 / values.len() as f64
}

/// Fraction of values in `[lo, hi)`.
pub fn percent_between(values: &[f64], lo: f64, hi: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v >= lo && v < hi).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Series {
        Series::new(vec![1.0, 2.0, 3.0, 4.0, 5.0])
    }

    #[test]
    fn summary_stats() {
        let s = series();
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn sorted_desc_and_percentiles() {
        let s = series();
        assert_eq!(s.sorted_desc(), vec![5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(50.0), 3.0);
        assert_eq!(s.percentile(100.0), 5.0);
    }

    #[test]
    fn fractions() {
        let s = series();
        assert_eq!(s.fraction_below(3.0), 0.4);
        assert_eq!(s.fraction_between(2.0, 4.0), 0.4);
        assert_eq!(percent_below(&[], 1.0), 0.0);
        assert_eq!(percent_between(&[], 0.0, 1.0), 0.0);
    }
}
