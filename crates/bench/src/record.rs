//! Per-app experiment records: every engine run once per app.

use gdroid_analysis::{analyze_app, CpuCostModel, StoreKind, WorklistTelemetry};
use gdroid_apk::{AppStats, Corpus};
use gdroid_core::{gpu_analyze_app, OptConfig, WorklistProfile};
use gdroid_gpusim::DeviceConfig;
use gdroid_icfg::prepare_app;
use gdroid_ir::MethodId;
use gdroid_vetting::{SourceSinkRegistry, TaintAnalysis};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Condensed result of one GPU configuration on one app.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct GpuSummary {
    /// End-to-end simulated time, ns.
    pub total_ns: f64,
    /// Kernel-engine time, ns.
    pub kernel_ns: f64,
    /// Divergence factor (serialized passes per warp step).
    pub divergence: f64,
    /// Coalescing efficiency.
    pub coalescing: f64,
    /// Device-heap allocations.
    pub allocations: u64,
    /// Worklist rounds ("iterations").
    pub rounds: usize,
    /// Worklist-size profile.
    pub profile: WorklistProfile,
    /// Nodes processed.
    pub nodes_processed: usize,
    /// Mean slot utilization over launches.
    pub utilization: f64,
    /// Kernel launches.
    pub launches: usize,
    /// Transfer row reads.
    pub rows_read: usize,
    /// Facts written by transfers.
    pub facts_written: usize,
    /// Successor unions.
    pub unions: usize,
}

/// Everything measured for one app.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppRecord {
    /// Corpus index.
    pub index: usize,
    /// Structural statistics (Table I).
    pub app_stats: AppStats,
    /// Methods reachable from the environment roots (Table I counts what
    /// the analysis actually visits).
    pub reachable_methods: usize,
    /// ICFG statement-node count after environment synthesis.
    pub icfg_nodes: usize,
    /// Mean slot-pool size per analyzed method (Table I "Variables").
    pub mean_slots: f64,
    /// Sequential Amandroid-style time (Fig. 1), ns.
    pub amandroid_ns: f64,
    /// Amandroid IDFG-construction component, ns.
    pub amandroid_idfg_ns: f64,
    /// Multithreaded-C CPU time (Fig. 4 baseline), ns.
    pub cpu_mt_ns: f64,
    /// GPU runs in ladder order: plain, MAT, MAT+GRP, GDroid.
    pub gpu: [GpuSummary; 4],
    /// Set-store footprint (Fig. 10), bytes.
    pub set_bytes: usize,
    /// Matrix-store footprint (Fig. 10), bytes.
    pub matrix_bytes: usize,
    /// Leaks the vetting plugin found.
    pub leaks: usize,
    /// Max worklist size observed (Table I).
    pub max_worklist: usize,
}

/// Non-IDFG stage cost constants (see `gdroid-vetting::pipeline`).
const ENVGEN_NS_PER_COMPONENT: f64 = 2.5e6;
const FRONTEND_NS_PER_STMT: f64 = 60.0e3;
const FRONTEND_NS_PER_METHOD: f64 = 2.5e6;
const TAINT_NS_PER_ROW: f64 = 280.0;

/// Runs every engine on one corpus app.
pub fn run_app(corpus: &Corpus, index: usize) -> AppRecord {
    let mut app = corpus.generate(index);
    let app_stats = AppStats::of(&app);
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();

    // --- CPU runs ---------------------------------------------------------
    let cpu_set = analyze_app(&app.program, &cg, &roots, StoreKind::Set);
    let cpu_mat = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);
    let amandroid_idfg_ns = CpuCostModel::amandroid().sequential_ns(&cpu_set);
    let cpu_mt_ns = CpuCostModel::multithreaded_c().parallel_ns(&cpu_set);

    // --- taint plugin (for Fig. 1's non-IDFG share and leak counts) -------
    let registry = SourceSinkRegistry::for_program(&app.program);
    let (report, taint_stats) = TaintAnalysis::new(
        &app.program,
        &cg,
        &cpu_mat.facts,
        &cpu_mat.spaces,
        &cpu_mat.cfgs,
        &registry,
    )
    .run();
    let amandroid_ns = amandroid_idfg_ns
        + ENVGEN_NS_PER_COMPONENT * envs.len() as f64
        + FRONTEND_NS_PER_STMT * app.program.total_statements() as f64
        + FRONTEND_NS_PER_METHOD * app.program.methods.len() as f64
        + TAINT_NS_PER_ROW * taint_stats.rows_read as f64;

    // --- GPU ladder ---------------------------------------------------------
    let mut gpu = [GpuSummary::default(); 4];
    for (i, opts) in OptConfig::ladder().into_iter().enumerate() {
        let run = gpu_analyze_app(&app.program, &cg, &roots, DeviceConfig::tesla_p40(), opts);
        gpu[i] = GpuSummary {
            total_ns: run.stats.total_ns,
            kernel_ns: run.stats.kernel_ns,
            divergence: run.stats.divergence_factor,
            coalescing: run.stats.coalescing,
            allocations: run.stats.device_allocations,
            rounds: run.telemetry.rounds,
            profile: run.stats.profile,
            nodes_processed: run.telemetry.nodes_processed,
            utilization: run.stats.utilization,
            launches: run.stats.launches,
            rows_read: run.telemetry.rows_read,
            facts_written: run.telemetry.facts_written,
            unions: run.telemetry.unions,
        };
    }

    let mean_slots = if cpu_mat.spaces.is_empty() {
        0.0
    } else {
        cpu_mat.spaces.values().map(|s| s.slot_count() as f64).sum::<f64>()
            / cpu_mat.spaces.len() as f64
    };
    let icfg_nodes = cpu_mat.cfgs.values().map(|c| c.stmt_count()).sum::<usize>();

    AppRecord {
        index,
        app_stats,
        reachable_methods: cpu_mat.spaces.len(),
        icfg_nodes,
        mean_slots,
        amandroid_ns,
        amandroid_idfg_ns,
        cpu_mt_ns,
        gpu,
        set_bytes: cpu_set.store_bytes,
        matrix_bytes: cpu_mat.store_bytes,
        leaks: report.leaks.len(),
        max_worklist: telemetry_max(&cpu_set.telemetry),
    }
}

fn telemetry_max(t: &WorklistTelemetry) -> usize {
    t.max_worklist
}

/// Runs `count` apps of the corpus in parallel, in index order.
pub fn run_corpus(corpus: &Corpus, count: usize) -> Vec<AppRecord> {
    let count = count.min(corpus.size);
    let mut records: Vec<AppRecord> =
        (0..count).into_par_iter().map(|i| run_app(corpus, i)).collect();
    records.sort_by_key(|r| r.index);
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_complete_and_consistent() {
        let corpus = Corpus::test_corpus(2);
        let r = run_app(&corpus, 0);
        assert!(r.amandroid_ns > r.amandroid_idfg_ns);
        assert!(r.cpu_mt_ns > 0.0);
        for g in &r.gpu {
            assert!(g.total_ns > 0.0);
            assert!(g.rounds > 0);
        }
        // MAT kills device allocations.
        assert!(r.gpu[0].allocations > 0);
        assert_eq!(r.gpu[1].allocations, 0);
        // Set store outweighs matrix store.
        assert!(r.set_bytes > r.matrix_bytes);
        assert!(r.icfg_nodes > 0);
        assert!(r.mean_slots > 0.0);
    }

    #[test]
    fn run_corpus_is_ordered_and_deterministic() {
        let corpus = Corpus::test_corpus(3);
        let a = run_corpus(&corpus, 3);
        let b = run_corpus(&corpus, 3);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.amandroid_ns, y.amandroid_ns);
            assert_eq!(x.gpu[3].total_ns, y.gpu[3].total_ns);
        }
    }
}
