#![warn(missing_docs)]

//! # gdroid-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§V) from
//! the deterministic synthetic corpus. The `figures` binary drives it:
//!
//! ```text
//! cargo run -p gdroid-bench --release --bin figures -- all --apps 1000
//! ```
//!
//! [`run_app`] produces one [`AppRecord`] with every engine's result for
//! one app; [`experiments`] turns record sets into the paper's reported
//! aggregates, labeling each with the paper's value for comparison.

pub mod batch;
pub mod corpus;
pub mod corpus1000;
pub mod experiments;
pub mod persist;
pub mod record;
pub mod rel;
pub mod sancheck;
pub mod serve;
pub mod snapshot;
pub mod stats;
pub mod sumstore;
pub mod targeted;
pub mod trace;

pub use batch::{batch_benchmark, run_batch_point, BatchPoint};
pub use corpus::{corpus_prep, corpus_preps};
pub use corpus1000::{corpus1000_benchmark, Corpus1000, LadderRung};
pub use persist::{
    persist_benchmark, run_persist_point, PersistPoint, PERSIST_DETAIL_APPS, PERSIST_WINDOW,
};
pub use record::{run_app, run_corpus, AppRecord, GpuSummary};
pub use rel::{fact_digest, rel_benchmark, run_rel_point, RelPoint, REL_DETAIL_APPS, REL_WINDOW};
pub use sancheck::{sancheck_corpus, SancheckOutcome};
pub use serve::{run_service, serve_benchmark, ServePoint};
pub use snapshot::{
    run_store_comparison, snapshot_benchmark, snapshot_rotate, ShardHits, StoreComparison,
    SNAPSHOT_ROTATE, SNAPSHOT_SHARDS,
};
pub use stats::{percent_below, percent_between, Series};
pub use sumstore::{run_sumstore_point, sumstore_benchmark, SumstorePoint};
pub use targeted::{run_targeted_point, targeted_benchmark, TargetedPoint};
pub use trace::{trace_benchmark, TracePoint};
