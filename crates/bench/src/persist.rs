//! The `figures persist` experiment: persistent-kernel execution (one
//! resident launch per app) against classic per-round multi-launch.
//!
//! Two sections, both byte-deterministic:
//!
//! * **detail** — a per-app comparison on the tiny-profile corpus: the
//!   worklist engine runs every app twice on fresh devices, once
//!   multi-launch and once persistent. Facts (FNV digest over the sorted
//!   per-method bitmap words) and verdict reports are asserted identical
//!   per app; launch counts are read off each device (one launch per
//!   fixpoint round vs exactly one per app).
//! * **corpus** — both modes streamed window by window over the
//!   `small`-profile corpus at N on long-lived devices, with per-app
//!   report and fact-digest identity asserted in-run.
//!
//! A **sync_profile** block prices the trade the mode makes: launch
//! overheads saved (one per app instead of one per round) against the
//! modeled grid-wide sync charged between the rounds of a resident
//! launch (`grid_sync_cycles`) and the device-side worklist queue cost
//! (`queue_op_cycles`, contention-scaled).

use crate::corpus::corpus_prep;
use crate::rel::fact_digest;
use gdroid_apk::{Corpus, GenConfig, PAPER_MASTER_SEED};
use gdroid_core::{EngineKind, ExecMode};
use gdroid_gpusim::{Device, DeviceConfig};
use gdroid_serve::fnv1a;
use gdroid_vetting::{
    execute_vetting_engine_on_device_mode, prepare_vetting, PreparedApp, VettingRun,
};

/// Window size of the streamed corpus section.
pub const PERSIST_WINDOW: usize = 8;

/// How many tiny-profile apps the detail section compares.
pub const PERSIST_DETAIL_APPS: usize = 20;

/// One app's multi-launch-vs-persistent measurement.
pub struct PersistPoint {
    /// Corpus index.
    pub app: usize,
    /// Multi-launch modeled IDFG time (ns).
    pub multi_ns: f64,
    /// Persistent-kernel modeled IDFG time (ns).
    pub persist_ns: f64,
    /// Kernel launches the multi-launch run performed (one per round).
    pub multi_launches: u64,
    /// Kernel launches the persistent run performed (one per app).
    pub persist_launches: u64,
    /// Total per-method worklist rounds (identical across modes).
    pub rounds: usize,
    /// Leaks in the (byte-identical) verdicts.
    pub leaks: usize,
}

impl PersistPoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"app\":{},\"multi_ns\":{:.1},\"persist_ns\":{:.1},\"multi_launches\":{},\
             \"persist_launches\":{},\"rounds\":{},\"leaks\":{}}}",
            self.app,
            self.multi_ns,
            self.persist_ns,
            self.multi_launches,
            self.persist_launches,
            self.rounds,
            self.leaks,
        )
    }
}

/// Runs one app in both modes on fresh devices, asserting fact and
/// verdict identity, and returns both runs beside their launch counts.
fn run_both_modes(prep: &PreparedApp, label: usize) -> (VettingRun, VettingRun, u64, u64) {
    let mut md = Device::new(DeviceConfig::tesla_p40());
    let multi = execute_vetting_engine_on_device_mode(
        prep,
        &mut md,
        EngineKind::Worklist,
        ExecMode::MultiLaunch,
    )
    .expect("a fresh device has no fault plan");
    let mut pd = Device::new(DeviceConfig::tesla_p40());
    let per = execute_vetting_engine_on_device_mode(
        prep,
        &mut pd,
        EngineKind::Worklist,
        ExecMode::Persistent,
    )
    .expect("a fresh device has no fault plan");
    assert_eq!(
        per.outcome.report.to_json(),
        multi.outcome.report.to_json(),
        "app {label}: persistent verdict diverged from multi-launch"
    );
    assert_eq!(
        fact_digest(&per),
        fact_digest(&multi),
        "app {label}: persistent facts diverged from multi-launch"
    );
    let (ml, pl) = (md.launches(), pd.launches());
    (multi, per, ml, pl)
}

/// Runs one detail point: both modes on fresh devices with identity
/// asserted, launch counts read off the devices.
pub fn run_persist_point(app: usize) -> PersistPoint {
    let prep = corpus_prep(app, &GenConfig::tiny());
    let (multi, per, multi_launches, persist_launches) = run_both_modes(&prep, app);
    assert!(
        persist_launches <= 1,
        "app {app}: a persistent fixpoint must be one resident launch, got {persist_launches}"
    );
    PersistPoint {
        app,
        multi_ns: multi.outcome.timing.idfg_ns,
        persist_ns: per.outcome.timing.idfg_ns,
        multi_launches,
        persist_launches,
        rounds: multi.outcome.telemetry.rounds,
        leaks: multi.outcome.report.leaks.len(),
    }
}

/// Runs the detail and corpus sections and returns `(json, summary)`.
/// `detail_apps` sizes the detail section (the canonical run uses
/// [`PERSIST_DETAIL_APPS`]), `corpus_apps` the streamed section.
pub fn persist_benchmark(detail_apps: usize, corpus_apps: usize, scale: f64) -> (String, String) {
    let detail_apps = detail_apps.max(2);
    let corpus_apps = corpus_apps.max(PERSIST_WINDOW);
    let points: Vec<PersistPoint> = (0..detail_apps).map(run_persist_point).collect();

    let multi_ns = points.iter().map(|p| p.multi_ns).sum::<f64>();
    let persist_ns = points.iter().map(|p| p.persist_ns).sum::<f64>();
    let multi_launches: u64 = points.iter().map(|p| p.multi_launches).sum();
    let persist_launches: u64 = points.iter().map(|p| p.persist_launches).sum();
    let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { 1.0 };

    // Price the trade from the device model: every multi-launch round
    // beyond the per-app first becomes a saved launch overhead; every
    // round of a resident launch is charged one grid-wide sync instead.
    // (Persistent rounds mirror multi-launch rounds one to one.)
    let config = DeviceConfig::tesla_p40();
    let launch_overhead_ns = config.launch_overhead_us * 1e3;
    let grid_sync_ns = config.cycles_to_ns(config.grid_sync_cycles);
    let saved_launches = multi_launches.saturating_sub(persist_launches);
    let sync_profile = format!(
        "{{\"launch_overhead_us\":{:.1},\"grid_sync_cycles\":{},\"queue_op_cycles\":{},\
         \"saved_launches\":{saved_launches},\"launch_overhead_saved_ns\":{:.1},\
         \"grid_sync_added_ns\":{:.1}}}",
        config.launch_overhead_us,
        config.grid_sync_cycles,
        config.queue_op_cycles,
        saved_launches as f64 * launch_overhead_ns,
        multi_launches as f64 * grid_sync_ns,
    );

    // Streamed corpus section: both modes on long-lived devices.
    let mut gen = GenConfig::small();
    gen.scale *= scale;
    let corpus = Corpus { master_seed: PAPER_MASTER_SEED, size: corpus_apps, config: gen };
    let mut multi_device = Device::new(DeviceConfig::tesla_p40());
    let mut persist_device = Device::new(DeviceConfig::tesla_p40());
    let mut corpus_multi_ns = 0.0;
    let mut corpus_persist_ns = 0.0;
    let mut suspicious = 0usize;
    let mut verdict_lines = String::new();
    let mut stream = corpus.stream_all().peekable();
    while stream.peek().is_some() {
        let window: Vec<_> = stream.by_ref().take(PERSIST_WINDOW).collect();
        for (index, app) in window {
            let prep = prepare_vetting(app);
            let m = execute_vetting_engine_on_device_mode(
                &prep,
                &mut multi_device,
                EngineKind::Worklist,
                ExecMode::MultiLaunch,
            )
            .expect("no fault plan installed");
            let p = execute_vetting_engine_on_device_mode(
                &prep,
                &mut persist_device,
                EngineKind::Worklist,
                ExecMode::Persistent,
            )
            .expect("no fault plan installed");
            assert_eq!(
                p.outcome.report.to_json(),
                m.outcome.report.to_json(),
                "app {index}: persistent verdict diverged from multi-launch"
            );
            assert_eq!(
                fact_digest(&p),
                fact_digest(&m),
                "app {index}: persistent facts diverged from multi-launch"
            );
            corpus_multi_ns += m.outcome.timing.idfg_ns;
            corpus_persist_ns += p.outcome.timing.idfg_ns;
            suspicious += usize::from(!m.outcome.report.leaks.is_empty());
            use std::fmt::Write;
            writeln!(
                verdict_lines,
                "{:06} {} {:?} {:016x}",
                index,
                prep.app.manifest.package,
                m.outcome.report.verdict,
                fnv1a(m.outcome.report.to_json().as_bytes())
            )
            .expect("writing to String cannot fail");
        }
    }
    let corpus_multi_launches = multi_device.launches();
    let corpus_persist_launches = persist_device.launches();

    let rows = points.iter().map(PersistPoint::to_json).collect::<Vec<_>>().join(",");
    let json = format!(
        "{{\"detail\":{{\"apps\":{detail_apps},\"profile\":\"tiny\",\
         \"multi_ns\":{multi_ns:.1},\"persist_ns\":{persist_ns:.1},\"speedup\":{:.4},\
         \"multi_launches\":{multi_launches},\"persist_launches\":{persist_launches},\
         \"per_app\":[{rows}]}},\"sync_profile\":{sync_profile},\
         \"corpus\":{{\"apps\":{corpus_apps},\"profile\":\"small\",\"scale\":{scale:.3},\
         \"multi_ns\":{corpus_multi_ns:.1},\"persist_ns\":{corpus_persist_ns:.1},\
         \"speedup\":{:.4},\"multi_launches\":{corpus_multi_launches},\
         \"persist_launches\":{corpus_persist_launches},\"suspicious\":{suspicious},\
         \"clean\":{},\"verdict_digest\":\"{:016x}\"}}}}",
        ratio(multi_ns, persist_ns),
        ratio(corpus_multi_ns, corpus_persist_ns),
        corpus_apps - suspicious,
        fnv1a(verdict_lines.as_bytes()),
    );

    let mut summary = format!(
        "persistent kernels vs multi-launch ({detail_apps} tiny apps; facts and verdicts \
         asserted mode-identical)\n  multi      {:>12.3} ms  ({multi_launches} launches)\n  \
         persistent {:>12.3} ms  ({persist_launches} launches, {:.2}x)\n",
        multi_ns / 1e6,
        persist_ns / 1e6,
        ratio(multi_ns, persist_ns),
    );
    summary.push_str(&format!(
        "  trade: {saved_launches} launch overheads saved ({:.1} us), \
         {multi_launches} grid syncs added ({:.1} us)\n",
        saved_launches as f64 * launch_overhead_ns / 1e3,
        multi_launches as f64 * grid_sync_ns / 1e3,
    ));
    summary.push_str(&format!(
        "  corpus ({corpus_apps} small apps): multi {:.1} ms / {corpus_multi_launches} launches, \
         persistent {:.1} ms / {corpus_persist_launches} launches ({:.2}x), \
         {suspicious} suspicious\n",
        corpus_multi_ns / 1e6,
        corpus_persist_ns / 1e6,
        ratio(corpus_multi_ns, corpus_persist_ns),
    ));
    (json, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_benchmark_is_deterministic_and_mode_identical() {
        let (a, summary) = persist_benchmark(2, 8, 0.02);
        let (b, _) = persist_benchmark(2, 8, 0.02);
        assert_eq!(a, b, "BENCH_persist.json must be byte-deterministic");
        assert!(a.contains("\"sync_profile\":{\"launch_overhead_us\":"));
        assert!(a.contains("\"verdict_digest\":\""));
        assert!(summary.contains("persistent kernels vs multi-launch"));
    }

    #[test]
    fn persist_point_collapses_launches_without_changing_rounds() {
        let p = run_persist_point(1);
        assert!(p.multi_ns > 0.0 && p.persist_ns > 0.0);
        assert_eq!(p.persist_launches, 1, "one resident launch per app");
        assert!(p.multi_launches >= 1, "multi-launch must have launched at least once");
        if p.multi_launches > 1 {
            assert!(
                p.persist_ns < p.multi_ns,
                "persistent must model faster once >1 launch is saved"
            );
        }
    }
}
