//! The `figures trace` experiment: tracing-overhead invariance and
//! per-phase modeled-time breakdowns.
//!
//! Every app of a 20-app corpus is vetted twice on the GPU engine — once
//! untraced, once with an enabled tracer — and the two outcomes are
//! compared byte-for-byte: identical JSON proves the trace layer never
//! perturbs the analysis (the zero-overhead-when-disabled contract, plus
//! its stronger sibling: enabled tracing only *observes*). Per app, the
//! trace is folded into per-layer span totals (gpusim / driver / vetting)
//! and hashed, so `BENCH_trace.json` is byte-deterministic for the fixed
//! corpus seed: every number is modeled or counted, never wall clock.

use crate::corpus::corpus_prep;
use gdroid_apk::GenConfig;
use gdroid_core::OptConfig;
use gdroid_serve::fnv1a;
use gdroid_trace::{Phase, Tracer};
use gdroid_vetting::{execute_vetting, execute_vetting_gpu_traced, Engine};

/// Per-app result of the invariance + breakdown run.
pub struct TracePoint {
    /// Corpus index.
    pub index: usize,
    /// Package name.
    pub package: String,
    /// Traced and untraced outcome JSONs are byte-identical.
    pub invariant: bool,
    /// Events recorded by the traced run.
    pub events: usize,
    /// Summed span ns per layer: (gpusim, driver, vetting).
    pub layer_ns: (u64, u64, u64),
    /// Kernel launches (gpusim `launch` spans).
    pub launches: usize,
    /// Worklist rounds (driver `layer … round …` spans).
    pub rounds: usize,
    /// FNV-1a hash of the Chrome-trace JSON (re-run stability handle).
    pub trace_fnv: u64,
}

impl TracePoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"index\":{},\"package\":\"{}\",\"invariant\":{},\"events\":{},\
             \"gpusim_ns\":{},\"driver_ns\":{},\"vetting_ns\":{},\
             \"launches\":{},\"rounds\":{},\"trace_fnv\":{}}}",
            self.index,
            self.package,
            self.invariant,
            self.events,
            self.layer_ns.0,
            self.layer_ns.1,
            self.layer_ns.2,
            self.launches,
            self.rounds,
            self.trace_fnv,
        )
    }
}

/// Vets one prepared corpus app traced and untraced; folds the trace.
fn run_point(index: usize, cfg: &GenConfig) -> TracePoint {
    let prep = corpus_prep(index, cfg);
    let untraced = execute_vetting(&prep, Engine::Gpu(OptConfig::gdroid()));
    let tracer = Tracer::enabled_new();
    let traced = execute_vetting_gpu_traced(&prep, OptConfig::gdroid(), &tracer);

    let events = tracer.events();
    let mut layer_ns = (0u64, 0u64, 0u64);
    let mut launches = 0usize;
    let mut rounds = 0usize;
    for ev in &events {
        if ev.ph != Phase::Span {
            continue;
        }
        match ev.cat {
            "gpusim" => {
                layer_ns.0 += ev.dur_ns;
                if ev.name.starts_with("launch") {
                    launches += 1;
                }
            }
            "driver" => {
                layer_ns.1 += ev.dur_ns;
                rounds += 1;
            }
            "vetting" => layer_ns.2 += ev.dur_ns,
            _ => {}
        }
    }
    TracePoint {
        index,
        package: prep.app.name.clone(),
        invariant: traced.outcome.to_json() == untraced.to_json(),
        events: events.len(),
        layer_ns,
        launches,
        rounds,
        trace_fnv: fnv1a(tracer.to_chrome_json().as_bytes()),
    }
}

/// Runs the invariance + breakdown experiment over the corpus and
/// returns `(json, human_summary)`; the JSON is what `figures trace`
/// writes to `BENCH_trace.json`.
pub fn trace_benchmark(apps: usize) -> (String, String) {
    let apps = apps.clamp(4, 20);
    let cfg = GenConfig::tiny();
    let points: Vec<TracePoint> = (0..apps).map(|i| run_point(i, &cfg)).collect();

    let invariant = points.iter().filter(|p| p.invariant).count();
    let total = |f: fn(&TracePoint) -> u64| points.iter().map(f).sum::<u64>();
    let corpus_fnv = fnv1a(
        points.iter().map(|p| p.trace_fnv.to_string()).collect::<Vec<_>>().join(",").as_bytes(),
    );

    let json = format!(
        "{{\"experiment\":\"trace\",\"apps\":{},\"invariant_apps\":{},\
         \"gpusim_ns\":{},\"driver_ns\":{},\"vetting_ns\":{},\
         \"launches\":{},\"rounds\":{},\"corpus_trace_fnv\":{},\"points\":[{}]}}\n",
        apps,
        invariant,
        total(|p| p.layer_ns.0),
        total(|p| p.layer_ns.1),
        total(|p| p.layer_ns.2),
        points.iter().map(|p| p.launches).sum::<usize>(),
        points.iter().map(|p| p.rounds).sum::<usize>(),
        corpus_fnv,
        points.iter().map(TracePoint::to_json).collect::<Vec<_>>().join(","),
    );

    let mut summary = format!(
        "trace invariance over {apps} corpus apps: {invariant}/{apps} byte-identical \
         traced vs untraced\n  modeled span time per layer:\n"
    );
    for (label, ns) in [
        ("gpusim (launches + blocks)", total(|p| p.layer_ns.0)),
        ("driver (worklist rounds)", total(|p| p.layer_ns.1)),
        ("vetting (pipeline stages)", total(|p| p.layer_ns.2)),
    ] {
        summary.push_str(&format!("    {label:<28} {:>12.3} ms\n", ns as f64 / 1e6));
    }
    summary.push_str(&format!(
        "  {} kernel launches across {} worklist rounds; corpus trace fnv {corpus_fnv:016x}\n",
        points.iter().map(|p| p.launches).sum::<usize>(),
        points.iter().map(|p| p.rounds).sum::<usize>(),
    ));
    (json, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_benchmark_is_invariant_and_deterministic() {
        let (json_a, summary) = trace_benchmark(4);
        let (json_b, _) = trace_benchmark(4);
        assert_eq!(json_a, json_b, "BENCH_trace.json must be byte-deterministic");
        assert!(json_a.contains("\"invariant_apps\":4"), "{summary}");
        assert!(json_a.contains("\"experiment\":\"trace\""));
        assert!(summary.contains("4/4 byte-identical"));
    }
}
