//! The `figures sumstore` experiment: cross-app summary-store economics.
//!
//! For each library duplication factor (1, 2, 4, 8) a 20-app corpus is
//! generated over a shared library pool sized so each package appears in
//! ~`dup` apps, then vetted twice against one summary store:
//!
//! * **cold** — the store starts empty; hits come only from libraries
//!   already contributed by *earlier apps of the same sweep*, so the cold
//!   hit rate isolates cross-app sharing and grows with `dup`;
//! * **warm** — the same corpus re-vetted against the now-populated
//!   store; every method pre-solves and the modeled IDFG time collapses.
//!
//! Every number emitted into `BENCH_sumstore.json` is modeled or counted
//! (no wall clocks), so the file is byte-deterministic for a fixed seed.
//! Cold and warm verdicts are asserted identical per app.

use crate::corpus::corpus_preps;
use gdroid_apk::GenConfig;
use gdroid_core::OptConfig;
use gdroid_sumstore::SumStore;
use gdroid_vetting::{execute_vetting_full_with_store, Engine, PreparedApp};

/// Library packages each app draws from the shared pool.
const LIBS_PER_APP: usize = 3;

/// One duplication-factor measurement.
pub struct SumstorePoint {
    /// Target cross-app duplication factor (`apps × K / pool`).
    pub dup: usize,
    /// Apps in the corpus.
    pub apps: usize,
    /// Library-pool size behind this duplication factor.
    pub pool: usize,
    /// Summed modeled IDFG time of the cold sweep (ns).
    pub cold_ns: f64,
    /// Summed modeled IDFG time of the warm sweep (ns).
    pub warm_ns: f64,
    /// Store hits during the cold sweep (intra-corpus library sharing).
    pub cold_hits: u64,
    /// Store misses during the cold sweep.
    pub cold_misses: u64,
    /// Store hits during the warm sweep.
    pub warm_hits: u64,
    /// Store misses during the warm sweep (0 for an unchanged corpus).
    pub warm_misses: u64,
}

impl SumstorePoint {
    fn to_json(&self) -> String {
        let looked = self.cold_hits + self.cold_misses;
        format!(
            "{{\"dup\":{},\"apps\":{},\"libs_per_app\":{},\"pool\":{},\
             \"cold_ns\":{:.1},\"warm_ns\":{:.1},\
             \"cold_hits\":{},\"cold_misses\":{},\"cold_hit_rate\":{:.4},\
             \"warm_hits\":{},\"warm_misses\":{}}}",
            self.dup,
            self.apps,
            LIBS_PER_APP,
            self.pool,
            self.cold_ns,
            self.warm_ns,
            self.cold_hits,
            self.cold_misses,
            if looked > 0 { self.cold_hits as f64 / looked as f64 } else { 0.0 },
            self.warm_hits,
            self.warm_misses,
        )
    }
}

/// Vets every prepared app against `store`, returning the summed modeled
/// IDFG time, the per-app report JSONs, and the (hits, misses) this sweep
/// added to the store counters.
fn sweep(preps: &[PreparedApp], store: &SumStore) -> (f64, Vec<String>, u64, u64) {
    let before = store.stats();
    let mut total_ns = 0.0;
    let mut verdicts = Vec::with_capacity(preps.len());
    for prep in preps {
        let (run, _) =
            execute_vetting_full_with_store(prep, Engine::Gpu(OptConfig::gdroid()), store);
        total_ns += run.outcome.timing.idfg_ns;
        verdicts.push(run.outcome.report.to_json());
    }
    let after = store.stats();
    (total_ns, verdicts, after.hits - before.hits, after.misses - before.misses)
}

/// Runs one duplication-factor point: a fresh corpus, a fresh store, a
/// cold sweep, then a warm sweep over the identical corpus.
pub fn run_sumstore_point(apps: usize, dup: usize) -> SumstorePoint {
    let pool = (apps * LIBS_PER_APP / dup).max(1);
    let cfg = GenConfig::tiny().with_libraries(LIBS_PER_APP, pool);
    let preps: Vec<PreparedApp> = corpus_preps(apps, &cfg);

    let store = SumStore::new();
    let (cold_ns, cold_verdicts, cold_hits, cold_misses) = sweep(&preps, &store);
    let (warm_ns, warm_verdicts, warm_hits, warm_misses) = sweep(&preps, &store);
    assert_eq!(cold_verdicts, warm_verdicts, "store changed a verdict at dup {dup}");

    SumstorePoint {
        dup,
        apps,
        pool,
        cold_ns,
        warm_ns,
        cold_hits,
        cold_misses,
        warm_hits,
        warm_misses,
    }
}

/// Runs the duplication-factor sweep and returns `(json, human_summary)`.
pub fn sumstore_benchmark(apps: usize) -> (String, String) {
    let apps = apps.max(4);
    let points: Vec<SumstorePoint> = [1, 2, 4, 8].map(|dup| run_sumstore_point(apps, dup)).into();

    let mut summary =
        format!("summary store over {apps}-app corpora ({LIBS_PER_APP} lib packages/app)\n");
    for p in &points {
        let looked = (p.cold_hits + p.cold_misses).max(1);
        let gain = if p.warm_ns > 0.0 {
            format!("{:.0}x", p.cold_ns / p.warm_ns)
        } else {
            "pre-solved".to_owned()
        };
        summary.push_str(&format!(
            "  dup {:>2} (pool {:>3}): cold {:>9.3} ms ({:>5.1}% lib hits) -> warm {:>8.4} ms \
             ({gain})\n",
            p.dup,
            p.pool,
            p.cold_ns / 1e6,
            100.0 * p.cold_hits as f64 / looked as f64,
            p.warm_ns / 1e6,
        ));
    }

    summary.push_str(
        "  (warm 0 ms = every method pre-solved from the store; no kernel launches modeled)\n",
    );
    let rows = points.iter().map(SumstorePoint::to_json).collect::<Vec<_>>().join(",");
    (format!("{{\"points\":[{rows}]}}"), summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dup_factor_raises_cold_hit_rate_and_warm_presolves() {
        let lone = run_sumstore_point(6, 1);
        let shared = run_sumstore_point(6, 6);
        let rate =
            |p: &SumstorePoint| p.cold_hits as f64 / (p.cold_hits + p.cold_misses).max(1) as f64;
        assert!(
            rate(&shared) > rate(&lone),
            "dup 6 hit rate {} must beat dup 1 hit rate {}",
            rate(&shared),
            rate(&lone)
        );
        assert_eq!(shared.warm_misses, 0, "unchanged corpus must fully pre-solve");
        assert!(shared.warm_ns < shared.cold_ns);
        assert!(shared.to_json().contains("\"dup\":6"));
    }
}
