//! The `figures snapshot10k` experiment: store-snapshot campaigns at
//! 10k-app scale.
//!
//! Three lanes, all modeled/counted so `BENCH_snapshot10k.json` is
//! byte-deterministic for a fixed seed:
//!
//! * **campaign** — a rotated-journal campaign streamed through
//!   [`gdroid_campaign::run_campaign`] (memory bounded by each shard
//!   service's in-flight window, journals bounded by the rotation
//!   threshold), with the incremental sealed-rollup fold asserted
//!   byte-identical to the monolithic every-segment re-read;
//! * **stores** — the shared-vs-isolated summary-store comparison: the
//!   same duplication-heavy corpus vetted once with one cold store per
//!   shard and once with a single store shared across all shards, hit
//!   rates attributed per shard from each app's [`StoreUse`];
//! * **delta** — a daily-delta campaign against the first lane's
//!   journals under a deterministic update model: unchanged apps copy
//!   forward, perturbed apps re-vet, verdict flips are counted.
//!
//! Campaign journals live in a scratch directory that never appears in
//! the emitted JSON; it is removed before returning.

use crate::corpus::corpus_preps;
use gdroid_apk::GenConfig;
use gdroid_campaign::{
    config_digest, read_shard_records, segment_path, CampaignConfig, CampaignOutcome, FleetReport,
};
use gdroid_core::OptConfig;
use gdroid_sumstore::SumStore;
use gdroid_vetting::{execute_vetting_full_with_store, Engine, PreparedApp};
use std::path::{Path, PathBuf};

/// Journal rotation threshold (records per segment) at full 10k scale.
pub const SNAPSHOT_ROTATE: usize = 256;

/// Rotation threshold for an `apps`-sized snapshot run: scaled down at
/// reduced N so segment sealing and the carried-rollup resume path are
/// always exercised, capped at [`SNAPSHOT_ROTATE`].
pub fn snapshot_rotate(apps: usize) -> usize {
    (apps / 8).clamp(4, SNAPSHOT_ROTATE)
}
/// Shard services in the snapshot campaign.
pub const SNAPSHOT_SHARDS: usize = 4;
/// Apps-per-million perturbed by the delta lane's update model.
const DELTA_PPM: u32 = 100_000;
/// Salt selecting which apps the update model perturbs.
const DELTA_SALT: u64 = 7;
/// Cap on the store-comparison lane (it holds its preps resident).
const STORE_APPS_CAP: usize = 240;
/// Library packages per app in the store-comparison corpus.
const STORE_LIBS: usize = 3;
/// Target cross-app library duplication factor in that corpus.
const STORE_DUP: usize = 4;

/// Per-shard store traffic in one sweep mode.
#[derive(Clone, Copy, Default)]
pub struct ShardHits {
    /// Summary-store hits attributed to this shard's apps.
    pub hits: u64,
    /// Summary-store misses attributed to this shard's apps.
    pub misses: u64,
}

impl ShardHits {
    fn rate(&self) -> f64 {
        let looked = self.hits + self.misses;
        if looked > 0 {
            self.hits as f64 / looked as f64
        } else {
            0.0
        }
    }
}

/// The shared-vs-isolated store comparison.
pub struct StoreComparison {
    /// Apps vetted per sweep.
    pub apps: usize,
    /// Shards the apps are attributed to (`index % shards`).
    pub shards: usize,
    /// Per-shard traffic with one cold store per shard.
    pub isolated: Vec<ShardHits>,
    /// Per-shard traffic with a single store shared across shards.
    pub shared: Vec<ShardHits>,
}

impl StoreComparison {
    fn total(per_shard: &[ShardHits]) -> ShardHits {
        per_shard.iter().fold(ShardHits::default(), |a, s| ShardHits {
            hits: a.hits + s.hits,
            misses: a.misses + s.misses,
        })
    }

    fn mode_json(per_shard: &[ShardHits]) -> String {
        let total = StoreComparison::total(per_shard);
        let rows = per_shard
            .iter()
            .enumerate()
            .map(|(shard, s)| {
                format!(
                    "{{\"shard\":{shard},\"hits\":{},\"misses\":{},\"hit_rate\":{:.4}}}",
                    s.hits,
                    s.misses,
                    s.rate()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.4},\"per_shard\":[{rows}]}}",
            total.hits,
            total.misses,
            total.rate()
        )
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"apps\":{},\"shards\":{},\"libs_per_app\":{STORE_LIBS},\"dup\":{STORE_DUP},\
             \"isolated\":{},\"shared\":{}}}",
            self.apps,
            self.shards,
            StoreComparison::mode_json(&self.isolated),
            StoreComparison::mode_json(&self.shared),
        )
    }
}

/// A snapshot campaign config over `apps` apps rotating every
/// [`snapshot_rotate`]`(apps)` records, deterministic timings (one
/// worker and one device per shard).
fn snapshot_config(apps: usize, dir: PathBuf) -> CampaignConfig {
    CampaignConfig {
        gen: GenConfig::tiny(),
        prep_workers: 1,
        devices: 1,
        rotate_records: Some(snapshot_rotate(apps)),
        ..CampaignConfig::new(apps, SNAPSHOT_SHARDS.min(apps), dir)
    }
}

/// Segments currently on disk for each shard of a rotated campaign.
fn segments_per_shard(dir: &Path, shards: usize) -> Vec<usize> {
    (0..shards)
        .map(|shard| {
            let mut n = 0;
            while segment_path(dir, shard, n).exists() {
                n += 1;
            }
            n
        })
        .collect()
}

/// The incremental-fold gate: re-reads every segment monolithically and
/// asserts the rotated campaign's report is byte-identical.
fn assert_incremental_matches(config: &CampaignConfig, fleet: &FleetReport) {
    let mut shard_records = Vec::with_capacity(config.shards);
    for shard in 0..config.shards {
        shard_records.push(
            read_shard_records(&config.journal_dir, shard).expect("snapshot journals re-read").1,
        );
    }
    let monolithic = FleetReport::from_records(
        config.master_seed,
        config.apps,
        config_digest(config),
        shard_records,
    );
    assert_eq!(
        fleet.to_json(),
        monolithic.to_json(),
        "incremental sealed-rollup fold diverged from the monolithic re-read"
    );
}

/// Runs one store sweep: every prep vetted in global index order against
/// the store its shard is given, per-shard traffic attributed from each
/// app's returned `StoreUse`.
fn store_sweep(preps: &[PreparedApp], shards: usize, stores: &[&SumStore]) -> Vec<ShardHits> {
    let mut per_shard = vec![ShardHits::default(); shards];
    for (index, prep) in preps.iter().enumerate() {
        let shard = index % shards;
        let (_, used) =
            execute_vetting_full_with_store(prep, Engine::Gpu(OptConfig::gdroid()), stores[shard]);
        per_shard[shard].hits += used.hits;
        per_shard[shard].misses += used.misses;
    }
    per_shard
}

/// Runs the shared-vs-isolated store comparison over a duplication-heavy
/// corpus.
pub fn run_store_comparison(apps: usize, shards: usize) -> StoreComparison {
    let apps = apps.clamp(shards, STORE_APPS_CAP);
    let pool = (apps * STORE_LIBS / STORE_DUP).max(1);
    let cfg = GenConfig::tiny().with_libraries(STORE_LIBS, pool);
    let preps = corpus_preps(apps, &cfg);

    let isolated_stores: Vec<SumStore> = (0..shards).map(|_| SumStore::new()).collect();
    let isolated = store_sweep(&preps, shards, &isolated_stores.iter().collect::<Vec<_>>());

    let shared_store = SumStore::new();
    let shared = store_sweep(&preps, shards, &vec![&shared_store; shards]);

    StoreComparison { apps, shards, isolated, shared }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gdroid-snapshot-bench-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn campaign_json(outcome: &CampaignOutcome, rotate: usize, segments: &[usize]) -> String {
    let fleet = &outcome.fleet;
    let segs = segments.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
    format!(
        "{{\"apps\":{},\"shards\":{},\"rotate\":{rotate},\"segments\":[{segs}],\
         \"completed\":{},\"suspicious\":{},\"clean\":{},\"unknown\":{},\"quarantined\":{},\
         \"failed\":{},\"leaks\":{},\"verdict_digest\":\"{:016x}\",\
         \"makespan_ns\":{:.1},\"incremental_fold_matches\":true}}",
        fleet.tallied_apps(),
        fleet.shards,
        fleet.completed,
        fleet.suspicious,
        fleet.clean,
        fleet.unknown,
        fleet.quarantined,
        fleet.failed,
        fleet.leaks,
        fleet.verdict_digest,
        fleet.modeled_makespan_ns,
    )
}

/// Runs all three snapshot lanes and returns `(json, human_summary)`.
pub fn snapshot_benchmark(apps: usize) -> (String, String) {
    let apps = apps.max(SNAPSHOT_SHARDS);

    // Lane 1: the rotated snapshot campaign, plus the incremental gate.
    let base_dir = scratch_dir("base");
    let base_cfg = snapshot_config(apps, base_dir.clone());
    let base = gdroid_campaign::run_campaign(&base_cfg).expect("snapshot campaign");
    assert_incremental_matches(&base_cfg, &base.fleet);
    let segments = segments_per_shard(&base_dir, base_cfg.shards);

    // Lane 2: shared vs isolated summary stores across shards.
    let stores = run_store_comparison(apps, SNAPSHOT_SHARDS);

    // Lane 3: the daily delta against lane 1's journals.
    let delta_dir = scratch_dir("delta");
    let delta_cfg = CampaignConfig {
        delta_base: Some(base_dir.clone()),
        update_ppm: DELTA_PPM,
        update_salt: DELTA_SALT,
        ..snapshot_config(apps, delta_dir.clone())
    };
    let delta_run = gdroid_campaign::run_campaign(&delta_cfg).expect("delta campaign");
    assert_incremental_matches(&delta_cfg, &delta_run.fleet);
    let delta = delta_run.delta.expect("delta campaigns report their delta");
    assert_eq!(delta.copied + delta.revetted, apps, "every app is copied or re-vetted");

    std::fs::remove_dir_all(&base_dir).ok();
    std::fs::remove_dir_all(&delta_dir).ok();

    let rotate = snapshot_rotate(apps);
    let json = format!(
        "{{\"campaign\":{},\"stores\":{},\"delta\":{}}}",
        campaign_json(&base, rotate, &segments),
        stores.to_json(),
        delta.to_json(),
    );

    let iso = StoreComparison::total(&stores.isolated);
    let shr = StoreComparison::total(&stores.shared);
    let mut summary = format!(
        "snapshot campaign: {} apps over {} shards, rotated every {rotate} records\n",
        apps, base_cfg.shards
    );
    summary.push_str(&format!(
        "  segments/shard {:?}, verdicts {} suspicious / {} clean / {} unknown, \
         incremental fold == monolithic re-read\n",
        segments, base.fleet.suspicious, base.fleet.clean, base.fleet.unknown
    ));
    summary.push_str(&format!(
        "  stores over {} dup-heavy apps: isolated {:.1}% hit rate -> shared {:.1}% \
         (cross-shard sharing)\n",
        stores.apps,
        100.0 * iso.rate(),
        100.0 * shr.rate(),
    ));
    summary.push_str(&format!(
        "  daily delta at {} ppm: {} copied forward, {} re-vetted, {} verdict flip(s)\n",
        DELTA_PPM, delta.copied, delta.revetted, delta.verdict_flips
    ));
    (json, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_benchmark_is_byte_deterministic_and_shares_across_shards() {
        let (a, summary) = snapshot_benchmark(12);
        let (b, _) = snapshot_benchmark(12);
        assert_eq!(a, b, "snapshot JSON must be byte-deterministic");
        assert!(a.contains("\"incremental_fold_matches\":true"));
        assert!(summary.contains("daily delta"));
        let comparison = run_store_comparison(64, SNAPSHOT_SHARDS);
        let iso = StoreComparison::total(&comparison.isolated);
        let shr = StoreComparison::total(&comparison.shared);
        assert!(
            shr.rate() > iso.rate(),
            "a shared store must beat isolated per-shard stores on a dup-heavy corpus \
             (shared {:.3} vs isolated {:.3})",
            shr.rate(),
            iso.rate()
        );
    }
}
