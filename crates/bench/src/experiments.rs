//! Experiment reports: one function per paper table/figure.
//!
//! Each report prints the paper's headline numbers alongside the measured
//! reproduction so EXPERIMENTS.md can be filled mechanically. Index into
//! [`AppRecord::gpu`]: 0 = plain, 1 = MAT, 2 = MAT+GRP, 3 = GDroid.

use crate::record::AppRecord;
use crate::stats::Series;
use std::fmt::Write;

/// Speedups of ladder rung `num` over rung `den` per app.
fn ladder_speedups(records: &[AppRecord], num: usize, den: usize) -> Series {
    Series::new(records.iter().map(|r| r.gpu[den].total_ns / r.gpu[num].total_ns).collect())
}

/// Renders a descending series as a compact decile sketch.
fn decile_sketch(s: &Series) -> String {
    let sorted = s.sorted_desc();
    if sorted.is_empty() {
        return "(empty)".into();
    }
    let mut out = String::from("deciles ");
    for d in 0..=10 {
        let idx = (d * (sorted.len() - 1)) / 10;
        write!(out, "{:.2} ", sorted[idx]).unwrap();
    }
    out
}

/// Table I — dataset characteristics.
pub fn table1(records: &[AppRecord]) -> String {
    let nodes = Series::new(records.iter().map(|r| r.icfg_nodes as f64).collect());
    let methods = Series::new(records.iter().map(|r| r.reachable_methods as f64).collect());
    let slots = Series::new(records.iter().map(|r| r.mean_slots).collect());
    let maxwl = Series::new(records.iter().map(|r| r.max_worklist as f64).collect());
    let mut out = String::new();
    writeln!(out, "== Table I: dataset characteristics ({} apps) ==", records.len()).unwrap();
    writeln!(out, "  no. of CFG nodes   paper 6217 | measured mean {:.0}", nodes.mean()).unwrap();
    writeln!(out, "  no. of Methods     paper  268 | measured mean {:.0}", methods.mean()).unwrap();
    writeln!(out, "  no. of Variable    paper  116 | measured mean slot-pool {:.0}", slots.mean())
        .unwrap();
    writeln!(
        out,
        "  max Worklist len   paper   74 | measured mean-of-max {:.0} (max {:.0})",
        maxwl.mean(),
        maxwl.max()
    )
    .unwrap();
    out
}

/// Fig. 1 — Amandroid total vs IDFG-construction time.
pub fn fig1(records: &[AppRecord]) -> String {
    let total_min = Series::new(records.iter().map(|r| r.amandroid_ns / 6e10).collect());
    let fractions =
        Series::new(records.iter().map(|r| r.amandroid_idfg_ns / r.amandroid_ns).collect());
    let mut out = String::new();
    writeln!(out, "== Fig. 1: Amandroid execution time ({} apps) ==", records.len()).unwrap();
    writeln!(out, "  slowest app        paper ~38 min | measured {:.1} min", total_min.max())
        .unwrap();
    writeln!(out, "  median app         measured {:.2} min", total_min.percentile(50.0)).unwrap();
    writeln!(
        out,
        "  IDFG share         paper 58%..96% | measured {:.0}%..{:.0}% (mean {:.0}%)",
        fractions.min() * 100.0,
        fractions.max() * 100.0,
        fractions.mean() * 100.0
    )
    .unwrap();
    writeln!(out, "  total-minutes {}", decile_sketch(&total_min)).unwrap();
    out
}

/// Fig. 4 — plain GPU vs multithreaded CPU.
pub fn fig4(records: &[AppRecord]) -> String {
    let speedups = Series::new(records.iter().map(|r| r.cpu_mt_ns / r.gpu[0].total_ns).collect());
    let mut out = String::new();
    writeln!(out, "== Fig. 4: plain GPU vs CPU ({} apps) ==", records.len()).unwrap();
    writeln!(out, "  average speedup    paper 1.81x | measured {:.2}x", speedups.mean()).unwrap();
    writeln!(out, "  peak speedup       paper 3.39x | measured {:.2}x", speedups.max()).unwrap();
    writeln!(
        out,
        "  share < 2x         paper 65.9% | measured {:.1}%",
        (speedups.fraction_between(1.0, 2.0)) * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "  share slower (<1x) paper  7.3% | measured {:.1}%",
        speedups.fraction_below(1.0) * 100.0
    )
    .unwrap();
    writeln!(out, "  {}", decile_sketch(&speedups)).unwrap();
    out
}

/// Fig. 8 — full GDroid vs plain GPU.
pub fn fig8(records: &[AppRecord]) -> String {
    let all = ladder_speedups(records, 3, 0);
    let mat = ladder_speedups(records, 1, 0);
    let mat_grp = ladder_speedups(records, 2, 0);
    let mut out = String::new();
    writeln!(out, "== Fig. 8: GDroid overview vs plain ({} apps) ==", records.len()).unwrap();
    writeln!(out, "  peak speedup       paper 128x  | measured {:.1}x", all.max()).unwrap();
    writeln!(out, "  average speedup    paper 71.3x | measured {:.1}x", all.mean()).unwrap();
    writeln!(out, "  MAT-only avg       {:.1}x, MAT+GRP avg {:.1}x", mat.mean(), mat_grp.mean())
        .unwrap();
    writeln!(out, "  {}", decile_sketch(&all)).unwrap();
    out
}

/// Fig. 9 — MAT vs plain.
pub fn fig9(records: &[AppRecord]) -> String {
    let s = ladder_speedups(records, 1, 0);
    let mut out = String::new();
    writeln!(out, "== Fig. 9: MAT vs plain ({} apps) ==", records.len()).unwrap();
    writeln!(out, "  average speedup    paper 26.7x | measured {:.1}x", s.mean()).unwrap();
    writeln!(out, "  peak speedup       paper 92.4x | measured {:.1}x", s.max()).unwrap();
    writeln!(out, "  minimum speedup    paper  7.6x | measured {:.1}x", s.min()).unwrap();
    writeln!(
        out,
        "  share in 20x-40x   paper 59.4% | measured {:.1}%",
        s.fraction_between(20.0, 40.0) * 100.0
    )
    .unwrap();
    writeln!(out, "  {}", decile_sketch(&s)).unwrap();
    out
}

/// Fig. 10 — memory footprint, matrix vs set.
pub fn fig10(records: &[AppRecord]) -> String {
    let ratios =
        Series::new(records.iter().map(|r| r.matrix_bytes as f64 / r.set_bytes as f64).collect());
    let mb = Series::new(records.iter().map(|r| r.set_bytes as f64 / (1 << 20) as f64).collect());
    let mut out = String::new();
    writeln!(out, "== Fig. 10: memory footprint MAT vs set ({} apps) ==", records.len()).unwrap();
    writeln!(
        out,
        "  mean ratio         paper 25% (75% saved) | measured {:.0}%",
        ratios.mean() * 100.0
    )
    .unwrap();
    writeln!(out, "  worst-case ratio   paper 34% | measured {:.0}%", ratios.max() * 100.0)
        .unwrap();
    writeln!(out, "  set-store footprint mean {:.1} MiB, max {:.1} MiB", mb.mean(), mb.max())
        .unwrap();
    out
}

/// Fig. 11 — GRP on top of MAT.
pub fn fig11(records: &[AppRecord]) -> String {
    let s = ladder_speedups(records, 2, 1);
    let div_mat = Series::new(records.iter().map(|r| r.gpu[1].divergence).collect());
    let div_grp = Series::new(records.iter().map(|r| r.gpu[2].divergence).collect());
    let mut out = String::new();
    writeln!(out, "== Fig. 11: GRP vs MAT baseline ({} apps) ==", records.len()).unwrap();
    writeln!(out, "  average speedup    paper ~1.43x | measured {:.2}x", s.mean()).unwrap();
    writeln!(
        out,
        "  share < 1.5x       paper 76.3% | measured {:.1}%",
        s.fraction_below(1.5) * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "  share degraded     paper 15.5% | measured {:.1}%",
        s.fraction_below(1.0) * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "  divergence factor  MAT {:.2} -> GRP {:.2} (passes/warp)",
        div_mat.mean(),
        div_grp.mean()
    )
    .unwrap();
    writeln!(out, "  {}", decile_sketch(&s)).unwrap();
    out
}

/// Fig. 12 — MER on top of MAT+GRP.
pub fn fig12(records: &[AppRecord]) -> String {
    let s = ladder_speedups(records, 3, 2);
    let mut out = String::new();
    writeln!(out, "== Fig. 12: MER vs MAT+GRP baseline ({} apps) ==", records.len()).unwrap();
    writeln!(out, "  average speedup    paper 1.94x | measured {:.2}x", s.mean()).unwrap();
    writeln!(out, "  peak speedup       paper 4.76x | measured {:.2}x", s.max()).unwrap();
    writeln!(
        out,
        "  share in 1.5x-3x   paper 67.4% | measured {:.1}%",
        s.fraction_between(1.5, 3.0) * 100.0
    )
    .unwrap();
    writeln!(out, "  {}", decile_sketch(&s)).unwrap();
    out
}

/// Table II — worklist profiling before/after MER.
pub fn table2(records: &[AppRecord]) -> String {
    // "before MER" = MAT+GRP run (index 2); "after" = GDroid (index 3).
    let before: Vec<_> = records.iter().map(|r| (&r.gpu[2].profile, r.gpu[2].rounds)).collect();
    let after: Vec<_> = records.iter().map(|r| (&r.gpu[3].profile, r.gpu[3].rounds)).collect();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let b32 = mean(&before.iter().map(|(p, _)| p.le_32 * 100.0).collect::<Vec<_>>());
    let b64 = mean(&before.iter().map(|(p, _)| p.le_64 * 100.0).collect::<Vec<_>>());
    let bgt = mean(&before.iter().map(|(p, _)| p.gt_64 * 100.0).collect::<Vec<_>>());
    let a32 = mean(&after.iter().map(|(p, _)| p.le_32 * 100.0).collect::<Vec<_>>());
    let a64 = mean(&after.iter().map(|(p, _)| p.le_64 * 100.0).collect::<Vec<_>>());
    let agt = mean(&after.iter().map(|(p, _)| p.gt_64 * 100.0).collect::<Vec<_>>());
    let rounds_b = Series::new(before.iter().map(|(_, r)| *r as f64 / 1000.0).collect());
    let rounds_a = Series::new(after.iter().map(|(_, r)| *r as f64 / 1000.0).collect());

    let mut out = String::new();
    writeln!(out, "== Table II: worklist profiling ({} apps) ==", records.len()).unwrap();
    writeln!(out, "  sizes <=32 / 32-64 / >64 (% of rounds)").unwrap();
    writeln!(out, "    before MER  paper 87.6/4.3/8.1  | measured {b32:.1}/{b64:.1}/{bgt:.1}")
        .unwrap();
    writeln!(out, "    after  MER  paper 74.4/11.9/13.7 | measured {a32:.1}/{a64:.1}/{agt:.1}")
        .unwrap();
    writeln!(out, "  worklist iterations per app (K): avg / max / min").unwrap();
    writeln!(
        out,
        "    before MER  paper 5.6/6.8/4.3 | measured {:.1}/{:.1}/{:.1}",
        rounds_b.mean(),
        rounds_b.max(),
        rounds_b.min()
    )
    .unwrap();
    writeln!(
        out,
        "    after  MER  paper 4.5/5.8/3.6 | measured {:.1}/{:.1}/{:.1}",
        rounds_a.mean(),
        rounds_a.max(),
        rounds_a.min()
    )
    .unwrap();
    out
}

/// Extension experiment (paper §VIII future work): multi-GPU scaling of
/// GDroid over 1/2/4/8 simulated P40s, averaged over the given records'
/// corpus indices (re-analyzed; expects a small `--apps`).
pub fn ext_multigpu(records: &[AppRecord]) -> String {
    use gdroid_core::{gpu_analyze_app_multi, MultiGpuConfig};
    use gdroid_icfg::prepare_app;
    let corpus = gdroid_apk::Corpus::paper_sized(records.len().max(1));
    let mut out = String::new();
    writeln!(out, "== Extension: multi-GPU scaling ({} apps) ==", records.len().min(8)).unwrap();
    writeln!(out, "  GPUs  mean-speedup  mean-balance  exchange-share").unwrap();
    let sample: Vec<usize> = records.iter().take(8).map(|r| r.index).collect();
    let mut base: Vec<f64> = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let mut speedups = Vec::new();
        let mut balances = Vec::new();
        let mut exchange_share = Vec::new();
        for (i, &idx) in sample.iter().enumerate() {
            let mut app = corpus.generate(idx);
            let (envs, cg) = prepare_app(&mut app);
            let roots: Vec<gdroid_ir::MethodId> = envs.iter().map(|e| e.method).collect();
            let run = gpu_analyze_app_multi(
                &app.program,
                &cg,
                &roots,
                MultiGpuConfig::nvlink(n),
                gdroid_core::OptConfig::gdroid(),
            )
            .expect("valid multi-GPU config");
            if n == 1 {
                base.push(run.stats.total_ns);
                speedups.push(1.0);
            } else {
                speedups.push(base[i] / run.stats.total_ns);
            }
            balances.push(run.stats.balance);
            exchange_share.push(run.stats.exchange_ns / run.stats.total_ns.max(1.0));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        writeln!(
            out,
            "  {n:4}  {:11.2}x  {:12.2}  {:13.1}%",
            mean(&speedups),
            mean(&balances),
            mean(&exchange_share) * 100.0
        )
        .unwrap();
    }
    writeln!(
        out,
        "  (per-app scaling saturates: one method's worklist cannot split          across devices)"
    )
    .unwrap();

    // Corpus-level throughput: whole apps round-robin across GPUs — the
    // deployment the paper's introduction implies (screen ~7K new apps a
    // day). Embarrassingly parallel, so scaling is near-linear and limited
    // only by per-device load imbalance.
    writeln!(
        out,
        "
  corpus throughput (whole apps per GPU, {} apps):",
        sample.len()
    )
    .unwrap();
    let single: Vec<f64> = sample
        .iter()
        .map(|&idx| {
            let mut app = corpus.generate(idx);
            let (envs, cg) = prepare_app(&mut app);
            let roots: Vec<gdroid_ir::MethodId> = envs.iter().map(|e| e.method).collect();
            gpu_analyze_app_multi(
                &app.program,
                &cg,
                &roots,
                MultiGpuConfig::nvlink(1),
                gdroid_core::OptConfig::gdroid(),
            )
            .expect("valid multi-GPU config")
            .stats
            .total_ns
        })
        .collect();
    let total: f64 = single.iter().sum();
    for n in [1usize, 2, 4, 8] {
        // Greedy longest-first packing of apps onto devices.
        let mut sorted = single.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mut loads = vec![0.0f64; n];
        for t in sorted {
            let i = (0..n).min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).unwrap()).unwrap();
            loads[i] += t;
        }
        let makespan = loads.iter().copied().fold(0.0f64, f64::max);
        writeln!(out, "    {n} GPU(s): {:6.2}x throughput", total / makespan.max(1.0)).unwrap();
    }
    out
}

/// Extension experiment: blocks-per-SM auto-tuning vs the paper's manual
/// 4–5 pick, over a few sampled apps.
pub fn ext_autotune(records: &[AppRecord]) -> String {
    use gdroid_core::tune_blocks_per_sm;
    use gdroid_gpusim::DeviceConfig;
    use gdroid_icfg::prepare_app;
    let corpus = gdroid_apk::Corpus::paper_sized(records.len().max(1));
    let mut out = String::new();
    writeln!(out, "== Extension: blocks/SM auto-tuning ==").unwrap();
    for &idx in records.iter().take(5).map(|r| &r.index) {
        let mut app = corpus.generate(idx);
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<gdroid_ir::MethodId> = envs.iter().map(|e| e.method).collect();
        let r = tune_blocks_per_sm(
            &app.program,
            &cg,
            &roots,
            DeviceConfig::tesla_p40(),
            gdroid_core::OptConfig::gdroid(),
            8,
        );
        writeln!(
            out,
            "  app {idx:3}: tuned {} blocks/SM (manual 4), spread {:.2}x",
            r.blocks_per_sm, r.spread
        )
        .unwrap();
    }
    out
}

/// Machine-readable per-app rows (CSV) for external plotting of any
/// figure: one line per app with every engine's time and the derived
/// per-figure series.
pub fn csv(records: &[AppRecord]) -> String {
    let mut out = String::from(
        "index,icfg_nodes,methods,max_worklist,amandroid_ns,amandroid_idfg_ns,cpu_mt_ns,gpu_plain_ns,gpu_mat_ns,gpu_matgrp_ns,gpu_gdroid_ns,set_bytes,matrix_bytes,leaks,fig4_speedup,fig8_speedup,fig9_speedup,fig11_speedup,fig12_speedup\n",
    );
    for r in records {
        writeln!(
            out,
            "{},{},{},{},{:.0},{:.0},{:.0},{:.0},{:.0},{:.0},{:.0},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
            r.index,
            r.icfg_nodes,
            r.reachable_methods,
            r.max_worklist,
            r.amandroid_ns,
            r.amandroid_idfg_ns,
            r.cpu_mt_ns,
            r.gpu[0].total_ns,
            r.gpu[1].total_ns,
            r.gpu[2].total_ns,
            r.gpu[3].total_ns,
            r.set_bytes,
            r.matrix_bytes,
            r.leaks,
            r.cpu_mt_ns / r.gpu[0].total_ns,
            r.gpu[0].total_ns / r.gpu[3].total_ns,
            r.gpu[0].total_ns / r.gpu[1].total_ns,
            r.gpu[1].total_ns / r.gpu[2].total_ns,
            r.gpu[2].total_ns / r.gpu[3].total_ns,
        )
        .unwrap();
    }
    out
}

/// Per-app engine breakdown for calibration work (not a paper figure).
pub fn debug(records: &[AppRecord]) -> String {
    let mut out = String::new();
    writeln!(out, "== debug: per-app engine breakdown ==").unwrap();
    for r in records {
        writeln!(
            out,
            "app {:3}: nodes {:6} methods {:4} maxwl {:3} | cpu_mt {:9.3}ms amandroid {:9.1}ms",
            r.index,
            r.icfg_nodes,
            r.reachable_methods,
            r.max_worklist,
            r.cpu_mt_ns / 1e6,
            r.amandroid_ns / 1e6
        )
        .unwrap();
        for (name, g) in ["plain", "mat", "matgrp", "gdroid"].iter().zip(&r.gpu) {
            writeln!(
                out,
                "   {name:7} total {:9.3}ms kernel {:9.3}ms alloc {:6} div {:5.2} coal {:4.2} rounds {:5} nodes {:6} util {:4.2} launches {:3} rows {:7} fw {:7} un {:6}",
                g.total_ns / 1e6,
                g.kernel_ns / 1e6,
                g.allocations,
                g.divergence,
                g.coalescing,
                g.rounds,
                g.nodes_processed,
                g.utilization,
                g.launches,
                g.rows_read,
                g.facts_written,
                g.unions
            )
            .unwrap();
        }
    }
    out
}

/// All experiments, in paper order.
pub fn all(records: &[AppRecord]) -> String {
    let mut out = String::new();
    out.push_str(&table1(records));
    out.push_str(&fig1(records));
    out.push_str(&fig4(records));
    out.push_str(&fig8(records));
    out.push_str(&fig9(records));
    out.push_str(&fig10(records));
    out.push_str(&fig11(records));
    out.push_str(&fig12(records));
    out.push_str(&table2(records));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::run_corpus;
    use gdroid_apk::Corpus;

    /// Pins the Table I calibration: the paper-profile corpus must stay in
    /// the reported bands. Uses a small prefix for speed; the bands are
    /// generous enough to be stable across prefix sizes.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale apps; run with --release")]
    fn corpus_calibration_stays_in_table1_bands() {
        let corpus = Corpus::paper_sized(12);
        let records = run_corpus(&corpus, 12);
        let mean = |f: &dyn Fn(&crate::record::AppRecord) -> f64| {
            records.iter().map(f).sum::<f64>() / records.len() as f64
        };
        let nodes = mean(&|r| r.icfg_nodes as f64);
        assert!((2_000.0..20_000.0).contains(&nodes), "ICFG nodes {nodes} out of band");
        let methods = mean(&|r| r.reachable_methods as f64);
        assert!((80.0..600.0).contains(&methods), "methods {methods} out of band");
        let maxwl = records.iter().map(|r| r.max_worklist).max().unwrap();
        assert!(maxwl >= 32, "no app ever exceeded one warp: {maxwl}");
    }

    /// Pins the optimization-ladder shape: MAT ≫ 1, GDroid ≥ MAT+GRP ≥ MAT
    /// on corpus averages (the headline of Figs. 8/9).
    #[test]
    #[cfg_attr(debug_assertions, ignore = "paper-scale apps; run with --release")]
    fn ladder_shape_is_stable() {
        let corpus = Corpus::paper_sized(8);
        let records = run_corpus(&corpus, 8);
        let mean_speedup = |num: usize, den: usize| {
            records.iter().map(|r| r.gpu[den].total_ns / r.gpu[num].total_ns).sum::<f64>()
                / records.len() as f64
        };
        let mat = mean_speedup(1, 0);
        let mat_grp = mean_speedup(2, 0);
        let gdroid = mean_speedup(3, 0);
        assert!(mat > 5.0, "MAT speedup collapsed: {mat}");
        assert!(mat_grp > mat * 0.95, "GRP regressed the ladder: {mat_grp} vs {mat}");
        assert!(gdroid > mat_grp * 0.95, "MER regressed the ladder: {gdroid} vs {mat_grp}");
        // Memory: MAT always saves.
        for r in &records {
            assert!(r.matrix_bytes < r.set_bytes, "app {} matrix >= set", r.index);
        }
    }

    #[test]
    fn all_reports_render_without_panicking() {
        let corpus = Corpus::test_corpus(2);
        let records = run_corpus(&corpus, 2);
        let text = all(&records);
        for needle in [
            "Table I", "Fig. 1", "Fig. 4", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12",
            "Table II",
        ] {
            assert!(text.contains(needle), "missing section {needle}");
        }
        // Paper reference values are present for comparison.
        assert!(text.contains("paper 128x"));
        assert!(text.contains("paper 26.7x"));
    }
}
