//! The `figures rel` experiment: the relational (semi-naive) GPU engine
//! against the worklist ladder.
//!
//! Two sections, both byte-deterministic:
//!
//! * **ladder** — a detailed per-app comparison on the tiny-profile
//!   corpus: the MAT and MAT+GRP worklist rungs, then all three
//!   [`EngineKind`]s (worklist / rel / cpu) behind the engine trait.
//!   Facts (FNV digest over the sorted per-method bitmap words) and
//!   verdict reports are asserted identical across the three engines for
//!   every app — the trait contract, measured.
//! * **corpus** — the worklist and rel engines streamed window by window
//!   (`WINDOW` apps resident at a time) over the `small`-profile corpus
//!   at N, with per-app report and fact-digest identity asserted in-run.
//!   The CPU reference is omitted here (its modeled time is thousands of
//!   times the GPU engines'; the ladder section already pins it).
//!
//! One extra solo run of app 0 through the rel driver surfaces the new
//! relational cost-path counters (hash-join probes, relation-scan rows)
//! that the vetting-level outcome does not carry.

use crate::corpus::corpus_prep;
use gdroid_apk::{Corpus, GenConfig, PAPER_MASTER_SEED};
use gdroid_core::{EngineKind, OptConfig};
use gdroid_gpusim::{Device, DeviceConfig};
use gdroid_ir::MethodId;
use gdroid_serve::fnv1a;
use gdroid_vetting::{
    execute_vetting, execute_vetting_engine_on_device, prepare_vetting, Engine, VettingRun,
};

/// Window size of the streamed corpus section.
pub const REL_WINDOW: usize = 8;

/// How many tiny-profile apps the detailed ladder section compares.
pub const REL_DETAIL_APPS: usize = 20;

/// One app's ladder-vs-engines measurement.
pub struct RelPoint {
    /// Corpus index.
    pub app: usize,
    /// MAT-rung modeled IDFG time (ns).
    pub mat_ns: f64,
    /// MAT+GRP-rung modeled IDFG time (ns).
    pub matgrp_ns: f64,
    /// Worklist engine (full GDroid rung) modeled IDFG time (ns).
    pub worklist_ns: f64,
    /// Relational engine modeled IDFG time (ns).
    pub rel_ns: f64,
    /// CPU reference engine modeled time (ns).
    pub cpu_ns: f64,
    /// Semi-naive delta rounds summed over the rel run's layers.
    pub rel_rounds: usize,
    /// Leaks in the (byte-identical) verdicts.
    pub leaks: usize,
}

impl RelPoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"app\":{},\"mat_ns\":{:.1},\"matgrp_ns\":{:.1},\"worklist_ns\":{:.1},\
             \"rel_ns\":{:.1},\"cpu_ns\":{:.1},\"rel_rounds\":{},\"leaks\":{}}}",
            self.app,
            self.mat_ns,
            self.matgrp_ns,
            self.worklist_ns,
            self.rel_ns,
            self.cpu_ns,
            self.rel_rounds,
            self.leaks,
        )
    }
}

/// FNV-1a digest over the per-method fixpoint bitmaps, sorted by method
/// id — the engine-invariant facts, as one comparable number.
pub fn fact_digest(run: &VettingRun) -> u64 {
    let mut mids: Vec<MethodId> = run.analysis.facts.keys().copied().collect();
    mids.sort_unstable();
    let mut line = String::new();
    for mid in mids {
        use std::fmt::Write;
        write!(line, "{mid:?}:").expect("writing to String cannot fail");
        for w in run.analysis.facts[&mid].flat_words() {
            write!(line, "{w:x},").expect("writing to String cannot fail");
        }
        line.push(';');
    }
    fnv1a(line.as_bytes())
}

/// Runs one detailed ladder point: two worklist rungs, then the three
/// engines, with fact and verdict identity asserted across the engines.
pub fn run_rel_point(app: usize) -> RelPoint {
    let prep = corpus_prep(app, &GenConfig::tiny());
    let mat = execute_vetting(&prep, Engine::Gpu(OptConfig::mat()));
    let matgrp = execute_vetting(&prep, Engine::Gpu(OptConfig::mat_grp()));

    let mut runs = Vec::with_capacity(EngineKind::ALL.len());
    for kind in EngineKind::ALL {
        let mut device = Device::new(DeviceConfig::tesla_p40());
        let run = execute_vetting_engine_on_device(&prep, &mut device, kind)
            .expect("a fresh device has no fault plan");
        runs.push(run);
    }
    let [worklist, rel, cpu] = <[VettingRun; 3]>::try_from(runs)
        .unwrap_or_else(|_| unreachable!("EngineKind::ALL has three kinds"));
    let reference = worklist.outcome.report.to_json();
    let reference_facts = fact_digest(&worklist);
    for (kind, run) in EngineKind::ALL.iter().zip([&worklist, &rel, &cpu]) {
        assert_eq!(
            run.outcome.report.to_json(),
            reference,
            "app {app}: engine {kind} verdict diverged from worklist"
        );
        assert_eq!(
            fact_digest(run),
            reference_facts,
            "app {app}: engine {kind} facts diverged from worklist"
        );
    }
    RelPoint {
        app,
        mat_ns: mat.timing.idfg_ns,
        matgrp_ns: matgrp.timing.idfg_ns,
        worklist_ns: worklist.outcome.timing.idfg_ns,
        rel_ns: rel.outcome.timing.idfg_ns,
        cpu_ns: cpu.outcome.timing.idfg_ns,
        rel_rounds: rel.outcome.telemetry.rounds,
        leaks: worklist.outcome.report.leaks.len(),
    }
}

/// Runs the ladder and corpus sections and returns `(json, summary)`.
/// `detail_apps` sizes the ladder section (the canonical run uses
/// [`REL_DETAIL_APPS`]), `corpus_apps` the streamed section.
pub fn rel_benchmark(detail_apps: usize, corpus_apps: usize, scale: f64) -> (String, String) {
    let detail_apps = detail_apps.max(2);
    let corpus_apps = corpus_apps.max(REL_WINDOW);
    let points: Vec<RelPoint> = (0..detail_apps).map(run_rel_point).collect();

    // The rel cost paths, from one solo driver run: the vetting outcome
    // does not carry GPU run stats, so app 0 is re-run directly.
    let profile = {
        let prep = corpus_prep(0, &GenConfig::tiny());
        let gpu = gdroid_rel::rel_analyze_app(
            &prep.app.program,
            &prep.cg,
            &prep.roots,
            DeviceConfig::tesla_p40(),
        );
        format!(
            "{{\"app\":0,\"join_probes\":{},\"scan_rows\":{},\"rounds\":{}}}",
            gpu.stats.join_probes, gpu.stats.scan_rows, gpu.telemetry.rounds,
        )
    };

    // Streamed corpus section: worklist vs rel on long-lived devices.
    let mut gen = GenConfig::small();
    gen.scale *= scale;
    let corpus = Corpus { master_seed: PAPER_MASTER_SEED, size: corpus_apps, config: gen };
    let mut worklist_device = Device::new(DeviceConfig::tesla_p40());
    let mut rel_device = Device::new(DeviceConfig::tesla_p40());
    let mut corpus_worklist_ns = 0.0;
    let mut corpus_rel_ns = 0.0;
    let mut suspicious = 0usize;
    let mut verdict_lines = String::new();
    let mut stream = corpus.stream_all().peekable();
    while stream.peek().is_some() {
        let window: Vec<_> = stream.by_ref().take(REL_WINDOW).collect();
        for (index, app) in window {
            let prep = prepare_vetting(app);
            let w =
                execute_vetting_engine_on_device(&prep, &mut worklist_device, EngineKind::Worklist)
                    .expect("no fault plan installed");
            let r = execute_vetting_engine_on_device(&prep, &mut rel_device, EngineKind::Rel)
                .expect("no fault plan installed");
            assert_eq!(
                r.outcome.report.to_json(),
                w.outcome.report.to_json(),
                "app {index}: rel verdict diverged from worklist"
            );
            assert_eq!(
                fact_digest(&r),
                fact_digest(&w),
                "app {index}: rel facts diverged from worklist"
            );
            corpus_worklist_ns += w.outcome.timing.idfg_ns;
            corpus_rel_ns += r.outcome.timing.idfg_ns;
            suspicious += usize::from(!w.outcome.report.leaks.is_empty());
            use std::fmt::Write;
            writeln!(
                verdict_lines,
                "{:06} {} {:?} {:016x}",
                index,
                prep.app.manifest.package,
                w.outcome.report.verdict,
                fnv1a(w.outcome.report.to_json().as_bytes())
            )
            .expect("writing to String cannot fail");
        }
    }

    let sum = |f: fn(&RelPoint) -> f64| points.iter().map(f).sum::<f64>();
    let (mat_ns, matgrp_ns) = (sum(|p| p.mat_ns), sum(|p| p.matgrp_ns));
    let (worklist_ns, rel_ns, cpu_ns) =
        (sum(|p| p.worklist_ns), sum(|p| p.rel_ns), sum(|p| p.cpu_ns));
    let rel_rounds: usize = points.iter().map(|p| p.rel_rounds).sum();
    let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { 1.0 };

    let rungs = [
        ("mat", mat_ns),
        ("matgrp", matgrp_ns),
        ("worklist", worklist_ns),
        ("rel", rel_ns),
        ("cpu", cpu_ns),
    ];
    let rung_json: Vec<String> = rungs
        .iter()
        .map(|(label, ns)| {
            format!(
                "{{\"engine\":\"{label}\",\"idfg_ns\":{ns:.1},\"speedup_vs_mat\":{:.4}}}",
                ratio(mat_ns, *ns)
            )
        })
        .collect();
    let rows = points.iter().map(RelPoint::to_json).collect::<Vec<_>>().join(",");
    let json = format!(
        "{{\"ladder\":{{\"apps\":{detail_apps},\"profile\":\"tiny\",\"rungs\":[{}],\
         \"rel_rounds\":{rel_rounds},\"rel_vs_worklist\":{:.4},\"kernel_profile\":{profile},\
         \"per_app\":[{rows}]}},\"corpus\":{{\"apps\":{corpus_apps},\"profile\":\"small\",\
         \"scale\":{scale:.3},\"worklist_ns\":{corpus_worklist_ns:.1},\
         \"rel_ns\":{corpus_rel_ns:.1},\"rel_vs_worklist\":{:.4},\"suspicious\":{suspicious},\
         \"clean\":{},\"verdict_digest\":\"{:016x}\"}}}}",
        rung_json.join(","),
        ratio(worklist_ns, rel_ns),
        ratio(corpus_worklist_ns, corpus_rel_ns),
        corpus_apps - suspicious,
        fnv1a(verdict_lines.as_bytes()),
    );

    let mut summary = format!(
        "relational engine vs the worklist ladder ({detail_apps} tiny apps; \
         facts and verdicts asserted engine-identical)\n"
    );
    for (label, ns) in rungs {
        summary.push_str(&format!(
            "  {label:<9} {:>12.3} ms  ({:.2}x vs mat)\n",
            ns / 1e6,
            ratio(mat_ns, ns)
        ));
    }
    summary.push_str(&format!(
        "  corpus ({corpus_apps} small apps): worklist {:.1} ms, rel {:.1} ms ({:.2}x), \
         {suspicious} suspicious\n",
        corpus_worklist_ns / 1e6,
        corpus_rel_ns / 1e6,
        ratio(corpus_worklist_ns, corpus_rel_ns),
    ));
    (json, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_benchmark_is_deterministic_and_engine_identical() {
        let (a, summary) = rel_benchmark(2, 8, 0.02);
        let (b, _) = rel_benchmark(2, 8, 0.02);
        assert_eq!(a, b, "BENCH_rel.json must be byte-deterministic");
        assert!(a.contains("\"engine\":\"rel\"") && a.contains("\"engine\":\"cpu\""));
        assert!(a.contains("\"kernel_profile\":{\"app\":0,\"join_probes\":"));
        assert!(a.contains("\"verdict_digest\":\""));
        assert!(summary.contains("relational engine vs the worklist ladder"));
    }

    #[test]
    fn rel_point_reports_ladder_times_and_rounds() {
        let p = run_rel_point(1);
        assert!(p.mat_ns > 0.0 && p.rel_ns > 0.0 && p.cpu_ns > 0.0);
        assert!(p.rel_rounds > 0);
        assert!(p.cpu_ns > p.rel_ns, "the CPU reference must model slower than rel");
    }
}
