//! Fig. 10 bench: set-based vs matrix-based fact-store operations — the
//! micro costs behind the MAT optimization (insert, union, snapshot) and
//! whole-app runs under each store.

use criterion::{criterion_group, criterion_main, Criterion};
use gdroid_analysis::{
    analyze_app, Fact, FactStore, Geometry, MatrixStore, NodeFacts, SetStore, StoreKind,
};
use gdroid_apk::{generate_app, GenConfig};
use gdroid_icfg::prepare_app;
use gdroid_ir::MethodId;

fn bench_stores(c: &mut Criterion) {
    let g_small = Geometry { slots: 120, insts: 40 };
    // A representative incoming fact batch.
    let mut incoming = NodeFacts::empty(g_small);
    for s in (0..120u16).step_by(3) {
        for i in (0..40u16).step_by(5) {
            incoming.set(Fact { slot: s, instance: i });
        }
    }

    let mut group = c.benchmark_group("fig10_store_micro");
    group.bench_function("set_store_union", |b| {
        b.iter(|| {
            let mut store = SetStore::new(g_small, 8);
            for node in 0..8 {
                store.union_into(node, &incoming);
            }
            store.memory_bytes()
        });
    });
    group.bench_function("matrix_store_union", |b| {
        b.iter(|| {
            let mut store = MatrixStore::new(g_small, 8);
            for node in 0..8 {
                store.union_into(node, &incoming);
            }
            store.memory_bytes()
        });
    });
    group.bench_function("set_store_snapshot", |b| {
        let mut store = SetStore::new(g_small, 1);
        store.union_into(0, &incoming);
        b.iter(|| store.snapshot(0));
    });
    group.bench_function("matrix_store_snapshot", |b| {
        let mut store = MatrixStore::new(g_small, 1);
        store.union_into(0, &incoming);
        b.iter(|| store.snapshot(0));
    });
    group.finish();

    // Whole-app comparisons.
    let mut app = generate_app(0, 17, &GenConfig::tiny());
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
    let mut group = c.benchmark_group("fig10_whole_app");
    group.sample_size(10);
    group.bench_function("analyze_set_store", |b| {
        b.iter(|| analyze_app(&app.program, &cg, &roots, StoreKind::Set));
    });
    group.bench_function("analyze_matrix_store", |b| {
        b.iter(|| analyze_app(&app.program, &cg, &roots, StoreKind::Matrix));
    });
    group.finish();
}

criterion_group!(benches, bench_stores);
criterion_main!(benches);
