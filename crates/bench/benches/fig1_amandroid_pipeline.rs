//! Fig. 1 bench: the end-to-end Amandroid-style vetting pipeline whose
//! breakdown (total vs IDFG-construction) the figure reports.

use criterion::{criterion_group, criterion_main, Criterion};
use gdroid_analysis::{analyze_app, StoreKind};
use gdroid_apk::{generate_app, GenConfig};
use gdroid_icfg::prepare_app;
use gdroid_ir::MethodId;
use gdroid_vetting::{vet_app, Engine};

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);

    g.bench_function("vet_app_amandroid_cpu", |b| {
        b.iter(|| vet_app(generate_app(0, 7, &GenConfig::tiny()), Engine::AmandroidCpu));
    });

    // The IDFG-construction stage alone (the 58–96% component).
    g.bench_function("idfg_construction_only", |b| {
        let mut app = generate_app(0, 7, &GenConfig::tiny());
        let (envs, cg) = prepare_app(&mut app);
        let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
        b.iter(|| analyze_app(&app.program, &cg, &roots, StoreKind::Set));
    });

    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
