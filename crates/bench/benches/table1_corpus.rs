//! Table I bench: corpus generation and dataset-statistics extraction.
//!
//! Measures the wall-clock of the substrate behind Table I — generating a
//! deterministic app and computing its structural statistics.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gdroid_apk::{generate_app, AppStats, Corpus, GenConfig};

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(20);

    g.bench_function("generate_tiny_app", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            generate_app(0, seed, &GenConfig::tiny())
        });
    });

    g.bench_function("generate_paper_scale_app", |b| {
        let corpus = Corpus::paper();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 100;
            corpus.generate(i)
        });
    });

    g.bench_function("app_stats", |b| {
        let app = generate_app(0, 42, &GenConfig::small());
        b.iter_batched(|| &app, AppStats::of, BatchSize::SmallInput);
    });

    g.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
