//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * worklist vs the conventional full-sweep iteration (§VI baseline);
//! * blocks-per-SM co-residency (the auto-tuning axis);
//! * incremental vs from-scratch re-analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use gdroid_analysis::{
    analyze_app, analyze_app_incremental, solve_method, solve_method_sweep, Geometry, MatrixStore,
    MethodSpace, StoreKind, SummaryMap,
};
use gdroid_apk::{generate_app, GenConfig};
use gdroid_core::{gpu_analyze_app, OptConfig};
use gdroid_gpusim::DeviceConfig;
use gdroid_icfg::{prepare_app, Cfg};
use gdroid_ir::MethodId;

fn bench_ablations(c: &mut Criterion) {
    let mut app = generate_app(0, 37, &GenConfig::tiny());
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();
    let methods = cg.reachable_from(&roots);
    let summaries = SummaryMap::new();

    // --- worklist vs full sweep -----------------------------------------
    let mut g = c.benchmark_group("ablation_solver");
    g.sample_size(10);
    g.bench_function("worklist", |b| {
        b.iter(|| {
            for &mid in methods.iter().take(16) {
                let space = MethodSpace::build(&app.program, mid);
                let cfg = Cfg::build(&app.program.methods[mid]);
                let mut store = MatrixStore::new(Geometry::of(&space), cfg.len());
                solve_method(&app.program, mid, &space, &cfg, &mut store, &summaries, &cg);
            }
        });
    });
    g.bench_function("full_sweep", |b| {
        b.iter(|| {
            for &mid in methods.iter().take(16) {
                let space = MethodSpace::build(&app.program, mid);
                let cfg = Cfg::build(&app.program.methods[mid]);
                let mut store = MatrixStore::new(Geometry::of(&space), cfg.len());
                solve_method_sweep(&app.program, mid, &space, &cfg, &mut store, &summaries, &cg);
            }
        });
    });
    g.finish();

    // --- blocks/SM co-residency -----------------------------------------
    let mut g = c.benchmark_group("ablation_blocks_per_sm");
    g.sample_size(10);
    for bps in [1usize, 4, 8] {
        g.bench_function(format!("bps_{bps}"), |b| {
            let config = DeviceConfig { blocks_per_sm: bps, ..DeviceConfig::tesla_p40() };
            b.iter(|| gpu_analyze_app(&app.program, &cg, &roots, config, OptConfig::gdroid()));
        });
    }
    g.finish();

    // --- incremental vs full re-analysis ---------------------------------
    let mut g = c.benchmark_group("ablation_incremental");
    g.sample_size(10);
    let prev = analyze_app(&app.program, &cg, &roots, StoreKind::Matrix);
    g.bench_function("full_reanalysis", |b| {
        b.iter(|| analyze_app(&app.program, &cg, &roots, StoreKind::Matrix));
    });
    g.bench_function("incremental_no_change", |b| {
        b.iter(|| analyze_app_incremental(&app.program, &cg, &roots, &prev, &[]));
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
