//! Table II bench: worklist machinery — kernel round execution with and
//! without MER, plus the SBDA layering pass that schedules the blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use gdroid_apk::{generate_app, GenConfig};
use gdroid_core::{gpu_analyze_app, OptConfig};
use gdroid_gpusim::DeviceConfig;
use gdroid_icfg::{prepare_app, CallLayers};
use gdroid_ir::MethodId;

fn bench_worklist(c: &mut Criterion) {
    let mut app = generate_app(0, 29, &GenConfig::tiny());
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();

    let mut g = c.benchmark_group("table2");
    g.sample_size(10);

    g.bench_function("sbda_layering", |b| {
        b.iter(|| CallLayers::compute(&cg, &roots));
    });

    g.bench_function("worklist_without_mer", |b| {
        b.iter(|| {
            gpu_analyze_app(
                &app.program,
                &cg,
                &roots,
                DeviceConfig::tesla_p40(),
                OptConfig::mat_grp(),
            )
        });
    });

    g.bench_function("worklist_with_mer", |b| {
        b.iter(|| {
            gpu_analyze_app(
                &app.program,
                &cg,
                &roots,
                DeviceConfig::tesla_p40(),
                OptConfig::gdroid(),
            )
        });
    });

    g.finish();
}

criterion_group!(benches, bench_worklist);
criterion_main!(benches);
