//! Figs. 8/9/11/12 bench: the full GDroid optimization ladder on one app —
//! plain, MAT, MAT+GRP, GDroid — as separate Criterion benchmarks so the
//! relative simulation costs are tracked over time.

use criterion::{criterion_group, criterion_main, Criterion};
use gdroid_apk::{generate_app, GenConfig};
use gdroid_core::{gpu_analyze_app, OptConfig};
use gdroid_gpusim::DeviceConfig;
use gdroid_icfg::prepare_app;
use gdroid_ir::MethodId;

fn bench_ladder(c: &mut Criterion) {
    let mut app = generate_app(0, 21, &GenConfig::tiny());
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();

    let mut g = c.benchmark_group("fig8_ladder");
    g.sample_size(10);
    for opts in OptConfig::ladder() {
        g.bench_function(opts.to_string(), |b| {
            b.iter(|| gpu_analyze_app(&app.program, &cg, &roots, DeviceConfig::tesla_p40(), opts));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ladder);
criterion_main!(benches);
