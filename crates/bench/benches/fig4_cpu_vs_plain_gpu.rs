//! Fig. 4 bench: the two sides of the plain-GPU-vs-CPU comparison — the
//! multithreaded CPU solver and the plain GPU kernel simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use gdroid_analysis::{analyze_app_parallel, StoreKind};
use gdroid_apk::{generate_app, GenConfig};
use gdroid_core::{gpu_analyze_app, OptConfig};
use gdroid_gpusim::DeviceConfig;
use gdroid_icfg::prepare_app;
use gdroid_ir::MethodId;

fn bench_fig4(c: &mut Criterion) {
    let mut app = generate_app(0, 13, &GenConfig::tiny());
    let (envs, cg) = prepare_app(&mut app);
    let roots: Vec<MethodId> = envs.iter().map(|e| e.method).collect();

    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);

    g.bench_function("cpu_multithreaded_set_store", |b| {
        b.iter(|| analyze_app_parallel(&app.program, &cg, &roots, StoreKind::Set));
    });

    g.bench_function("gpu_plain_kernel_sim", |b| {
        b.iter(|| {
            gpu_analyze_app(
                &app.program,
                &cg,
                &roots,
                DeviceConfig::tesla_p40(),
                OptConfig::plain(),
            )
        });
    });

    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
