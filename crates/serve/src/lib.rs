#![warn(missing_docs)]

//! # gdroid-serve — in-process vetting service
//!
//! The paper frames GDroid as infrastructure for *app-store-scale*
//! vetting: thousands of submissions a day flowing through a farm of
//! GPU-equipped analysis hosts. This crate builds that serving layer on
//! top of the single-app pipeline in `gdroid-vetting`:
//!
//! * [`queue`] — bounded submission queue with three priority classes,
//!   blocking backpressure, and admission-control shedding;
//! * [`scheduler`] — the bounded ready-heap between host-side prep and
//!   device execution: executors pop priority-then-heaviest (greedy LPT,
//!   the same policy `gdroid-core::multigpu` applies to methods), the
//!   bound double-buffers prep against execution, aged jobs are promoted
//!   past the bound ([`scheduler::STARVATION_BOUND`]), and
//!   [`ServiceConfig::coresident`] lets executors top a device up with
//!   co-resident jobs whose combined block demand fits its block slots;
//! * [`pool`] — long-lived simulated devices with RAII leases; devices
//!   are `reset` between apps, and lifetime fault schedules survive;
//! * [`cache`] — content-hash result cache (bundle bytes → outcome) whose
//!   invalidation path hands the previous analysis to
//!   [`gdroid_analysis::analyze_app_incremental`], so an updated app
//!   re-solves only its changed methods;
//! * [`metrics`] — per-stage counters and latency histograms behind the
//!   machine-readable [`ServiceReport`];
//! * [`service`] — the worker/executor threads, per-job retry with
//!   poison-job quarantine, and the graceful drain protocol;
//! * [`job`] — job descriptions, priorities, and per-job results;
//! * [`trace`] — post-drain per-job Chrome traces in modeled time
//!   (wall-clock jitter never reaches a trace file).
//!
//! A shared [`gdroid_sumstore::SumStore`] can be attached via
//! [`ServiceConfig::sumstore`]: executors then vet through
//! `gdroid-vetting`'s store-aware path, pre-solving library methods
//! contributed by earlier jobs, and the [`ServiceReport`] surfaces the
//! store's hit/miss counters beside the result cache's.
//!
//! Verdicts are engine-independent: a cached, incremental, or device
//! outcome renders the byte-identical report JSON a sequential
//! [`gdroid_vetting::vet_app`] run produces (the soak test in
//! `tests/soak.rs` enforces this under injected device faults).

pub mod cache;
pub mod job;
pub mod metrics;
pub mod pool;
pub mod queue;
pub mod scheduler;
pub mod service;
pub mod trace;

pub use cache::{
    app_content_hash, changed_methods, fnv1a, interner_fingerprint, method_hashes, CacheStats,
    PrevAnalysis, ResultCache,
};
pub use job::{CacheDisposition, JobResult, JobSource, JobSpec, JobStatus, Priority};
pub use metrics::{
    Counters, CountersSnapshot, Histogram, HistogramSnapshot, ServiceMetrics, ServiceReport,
    SourceStats,
};
pub use pool::{DeviceLease, DevicePool};
pub use queue::{SubmitError, SubmitQueue};
pub use scheduler::{block_demand, work_estimate, DispatchHeap, ReadyJob, STARVATION_BOUND};
pub use service::{ServiceConfig, VettingService};
pub use trace::{job_trace, write_job_traces};
