//! Service observability: counters, latency histograms, and the
//! machine-readable [`ServiceReport`].
//!
//! Everything is lock-free (`AtomicU64` with relaxed ordering — these are
//! statistics, not synchronization), so the hot paths never serialize on
//! a metrics mutex.

use crate::cache::CacheStats;
use gdroid_sumstore::SumStoreStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Histogram bucket upper bounds in nanoseconds: geometric ×4 from 1 µs,
/// covering sub-microsecond to >1000 s in 16 buckets.
const BUCKET_BOUNDS_NS: [u64; 16] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
    16_777_216_000,
    67_108_864_000,
    268_435_456_000,
    1_073_741_824_000,
];

/// A fixed-bucket latency histogram (nanosecond samples).
pub struct Histogram {
    counts: [AtomicU64; 17],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, ns: u64) {
        let bucket =
            BUCKET_BOUNDS_NS.iter().position(|&b| ns <= b).unwrap_or(BUCKET_BOUNDS_NS.len());
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Consistent point-in-time snapshot (approximate under concurrent
    /// writes — these are statistics).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        // Linear interpolation within the landing bucket (the Prometheus
        // `histogram_quantile` scheme). With ×4-geometric buckets, the
        // old "return the bucket upper bound" answer overestimated by up
        // to 4×; interpolating on the continuous rank `q·count` keeps the
        // estimate inside the bucket, and the upper edge is clamped to
        // the observed max so the overflow bucket stays finite.
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = q * count as f64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                let next = seen + c;
                if c > 0 && next as f64 >= rank {
                    let lower = if i == 0 { 0 } else { BUCKET_BOUNDS_NS[i - 1] };
                    let upper = BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(max).min(max);
                    let lower = lower.min(upper);
                    let frac = ((rank - seen as f64) / c as f64).clamp(0.0, 1.0);
                    return lower + ((upper - lower) as f64 * frac).round() as u64;
                }
                seen = next;
            }
            max
        };
        HistogramSnapshot {
            count,
            mean_ns: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50_ns: quantile(0.50),
            p95_ns: quantile(0.95),
            p99_ns: quantile(0.99),
            max_ns: max,
        }
    }
}

/// Frozen summary of a [`Histogram`]. Percentiles interpolate linearly
/// within their bucket (clamped to the observed max).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Mean sample.
    pub mean_ns: f64,
    /// Median (interpolated).
    pub p50_ns: u64,
    /// 95th percentile (interpolated).
    pub p95_ns: u64,
    /// 99th percentile (interpolated).
    pub p99_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            self.count, self.mean_ns, self.p50_ns, self.p95_ns, self.p99_ns, self.max_ns
        )
    }
}

/// Lifetime event counters of the service.
#[derive(Default)]
pub struct Counters {
    /// Jobs admitted into the submission queue.
    pub submitted: AtomicU64,
    /// Submissions shed at admission (queue full).
    pub rejected: AtomicU64,
    /// Exact cache hits (no prep, no execution).
    pub cache_hits: AtomicU64,
    /// Incremental warm-start executions.
    pub cache_incremental: AtomicU64,
    /// Jobs fully prepared and dispatched.
    pub prepared: AtomicU64,
    /// Device executions that returned a result.
    pub executed: AtomicU64,
    /// Failed attempts sent back for retry.
    pub retries: AtomicU64,
    /// Injected device faults observed.
    pub faults: AtomicU64,
    /// Wall-clock attempt timeouts observed.
    pub timeouts: AtomicU64,
    /// Jobs quarantined after exhausting retries.
    pub quarantined: AtomicU64,
    /// Jobs that produced a terminal result (any status).
    pub completed: AtomicU64,
    /// Co-resident batch launches (groups of ≥ 2 jobs on one device).
    pub batches: AtomicU64,
    /// Jobs executed inside a co-resident batch.
    pub batched_jobs: AtomicU64,
    /// Targeted (fast-lane, sliced) jobs completed.
    pub targeted_jobs: AtomicU64,
    /// Sum of targeted sliced fractions in micro-units (×1e6); divided by
    /// `targeted_jobs` for the report's `mean_sliced_fraction`.
    pub sliced_fraction_micros: AtomicU64,
}

impl Counters {
    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> CountersSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        CountersSnapshot {
            submitted: load(&self.submitted),
            rejected: load(&self.rejected),
            cache_hits: load(&self.cache_hits),
            cache_incremental: load(&self.cache_incremental),
            prepared: load(&self.prepared),
            executed: load(&self.executed),
            retries: load(&self.retries),
            faults: load(&self.faults),
            timeouts: load(&self.timeouts),
            quarantined: load(&self.quarantined),
            completed: load(&self.completed),
            batches: load(&self.batches),
            batched_jobs: load(&self.batched_jobs),
            targeted_jobs: load(&self.targeted_jobs),
        }
    }
}

/// Frozen copy of [`Counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Jobs admitted into the submission queue.
    pub submitted: u64,
    /// Submissions shed at admission (queue full).
    pub rejected: u64,
    /// Exact cache hits.
    pub cache_hits: u64,
    /// Incremental warm-start executions.
    pub cache_incremental: u64,
    /// Jobs fully prepared and dispatched.
    pub prepared: u64,
    /// Device executions that returned a result.
    pub executed: u64,
    /// Failed attempts sent back for retry.
    pub retries: u64,
    /// Injected device faults observed.
    pub faults: u64,
    /// Wall-clock attempt timeouts observed.
    pub timeouts: u64,
    /// Jobs quarantined after exhausting retries.
    pub quarantined: u64,
    /// Jobs that produced a terminal result.
    pub completed: u64,
    /// Co-resident batch launches (groups of ≥ 2 jobs on one device).
    pub batches: u64,
    /// Jobs executed inside a co-resident batch.
    pub batched_jobs: u64,
    /// Targeted (fast-lane, sliced) jobs completed.
    pub targeted_jobs: u64,
}

impl CountersSnapshot {
    /// JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"submitted\":{},\"rejected\":{},\"cache_hits\":{},\"cache_incremental\":{},\
             \"prepared\":{},\"executed\":{},\"retries\":{},\"faults\":{},\"timeouts\":{},\
             \"quarantined\":{},\"completed\":{},\"batches\":{},\"batched_jobs\":{},\
             \"targeted_jobs\":{}}}",
            self.submitted,
            self.rejected,
            self.cache_hits,
            self.cache_incremental,
            self.prepared,
            self.executed,
            self.retries,
            self.faults,
            self.timeouts,
            self.quarantined,
            self.completed,
            self.batches,
            self.batched_jobs,
            self.targeted_jobs,
        )
    }
}

/// Live metrics shared by every service thread.
pub struct ServiceMetrics {
    /// Event counters.
    pub counters: Counters,
    /// Wall-clock wait between admission and prep pickup.
    pub queue_wait: Histogram,
    /// Wall-clock host-side prep (load + hash + env/cg).
    pub prep: Histogram,
    /// Wall-clock device-execution attempts (successful ones).
    pub exec_wall: Histogram,
    /// Modeled kernel time (`idfg_ns`) of completed runs.
    pub kernel_model: Histogram,
    /// Modeled taint time of completed runs.
    pub taint_model: Histogram,
    started: Instant,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Creates zeroed metrics; the throughput clock starts now.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics {
            counters: Counters::default(),
            queue_wait: Histogram::new(),
            prep: Histogram::new(),
            exec_wall: Histogram::new(),
            kernel_model: Histogram::new(),
            taint_model: Histogram::new(),
            started: Instant::now(),
        }
    }

    /// Builds the machine-readable report.
    pub fn report(
        &self,
        cache: CacheStats,
        sumstore: SumStoreStats,
        device_launches: u64,
        device_faults: u64,
    ) -> ServiceReport {
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        let counters = self.counters.snapshot();
        let apps_per_sec =
            if wall_ns == 0 { 0.0 } else { counters.completed as f64 / (wall_ns as f64 / 1e9) };
        // Mean jobs per device execution: batched jobs collapse into one
        // launch group each, solo executions count as groups of one.
        let groups = counters.executed.saturating_sub(counters.batched_jobs) + counters.batches;
        let coresidency = if groups == 0 { 1.0 } else { counters.executed as f64 / groups as f64 };
        let sliced_micros = self.counters.sliced_fraction_micros.load(Ordering::Relaxed);
        let mean_sliced_fraction = if counters.targeted_jobs == 0 {
            1.0
        } else {
            sliced_micros as f64 / 1e6 / counters.targeted_jobs as f64
        };
        ServiceReport {
            counters,
            queue_wait: self.queue_wait.snapshot(),
            prep: self.prep.snapshot(),
            exec_wall: self.exec_wall.snapshot(),
            kernel_model: self.kernel_model.snapshot(),
            taint_model: self.taint_model.snapshot(),
            cache,
            sumstore,
            wall_ns,
            apps_per_sec,
            coresidency,
            mean_sliced_fraction,
            device_launches,
            device_faults,
        }
    }
}

/// The machine-readable service summary (`--json` / `BENCH_serve.json`).
#[derive(Clone, Copy, Debug)]
pub struct ServiceReport {
    /// Event counters.
    pub counters: CountersSnapshot,
    /// Queue-wait latency.
    pub queue_wait: HistogramSnapshot,
    /// Prep-stage latency.
    pub prep: HistogramSnapshot,
    /// Device-execution wall latency.
    pub exec_wall: HistogramSnapshot,
    /// Modeled kernel time distribution.
    pub kernel_model: HistogramSnapshot,
    /// Modeled taint time distribution.
    pub taint_model: HistogramSnapshot,
    /// Cache behavior.
    pub cache: CacheStats,
    /// Cross-app summary-store behavior (zeroed when no store is
    /// configured).
    pub sumstore: SumStoreStats,
    /// Service wall-clock from start to report.
    pub wall_ns: u64,
    /// Terminal results per second of service wall-clock.
    pub apps_per_sec: f64,
    /// Mean jobs per device execution (1.0 when nothing batched).
    pub coresidency: f64,
    /// Mean sliced fraction of targeted jobs (1.0 when none ran).
    pub mean_sliced_fraction: f64,
    /// Lifetime device launches (including faulted ones).
    pub device_launches: u64,
    /// Lifetime injected device faults.
    pub device_faults: u64,
}

impl ServiceReport {
    /// JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"counters\":{},\"latency\":{{\"queue_wait\":{},\"prep\":{},\"exec_wall\":{},\
             \"kernel_model\":{},\"taint_model\":{}}},\"cache\":{{\"hits\":{},\"misses\":{},\
             \"invalidations\":{},\"insertions\":{}}},\"sumstore\":{},\"wall_ns\":{},\
             \"apps_per_sec\":{:.3},\"coresidency\":{:.3},\"mean_sliced_fraction\":{:.6},\
             \"device_launches\":{},\"device_faults\":{}}}",
            self.counters.to_json(),
            self.queue_wait.to_json(),
            self.prep.to_json(),
            self.exec_wall.to_json(),
            self.kernel_model.to_json(),
            self.taint_model.to_json(),
            self.cache.hits,
            self.cache.misses,
            self.cache.invalidations,
            self.cache.insertions,
            self.sumstore.to_json(),
            self.wall_ns,
            self.apps_per_sec,
            self.coresidency,
            self.mean_sliced_fraction,
            self.device_launches,
            self.device_faults,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summarizes_samples() {
        let h = Histogram::new();
        for ns in [500, 2_000, 2_000, 100_000, 5_000_000_000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.max_ns, 5_000_000_000);
        // Interpolated values, pinned. p50: rank 2.5 lands in the
        // (1 µs, 4 µs] bucket after 1 sample → 1000 + 3000·(1.5/2).
        assert_eq!(s.p50_ns, 3_250);
        // p95/p99: rank 4.75/4.95 land in the overflow-side bucket after
        // 4 samples; its upper edge is clamped to max = 5 s.
        assert_eq!(s.p95_ns, 4_798_576_000);
        assert_eq!(s.p99_ns, 4_959_715_200);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
        assert!(s.mean_ns > 0.0);
        assert!(s.to_json().contains("\"count\":5"));
        assert!(s.to_json().contains("\"p99_ns\":4959715200"));
    }

    #[test]
    fn boundary_sample_lands_in_lower_bucket() {
        // 1 µs is exactly the first bucket's upper bound: it must count
        // in that bucket (bounds are inclusive), so the median of
        // {1 µs, 4 s} interpolates up to 1 µs — not into (1 µs, 4 µs].
        let h = Histogram::new();
        h.record(1_000);
        h.record(4_000_000_000);
        let s = h.snapshot();
        assert_eq!(s.p50_ns, 1_000);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn report_json_is_wellformed() {
        let m = ServiceMetrics::new();
        Counters::bump(&m.counters.completed);
        m.exec_wall.record(1_000);
        let r = m.report(CacheStats::default(), SumStoreStats::default(), 3, 1);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"completed\":1"));
        assert!(j.contains("\"device_faults\":1"));
        assert!(j.contains("\"apps_per_sec\":"));
        assert!(j.contains("\"targeted_jobs\":0"));
        assert!(j.contains("\"mean_sliced_fraction\":1.000000"));
        assert!(j.contains("\"cache\":{"));
        assert!(
            j.contains(
                "\"sumstore\":{\"hits\":0,\"misses\":0,\"insertions\":0,\"reloc_failures\":0}"
            ),
            "sumstore stats must sit beside the cache stats: {j}"
        );
    }
}
