//! Service observability: counters, latency histograms, and the
//! machine-readable [`ServiceReport`].
//!
//! Everything is lock-free (`AtomicU64` with relaxed ordering — these are
//! statistics, not synchronization), so the hot paths never serialize on
//! a metrics mutex.

use crate::cache::CacheStats;
use gdroid_sumstore::SumStoreStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Histogram bucket upper bounds in nanoseconds: geometric ×4 from 1 µs,
/// covering sub-microsecond to >1000 s in 16 buckets.
const BUCKET_BOUNDS_NS: [u64; 16] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
    16_777_216_000,
    67_108_864_000,
    268_435_456_000,
    1_073_741_824_000,
];

/// A fixed-bucket latency histogram (nanosecond samples).
pub struct Histogram {
    counts: [AtomicU64; 17],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index a sample lands in (bounds are inclusive upper
    /// edges; the 17th bucket is overflow). Public so out-of-process
    /// folds — the campaign journal rollup — can mirror the bucketing
    /// exactly.
    pub fn bucket_for(ns: u64) -> usize {
        BUCKET_BOUNDS_NS.iter().position(|&b| ns <= b).unwrap_or(BUCKET_BOUNDS_NS.len())
    }

    /// Records one sample.
    pub fn record(&self, ns: u64) {
        self.counts[Histogram::bucket_for(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Consistent point-in-time snapshot (approximate under concurrent
    /// writes — these are statistics).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; 17] = std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed));
        HistogramSnapshot::from_buckets(
            buckets,
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// Frozen summary of a [`Histogram`]. Carries the raw bucket counts, so
/// snapshots from different service instances merge *exactly* (bucket
/// counts add; percentiles are recomputed from the merged buckets, never
/// averaged). Percentiles interpolate linearly within their bucket
/// (clamped to the observed max).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Raw per-bucket sample counts (the 16 geometric buckets plus the
    /// overflow bucket). The mergeable ground truth behind every derived
    /// field.
    pub buckets: [u64; 17],
    /// Sum of all samples (ns).
    pub sum_ns: u64,
    /// Samples recorded.
    pub count: u64,
    /// Mean sample.
    pub mean_ns: f64,
    /// Median (interpolated).
    pub p50_ns: u64,
    /// 95th percentile (interpolated).
    pub p95_ns: u64,
    /// 99th percentile (interpolated).
    pub p99_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// Builds a snapshot (including every derived field) from the raw
    /// mergeable state: bucket counts, sample sum, and observed max.
    pub fn from_buckets(buckets: [u64; 17], sum_ns: u64, max_ns: u64) -> HistogramSnapshot {
        let count: u64 = buckets.iter().sum();
        // Linear interpolation within the landing bucket (the Prometheus
        // `histogram_quantile` scheme). With ×4-geometric buckets, the
        // old "return the bucket upper bound" answer overestimated by up
        // to 4×; interpolating on the continuous rank `q·count` keeps the
        // estimate inside the bucket, and the upper edge is clamped to
        // the observed max so the overflow bucket stays finite.
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = q * count as f64;
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                let next = seen + c;
                if c > 0 && next as f64 >= rank {
                    let lower = if i == 0 { 0 } else { BUCKET_BOUNDS_NS[i - 1] };
                    let upper = BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(max_ns).min(max_ns);
                    let lower = lower.min(upper);
                    let frac = ((rank - seen as f64) / c as f64).clamp(0.0, 1.0);
                    return lower + ((upper - lower) as f64 * frac).round() as u64;
                }
                seen = next;
            }
            max_ns
        };
        HistogramSnapshot {
            buckets,
            sum_ns,
            count,
            mean_ns: if count == 0 { 0.0 } else { sum_ns as f64 / count as f64 },
            p50_ns: quantile(0.50),
            p95_ns: quantile(0.95),
            p99_ns: quantile(0.99),
            max_ns,
        }
    }

    /// Exact merge: bucket counts and sums add, the max is the max, and
    /// every derived field (mean, percentiles) is recomputed from the
    /// merged raw state — identical to a snapshot of one histogram that
    /// recorded both sample populations.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: [u64; 17] = std::array::from_fn(|i| self.buckets[i] + other.buckets[i]);
        HistogramSnapshot::from_buckets(
            buckets,
            self.sum_ns + other.sum_ns,
            self.max_ns.max(other.max_ns),
        )
    }

    /// JSON rendering: derived summary fields plus the raw mergeable
    /// bucket counts.
    pub fn to_json(&self) -> String {
        let buckets = self.buckets.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        format!(
            "{{\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\
             \"max_ns\":{},\"sum_ns\":{},\"buckets\":[{}]}}",
            self.count,
            self.mean_ns,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.max_ns,
            self.sum_ns,
            buckets
        )
    }
}

/// Lifetime event counters of the service.
#[derive(Default)]
pub struct Counters {
    /// Jobs admitted into the submission queue.
    pub submitted: AtomicU64,
    /// Submissions shed at admission (queue full).
    pub rejected: AtomicU64,
    /// Exact cache hits (no prep, no execution).
    pub cache_hits: AtomicU64,
    /// Incremental warm-start executions.
    pub cache_incremental: AtomicU64,
    /// Jobs fully prepared and dispatched.
    pub prepared: AtomicU64,
    /// Device executions that returned a result.
    pub executed: AtomicU64,
    /// Failed attempts sent back for retry.
    pub retries: AtomicU64,
    /// Injected device faults observed.
    pub faults: AtomicU64,
    /// Wall-clock attempt timeouts observed.
    pub timeouts: AtomicU64,
    /// Jobs quarantined after exhausting retries.
    pub quarantined: AtomicU64,
    /// Jobs that produced a terminal result (any status).
    pub completed: AtomicU64,
    /// Co-resident batch launches (groups of ≥ 2 jobs on one device).
    pub batches: AtomicU64,
    /// Jobs executed inside a co-resident batch.
    pub batched_jobs: AtomicU64,
    /// Targeted (fast-lane, sliced) jobs completed.
    pub targeted_jobs: AtomicU64,
    /// Sum of targeted sliced fractions in micro-units (×1e6); divided by
    /// `targeted_jobs` for the report's `mean_sliced_fraction`.
    pub sliced_fraction_micros: AtomicU64,
    /// Jobs executed under the relational engine.
    pub rel_jobs: AtomicU64,
    /// Jobs executed under the CPU reference engine.
    pub cpu_jobs: AtomicU64,
    /// Jobs executed under the persistent-kernel mode (one resident
    /// launch per app).
    pub persistent_jobs: AtomicU64,
    /// Summary-store method hits attributable to this service's own
    /// executions (service-local even when the store `Arc` is shared
    /// across shards — the store's global stats can't say *who* hit).
    pub store_hits: AtomicU64,
    /// Summary-store method misses attributable to this service's own
    /// executions.
    pub store_misses: AtomicU64,
}

impl Counters {
    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> CountersSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        CountersSnapshot {
            submitted: load(&self.submitted),
            rejected: load(&self.rejected),
            cache_hits: load(&self.cache_hits),
            cache_incremental: load(&self.cache_incremental),
            prepared: load(&self.prepared),
            executed: load(&self.executed),
            retries: load(&self.retries),
            faults: load(&self.faults),
            timeouts: load(&self.timeouts),
            quarantined: load(&self.quarantined),
            completed: load(&self.completed),
            batches: load(&self.batches),
            batched_jobs: load(&self.batched_jobs),
            targeted_jobs: load(&self.targeted_jobs),
            sliced_fraction_micros: load(&self.sliced_fraction_micros),
            rel_jobs: load(&self.rel_jobs),
            cpu_jobs: load(&self.cpu_jobs),
            persistent_jobs: load(&self.persistent_jobs),
            store_hits: load(&self.store_hits),
            store_misses: load(&self.store_misses),
        }
    }
}

/// Frozen copy of [`Counters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Jobs admitted into the submission queue.
    pub submitted: u64,
    /// Submissions shed at admission (queue full).
    pub rejected: u64,
    /// Exact cache hits.
    pub cache_hits: u64,
    /// Incremental warm-start executions.
    pub cache_incremental: u64,
    /// Jobs fully prepared and dispatched.
    pub prepared: u64,
    /// Device executions that returned a result.
    pub executed: u64,
    /// Failed attempts sent back for retry.
    pub retries: u64,
    /// Injected device faults observed.
    pub faults: u64,
    /// Wall-clock attempt timeouts observed.
    pub timeouts: u64,
    /// Jobs quarantined after exhausting retries.
    pub quarantined: u64,
    /// Jobs that produced a terminal result.
    pub completed: u64,
    /// Co-resident batch launches (groups of ≥ 2 jobs on one device).
    pub batches: u64,
    /// Jobs executed inside a co-resident batch.
    pub batched_jobs: u64,
    /// Targeted (fast-lane, sliced) jobs completed.
    pub targeted_jobs: u64,
    /// Summed targeted sliced fractions in micro-units (×1e6). Kept raw
    /// (not pre-divided) so shard merges reproduce the exact fleet-wide
    /// mean instead of averaging per-shard means.
    pub sliced_fraction_micros: u64,
    /// Jobs executed under the relational engine.
    pub rel_jobs: u64,
    /// Jobs executed under the CPU reference engine.
    pub cpu_jobs: u64,
    /// Jobs executed under the persistent-kernel mode.
    pub persistent_jobs: u64,
    /// Summary-store hits from this service's own executions.
    pub store_hits: u64,
    /// Summary-store misses from this service's own executions.
    pub store_misses: u64,
}

impl CountersSnapshot {
    /// Exact merge: every counter is a sum over disjoint event sets, so
    /// field-wise addition is the true union.
    pub fn merge(&self, other: &CountersSnapshot) -> CountersSnapshot {
        CountersSnapshot {
            submitted: self.submitted + other.submitted,
            rejected: self.rejected + other.rejected,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_incremental: self.cache_incremental + other.cache_incremental,
            prepared: self.prepared + other.prepared,
            executed: self.executed + other.executed,
            retries: self.retries + other.retries,
            faults: self.faults + other.faults,
            timeouts: self.timeouts + other.timeouts,
            quarantined: self.quarantined + other.quarantined,
            completed: self.completed + other.completed,
            batches: self.batches + other.batches,
            batched_jobs: self.batched_jobs + other.batched_jobs,
            targeted_jobs: self.targeted_jobs + other.targeted_jobs,
            sliced_fraction_micros: self.sliced_fraction_micros + other.sliced_fraction_micros,
            rel_jobs: self.rel_jobs + other.rel_jobs,
            cpu_jobs: self.cpu_jobs + other.cpu_jobs,
            persistent_jobs: self.persistent_jobs + other.persistent_jobs,
            store_hits: self.store_hits + other.store_hits,
            store_misses: self.store_misses + other.store_misses,
        }
    }

    /// JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"submitted\":{},\"rejected\":{},\"cache_hits\":{},\"cache_incremental\":{},\
             \"prepared\":{},\"executed\":{},\"retries\":{},\"faults\":{},\"timeouts\":{},\
             \"quarantined\":{},\"completed\":{},\"batches\":{},\"batched_jobs\":{},\
             \"targeted_jobs\":{},\"sliced_fraction_micros\":{},\"rel_jobs\":{},\"cpu_jobs\":{},\
             \"persistent_jobs\":{},\"store_hits\":{},\"store_misses\":{}}}",
            self.submitted,
            self.rejected,
            self.cache_hits,
            self.cache_incremental,
            self.prepared,
            self.executed,
            self.retries,
            self.faults,
            self.timeouts,
            self.quarantined,
            self.completed,
            self.batches,
            self.batched_jobs,
            self.targeted_jobs,
            self.sliced_fraction_micros,
            self.rel_jobs,
            self.cpu_jobs,
            self.persistent_jobs,
            self.store_hits,
            self.store_misses,
        )
    }
}

/// Live metrics shared by every service thread.
pub struct ServiceMetrics {
    /// Event counters.
    pub counters: Counters,
    /// Wall-clock wait between admission and prep pickup.
    pub queue_wait: Histogram,
    /// Wall-clock host-side prep (load + hash + env/cg).
    pub prep: Histogram,
    /// Wall-clock device-execution attempts (successful ones).
    pub exec_wall: Histogram,
    /// Modeled kernel time (`idfg_ns`) of completed runs.
    pub kernel_model: Histogram,
    /// Modeled taint time of completed runs.
    pub taint_model: Histogram,
    started: Instant,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Creates zeroed metrics; the throughput clock starts now.
    pub fn new() -> ServiceMetrics {
        ServiceMetrics {
            counters: Counters::default(),
            queue_wait: Histogram::new(),
            prep: Histogram::new(),
            exec_wall: Histogram::new(),
            kernel_model: Histogram::new(),
            taint_model: Histogram::new(),
            started: Instant::now(),
        }
    }

    /// Builds the machine-readable report. `label` names this service in
    /// the report's per-source attribution (shards pass their shard
    /// label, so a merged fleet report can still say which shard's jobs
    /// hit the shared caches).
    pub fn report(
        &self,
        label: &str,
        cache: CacheStats,
        sumstore: SumStoreStats,
        device_launches: u64,
        device_faults: u64,
    ) -> ServiceReport {
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        let counters = self.counters.snapshot();
        let (apps_per_sec, coresidency, mean_sliced_fraction) = derived_ratios(&counters, wall_ns);
        let per_source = vec![SourceStats {
            label: label.to_owned(),
            cache_hits: counters.cache_hits,
            cache_incremental: counters.cache_incremental,
            store_hits: counters.store_hits,
            store_misses: counters.store_misses,
        }];
        ServiceReport {
            counters,
            per_source,
            queue_wait: self.queue_wait.snapshot(),
            prep: self.prep.snapshot(),
            exec_wall: self.exec_wall.snapshot(),
            kernel_model: self.kernel_model.snapshot(),
            taint_model: self.taint_model.snapshot(),
            cache,
            sumstore,
            wall_ns,
            apps_per_sec,
            coresidency,
            mean_sliced_fraction,
            device_launches,
            device_faults,
        }
    }
}

/// Ratios derived from the raw counters: throughput, mean coresidency,
/// and the mean targeted sliced fraction. Factored out so a merged
/// report recomputes them from merged counters instead of averaging.
fn derived_ratios(counters: &CountersSnapshot, wall_ns: u64) -> (f64, f64, f64) {
    let apps_per_sec =
        if wall_ns == 0 { 0.0 } else { counters.completed as f64 / (wall_ns as f64 / 1e9) };
    // Mean jobs per device execution: batched jobs collapse into one
    // launch group each, solo executions count as groups of one.
    let groups = counters.executed.saturating_sub(counters.batched_jobs) + counters.batches;
    let coresidency = if groups == 0 { 1.0 } else { counters.executed as f64 / groups as f64 };
    let mean_sliced_fraction = if counters.targeted_jobs == 0 {
        1.0
    } else {
        counters.sliced_fraction_micros as f64 / 1e6 / counters.targeted_jobs as f64
    };
    (apps_per_sec, coresidency, mean_sliced_fraction)
}

/// Per-service attribution of shared-resource traffic. When several
/// shard services share one result cache or summary store, the shared
/// object's global stats can't say which shard benefited; each service
/// contributes one entry of its own (service-local) hit counts, and
/// [`ServiceReport::merge`] concatenates them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceStats {
    /// The contributing service's label.
    pub label: String,
    /// Exact result-cache hits this service took.
    pub cache_hits: u64,
    /// Incremental warm-starts this service took.
    pub cache_incremental: u64,
    /// Summary-store method hits this service's executions took.
    pub store_hits: u64,
    /// Summary-store method misses this service's executions took.
    pub store_misses: u64,
}

impl SourceStats {
    fn to_json(&self) -> String {
        debug_assert!(
            !self.label.contains(['"', '\\']),
            "source label {:?} needs JSON escaping",
            self.label
        );
        format!(
            "{{\"label\":\"{}\",\"cache_hits\":{},\"cache_incremental\":{},\"store_hits\":{},\
             \"store_misses\":{}}}",
            self.label, self.cache_hits, self.cache_incremental, self.store_hits, self.store_misses
        )
    }
}

/// The machine-readable service summary (`--json` / `BENCH_serve.json`).
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Event counters.
    pub counters: CountersSnapshot,
    /// Per-contributing-service attribution (one entry per merged
    /// service, in merge order).
    pub per_source: Vec<SourceStats>,
    /// Queue-wait latency.
    pub queue_wait: HistogramSnapshot,
    /// Prep-stage latency.
    pub prep: HistogramSnapshot,
    /// Device-execution wall latency.
    pub exec_wall: HistogramSnapshot,
    /// Modeled kernel time distribution.
    pub kernel_model: HistogramSnapshot,
    /// Modeled taint time distribution.
    pub taint_model: HistogramSnapshot,
    /// Cache behavior.
    pub cache: CacheStats,
    /// Cross-app summary-store behavior (zeroed when no store is
    /// configured).
    pub sumstore: SumStoreStats,
    /// Service wall-clock from start to report.
    pub wall_ns: u64,
    /// Terminal results per second of service wall-clock.
    pub apps_per_sec: f64,
    /// Mean jobs per device execution (1.0 when nothing batched).
    pub coresidency: f64,
    /// Mean sliced fraction of targeted jobs (1.0 when none ran).
    pub mean_sliced_fraction: f64,
    /// Lifetime device launches (including faulted ones).
    pub device_launches: u64,
    /// Lifetime injected device faults.
    pub device_faults: u64,
}

impl ServiceReport {
    /// Exact shard merge. Every aggregate is folded from its raw
    /// mergeable state: counters, cache, and sumstore stats add;
    /// histograms add bucket-wise (percentiles recomputed from the
    /// merged buckets, never averaged); derived ratios are recomputed
    /// from the merged counters. `wall_ns` takes the max — shards run
    /// concurrently, so the fleet's wall clock is the slowest shard's.
    pub fn merge(&self, other: &ServiceReport) -> ServiceReport {
        let counters = self.counters.merge(&other.counters);
        let wall_ns = self.wall_ns.max(other.wall_ns);
        let (apps_per_sec, coresidency, mean_sliced_fraction) = derived_ratios(&counters, wall_ns);
        let mut per_source = self.per_source.clone();
        per_source.extend(other.per_source.iter().cloned());
        ServiceReport {
            counters,
            per_source,
            queue_wait: self.queue_wait.merge(&other.queue_wait),
            prep: self.prep.merge(&other.prep),
            exec_wall: self.exec_wall.merge(&other.exec_wall),
            kernel_model: self.kernel_model.merge(&other.kernel_model),
            taint_model: self.taint_model.merge(&other.taint_model),
            cache: CacheStats {
                hits: self.cache.hits + other.cache.hits,
                misses: self.cache.misses + other.cache.misses,
                invalidations: self.cache.invalidations + other.cache.invalidations,
                insertions: self.cache.insertions + other.cache.insertions,
            },
            sumstore: self.sumstore.merge(&other.sumstore),
            wall_ns,
            apps_per_sec,
            coresidency,
            mean_sliced_fraction,
            device_launches: self.device_launches + other.device_launches,
            device_faults: self.device_faults + other.device_faults,
        }
    }

    /// JSON rendering.
    pub fn to_json(&self) -> String {
        let per_source =
            self.per_source.iter().map(SourceStats::to_json).collect::<Vec<_>>().join(",");
        format!(
            "{{\"counters\":{},\"per_source\":[{}],\"latency\":{{\"queue_wait\":{},\"prep\":{},\
             \"exec_wall\":{},\"kernel_model\":{},\"taint_model\":{}}},\"cache\":{{\"hits\":{},\
             \"misses\":{},\"invalidations\":{},\"insertions\":{}}},\"sumstore\":{},\"wall_ns\":{},\
             \"apps_per_sec\":{:.3},\"coresidency\":{:.3},\"mean_sliced_fraction\":{:.6},\
             \"device_launches\":{},\"device_faults\":{}}}",
            self.counters.to_json(),
            per_source,
            self.queue_wait.to_json(),
            self.prep.to_json(),
            self.exec_wall.to_json(),
            self.kernel_model.to_json(),
            self.taint_model.to_json(),
            self.cache.hits,
            self.cache.misses,
            self.cache.invalidations,
            self.cache.insertions,
            self.sumstore.to_json(),
            self.wall_ns,
            self.apps_per_sec,
            self.coresidency,
            self.mean_sliced_fraction,
            self.device_launches,
            self.device_faults,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summarizes_samples() {
        let h = Histogram::new();
        for ns in [500, 2_000, 2_000, 100_000, 5_000_000_000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.max_ns, 5_000_000_000);
        // Interpolated values, pinned. p50: rank 2.5 lands in the
        // (1 µs, 4 µs] bucket after 1 sample → 1000 + 3000·(1.5/2).
        assert_eq!(s.p50_ns, 3_250);
        // p95/p99: rank 4.75/4.95 land in the overflow-side bucket after
        // 4 samples; its upper edge is clamped to max = 5 s.
        assert_eq!(s.p95_ns, 4_798_576_000);
        assert_eq!(s.p99_ns, 4_959_715_200);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
        assert!(s.mean_ns > 0.0);
        assert!(s.to_json().contains("\"count\":5"));
        assert!(s.to_json().contains("\"p99_ns\":4959715200"));
    }

    #[test]
    fn boundary_sample_lands_in_lower_bucket() {
        // 1 µs is exactly the first bucket's upper bound: it must count
        // in that bucket (bounds are inclusive), so the median of
        // {1 µs, 4 s} interpolates up to 1 µs — not into (1 µs, 4 µs].
        let h = Histogram::new();
        h.record(1_000);
        h.record(4_000_000_000);
        let s = h.snapshot();
        assert_eq!(s.p50_ns, 1_000);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    /// A deterministic sample population: geometrically spread latencies
    /// covering the low buckets, a mid bucket, and the overflow bucket.
    fn sample_population() -> Vec<u64> {
        (0..64u64).map(|i| (i % 13 + 1) * 7u64.pow((i % 7) as u32 + 1)).collect()
    }

    #[test]
    fn histogram_merge_of_split_equals_whole() {
        // merge(split(samples)) == whole, byte-exact: any partition of the
        // sample population into two histograms must merge back to the
        // snapshot of one histogram that saw everything.
        let samples = sample_population();
        for split_at in [0, 1, samples.len() / 3, samples.len() / 2, samples.len()] {
            let whole = Histogram::new();
            let left = Histogram::new();
            let right = Histogram::new();
            for (i, &ns) in samples.iter().enumerate() {
                whole.record(ns);
                if i < split_at {
                    left.record(ns)
                } else {
                    right.record(ns)
                };
            }
            let merged = left.snapshot().merge(&right.snapshot());
            assert_eq!(merged, whole.snapshot(), "split at {split_at}");
            assert_eq!(merged.to_json(), whole.snapshot().to_json());
        }
    }

    #[test]
    fn report_merge_of_split_equals_whole_report() {
        // Split a deterministic event stream across two ServiceMetrics
        // ("shards") and merge their reports: every mergeable aggregate
        // must equal the report of one metrics instance that saw the
        // whole stream. Wall-clock-derived fields are pinned on both
        // sides before comparison (shards share no clock).
        let whole = ServiceMetrics::new();
        let parts = [ServiceMetrics::new(), ServiceMetrics::new()];
        for (i, &ns) in sample_population().iter().enumerate() {
            for m in [&whole, &parts[i % 2]] {
                m.queue_wait.record(ns);
                m.exec_wall.record(ns * 3);
                m.kernel_model.record(ns / 2);
                Counters::bump(&m.counters.submitted);
                Counters::bump(&m.counters.completed);
                if i % 3 == 0 {
                    Counters::bump(&m.counters.cache_hits);
                }
                if i % 5 == 0 {
                    Counters::bump(&m.counters.targeted_jobs);
                    m.counters.sliced_fraction_micros.fetch_add(125_000, Ordering::Relaxed);
                }
            }
        }
        let cache = |h, m| CacheStats { hits: h, misses: m, invalidations: 0, insertions: m };
        let sum = |h, m| SumStoreStats { hits: h, misses: m, insertions: m, reloc_failures: 0 };
        let mut expect = whole.report("whole", cache(6, 2), sum(8, 2), 10, 1);
        let mut merged = parts[0]
            .report("shard-0", cache(2, 1), sum(3, 1), 4, 0)
            .merge(&parts[1].report("shard-1", cache(4, 1), sum(5, 1), 6, 1));
        // Per-source attribution is one entry per contributing service —
        // by construction different between the whole and the split — so
        // it is checked structurally and cleared before the byte compare.
        assert_eq!(merged.per_source.len(), 2);
        assert_eq!(merged.per_source[0].label, "shard-0");
        assert_eq!(merged.per_source[1].label, "shard-1");
        assert_eq!(
            merged.per_source[0].cache_hits + merged.per_source[1].cache_hits,
            expect.per_source[0].cache_hits
        );
        for r in [&mut expect, &mut merged] {
            r.wall_ns = 1_000_000;
            r.apps_per_sec = 0.0;
            r.per_source.clear();
        }
        assert_eq!(merged.to_json(), expect.to_json());
        assert!(merged.mean_sliced_fraction > 0.0 && merged.mean_sliced_fraction < 1.0);
    }

    #[test]
    fn report_json_is_wellformed() {
        let m = ServiceMetrics::new();
        Counters::bump(&m.counters.completed);
        Counters::bump(&m.counters.store_hits);
        m.exec_wall.record(1_000);
        let r = m.report("service", CacheStats::default(), SumStoreStats::default(), 3, 1);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"completed\":1"));
        assert!(j.contains("\"store_hits\":1"));
        assert!(j.contains("\"per_source\":[{\"label\":\"service\",\"cache_hits\":0,"));
        assert!(j.contains("\"device_faults\":1"));
        assert!(j.contains("\"apps_per_sec\":"));
        assert!(j.contains("\"targeted_jobs\":0"));
        assert!(j.contains("\"mean_sliced_fraction\":1.000000"));
        assert!(j.contains("\"cache\":{"));
        assert!(
            j.contains(
                "\"sumstore\":{\"hits\":0,\"misses\":0,\"insertions\":0,\"reloc_failures\":0}"
            ),
            "sumstore stats must sit beside the cache stats: {j}"
        );
    }
}
