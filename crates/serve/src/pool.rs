//! Long-lived simulated device pool with RAII leases.
//!
//! Devices are created once at service start and survive across jobs —
//! each execution calls [`gdroid_gpusim::Device::reset`] (via the driver)
//! to reclaim the previous app's allocations while keeping lifetime
//! launch/fault counters, so an injected fault schedule spans the
//! device's whole service life.

use gdroid_gpusim::{Device, DeviceConfig, FaultPlan};
use std::sync::{Condvar, Mutex};

/// A pool of simulated devices; executors lease one per attempt.
pub struct DevicePool {
    slots: Mutex<Vec<Option<Device>>>,
    available: Condvar,
}

impl DevicePool {
    /// Builds `count` identical devices, each with its own copy of the
    /// optional fault plan.
    pub fn new(count: usize, config: DeviceConfig, fault: Option<FaultPlan>) -> DevicePool {
        let slots = (0..count.max(1))
            .map(|_| {
                let mut d = Device::new(config);
                d.set_fault_plan(fault);
                Some(d)
            })
            .collect();
        DevicePool { slots: Mutex::new(slots), available: Condvar::new() }
    }

    /// Number of devices in the pool.
    pub fn size(&self) -> usize {
        self.slots.lock().expect("device-pool mutex poisoned: an executor panicked mid-lease").len()
    }

    /// Blocks until a device is free, then leases it. The lease returns
    /// the device on drop.
    pub fn lease(&self) -> DeviceLease<'_> {
        let mut slots =
            self.slots.lock().expect("device-pool mutex poisoned: an executor panicked mid-lease");
        loop {
            if let Some(slot) = slots.iter().position(|s| s.is_some()) {
                let device =
                    slots[slot].take().expect("slot observed occupied under the pool lock");
                return DeviceLease { pool: self, slot, device: Some(device) };
            }
            slots = self
                .available
                .wait(slots)
                .expect("device-pool mutex poisoned while waiting for a free device");
        }
    }

    /// Lifetime fault count across currently idle devices. Call when no
    /// leases are outstanding (e.g. after drain) for the full total.
    pub fn total_faults(&self) -> u64 {
        self.slots
            .lock()
            .expect("device-pool mutex poisoned: an executor panicked mid-lease")
            .iter()
            .flatten()
            .map(Device::faults_injected)
            .sum()
    }

    /// Lifetime launch count across currently idle devices (same caveat
    /// as [`DevicePool::total_faults`]).
    pub fn total_launches(&self) -> u64 {
        self.slots
            .lock()
            .expect("device-pool mutex poisoned: an executor panicked mid-lease")
            .iter()
            .flatten()
            .map(Device::launches)
            .sum()
    }
}

/// An exclusive device lease; derefs to the device and returns it to the
/// pool on drop.
pub struct DeviceLease<'a> {
    pool: &'a DevicePool,
    slot: usize,
    device: Option<Device>,
}

impl DeviceLease<'_> {
    /// The pool slot index of the leased device.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl std::ops::Deref for DeviceLease<'_> {
    type Target = Device;
    fn deref(&self) -> &Device {
        self.device.as_ref().expect("device present for the lease lifetime (None only during drop)")
    }
}

impl std::ops::DerefMut for DeviceLease<'_> {
    fn deref_mut(&mut self) -> &mut Device {
        self.device.as_mut().expect("device present for the lease lifetime (None only during drop)")
    }
}

impl Drop for DeviceLease<'_> {
    fn drop(&mut self) {
        // Recover from poisoning instead of panicking inside drop (which
        // would abort): losing a device to a poisoned pool is worse than
        // returning it to a pool whose other slots are intact.
        let mut slots = match self.pool.slots.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        slots[self.slot] = self.device.take();
        self.pool.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_is_exclusive_and_returns_on_drop() {
        let pool = DevicePool::new(2, DeviceConfig::tesla_p40(), None);
        let a = pool.lease();
        let b = pool.lease();
        assert_ne!(a.slot(), b.slot());
        drop(a);
        let c = pool.lease();
        drop(b);
        drop(c);
        assert_eq!(pool.size(), 2);
    }

    #[test]
    fn blocked_lease_wakes_when_device_returns() {
        let pool = std::sync::Arc::new(DevicePool::new(1, DeviceConfig::tesla_p40(), None));
        let held = pool.lease();
        let p2 = pool.clone();
        let waiter = std::thread::spawn(move || p2.lease().slot());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held);
        assert_eq!(waiter.join().unwrap(), 0);
    }

    #[test]
    fn fault_plan_is_installed_per_device() {
        let pool =
            DevicePool::new(2, DeviceConfig::tesla_p40(), Some(FaultPlan { period: 1, budget: 1 }));
        assert_eq!(pool.total_faults(), 0);
        assert_eq!(pool.total_launches(), 0);
    }
}
