//! Dispatch heap: prepared jobs waiting for a device.
//!
//! Executors pop the highest-priority, *heaviest* ready job — combined
//! with "a free executor pops next", this is exactly the greedy LPT
//! (longest-processing-time-first) packing the multi-GPU driver uses for
//! methods ([`gdroid_core::multigpu`]), lifted to whole apps: the least
//! loaded device always receives the heaviest pending app.
//!
//! The heap is bounded: prep workers block in [`DispatchHeap::push`] once
//! `capacity` prepared apps are waiting, which is the double-buffer
//! overlap — at steady state each device executes one app while the prep
//! workers hold the next few ready behind it, and prep never runs
//! unboundedly ahead of execution. Retries re-enter through
//! [`DispatchHeap::requeue`], which ignores the bound (a retry must never
//! deadlock against a full heap) and still works after close so draining
//! cannot drop a failed job.

use crate::job::Priority;
use gdroid_ir::MethodId;
use gdroid_vetting::PreparedApp;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Condvar, Mutex};

/// A prepared job, ready for device execution.
pub struct ReadyJob {
    /// Submission id.
    pub id: u64,
    /// Priority class.
    pub priority: Priority,
    /// Static work estimate (statements × state width), the LPT key.
    pub estimate: u64,
    /// The prepared app (program + environments + call graph + roots).
    pub prep: PreparedApp,
    /// FNV-1a hash of the pre-prep bundle content.
    pub content_hash: u64,
    /// App package name.
    pub package: String,
    /// Post-prep per-method content hashes (incremental change detection).
    pub method_hashes: HashMap<MethodId, u64>,
    /// Fingerprint of the interner contents backing `method_hashes`.
    pub interner_fingerprint: u64,
    /// Measured queue wait, carried into the final result.
    pub queue_wait_ns: u64,
    /// Measured prep time, carried into the final result.
    pub prep_ns: u64,
    /// Failed execution attempts so far.
    pub failures: u32,
    /// Injected faults observed so far.
    pub faults_seen: u32,
    /// Timeouts observed so far.
    pub timeouts_seen: u32,
}

/// Computes the static work estimate of a prepared app: total statements
/// times total variables — the app-granular analogue of the per-method
/// `cfg len × matrix words` estimate in [`gdroid_core::multigpu`].
pub fn work_estimate(prep: &PreparedApp) -> u64 {
    let p = &prep.app.program;
    (p.total_statements() as u64) * (p.total_vars() as u64).max(1)
}

struct HeapEntry(ReadyJob);

impl HeapEntry {
    /// Max-heap key: priority first, then estimate (LPT), then earliest id.
    fn key(&self) -> (Priority, u64, std::cmp::Reverse<u64>) {
        (self.0.priority, self.0.estimate, std::cmp::Reverse(self.0.id))
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

struct HeapInner {
    heap: BinaryHeap<HeapEntry>,
    closed: bool,
}

/// The bounded ready-job heap between prep workers and executors.
pub struct DispatchHeap {
    inner: Mutex<HeapInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl DispatchHeap {
    /// Creates a heap holding at most `capacity` ready jobs.
    pub fn new(capacity: usize) -> DispatchHeap {
        DispatchHeap {
            inner: Mutex::new(HeapInner { heap: BinaryHeap::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Hands a freshly prepared job to the executors; blocks while the
    /// heap is at capacity. Fails (returning the job) once closed.
    // The fat Err *is* the contract: a rejected job must come back whole.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, job: ReadyJob) -> Result<(), ReadyJob> {
        let mut inner = self.inner.lock().expect("dispatch-heap mutex poisoned: a worker panicked");
        while inner.heap.len() >= self.capacity && !inner.closed {
            inner = self
                .not_full
                .wait(inner)
                .expect("dispatch-heap mutex poisoned while waiting for space");
        }
        if inner.closed {
            return Err(job);
        }
        inner.heap.push(HeapEntry(job));
        self.not_empty.notify_one();
        Ok(())
    }

    /// Re-enters a failed job for retry. Not subject to the capacity
    /// bound and accepted even after close — a drain must retry, not
    /// drop.
    pub fn requeue(&self, job: ReadyJob) {
        let mut inner = self.inner.lock().expect("dispatch-heap mutex poisoned: a worker panicked");
        inner.heap.push(HeapEntry(job));
        self.not_empty.notify_one();
    }

    /// Takes the most urgent ready job (priority, then heaviest — LPT).
    /// Blocks while empty; `None` once closed *and* drained.
    pub fn pop(&self) -> Option<ReadyJob> {
        let mut inner = self.inner.lock().expect("dispatch-heap mutex poisoned: a worker panicked");
        loop {
            if let Some(entry) = inner.heap.pop() {
                self.not_full.notify_one();
                return Some(entry.0);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .expect("dispatch-heap mutex poisoned while waiting for work");
        }
    }

    /// Closes the heap: waiting executors drain what remains, then stop.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("dispatch-heap mutex poisoned: a worker panicked");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Ready jobs currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("dispatch-heap mutex poisoned: a worker panicked").heap.len()
    }

    /// Whether no ready jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_vetting::prepare_vetting;

    fn ready(id: u64, priority: Priority, estimate: u64) -> ReadyJob {
        ReadyJob {
            id,
            priority,
            estimate,
            prep: prepare_vetting(generate_app(0, 100 + id, &GenConfig::tiny())),
            content_hash: id,
            package: format!("p{id}"),
            method_hashes: HashMap::new(),
            interner_fingerprint: 0,
            queue_wait_ns: 0,
            prep_ns: 0,
            failures: 0,
            faults_seen: 0,
            timeouts_seen: 0,
        }
    }

    #[test]
    fn pops_priority_then_heaviest_then_oldest() {
        let h = DispatchHeap::new(8);
        assert!(h.push(ready(1, Priority::Standard, 10)).is_ok());
        assert!(h.push(ready(2, Priority::Standard, 99)).is_ok());
        assert!(h.push(ready(3, Priority::Expedited, 1)).is_ok());
        assert!(h.push(ready(4, Priority::Standard, 99)).is_ok());
        let order: Vec<u64> = (0..4).map(|_| h.pop().unwrap().id).collect();
        assert_eq!(order, vec![3, 2, 4, 1]);
    }

    #[test]
    fn requeue_ignores_capacity_and_close() {
        let h = DispatchHeap::new(1);
        assert!(h.push(ready(1, Priority::Standard, 5)).is_ok());
        h.requeue(ready(2, Priority::Standard, 50));
        assert_eq!(h.len(), 2);
        h.close();
        assert!(h.push(ready(3, Priority::Standard, 1)).is_err());
        h.requeue(ready(4, Priority::Expedited, 1));
        let order: Vec<u64> = std::iter::from_fn(|| h.pop().map(|j| j.id)).collect();
        assert_eq!(order, vec![4, 2, 1]);
    }

    #[test]
    fn estimate_is_positive_and_monotone_in_app_size() {
        let small = prepare_vetting(generate_app(0, 11, &GenConfig::tiny()));
        assert!(work_estimate(&small) > 0);
    }
}
