//! Dispatch heap: prepared jobs waiting for a device.
//!
//! Executors pop the highest-priority, *heaviest* ready job — combined
//! with "a free executor pops next", this is exactly the greedy LPT
//! (longest-processing-time-first) packing the multi-GPU driver uses for
//! methods ([`gdroid_core::multigpu`]), lifted to whole apps: the least
//! loaded device always receives the heaviest pending app.
//!
//! Strict (priority, LPT) ordering starves small `Standard` jobs under a
//! steady heavy/`Expedited` stream, so the key carries bounded age-based
//! promotion: a job that has watched [`STARVATION_BOUND`] pops go by since
//! it entered outranks every non-aged job regardless of priority class
//! (aged jobs still order among themselves by the normal key). The wait
//! is thereby bounded by `STARVATION_BOUND` dispatches instead of being
//! unbounded.
//!
//! The heap is bounded: prep workers block in [`DispatchHeap::push`] once
//! `capacity` prepared apps are waiting, which is the double-buffer
//! overlap — at steady state each device executes one app while the prep
//! workers hold the next few ready behind it, and prep never runs
//! unboundedly ahead of execution. Retries re-enter through
//! [`DispatchHeap::requeue`], which ignores the bound (a retry must never
//! deadlock against a full heap) and still works after close so draining
//! cannot drop a failed job.
//!
//! For co-resident batching, executors top up a popped job with
//! [`DispatchHeap::try_pop_coresident`]: a non-blocking pop restricted to
//! jobs whose widest-layer block demand fits the device's remaining block
//! slots.

use crate::job::Priority;
use gdroid_icfg::CallLayers;
use gdroid_ir::MethodId;
use gdroid_vetting::PreparedApp;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// Pops a job may watch go by before it outranks every non-aged job.
pub const STARVATION_BOUND: u64 = 8;

/// A prepared job, ready for device execution.
pub struct ReadyJob {
    /// Submission id.
    pub id: u64,
    /// Priority class.
    pub priority: Priority,
    /// Demand-driven fast-lane job: sliced execution, never batched,
    /// result cache bypassed.
    pub targeted: bool,
    /// Engine the job runs under (see [`crate::JobSpec::engine`]).
    pub engine: gdroid_core::EngineKind,
    /// Kernel execution mode (see [`crate::JobSpec::exec`]). Persistent
    /// jobs bypass the cache/incremental paths and never batch.
    pub exec: gdroid_core::ExecMode,
    /// Static work estimate (statements × state width), the LPT key.
    pub estimate: u64,
    /// Widest call-graph layer in blocks — the most block slots one of
    /// this job's kernel launches can demand at once (co-residency fit).
    pub block_demand: u64,
    /// The prepared app (program + environments + call graph + roots).
    pub prep: PreparedApp,
    /// FNV-1a hash of the pre-prep bundle content.
    pub content_hash: u64,
    /// App package name.
    pub package: String,
    /// Post-prep per-method content hashes (incremental change detection).
    pub method_hashes: HashMap<MethodId, u64>,
    /// Fingerprint of the interner contents backing `method_hashes`.
    pub interner_fingerprint: u64,
    /// Measured queue wait, carried into the final result.
    pub queue_wait_ns: u64,
    /// Measured prep time, carried into the final result.
    pub prep_ns: u64,
    /// Failed execution attempts so far.
    pub failures: u32,
    /// Injected faults observed so far.
    pub faults_seen: u32,
    /// Timeouts observed so far.
    pub timeouts_seen: u32,
}

/// Computes the static work estimate of a prepared app: total statements
/// times total variables — the app-granular analogue of the per-method
/// `cfg len × matrix words` estimate in [`gdroid_core::multigpu`].
pub fn work_estimate(prep: &PreparedApp) -> u64 {
    let p = &prep.app.program;
    // Both factors are guarded: a degenerate app (zero statements or zero
    // variables) must not carry estimate 0 and sink below every retry.
    (p.total_statements() as u64).max(1) * (p.total_vars() as u64).max(1)
}

/// Computes a prepared app's block demand: the widest call-graph layer,
/// i.e. the most thread blocks any one of its kernel launches can occupy.
pub fn block_demand(prep: &PreparedApp) -> u64 {
    let layers = CallLayers::compute(&prep.cg, &prep.roots);
    layers.layers.iter().map(Vec::len).max().unwrap_or(0).max(1) as u64
}

struct AgedEntry {
    job: ReadyJob,
    /// Value of the pop counter when this entry (re-)entered the heap.
    enqueued_at: u64,
}

impl AgedEntry {
    /// Max key: aged entries first, then priority, then estimate (LPT),
    /// then earliest id. `pops` is the heap's current pop counter.
    fn key(&self, pops: u64) -> (bool, Priority, u64, std::cmp::Reverse<u64>) {
        let aged = pops.saturating_sub(self.enqueued_at) >= STARVATION_BOUND;
        (aged, self.job.priority, self.job.estimate, std::cmp::Reverse(self.job.id))
    }
}

struct HeapInner {
    entries: Vec<AgedEntry>,
    closed: bool,
    /// Successful pops so far — the age clock.
    pops: u64,
}

impl HeapInner {
    /// Index of the best entry among those `fits` accepts, by aged key.
    fn best_index(&self, fits: impl Fn(&ReadyJob) -> bool) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| fits(&e.job))
            .max_by_key(|(_, e)| e.key(self.pops))
            .map(|(i, _)| i)
    }

    /// Removes and returns entry `i`, advancing the age clock.
    fn take(&mut self, i: usize) -> ReadyJob {
        self.pops += 1;
        self.entries.remove(i).job
    }
}

/// The bounded ready-job heap between prep workers and executors.
pub struct DispatchHeap {
    inner: Mutex<HeapInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl DispatchHeap {
    /// Creates a heap holding at most `capacity` ready jobs.
    pub fn new(capacity: usize) -> DispatchHeap {
        DispatchHeap {
            inner: Mutex::new(HeapInner { entries: Vec::new(), closed: false, pops: 0 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Hands a freshly prepared job to the executors; blocks while the
    /// heap is at capacity. Fails (returning the job) once closed.
    // The fat Err *is* the contract: a rejected job must come back whole.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, job: ReadyJob) -> Result<(), ReadyJob> {
        let mut inner = self.inner.lock().expect("dispatch-heap mutex poisoned: a worker panicked");
        while inner.entries.len() >= self.capacity && !inner.closed {
            inner = self
                .not_full
                .wait(inner)
                .expect("dispatch-heap mutex poisoned while waiting for space");
        }
        if inner.closed {
            return Err(job);
        }
        let at = inner.pops;
        inner.entries.push(AgedEntry { job, enqueued_at: at });
        self.not_empty.notify_one();
        Ok(())
    }

    /// Re-enters a failed job for retry. Not subject to the capacity
    /// bound and accepted even after close — a drain must retry, not
    /// drop. The age clock restarts: a retry is a fresh arrival.
    pub fn requeue(&self, job: ReadyJob) {
        let mut inner = self.inner.lock().expect("dispatch-heap mutex poisoned: a worker panicked");
        let at = inner.pops;
        inner.entries.push(AgedEntry { job, enqueued_at: at });
        self.not_empty.notify_one();
    }

    /// Takes the most urgent ready job (aged first, then priority, then
    /// heaviest — LPT). Blocks while empty; `None` once closed *and*
    /// drained.
    pub fn pop(&self) -> Option<ReadyJob> {
        let mut inner = self.inner.lock().expect("dispatch-heap mutex poisoned: a worker panicked");
        loop {
            if let Some(i) = inner.best_index(|_| true) {
                let job = inner.take(i);
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .expect("dispatch-heap mutex poisoned while waiting for work");
        }
    }

    /// Non-blocking pop of the most urgent ready job whose block demand
    /// fits in `max_demand` block slots — how a batch-forming executor
    /// tops up a device with co-resident jobs. Returns `None` when no
    /// waiting job fits (never blocks: an empty top-up just means the
    /// batch launches as-is). Targeted fast-lane jobs never join a batch
    /// (their sliced launch is a solo path), so they are skipped here.
    pub fn try_pop_coresident(&self, max_demand: u64) -> Option<ReadyJob> {
        let mut inner = self.inner.lock().expect("dispatch-heap mutex poisoned: a worker panicked");
        let i = inner.best_index(|job| !job.targeted && job.block_demand <= max_demand)?;
        let job = inner.take(i);
        self.not_full.notify_one();
        Some(job)
    }

    /// Closes the heap: waiting executors drain what remains, then stop.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("dispatch-heap mutex poisoned: a worker panicked");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Ready jobs currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("dispatch-heap mutex poisoned: a worker panicked").entries.len()
    }

    /// Whether no ready jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdroid_apk::{generate_app, GenConfig};
    use gdroid_vetting::prepare_vetting;

    fn ready(id: u64, priority: Priority, estimate: u64) -> ReadyJob {
        ReadyJob {
            id,
            priority,
            targeted: false,
            engine: gdroid_core::EngineKind::Worklist,
            exec: gdroid_core::ExecMode::MultiLaunch,
            estimate,
            block_demand: 1,
            prep: prepare_vetting(generate_app(0, 100 + id, &GenConfig::tiny())),
            content_hash: id,
            package: format!("p{id}"),
            method_hashes: HashMap::new(),
            interner_fingerprint: 0,
            queue_wait_ns: 0,
            prep_ns: 0,
            failures: 0,
            faults_seen: 0,
            timeouts_seen: 0,
        }
    }

    #[test]
    fn pops_priority_then_heaviest_then_oldest() {
        let h = DispatchHeap::new(8);
        assert!(h.push(ready(1, Priority::Standard, 10)).is_ok());
        assert!(h.push(ready(2, Priority::Standard, 99)).is_ok());
        assert!(h.push(ready(3, Priority::Expedited, 1)).is_ok());
        assert!(h.push(ready(4, Priority::Standard, 99)).is_ok());
        let order: Vec<u64> = (0..4).map(|_| h.pop().unwrap().id).collect();
        assert_eq!(order, vec![3, 2, 4, 1]);
    }

    #[test]
    fn requeue_ignores_capacity_and_close() {
        let h = DispatchHeap::new(1);
        assert!(h.push(ready(1, Priority::Standard, 5)).is_ok());
        h.requeue(ready(2, Priority::Standard, 50));
        assert_eq!(h.len(), 2);
        h.close();
        assert!(h.push(ready(3, Priority::Standard, 1)).is_err());
        h.requeue(ready(4, Priority::Expedited, 1));
        let order: Vec<u64> = std::iter::from_fn(|| h.pop().map(|j| j.id)).collect();
        assert_eq!(order, vec![4, 2, 1]);
    }

    #[test]
    fn estimate_is_positive_and_monotone_in_app_size() {
        let small = prepare_vetting(generate_app(0, 11, &GenConfig::tiny()));
        assert!(work_estimate(&small) > 0);
    }

    #[test]
    fn estimate_never_zero_for_degenerate_apps() {
        // An empty program has zero statements and zero variables; its
        // estimate must still be positive so it can't sink below every
        // other job forever.
        let program = gdroid_ir::ProgramBuilder::new().finish();
        let prep = prepare_vetting(gdroid_apk::App {
            name: "empty".into(),
            category: gdroid_apk::Category::Tools,
            seed: 0,
            program,
            manifest: gdroid_apk::Manifest::default(),
        });
        assert_eq!(prep.app.program.total_statements(), 0, "fixture must be degenerate");
        assert!(work_estimate(&prep) >= 1);
    }

    #[test]
    fn aged_light_job_beats_steady_expedited_stream() {
        // A light Standard job must not starve behind an endless stream
        // of heavy Expedited arrivals: after STARVATION_BOUND pops go by
        // it outranks them all.
        let h = DispatchHeap::new(64);
        assert!(h.push(ready(1, Priority::Standard, 1)).is_ok());
        let mut light_popped_after = None;
        for i in 0..STARVATION_BOUND + 2 {
            assert!(h.push(ready(100 + i, Priority::Expedited, 1_000_000)).is_ok());
            let j = h.pop().unwrap();
            if j.id == 1 {
                light_popped_after = Some(i);
                break;
            }
            assert!(j.priority == Priority::Expedited);
        }
        assert_eq!(
            light_popped_after,
            Some(STARVATION_BOUND),
            "light job must pop right when its age crosses the bound"
        );
    }

    #[test]
    fn try_pop_coresident_respects_block_demand() {
        let h = DispatchHeap::new(8);
        let mut big = ready(1, Priority::Expedited, 1000);
        big.block_demand = 100;
        let mut small = ready(2, Priority::Standard, 10);
        small.block_demand = 3;
        assert!(h.push(big).is_ok());
        assert!(h.push(small).is_ok());
        // Only the small job fits ten remaining slots, despite the big
        // one's higher priority.
        let j = h.try_pop_coresident(10).expect("small job fits");
        assert_eq!(j.id, 2);
        // Nothing else fits; the big job stays queued, never blocking.
        assert!(h.try_pop_coresident(10).is_none());
        assert_eq!(h.len(), 1);
        assert_eq!(h.pop().unwrap().id, 1);
    }

    #[test]
    fn targeted_jobs_never_join_a_coresident_batch() {
        let h = DispatchHeap::new(8);
        let mut fast = ready(1, Priority::Expedited, 1000);
        fast.targeted = true;
        assert!(h.push(fast).is_ok());
        assert!(h.push(ready(2, Priority::Background, 1)).is_ok());
        // The targeted job outranks everything for a normal pop, but a
        // batch top-up must skip it even with ample block slots.
        let j = h.try_pop_coresident(u64::MAX).expect("the full job still fits");
        assert_eq!(j.id, 2);
        assert!(h.try_pop_coresident(u64::MAX).is_none());
        assert_eq!(h.pop().unwrap().id, 1);
    }

    #[test]
    fn block_demand_is_positive_and_bounded_by_methods() {
        let prep = prepare_vetting(generate_app(0, 12, &GenConfig::tiny()));
        let d = block_demand(&prep);
        assert!(d >= 1);
        assert!(d <= prep.app.program.methods.len() as u64);
    }
}
